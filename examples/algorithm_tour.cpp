// Algorithm tour: run every closed-set miner of the library on the same
// data and show that they agree — and how differently they scale with the
// shape of the data (many items / few transactions vs the opposite).
//
//   $ ./examples/algorithm_tour

#include <cstdio>

#include "api/miner.h"
#include "common/timer.h"
#include "data/generators.h"
#include "data/profiles.h"
#include "data/stats.h"

namespace {

using namespace fim;

void Tour(const char* title, const TransactionDatabase& db,
          Support min_support, bool include_flat_cumulative) {
  std::printf("\n%s\n  data: %s\n  minimum support: %u\n", title,
              StatsToString(ComputeStats(db)).c_str(), min_support);
  std::size_t reference_count = 0;
  bool have_reference = false;
  for (Algorithm algorithm : AllAlgorithms()) {
    if (!include_flat_cumulative &&
        algorithm == Algorithm::kFlatCumulative) {
      std::printf("  %-16s (skipped: the flat repository is intersected "
                  "with every transaction,\n%19s which is impractical at "
                  "this transaction count)\n",
                  AlgorithmName(algorithm), "");
      continue;
    }
    MinerOptions options;
    options.algorithm = algorithm;
    options.min_support = min_support;
    std::size_t count = 0;
    WallTimer timer;
    Status status = MineClosed(
        db, options, [&count](std::span<const ItemId>, Support) { ++count; });
    if (!status.ok()) {
      std::printf("  %-16s ERROR: %s\n", AlgorithmName(algorithm),
                  status.ToString().c_str());
      continue;
    }
    const char* check = "";
    if (!have_reference) {
      reference_count = count;
      have_reference = true;
    } else {
      check = count == reference_count ? "  (agrees)" : "  (MISMATCH!)";
    }
    std::printf("  %-16s %8.3fs  %8zu closed sets%s\n",
                AlgorithmName(algorithm), timer.Seconds(), count, check);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  using namespace fim;

  // Shape 1: many items, few transactions — gene-expression-like; the
  // intersection miners shine here. (Kept small so that even the naive
  // flat-repository baseline finishes.)
  Tour("many items / few transactions (yeast-like)", MakeYeastLike(0.04, 42),
       20, /*include_flat_cumulative=*/true);

  // Shape 2: few items, many transactions — classic market baskets; the
  // enumeration miners are at home.
  MarketBasketConfig config;
  config.num_items = 80;
  config.num_transactions = 5000;
  config.avg_transaction_size = 6.0;
  config.seed = 5;
  Tour("few items / many transactions (market-basket)",
       GenerateMarketBasket(config), 50, /*include_flat_cumulative=*/false);
  return 0;
}
