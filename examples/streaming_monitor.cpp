// Online mining scenario: transactions arrive as a stream (e.g. a live
// click-stream or a growing experiment compendium) and the application
// periodically asks for the currently strongest closed item sets —
// the natural fit for the cumulative intersection scheme, which updates
// its repository per transaction instead of re-mining from scratch.
//
//   $ ./examples/streaming_monitor

#include <algorithm>
#include <cstdio>

#include "api/constrained.h"
#include "api/topk.h"
#include "data/generators.h"
#include "ista/incremental.h"

int main() {
  using namespace fim;

  // The "stream": a market-basket workload with planted patterns.
  MarketBasketConfig config;
  config.num_items = 60;
  config.num_transactions = 3000;
  config.avg_transaction_size = 7.0;
  config.num_patterns = 8;
  config.pattern_probability = 0.55;
  config.seed = 97;
  const TransactionDatabase stream = GenerateMarketBasket(config);

  IncrementalClosedSetMiner miner(stream.NumItems());
  const std::size_t report_every = 1000;
  for (std::size_t k = 0; k < stream.NumTransactions(); ++k) {
    Status status = miner.AddTransaction(stream.transaction(k));
    if (!status.ok()) {
      std::fprintf(stderr, "add failed: %s\n", status.ToString().c_str());
      return 1;
    }
    if ((k + 1) % report_every != 0) continue;

    // Ask for the strongest multi-item associations seen so far.
    const Support smin = static_cast<Support>((k + 1) / 20);  // 5%
    auto snapshot = miner.QueryCollect(smin);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    std::vector<ClosedItemset> multi;
    for (auto& set : snapshot.value()) {
      if (set.items.size() >= 2) multi.push_back(std::move(set));
    }
    std::sort(multi.begin(), multi.end(),
              [](const ClosedItemset& a, const ClosedItemset& b) {
                return a.support > b.support;
              });
    std::printf("after %5zu transactions (smin %u, repository %zu nodes):\n",
                k + 1, smin, miner.NodeCount());
    for (std::size_t i = 0; i < std::min<std::size_t>(3, multi.size());
         ++i) {
      std::printf("   %s  support %u\n",
                  ItemsToString(multi[i].items).c_str(), multi[i].support);
    }
  }

  // For comparison, the batch API answers the same question post hoc —
  // here via top-k so no threshold has to be guessed.
  auto top = MineTopKClosed(stream, 5);
  if (top.ok()) {
    std::printf("\nfinal top-5 closed sets (batch top-k API):\n");
    for (const auto& set : top.value()) {
      std::printf("   %s  support %u\n", ItemsToString(set.items).c_str(),
                  set.support);
    }
  }

  // ... and constrained mining drills into one item of interest.
  const ItemId focus = top.ok() && !top.value().empty()
                           ? top.value().front().items.front()
                           : 0;
  MinerOptions options;
  options.min_support = 30;
  ItemConstraints constraints;
  constraints.must_contain = {focus};
  auto focused = MineClosedConstrainedCollect(stream, options, constraints);
  if (focused.ok()) {
    std::printf("\n%zu closed sets contain item %u (support >= %u)\n",
                focused.value().size(), focus, options.min_support);
  }
  return 0;
}
