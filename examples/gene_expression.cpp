// Gene-expression analysis scenario (paper §4): generate a synthetic
// expression compendium, discretize it at the paper's +/-0.2 log-ratio
// thresholds, and mine closed frequent item sets in both orientations —
// conditions as transactions (relationships between genes) and genes as
// transactions (relationships between conditions).
//
//   $ ./examples/gene_expression

#include <cstdio>

#include "api/miner.h"
#include "common/timer.h"
#include "data/expression.h"
#include "data/stats.h"

namespace {

using namespace fim;

void MineAndSummarize(const TransactionDatabase& db, Support min_support,
                      const char* what) {
  std::printf("\n%s\n  data: %s\n", what,
              StatsToString(ComputeStats(db)).c_str());
  MinerOptions options;
  options.algorithm = Algorithm::kIsta;
  options.min_support = min_support;
  WallTimer timer;
  auto result = MineClosedCollect(db, options);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  const auto& sets = result.value();
  std::printf("  %zu closed sets with support >= %u in %.3fs\n", sets.size(),
              min_support, timer.Seconds());

  // Show the largest co-regulated groups.
  std::size_t best = 0;
  for (std::size_t i = 1; i < sets.size(); ++i) {
    if (sets[i].items.size() > sets[best].items.size()) best = i;
  }
  if (!sets.empty()) {
    std::printf("  largest set: %zu items, support %u\n",
                sets[best].items.size(), sets[best].support);
  }
}

}  // namespace

int main() {
  using namespace fim;

  ExpressionConfig config;
  config.num_genes = 800;
  config.num_conditions = 120;
  config.num_modules = 12;
  config.genes_per_module = 60;
  config.conditions_per_module = 18;
  config.module_signal = 0.6;
  config.noise_stddev = 0.1;
  config.seed = 7;
  std::printf("generating %zu genes x %zu conditions with %zu planted "
              "co-expression modules...\n",
              config.num_genes, config.num_conditions, config.num_modules);
  const ExpressionMatrix matrix = GenerateExpression(config);

  // Items are over-/under-expression events (2 per gene or condition),
  // discretized at the paper's +/-0.2 thresholds.
  const TransactionDatabase by_condition = Discretize(
      matrix, ExpressionOrientation::kConditionsAsTransactions);
  MineAndSummarize(by_condition, 10,
                   "conditions as transactions (many items, few "
                   "transactions — the regime where intersection wins):");

  const TransactionDatabase by_gene =
      Discretize(matrix, ExpressionOrientation::kGenesAsTransactions);
  MineAndSummarize(by_gene, 40,
                   "genes as transactions (few items, many transactions — "
                   "the classic enumeration regime):");

  std::printf(
      "\nInterpretation: closed sets in the first orientation are maximal "
      "groups of\nexpression events shared by >= smin conditions, i.e. "
      "candidate co-regulated\ngene modules; the planted modules of the "
      "generator appear among the largest.\n");
  return 0;
}
