// Association-rule induction from closed item sets (the application that
// motivated frequent item set mining, paper §1/§2): generate a synthetic
// market-basket database, mine closed sets, reconstruct supports through
// the closed-set index, and print the strongest rules.
//
//   $ ./examples/market_basket_rules

#include <algorithm>
#include <cstdio>

#include "api/miner.h"
#include "data/generators.h"
#include "data/stats.h"
#include "rules/rules.h"

int main() {
  using namespace fim;

  MarketBasketConfig config;
  config.num_items = 120;
  config.num_transactions = 5000;
  config.avg_transaction_size = 8.0;
  config.num_patterns = 15;
  config.avg_pattern_size = 4;
  config.pattern_probability = 0.6;
  config.seed = 2024;
  const TransactionDatabase db = GenerateMarketBasket(config);
  std::printf("market baskets: %s\n",
              StatsToString(ComputeStats(db)).c_str());

  MinerOptions options;
  options.algorithm = Algorithm::kIsta;
  options.min_support = 100;  // 2% of the baskets
  auto mined = MineClosedCollect(db, options);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu closed sets with support >= %u\n", mined.value().size(),
              options.min_support);

  // Closed sets preserve all support information, so rules can be
  // generated without another database pass.
  const ClosedSetIndex index(std::move(mined).value());
  RuleOptions rule_options;
  rule_options.min_confidence = 0.6;
  std::vector<AssociationRule> rules =
      GenerateRules(index, db.NumTransactions(), rule_options);
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              return a.lift > b.lift;
            });

  std::printf("top rules by lift (confidence >= %.2f):\n",
              rule_options.min_confidence);
  const std::size_t show = std::min<std::size_t>(rules.size(), 12);
  for (std::size_t r = 0; r < show; ++r) {
    const AssociationRule& rule = rules[r];
    std::printf("  %s => %s  supp %u, conf %.2f, lift %.1f\n",
                ItemsToString(rule.antecedent).c_str(),
                ItemsToString(rule.consequent).c_str(), rule.support,
                rule.confidence, rule.lift);
  }
  if (rules.empty()) std::printf("  (no rules above the thresholds)\n");
  return 0;
}
