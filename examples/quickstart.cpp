// Quickstart: build a small transaction database, mine its closed
// frequent item sets with IsTa, and print them with item names.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "api/miner.h"
#include "data/transaction_database.h"

int main() {
  using namespace fim;

  // A toy shopping-basket database (the paper's running example, with
  // product names attached).
  TransactionDatabase db = TransactionDatabase::FromTransactions({
      {0, 1, 2},     // apples, bread, cheese
      {0, 3, 4},     // apples, dates, eggs
      {1, 2, 3},     // bread, cheese, dates
      {0, 1, 2, 3},  // apples, bread, cheese, dates
      {1, 2},        // bread, cheese
      {0, 1, 3},     // apples, bread, dates
      {3, 4},        // dates, eggs
      {2, 3, 4},     // cheese, dates, eggs
  });
  Status named = db.SetItemNames({"apples", "bread", "cheese", "dates",
                                  "eggs"});
  if (!named.ok()) {
    std::fprintf(stderr, "%s\n", named.ToString().c_str());
    return 1;
  }

  // Mine all closed item sets bought together at least 3 times.
  MinerOptions options;
  options.algorithm = Algorithm::kIsta;  // the paper's contribution
  options.min_support = 3;

  std::printf("closed frequent item sets (min support %u):\n",
              options.min_support);
  Status status = MineClosed(
      db, options, [&db](std::span<const ItemId> items, Support support) {
        std::printf("  {");
        for (std::size_t i = 0; i < items.size(); ++i) {
          std::printf("%s%s", i > 0 ? ", " : "",
                      db.ItemName(items[i]).c_str());
        }
        std::printf("}  support %u\n", support);
      });
  if (!status.ok()) {
    std::fprintf(stderr, "mining failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
