// The theory behind the intersection approach (paper §2.4/§2.5), made
// executable: covers, closures, the Galois connection between item sets
// and transaction sets, and why the closed item sets are exactly the
// intersections of transaction subsets.
//
//   $ ./examples/galois_playground

#include <cstdio>

#include "api/miner.h"
#include "verify/galois.h"

namespace {

using namespace fim;

std::string TidsToString(const std::vector<Tid>& tids) {
  std::string s = "{";
  for (std::size_t i = 0; i < tids.size(); ++i) {
    if (i > 0) s += ", ";
    s += "t" + std::to_string(tids[i] + 1);
  }
  return s + "}";
}

}  // namespace

int main() {
  using namespace fim;

  // The paper's running example (items a..e -> 0..4).
  const TransactionDatabase db = TransactionDatabase::FromTransactions({
      {0, 1, 2},     // t1: a b c
      {0, 3, 4},     // t2: a d e
      {1, 2, 3},     // t3: b c d
      {0, 1, 2, 3},  // t4: a b c d
      {1, 2},        // t5: b c
      {0, 1, 3},     // t6: a b d
      {3, 4},        // t7: d e
      {2, 3, 4},     // t8: c d e
  });
  const char* names = "abcde";
  auto render = [&](std::span<const ItemId> items) {
    std::string s = "{";
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) s += ", ";
      s += names[items[i]];
    }
    return s + "}";
  };

  std::printf("The Galois connection (paper §2.5) on the running example\n");
  std::printf("==========================================================\n\n");

  // f maps item sets to their covers; g maps tid sets to intersections.
  const std::vector<ItemId> bc = {1, 2};
  const auto cover_bc = CoverOf(db, bc);
  std::printf("f(%s) = cover = %s  (support %zu)\n", render(bc).c_str(),
              TidsToString(cover_bc).c_str(), cover_bc.size());
  const auto closure_bc = IntersectionOf(db, cover_bc);
  std::printf("g(f(%s)) = closure = %s -> %s is %s\n", render(bc).c_str(),
              render(closure_bc).c_str(), render(bc).c_str(),
              closure_bc == bc ? "CLOSED" : "not closed");

  const std::vector<ItemId> just_e = {4};
  const auto closure_e = ItemClosure(db, just_e);
  std::printf("\ng(f(%s)) = %s -> %s is %s: every transaction with e "
              "also has d\n",
              render(just_e).c_str(), render(closure_e).c_str(),
              render(just_e).c_str(),
              closure_e == just_e ? "CLOSED" : "NOT closed");

  // The other closure operator, on tid sets.
  const std::vector<Tid> k = {0, 2};  // {t1, t3}
  const auto g_k = IntersectionOf(db, k);
  const auto k_closed = TidClosure(db, k);
  std::printf("\ng(%s) = %s;  f(g(%s)) = %s\n", TidsToString(k).c_str(),
              render(g_k).c_str(), TidsToString(k).c_str(),
              TidsToString(k_closed).c_str());
  std::printf("-> intersecting t1 and t3 gives %s, which also lies in the "
              "other\n   transactions of %s — the closure of the tid "
              "set.\n",
              render(g_k).c_str(), TidsToString(k_closed).c_str());

  // The bijection in action: mine closed sets and show each one's cover
  // round-trips.
  std::printf("\nClosed frequent item sets (smin 3) and their covers:\n");
  MinerOptions options;
  options.min_support = 3;
  auto mined = MineClosedCollect(db, options);
  if (!mined.ok()) return 1;
  for (const auto& set : mined.value()) {
    const auto cover = CoverOf(db, set.items);
    const auto back = IntersectionOf(db, cover);
    std::printf("  %-15s cover %-30s g(cover) = %s %s\n",
                render(set.items).c_str(), TidsToString(cover).c_str(),
                render(back).c_str(),
                back == set.items ? "(round-trips)" : "(BUG!)");
  }
  std::printf(
      "\nEvery closed set is the intersection of the transactions that\n"
      "contain it — which is exactly what IsTa and Carpenter exploit.\n");
  return 0;
}
