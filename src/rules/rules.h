#ifndef FIM_RULES_RULES_H_
#define FIM_RULES_RULES_H_

#include <vector>

#include "common/status.h"
#include "data/itemset.h"

namespace fim {

/// An association rule antecedent => consequent.
struct AssociationRule {
  std::vector<ItemId> antecedent;
  std::vector<ItemId> consequent;
  Support support = 0;             // support of antecedent + consequent
  Support antecedent_support = 0;  // support of the antecedent alone
  double confidence = 0.0;         // support / antecedent_support
  double lift = 0.0;               // confidence / relative consequent supp
};

/// Support reconstruction from closed sets (§2.3): the support of any
/// frequent item set equals the maximum support over the closed sets
/// containing it.
class ClosedSetIndex {
 public:
  /// Builds an index over mined closed sets (copied).
  explicit ClosedSetIndex(std::vector<ClosedItemset> closed_sets);

  /// Support of `items`: the maximum support of a closed superset, or 0
  /// if no closed frequent superset exists (the set is infrequent w.r.t.
  /// the mining threshold). The empty set yields the maximum stored
  /// support (a lower bound of the transaction count).
  Support SupportOf(std::span<const ItemId> items) const;

  const std::vector<ClosedItemset>& closed_sets() const { return sets_; }

 private:
  std::vector<ClosedItemset> sets_;
  std::vector<std::vector<std::size_t>> by_item_;  // sets containing item
  std::size_t num_items_ = 0;
};

/// Options of the rule generator.
struct RuleOptions {
  double min_confidence = 0.8;
  /// Only closed sets up to this size spawn rules (the number of
  /// candidate rules grows with set size).
  std::size_t max_itemset_size = 12;
};

/// Generates single-consequent association rules (Z \ {i}) => {i} from
/// every mined closed set Z, with supports reconstructed through the
/// closed-set index. `num_transactions` is needed for lift.
std::vector<AssociationRule> GenerateRules(const ClosedSetIndex& index,
                                           std::size_t num_transactions,
                                           const RuleOptions& options);

}  // namespace fim

#endif  // FIM_RULES_RULES_H_
