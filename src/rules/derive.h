#ifndef FIM_RULES_DERIVE_H_
#define FIM_RULES_DERIVE_H_

#include <vector>

#include "common/status.h"
#include "data/itemset.h"
#include "rules/rules.h"

namespace fim {

/// Derives the maximal frequent item sets (§2.3) from the closed ones:
/// a maximal frequent set has no frequent proper superset, and every
/// maximal set is closed, so the maximal sets are exactly the closed
/// sets that are not properly contained in another closed set.
/// Input need not be sorted; output is in canonical order.
std::vector<ClosedItemset> FilterMaximal(std::vector<ClosedItemset> closed);

/// Reconstructs ALL frequent item sets with their supports from the
/// closed sets alone (§2.3: the support of a frequent set is the maximum
/// support of a closed superset). The expansion can be exponentially
/// larger than the closed representation, so it aborts with OutOfRange
/// once more than `max_sets` sets have been produced. Output is in
/// canonical order.
Result<std::vector<ClosedItemset>> ExpandToAllFrequent(
    const ClosedSetIndex& index, std::size_t max_sets = 1u << 20);

}  // namespace fim

#endif  // FIM_RULES_DERIVE_H_
