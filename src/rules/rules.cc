#include "rules/rules.h"

#include <algorithm>

namespace fim {

ClosedSetIndex::ClosedSetIndex(std::vector<ClosedItemset> closed_sets)
    : sets_(std::move(closed_sets)) {
  for (const auto& set : sets_) {
    for (ItemId i : set.items) {
      num_items_ = std::max(num_items_, static_cast<std::size_t>(i) + 1);
    }
  }
  by_item_.resize(num_items_);
  for (std::size_t s = 0; s < sets_.size(); ++s) {
    for (ItemId i : sets_[s].items) by_item_[i].push_back(s);
  }
}

Support ClosedSetIndex::SupportOf(std::span<const ItemId> items) const {
  Support best = 0;
  if (items.empty()) {
    for (const auto& set : sets_) best = std::max(best, set.support);
    return best;
  }
  // Scan only the sets containing the rarest item of the query.
  const std::vector<std::size_t>* shortest = nullptr;
  for (ItemId i : items) {
    if (i >= num_items_) return 0;
    if (shortest == nullptr || by_item_[i].size() < shortest->size()) {
      shortest = &by_item_[i];
    }
  }
  for (std::size_t s : *shortest) {
    const ClosedItemset& set = sets_[s];
    if (set.support > best && IsSubsetSorted(items, set.items)) {
      best = set.support;
    }
  }
  return best;
}

std::vector<AssociationRule> GenerateRules(const ClosedSetIndex& index,
                                           std::size_t num_transactions,
                                           const RuleOptions& options) {
  std::vector<AssociationRule> rules;
  if (num_transactions == 0) return rules;
  for (const auto& set : index.closed_sets()) {
    if (set.items.size() < 2 || set.items.size() > options.max_itemset_size) {
      continue;
    }
    for (std::size_t skip = 0; skip < set.items.size(); ++skip) {
      AssociationRule rule;
      rule.consequent = {set.items[skip]};
      rule.antecedent.reserve(set.items.size() - 1);
      for (std::size_t i = 0; i < set.items.size(); ++i) {
        if (i != skip) rule.antecedent.push_back(set.items[i]);
      }
      rule.support = set.support;
      rule.antecedent_support = index.SupportOf(rule.antecedent);
      if (rule.antecedent_support == 0) continue;
      rule.confidence = static_cast<double>(rule.support) /
                        static_cast<double>(rule.antecedent_support);
      if (rule.confidence < options.min_confidence) continue;
      const Support consequent_support = index.SupportOf(rule.consequent);
      if (consequent_support > 0) {
        rule.lift = rule.confidence /
                    (static_cast<double>(consequent_support) /
                     static_cast<double>(num_transactions));
      }
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

}  // namespace fim
