#include "rules/derive.h"

#include <algorithm>

namespace fim {

std::vector<ClosedItemset> FilterMaximal(std::vector<ClosedItemset> closed) {
  // Larger sets first: a set can only be subsumed by a strictly larger one.
  std::sort(closed.begin(), closed.end(),
            [](const ClosedItemset& a, const ClosedItemset& b) {
              return a.items.size() > b.items.size();
            });
  std::vector<ClosedItemset> maximal;
  for (auto& candidate : closed) {
    bool subsumed = false;
    for (const auto& kept : maximal) {
      if (kept.items.size() > candidate.items.size() &&
          IsSubsetSorted(candidate.items, kept.items)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) maximal.push_back(std::move(candidate));
  }
  std::sort(maximal.begin(), maximal.end(), ClosedItemsetLess);
  return maximal;
}

namespace {

// Depth-first enumeration of the frequent sets: extend the current set
// by items above the last one; a set is frequent iff the index reports a
// non-zero reconstructed support.
Status Expand(const ClosedSetIndex& index, const std::vector<ItemId>& items,
              std::vector<ItemId>* current, std::size_t next_index,
              std::size_t max_sets, std::vector<ClosedItemset>* out) {
  for (std::size_t k = next_index; k < items.size(); ++k) {
    current->push_back(items[k]);
    const Support support = index.SupportOf(*current);
    if (support > 0) {
      if (out->size() >= max_sets) {
        return Status::OutOfRange("frequent-set expansion exceeds max_sets");
      }
      out->push_back(ClosedItemset{*current, support});
      Status status = Expand(index, items, current, k + 1, max_sets, out);
      if (!status.ok()) return status;
    }
    current->pop_back();
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<ClosedItemset>> ExpandToAllFrequent(
    const ClosedSetIndex& index, std::size_t max_sets) {
  // The item universe is the union of the closed sets' items.
  std::vector<ItemId> items;
  for (const auto& set : index.closed_sets()) {
    items.insert(items.end(), set.items.begin(), set.items.end());
  }
  NormalizeItems(&items);

  std::vector<ClosedItemset> out;
  std::vector<ItemId> current;
  Status status = Expand(index, items, &current, 0, max_sets, &out);
  if (!status.ok()) return status;
  std::sort(out.begin(), out.end(), ClosedItemsetLess);
  return out;
}

}  // namespace fim
