#include "obs/timeline.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <utility>

#include "obs/json.h"

namespace fim::obs {

void TimelineLane::Push(TimelineEvent::Kind kind, std::string_view name,
                        double value) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  TimelineEvent& slot = slots_[head % slots_.size()];
  slot.ts_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  slot.value = value;
  slot.kind = kind;
  const std::size_t n = std::min(name.size(), TimelineEvent::kNameCapacity);
  std::memcpy(slot.name, name.data(), n);
  slot.name[n] = '\0';
  head_.store(head + 1, std::memory_order_release);
}

std::vector<TimelineEvent> TimelineLane::Snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t capacity = slots_.size();
  const std::uint64_t first = head > capacity ? head - capacity : 0;
  std::vector<TimelineEvent> events;
  events.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t i = first; i < head; ++i) {
    events.push_back(slots_[i % capacity]);
  }
  return events;
}

Timeline::Timeline(std::size_t capacity_per_lane)
    : capacity_per_lane_(std::max<std::size_t>(capacity_per_lane, 2)),
      epoch_(std::chrono::steady_clock::now()) {
  lanes_.push_back(
      std::make_unique<TimelineLane>("main", capacity_per_lane_, epoch_));
  driver_ = lanes_.front().get();
}

TimelineLane* Timeline::AddLane(std::string name) {
  const MutexLock lock(mutex_);
  lanes_.push_back(std::make_unique<TimelineLane>(
      std::move(name), capacity_per_lane_, epoch_));
  return lanes_.back().get();
}

std::size_t Timeline::NumLanes() const {
  const MutexLock lock(mutex_);
  return lanes_.size();
}

std::uint64_t Timeline::DroppedEvents() const {
  const MutexLock lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& lane : lanes_) dropped += lane->DroppedEvents();
  return dropped;
}

std::vector<const TimelineLane*> Timeline::Lanes() const {
  const MutexLock lock(mutex_);
  std::vector<const TimelineLane*> lanes;
  lanes.reserve(lanes_.size());
  for (const auto& lane : lanes_) lanes.push_back(lane.get());
  return lanes;
}

namespace {

/// Emits the shared ph/pid/tid/ts fields. Chrome trace timestamps are
/// microseconds.
void EventHeader(JsonWriter* writer, const char* phase, std::uint64_t tid,
                 std::uint64_t ts_ns) {
  writer->Key("ph");
  writer->String(phase);
  writer->Key("pid");
  writer->Number(std::uint64_t{1});
  writer->Key("tid");
  writer->Number(tid);
  writer->Key("ts");
  writer->Number(static_cast<double>(ts_ns) / 1000.0);
}

struct LaneExportStats {
  std::uint64_t skipped_orphan_ends = 0;
  std::uint64_t synthesized_ends = 0;
};

/// Writes one lane's events as exactly matched B/E pairs plus instants
/// and counters. Ring overwrite can orphan an end (its begin was lost)
/// or leave a begin unclosed (its end was never recorded or was
/// overwritten... impossible for ends, but the run may also have been
/// exported mid-phase); orphan ends are dropped and unclosed begins get
/// a synthetic end at the lane's last timestamp so the trace is always
/// well-formed.
void ExportLane(const TimelineLane& lane, std::uint64_t tid,
                JsonWriter* writer, LaneExportStats* stats) {
  // thread_name metadata so Perfetto labels the track.
  writer->BeginObject();
  writer->Key("name");
  writer->String("thread_name");
  EventHeader(writer, "M", tid, 0);
  writer->Key("args");
  writer->BeginObject();
  writer->Key("name");
  writer->String(lane.name());
  writer->EndObject();
  writer->EndObject();

  const std::vector<TimelineEvent> events = lane.Snapshot();
  std::vector<const char*> open;  // names of currently open begins
  std::uint64_t last_ts = 0;
  for (const TimelineEvent& event : events) {
    last_ts = std::max(last_ts, event.ts_ns);
    switch (event.kind) {
      case TimelineEvent::Kind::kBegin:
        open.push_back(event.name);
        writer->BeginObject();
        writer->Key("name");
        writer->String(event.name);
        EventHeader(writer, "B", tid, event.ts_ns);
        writer->EndObject();
        break;
      case TimelineEvent::Kind::kEnd:
        if (open.empty()) {
          ++stats->skipped_orphan_ends;
          break;
        }
        writer->BeginObject();
        writer->Key("name");
        writer->String(open.back());
        open.pop_back();
        EventHeader(writer, "E", tid, event.ts_ns);
        writer->EndObject();
        break;
      case TimelineEvent::Kind::kInstant:
        writer->BeginObject();
        writer->Key("name");
        writer->String(event.name);
        EventHeader(writer, "i", tid, event.ts_ns);
        writer->Key("s");
        writer->String("t");
        writer->EndObject();
        break;
      case TimelineEvent::Kind::kCounter:
        writer->BeginObject();
        writer->Key("name");
        writer->String(event.name);
        EventHeader(writer, "C", tid, event.ts_ns);
        writer->Key("args");
        writer->BeginObject();
        writer->Key("value");
        writer->Number(event.value);
        writer->EndObject();
        writer->EndObject();
        break;
    }
  }
  while (!open.empty()) {
    ++stats->synthesized_ends;
    writer->BeginObject();
    writer->Key("name");
    writer->String(open.back());
    open.pop_back();
    EventHeader(writer, "E", tid, last_ts);
    writer->EndObject();
  }
}

}  // namespace

std::string RenderChromeTrace(const Timeline& timeline, const TraceMeta& meta) {
  const std::vector<const TimelineLane*> lanes = timeline.Lanes();

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("displayTimeUnit");
  writer.String("ms");
  writer.Key("traceEvents");
  writer.BeginArray();
  LaneExportStats stats;
  for (std::size_t tid = 0; tid < lanes.size(); ++tid) {
    ExportLane(*lanes[tid], tid, &writer, &stats);
  }
  writer.EndArray();
  writer.Key("otherData");
  writer.BeginObject();
  writer.Key("schema");
  writer.String("fim-trace-v1");
  writer.Key("tool");
  writer.String(meta.tool);
  writer.Key("algorithm");
  writer.String(meta.algorithm);
  writer.Key("num_lanes");
  writer.Number(static_cast<std::uint64_t>(lanes.size()));
  writer.Key("dropped_events");
  writer.Number(timeline.DroppedEvents());
  writer.Key("skipped_orphan_ends");
  writer.Number(stats.skipped_orphan_ends);
  writer.Key("synthesized_ends");
  writer.Number(stats.synthesized_ends);
  writer.EndObject();
  writer.EndObject();
  std::string out = std::move(writer).Take();
  out.push_back('\n');
  return out;
}

Status WriteChromeTraceFile(const Timeline& timeline, const TraceMeta& meta,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << RenderChromeTrace(timeline, meta);
  out.flush();
  if (!out) {
    return Status::IoError("error writing " + path);
  }
  return Status::OK();
}

}  // namespace fim::obs
