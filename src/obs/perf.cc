#include "obs/perf.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#elif defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fim::obs {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

double Ratio(std::uint64_t numer, std::uint64_t denom, unsigned mask,
             PerfEvent numer_event, PerfEvent denom_event) {
  if ((mask & PerfEventBit(numer_event)) == 0 ||
      (mask & PerfEventBit(denom_event)) == 0 || denom == 0) {
    return kNan;
  }
  return static_cast<double>(numer) / static_cast<double>(denom);
}

#if defined(__linux__)

/// type + config per PerfEvent index, in enum order.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr EventSpec kEventSpecs[kNumPerfEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8U) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16U)},
};

int OpenPerfEvent(const EventSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  // The leader starts disabled; Start() enables the whole group at
  // once. Members inherit the leader's enable state.
  attr.disabled = group_fd == -1 ? 1 : 0;
  // Count user space only: works under perf_event_paranoid <= 2 without
  // privileges, and the mining work we attribute is all user space.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, any CPU (counters migrate with it).
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1,
                                  group_fd, PERF_FLAG_FD_CLOEXEC));
}

#endif  // defined(__linux__)

}  // namespace

namespace internal {

std::uint64_t ScalePerfCount(std::uint64_t raw, std::uint64_t enabled,
                             std::uint64_t running) {
  if (raw == 0 || running == 0) return 0;  // never scheduled: no basis
  if (running >= enabled) return raw;      // on the PMU the whole time
  const double scaled = static_cast<double>(raw) *
                        (static_cast<double>(enabled) /
                         static_cast<double>(running));
  return static_cast<std::uint64_t>(scaled);
}

std::string DescribePerfOpenFailure(int saved_errno) {
  std::string reason = "perf_event_open failed: ";
  reason += std::strerror(saved_errno);  // NOLINT(concurrency-mt-unsafe)
  switch (saved_errno) {
    case EACCES:
    case EPERM: {
      reason += " (kernel.perf_event_paranoid=";
      long paranoid = -100;
      if (std::FILE* f =
              std::fopen("/proc/sys/kernel/perf_event_paranoid", "re")) {
        char buf[32] = {};
        if (std::fgets(buf, sizeof(buf), f) != nullptr) {
          paranoid = std::strtol(buf, nullptr, 10);
        }
        std::fclose(f);
      }
      if (paranoid == -100) {
        reason += "unreadable";
      } else {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%ld", paranoid);
        reason += buf;
      }
      reason += " denies unprivileged counters; lower it or grant "
                "CAP_PERFMON)";
      break;
    }
    case ENOENT:
      reason += " (PMU hardware events unsupported on this host — "
                "typical in VMs/containers without a virtualized PMU)";
      break;
    case ENOSYS:
      reason += " (kernel built without perf events)";
      break;
    default:
      break;
  }
  return reason;
}

}  // namespace internal

double PerfCounts::Ipc() const {
  return Ratio(instructions, cycles, opened_mask, PerfEvent::kInstructions,
               PerfEvent::kCycles);
}

double PerfCounts::LlcMissRate() const {
  return Ratio(cache_misses, cache_references, opened_mask,
               PerfEvent::kCacheMisses, PerfEvent::kCacheReferences);
}

double PerfCounts::BranchMissRate() const {
  return Ratio(branch_misses, branch_instructions, opened_mask,
               PerfEvent::kBranchMisses, PerfEvent::kBranchInstructions);
}

double PerfCounts::MultiplexScale() const {
  if (time_enabled_ns == 0) return kNan;
  return static_cast<double>(time_running_ns) /
         static_cast<double>(time_enabled_ns);
}

void PerfCounts::Accumulate(const PerfCounts& other) {
  cycles += other.cycles;
  instructions += other.instructions;
  cache_references += other.cache_references;
  cache_misses += other.cache_misses;
  branch_instructions += other.branch_instructions;
  branch_misses += other.branch_misses;
  l1d_misses += other.l1d_misses;
  time_enabled_ns += other.time_enabled_ns;
  time_running_ns += other.time_running_ns;
  opened_mask |= other.opened_mask;
}

PerfCounts PerfCounts::DeltaSince(const PerfCounts& earlier) const {
  auto sub = [](std::uint64_t now, std::uint64_t then) {
    return now >= then ? now - then : 0;
  };
  PerfCounts d;
  d.cycles = sub(cycles, earlier.cycles);
  d.instructions = sub(instructions, earlier.instructions);
  d.cache_references = sub(cache_references, earlier.cache_references);
  d.cache_misses = sub(cache_misses, earlier.cache_misses);
  d.branch_instructions = sub(branch_instructions, earlier.branch_instructions);
  d.branch_misses = sub(branch_misses, earlier.branch_misses);
  d.l1d_misses = sub(l1d_misses, earlier.l1d_misses);
  d.time_enabled_ns = sub(time_enabled_ns, earlier.time_enabled_ns);
  d.time_running_ns = sub(time_running_ns, earlier.time_running_ns);
  d.opened_mask = opened_mask;
  return d;
}

PerfCounterSet::PerfCounterSet() {
  for (unsigned i = 0; i < kNumPerfEvents; ++i) {
    fds_[i] = -1;
    slot_of_event_[i] = -1;
  }
#if defined(__linux__)
  // The leader (cycles) decides availability; a leader failure is the
  // canonical "denied / no PMU" case and carries the reason.
  group_fd_ = OpenPerfEvent(kEventSpecs[0], -1);
  if (group_fd_ < 0) {
    avail_.reason = internal::DescribePerfOpenFailure(errno);
    return;
  }
  fds_[0] = group_fd_;
  slot_of_event_[0] = 0;
  avail_.opened_mask = PerfEventBit(PerfEvent::kCycles);
  num_open_ = 1;
  // Members are best-effort: a CPU without, say, an LLC-miss event just
  // leaves that bit unset and the derived rate NaN.
  for (unsigned i = 1; i < kNumPerfEvents; ++i) {
    const int fd = OpenPerfEvent(kEventSpecs[i], group_fd_);
    if (fd < 0) continue;
    fds_[i] = fd;
    slot_of_event_[i] = static_cast<int>(num_open_);
    avail_.opened_mask |= 1U << i;
    ++num_open_;
  }
  avail_.available = true;
#else
  avail_.reason = "hardware counters require Linux perf_event_open";
#endif
}

PerfCounterSet::~PerfCounterSet() {
#if defined(__linux__)
  for (unsigned i = 0; i < kNumPerfEvents; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
#endif
}

bool PerfCounterSet::Start() {
#if defined(__linux__)
  if (!avail_.available) return false;
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return true;
#else
  return false;
#endif
}

void PerfCounterSet::Stop() {
#if defined(__linux__)
  if (!avail_.available) return;
  ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
#endif
}

PerfCounts PerfCounterSet::Read() const {
  PerfCounts counts;
#if defined(__linux__)
  if (!avail_.available) return counts;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  std::uint64_t buf[3 + kNumPerfEvents] = {};
  const ssize_t want = static_cast<ssize_t>((3 + num_open_) * sizeof(buf[0]));
  if (read(group_fd_, buf, static_cast<std::size_t>(want)) != want) {
    return counts;
  }
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  auto value = [&](PerfEvent e) -> std::uint64_t {
    const int slot = slot_of_event_[static_cast<unsigned>(e)];
    if (slot < 0) return 0;
    return internal::ScalePerfCount(buf[3 + slot], enabled, running);
  };
  counts.cycles = value(PerfEvent::kCycles);
  counts.instructions = value(PerfEvent::kInstructions);
  counts.cache_references = value(PerfEvent::kCacheReferences);
  counts.cache_misses = value(PerfEvent::kCacheMisses);
  counts.branch_instructions = value(PerfEvent::kBranchInstructions);
  counts.branch_misses = value(PerfEvent::kBranchMisses);
  counts.l1d_misses = value(PerfEvent::kL1dMisses);
  counts.time_enabled_ns = enabled;
  counts.time_running_ns = running;
  counts.opened_mask = avail_.opened_mask;
#endif
  return counts;
}

PerfAvailability ProbePerfCounters() {
  PerfCounterSet probe;
  return probe.availability();
}

ResourceUsage ReadResourceUsage() {
  ResourceUsage usage;
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return usage;
  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  usage.known = true;
  usage.user_seconds = seconds(ru.ru_utime);
  usage.system_seconds = seconds(ru.ru_stime);
  usage.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
  usage.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
  usage.voluntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
  usage.involuntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nivcsw);
#endif
  return usage;
}

void PerfDomainCollector::Record(PerfDomainSample sample) {
  MutexLock lock(mutex_);
  samples_.push_back(std::move(sample));
}

std::vector<PerfDomainSample> PerfDomainCollector::Samples() const {
  MutexLock lock(mutex_);
  return samples_;
}

PerfDomainScope::PerfDomainScope(PerfDomainCollector* collector,
                                 std::string name)
    : collector_(collector), name_(std::move(name)) {
  if (collector_ == nullptr) return;
  if (collector_->hw_enabled()) {
    counters_ = std::make_unique<PerfCounterSet>();
    counters_->Start();  // no-op when unavailable
  }
  cpu_.Reset();
}

PerfDomainScope::~PerfDomainScope() {
  if (collector_ == nullptr) return;
  PerfDomainSample sample;
  sample.name = std::move(name_);
  sample.cpu_seconds = cpu_.Seconds();
  sample.work_steps = work_steps_;
  if (counters_ != nullptr && counters_->available()) {
    counters_->Stop();
    sample.counts = counters_->Read();
    sample.hw_valid = true;
  }
  collector_->Record(std::move(sample));
}

}  // namespace fim::obs
