#include "obs/export.h"

#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace fim::obs {

namespace {

/// Emits `value` or null — the perf sections never render a fake 0 for
/// an event or rate that did not actually count.
void NumberOrNull(JsonWriter* writer, double value, bool valid) {
  if (valid && std::isfinite(value)) {
    writer->Number(value);
  } else {
    writer->Null();
  }
}

void CountOrNull(JsonWriter* writer, std::uint64_t value, unsigned mask,
                 PerfEvent event) {
  if ((mask & PerfEventBit(event)) != 0) {
    writer->Number(value);
  } else {
    writer->Null();
  }
}

/// The event counters + derived rates of one PerfCounts, as the body of
/// an open JSON object (shared by the totals, spans and domain rows).
void AppendPerfCountsFields(const PerfCounts& counts, JsonWriter* writer) {
  const unsigned mask = counts.opened_mask;
  writer->Key("cycles");
  CountOrNull(writer, counts.cycles, mask, PerfEvent::kCycles);
  writer->Key("instructions");
  CountOrNull(writer, counts.instructions, mask, PerfEvent::kInstructions);
  writer->Key("cache_references");
  CountOrNull(writer, counts.cache_references, mask,
              PerfEvent::kCacheReferences);
  writer->Key("cache_misses");
  CountOrNull(writer, counts.cache_misses, mask, PerfEvent::kCacheMisses);
  writer->Key("branch_instructions");
  CountOrNull(writer, counts.branch_instructions, mask,
              PerfEvent::kBranchInstructions);
  writer->Key("branch_misses");
  CountOrNull(writer, counts.branch_misses, mask, PerfEvent::kBranchMisses);
  writer->Key("l1d_misses");
  CountOrNull(writer, counts.l1d_misses, mask, PerfEvent::kL1dMisses);
  writer->Key("ipc");
  NumberOrNull(writer, counts.Ipc(), true);
  writer->Key("llc_miss_rate");
  NumberOrNull(writer, counts.LlcMissRate(), true);
  writer->Key("branch_miss_rate");
  NumberOrNull(writer, counts.BranchMissRate(), true);
  writer->Key("multiplex_scale");
  NumberOrNull(writer, counts.MultiplexScale(), true);
}

void AppendPerfJson(const PerfReport& perf, JsonWriter* writer) {
  writer->Key("perf");
  writer->BeginObject();
  writer->Key("available");
  writer->Bool(perf.availability.available);
  if (!perf.availability.available) {
    writer->Key("unavailable_reason");
    writer->String(perf.availability.reason);
  }
  if (!perf.kernel_tier.empty()) {
    writer->Key("kernel_tier");
    writer->String(perf.kernel_tier);
  }
  writer->Key("counters");
  if (perf.total_valid) {
    writer->BeginObject();
    AppendPerfCountsFields(perf.total, writer);
    writer->EndObject();
  } else {
    writer->Null();
  }
  writer->Key("rusage");
  if (perf.rusage.known) {
    writer->BeginObject();
    writer->Key("user_seconds");
    writer->Number(perf.rusage.user_seconds);
    writer->Key("system_seconds");
    writer->Number(perf.rusage.system_seconds);
    writer->Key("minor_faults");
    writer->Number(perf.rusage.minor_faults);
    writer->Key("major_faults");
    writer->Number(perf.rusage.major_faults);
    writer->Key("voluntary_ctx_switches");
    writer->Number(perf.rusage.voluntary_ctx_switches);
    writer->Key("involuntary_ctx_switches");
    writer->Number(perf.rusage.involuntary_ctx_switches);
    writer->Key("peak_rss_bytes");
    if (perf.peak_rss.known) {
      writer->Number(static_cast<std::uint64_t>(perf.peak_rss.bytes));
    } else {
      writer->Null();
    }
    writer->EndObject();
  } else {
    writer->Null();
  }
  writer->Key("domains");
  writer->BeginArray();
  for (const auto& domain : perf.domains) {
    writer->BeginObject();
    writer->Key("name");
    writer->String(domain.name);
    writer->Key("work_steps");
    writer->Number(domain.work_steps);
    writer->Key("cpu_seconds");
    writer->Number(domain.cpu_seconds);
    if (domain.hw_valid) {
      AppendPerfCountsFields(domain.counts, writer);
    } else {
      writer->Key("cycles");
      writer->Null();
    }
    writer->EndObject();
  }
  writer->EndArray();
  writer->EndObject();
}

void AppendPerfText(const PerfReport& perf, std::string* out) {
  char line[256];
  if (!perf.availability.available) {
    out->append("  perf: unavailable — ");
    out->append(perf.availability.reason);
    out->push_back('\n');
  } else if (perf.total_valid) {
    const PerfCounts& c = perf.total;
    std::snprintf(line, sizeof(line),
                  "  perf: %.2e cycles, %.2e instructions, ipc %.2f, "
                  "llc miss %.1f%%, branch miss %.1f%% (scale %.2f%s)\n",
                  static_cast<double>(c.cycles),
                  static_cast<double>(c.instructions), c.Ipc(),
                  c.LlcMissRate() * 100.0, c.BranchMissRate() * 100.0,
                  c.MultiplexScale(),
                  perf.kernel_tier.empty()
                      ? ""
                      : (", kernel " + perf.kernel_tier).c_str());
    out->append(line);
  }
  if (perf.rusage.known) {
    std::snprintf(line, sizeof(line),
                  "  rusage: user %.3fs, sys %.3fs, faults %llu+%llu, "
                  "ctx %llu+%llu\n",
                  perf.rusage.user_seconds, perf.rusage.system_seconds,
                  static_cast<unsigned long long>(perf.rusage.minor_faults),
                  static_cast<unsigned long long>(perf.rusage.major_faults),
                  static_cast<unsigned long long>(
                      perf.rusage.voluntary_ctx_switches),
                  static_cast<unsigned long long>(
                      perf.rusage.involuntary_ctx_switches));
    out->append(line);
  }
  if (!perf.domains.empty()) {
    out->append("  perf domains:\n");
    for (const auto& domain : perf.domains) {
      if (domain.hw_valid) {
        std::snprintf(
            line, sizeof(line),
            "    %-20s %12llu steps  %8.3fs cpu  %.2e cyc  ipc %.2f\n",
            domain.name.c_str(),
            static_cast<unsigned long long>(domain.work_steps),
            domain.cpu_seconds, static_cast<double>(domain.counts.cycles),
            domain.counts.Ipc());
      } else {
        std::snprintf(line, sizeof(line),
                      "    %-20s %12llu steps  %8.3fs cpu\n",
                      domain.name.c_str(),
                      static_cast<unsigned long long>(domain.work_steps),
                      domain.cpu_seconds);
      }
      out->append(line);
    }
  }
}

void AppendMemoryComponentJson(const MemoryComponent& component,
                               JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("name");
  writer->String(component.name);
  writer->Key("self_bytes");
  writer->Number(static_cast<std::uint64_t>(component.self_bytes));
  writer->Key("total_bytes");
  writer->Number(static_cast<std::uint64_t>(component.TotalBytes()));
  writer->Key("children");
  writer->BeginArray();
  for (const auto& child : component.children) {
    AppendMemoryComponentJson(child, writer);
  }
  writer->EndArray();
  writer->EndObject();
}

void AppendMemoryJson(const MemoryReport& memory, JsonWriter* writer) {
  writer->Key("memory");
  writer->BeginObject();
  writer->Key("accounted_bytes");
  writer->Number(static_cast<std::uint64_t>(memory.accounted_bytes));
  writer->Key("high_water_bytes");
  writer->Number(static_cast<std::uint64_t>(memory.high_water_bytes));
  writer->Key("peak_rss_bytes");
  if (memory.peak_rss.known) {
    writer->Number(static_cast<std::uint64_t>(memory.peak_rss.bytes));
  } else {
    writer->Null();
  }
  writer->Key("rss_coverage");
  NumberOrNull(writer, memory.RssCoverage(), memory.RssCoverage() >= 0.0);
  writer->Key("components");
  writer->BeginArray();
  for (const auto& component : memory.components) {
    AppendMemoryComponentJson(component, writer);
  }
  writer->EndArray();
  writer->Key("profile");
  if (memory.profile.enabled) {
    writer->BeginObject();
    writer->Key("live_bytes");
    writer->Number(memory.profile.live_bytes);
    writer->Key("peak_live_bytes");
    writer->Number(memory.profile.peak_live_bytes);
    writer->Key("alloc_bytes");
    writer->Number(memory.profile.alloc_bytes);
    writer->Key("allocs");
    writer->Number(memory.profile.allocs);
    writer->Key("frees");
    writer->Number(memory.profile.frees);
    writer->Key("foreign_frees");
    writer->Number(memory.profile.foreign_frees);
    writer->Key("domains");
    writer->BeginArray();
    for (std::size_t d = 0; d < kNumMemDomains; ++d) {
      const MemDomainStats& stats = memory.profile.domains[d];
      // Skip domains that never allocated: the table stays short and
      // the absent-vs-zero distinction survives.
      if (stats.allocs == 0 && stats.frees == 0) continue;
      writer->BeginObject();
      writer->Key("name");
      writer->String(MemDomainName(static_cast<MemDomain>(d)));
      writer->Key("live_bytes");
      writer->Number(stats.live_bytes);
      writer->Key("peak_live_bytes");
      writer->Number(stats.peak_live_bytes);
      writer->Key("alloc_bytes");
      writer->Number(stats.alloc_bytes);
      writer->Key("allocs");
      writer->Number(stats.allocs);
      writer->Key("frees");
      writer->Number(stats.frees);
      writer->EndObject();
    }
    writer->EndArray();
    writer->EndObject();
  } else {
    writer->Null();
  }
  writer->EndObject();
}

void AppendMemoryComponentText(const MemoryComponent& component, int depth,
                               std::string* out) {
  char line[192];
  std::snprintf(line, sizeof(line), "    %*s%-*s %10.2f MiB\n", 2 * depth, "",
                28 - 2 * depth, component.name.c_str(),
                BytesToMib(component.TotalBytes()));
  out->append(line);
  for (const auto& child : component.children) {
    AppendMemoryComponentText(child, depth + 1, out);
  }
}

void AppendMemoryText(const MemoryReport& memory, std::string* out) {
  char line[256];
  if (memory.RssCoverage() >= 0.0) {
    std::snprintf(line, sizeof(line),
                  "  memory: %.2f MiB accounted (%.0f%% of %.2f MiB peak "
                  "rss), high water %.2f MiB\n",
                  BytesToMib(memory.accounted_bytes),
                  memory.RssCoverage() * 100.0,
                  BytesToMib(memory.peak_rss.bytes),
                  BytesToMib(memory.high_water_bytes));
  } else {
    std::snprintf(line, sizeof(line),
                  "  memory: %.2f MiB accounted (peak rss unknown), high "
                  "water %.2f MiB\n",
                  BytesToMib(memory.accounted_bytes),
                  BytesToMib(memory.high_water_bytes));
  }
  out->append(line);
  for (const auto& component : memory.components) {
    AppendMemoryComponentText(component, 0, out);
  }
  if (memory.profile.enabled) {
    std::snprintf(line, sizeof(line),
                  "  alloc domains: %.2f MiB live, %.2f MiB peak, "
                  "%llu allocs, %llu frees, %llu foreign\n",
                  BytesToMib(memory.profile.live_bytes),
                  BytesToMib(memory.profile.peak_live_bytes),
                  static_cast<unsigned long long>(memory.profile.allocs),
                  static_cast<unsigned long long>(memory.profile.frees),
                  static_cast<unsigned long long>(
                      memory.profile.foreign_frees));
    out->append(line);
    for (std::size_t d = 0; d < kNumMemDomains; ++d) {
      const MemDomainStats& stats = memory.profile.domains[d];
      if (stats.allocs == 0 && stats.frees == 0) continue;
      std::snprintf(line, sizeof(line),
                    "    %-28s %10.2f MiB peak  %10.2f MiB cum  %10llu "
                    "allocs\n",
                    MemDomainName(static_cast<MemDomain>(d)),
                    BytesToMib(stats.peak_live_bytes),
                    BytesToMib(stats.alloc_bytes),
                    static_cast<unsigned long long>(stats.allocs));
      out->append(line);
    }
  }
}

void AppendSpanText(const SpanNode& node, int depth, std::string* out) {
  char line[160];
  std::snprintf(line, sizeof(line), "  %*s%-*s %9.3fs wall  %9.3fs cpu  x%zu\n",
                2 * depth, "", 24 - 2 * depth, node.name.c_str(),
                node.wall_seconds, node.cpu_seconds, node.count);
  out->append(line);
  for (const auto& child : node.children) {
    AppendSpanText(*child, depth + 1, out);
  }
}

void AppendSpanJson(const SpanNode& node, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("name");
  writer->String(node.name);
  writer->Key("wall_seconds");
  writer->Number(node.wall_seconds);
  writer->Key("cpu_seconds");
  writer->Number(node.cpu_seconds);
  writer->Key("count");
  writer->Number(static_cast<std::uint64_t>(node.count));
  if (node.perf_valid) {
    writer->Key("perf");
    writer->BeginObject();
    AppendPerfCountsFields(node.perf, writer);
    writer->EndObject();
  }
  writer->Key("children");
  writer->BeginArray();
  for (const auto& child : node.children) AppendSpanJson(*child, writer);
  writer->EndArray();
  writer->EndObject();
}

}  // namespace

std::string RenderStatsText(const StatsReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%s stats: algorithm %s, smin %u, threads %u, %zu sets\n",
                report.tool.c_str(), report.algorithm.c_str(),
                report.min_support, report.num_threads, report.num_sets);
  out.append(line);
  std::snprintf(line, sizeof(line),
                "  wall %.3fs, cpu %.3fs, peak rss %.1f MiB\n",
                report.wall_seconds, report.cpu_seconds,
                BytesToMib(report.peak_rss_bytes));
  out.append(line);
  out.append("  counters:\n");
  for (const auto& [name, value] : report.miner.Counters()) {
    if (value == 0) continue;  // the text view shows what happened
    std::snprintf(line, sizeof(line), "    %-24s %12llu\n", name,
                  static_cast<unsigned long long>(value));
    out.append(line);
  }
  if (report.registry != nullptr) {
    for (const auto& [name, value] : report.registry->CounterValues()) {
      if (value == 0) continue;
      std::snprintf(line, sizeof(line), "    %-32s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out.append(line);
    }
    const auto distributions = report.registry->DistributionValues();
    bool any = false;
    for (const auto& [name, snapshot] : distributions) {
      if (snapshot.count == 0) continue;
      if (!any) {
        out.append("  distributions:\n");
        any = true;
      }
      std::snprintf(line, sizeof(line),
                    "    %-32s n=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
                    "max=%llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(snapshot.count),
                    snapshot.Mean(), snapshot.Quantile(0.50),
                    snapshot.Quantile(0.95), snapshot.Quantile(0.99),
                    static_cast<unsigned long long>(snapshot.max));
      out.append(line);
    }
  }
  if (report.perf != nullptr) AppendPerfText(*report.perf, &out);
  if (report.memory != nullptr) AppendMemoryText(*report.memory, &out);
  if (report.trace != nullptr && !report.trace->root().children.empty()) {
    out.append("  spans:\n");
    for (const auto& child : report.trace->root().children) {
      AppendSpanText(*child, 0, &out);
    }
  }
  return out;
}

std::string RenderStatsJson(const StatsReport& report) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema");
  writer.String("fim-stats-v2");
  writer.Key("tool");
  writer.String(report.tool);
  writer.Key("algorithm");
  writer.String(report.algorithm);
  writer.Key("min_support");
  writer.Number(static_cast<std::uint64_t>(report.min_support));
  writer.Key("threads");
  writer.Number(static_cast<std::uint64_t>(report.num_threads));
  writer.Key("num_sets");
  writer.Number(static_cast<std::uint64_t>(report.num_sets));
  writer.Key("wall_seconds");
  writer.Number(report.wall_seconds);
  writer.Key("cpu_seconds");
  writer.Number(report.cpu_seconds);
  writer.Key("peak_rss_bytes");
  writer.Number(static_cast<std::uint64_t>(report.peak_rss_bytes));
  writer.Key("counters");
  writer.BeginObject();
  // The full catalog, zeros included: consumers can rely on every key
  // being present in every report.
  for (const auto& [name, value] : report.miner.Counters()) {
    writer.Key(name);
    writer.Number(value);
  }
  // Registry counters (e.g. stream.*) follow the fixed catalog; their
  // names never collide with MinerStats counter names by convention
  // (registry counters are dot-qualified).
  if (report.registry != nullptr) {
    for (const auto& [name, value] : report.registry->CounterValues()) {
      writer.Key(name);
      writer.Number(value);
    }
  }
  writer.EndObject();
  // Since fim-stats-v2: registry distributions with histogram-derived
  // approximate percentiles. The section is present (possibly empty)
  // whenever a registry was attached, like the registry counters above.
  if (report.registry != nullptr) {
    writer.Key("distributions");
    writer.BeginObject();
    for (const auto& [name, snapshot] : report.registry->DistributionValues()) {
      writer.Key(name);
      writer.BeginObject();
      writer.Key("count");
      writer.Number(snapshot.count);
      writer.Key("sum");
      writer.Number(snapshot.sum);
      writer.Key("min");
      writer.Number(snapshot.min);
      writer.Key("max");
      writer.Number(snapshot.max);
      writer.Key("mean");
      writer.Number(snapshot.Mean());
      writer.Key("p50");
      writer.Number(snapshot.Quantile(0.50));
      writer.Key("p95");
      writer.Number(snapshot.Quantile(0.95));
      writer.Key("p99");
      writer.Number(snapshot.Quantile(0.99));
      writer.EndObject();
    }
    writer.EndObject();
  }
  if (report.trace != nullptr) {
    writer.Key("spans");
    writer.BeginArray();
    for (const auto& child : report.trace->root().children) {
      AppendSpanJson(*child, &writer);
    }
    writer.EndArray();
  }
  if (report.perf != nullptr) AppendPerfJson(*report.perf, &writer);
  if (report.memory != nullptr) AppendMemoryJson(*report.memory, &writer);
  writer.EndObject();
  std::string out = std::move(writer).Take();
  out.push_back('\n');
  return out;
}

}  // namespace fim::obs
