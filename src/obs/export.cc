#include "obs/export.h"

#include <cstdio>

#include "obs/json.h"

namespace fim::obs {

namespace {

void AppendSpanText(const SpanNode& node, int depth, std::string* out) {
  char line[160];
  std::snprintf(line, sizeof(line), "  %*s%-*s %9.3fs wall  %9.3fs cpu  x%zu\n",
                2 * depth, "", 24 - 2 * depth, node.name.c_str(),
                node.wall_seconds, node.cpu_seconds, node.count);
  out->append(line);
  for (const auto& child : node.children) {
    AppendSpanText(*child, depth + 1, out);
  }
}

void AppendSpanJson(const SpanNode& node, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("name");
  writer->String(node.name);
  writer->Key("wall_seconds");
  writer->Number(node.wall_seconds);
  writer->Key("cpu_seconds");
  writer->Number(node.cpu_seconds);
  writer->Key("count");
  writer->Number(static_cast<std::uint64_t>(node.count));
  writer->Key("children");
  writer->BeginArray();
  for (const auto& child : node.children) AppendSpanJson(*child, writer);
  writer->EndArray();
  writer->EndObject();
}

}  // namespace

std::string RenderStatsText(const StatsReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%s stats: algorithm %s, smin %u, threads %u, %zu sets\n",
                report.tool.c_str(), report.algorithm.c_str(),
                report.min_support, report.num_threads, report.num_sets);
  out.append(line);
  std::snprintf(line, sizeof(line),
                "  wall %.3fs, cpu %.3fs, peak rss %.1f MiB\n",
                report.wall_seconds, report.cpu_seconds,
                static_cast<double>(report.peak_rss_bytes) / (1024.0 * 1024.0));
  out.append(line);
  out.append("  counters:\n");
  for (const auto& [name, value] : report.miner.Counters()) {
    if (value == 0) continue;  // the text view shows what happened
    std::snprintf(line, sizeof(line), "    %-24s %12llu\n", name,
                  static_cast<unsigned long long>(value));
    out.append(line);
  }
  if (report.registry != nullptr) {
    for (const auto& [name, value] : report.registry->CounterValues()) {
      if (value == 0) continue;
      std::snprintf(line, sizeof(line), "    %-32s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out.append(line);
    }
    const auto distributions = report.registry->DistributionValues();
    bool any = false;
    for (const auto& [name, snapshot] : distributions) {
      if (snapshot.count == 0) continue;
      if (!any) {
        out.append("  distributions:\n");
        any = true;
      }
      std::snprintf(line, sizeof(line),
                    "    %-32s n=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
                    "max=%llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(snapshot.count),
                    snapshot.Mean(), snapshot.Quantile(0.50),
                    snapshot.Quantile(0.95), snapshot.Quantile(0.99),
                    static_cast<unsigned long long>(snapshot.max));
      out.append(line);
    }
  }
  if (report.trace != nullptr && !report.trace->root().children.empty()) {
    out.append("  spans:\n");
    for (const auto& child : report.trace->root().children) {
      AppendSpanText(*child, 0, &out);
    }
  }
  return out;
}

std::string RenderStatsJson(const StatsReport& report) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema");
  writer.String("fim-stats-v2");
  writer.Key("tool");
  writer.String(report.tool);
  writer.Key("algorithm");
  writer.String(report.algorithm);
  writer.Key("min_support");
  writer.Number(static_cast<std::uint64_t>(report.min_support));
  writer.Key("threads");
  writer.Number(static_cast<std::uint64_t>(report.num_threads));
  writer.Key("num_sets");
  writer.Number(static_cast<std::uint64_t>(report.num_sets));
  writer.Key("wall_seconds");
  writer.Number(report.wall_seconds);
  writer.Key("cpu_seconds");
  writer.Number(report.cpu_seconds);
  writer.Key("peak_rss_bytes");
  writer.Number(static_cast<std::uint64_t>(report.peak_rss_bytes));
  writer.Key("counters");
  writer.BeginObject();
  // The full catalog, zeros included: consumers can rely on every key
  // being present in every report.
  for (const auto& [name, value] : report.miner.Counters()) {
    writer.Key(name);
    writer.Number(value);
  }
  // Registry counters (e.g. stream.*) follow the fixed catalog; their
  // names never collide with MinerStats counter names by convention
  // (registry counters are dot-qualified).
  if (report.registry != nullptr) {
    for (const auto& [name, value] : report.registry->CounterValues()) {
      writer.Key(name);
      writer.Number(value);
    }
  }
  writer.EndObject();
  // Since fim-stats-v2: registry distributions with histogram-derived
  // approximate percentiles. The section is present (possibly empty)
  // whenever a registry was attached, like the registry counters above.
  if (report.registry != nullptr) {
    writer.Key("distributions");
    writer.BeginObject();
    for (const auto& [name, snapshot] : report.registry->DistributionValues()) {
      writer.Key(name);
      writer.BeginObject();
      writer.Key("count");
      writer.Number(snapshot.count);
      writer.Key("sum");
      writer.Number(snapshot.sum);
      writer.Key("min");
      writer.Number(snapshot.min);
      writer.Key("max");
      writer.Number(snapshot.max);
      writer.Key("mean");
      writer.Number(snapshot.Mean());
      writer.Key("p50");
      writer.Number(snapshot.Quantile(0.50));
      writer.Key("p95");
      writer.Number(snapshot.Quantile(0.95));
      writer.Key("p99");
      writer.Number(snapshot.Quantile(0.99));
      writer.EndObject();
    }
    writer.EndObject();
  }
  if (report.trace != nullptr) {
    writer.Key("spans");
    writer.BeginArray();
    for (const auto& child : report.trace->root().children) {
      AppendSpanJson(*child, &writer);
    }
    writer.EndArray();
  }
  writer.EndObject();
  std::string out = std::move(writer).Take();
  out.push_back('\n');
  return out;
}

}  // namespace fim::obs
