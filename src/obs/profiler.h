#ifndef FIM_OBS_PROFILER_H_
#define FIM_OBS_PROFILER_H_

// Signal-based sampling self-profiler: SIGPROF driven by
// setitimer(ITIMER_PROF) fires on process CPU time, the handler
// captures a backtrace() into preallocated slots, and Stop() folds the
// samples into collapsed-stack output (`fim-prof-v1`, one
// "frame;frame;...;leaf count" line per unique stack — the input
// format of flamegraph.pl). Optionally each sample also drops an
// instant event onto a dedicated timeline lane so the sampling cadence
// folds into the Chrome-trace export.
//
// Handler discipline: the handler touches only preallocated memory and
// async-signal-safe calls (backtrace after a warm-up call in Start(),
// atomic slot claiming, the lock-free TimelineLane push); handler
// bodies are serialized by an atomic busy flag and colliding or
// overflowing samples are counted as dropped, never blocked on.
// Symbolization (dladdr + demangle, which allocate) happens at render
// time, outside any handler.
//
// One profiler per process: Start() returns null (with a reason) when
// another instance is active or the platform lacks SIGPROF/backtrace.
// Failure to start never fails a run — callers warn and continue.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/timeline.h"

namespace fim::obs {

struct ProfilerOptions {
  /// Process-CPU time between samples. ~250 Hz by default: coarse
  /// enough to stay under ~1% overhead, fine enough that a one-second
  /// mining run yields hundreds of stacks.
  unsigned interval_usec = 4000;

  /// Preallocated sample capacity; further samples count as dropped.
  std::size_t max_samples = std::size_t{1} << 16;

  /// Frames captured per sample (deeper stacks are truncated at the
  /// root end by backtrace).
  std::size_t max_depth = 64;

  /// Optional dedicated lane: each kept sample records an instant
  /// event ("prof") so the Chrome trace shows when samples landed.
  /// Sample handlers run on whichever thread the kernel picks, but the
  /// busy-flag serialization preserves the lane's single-writer
  /// contract; the lane must not be written by anyone else while the
  /// profiler runs.
  TimelineLane* lane = nullptr;
};

class SamplingProfiler {
 public:
  /// Arms the process-wide profiler. Returns nullptr with `*error`
  /// explaining why when profiling cannot start (non-POSIX platform,
  /// another profiler active, setitimer/sigaction failure).
  static std::unique_ptr<SamplingProfiler> Start(
      const ProfilerOptions& options, std::string* error);

  ~SamplingProfiler();

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Disarms the timer, restores the previous SIGPROF disposition and
  /// waits for an in-flight handler to finish. Idempotent; called by
  /// the destructor.
  void Stop();

  /// Samples kept so far (monotone; final after Stop()).
  std::size_t SampleCount() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Samples lost to handler collisions or capacity overflow.
  std::size_t DroppedSamples() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Folds the samples into `fim-prof-v1` collapsed-stack text: a `#`
  /// header line (schema, sample/dropped counts, interval), then one
  /// "frame;frame;...;leaf count" line per unique stack, sorted —
  /// deterministic for a given sample set and directly consumable by
  /// flamegraph.pl (which skips the header). Implies Stop().
  std::string RenderCollapsed();

  /// RenderCollapsed() to a file; IoError when it cannot be written.
  Status WriteCollapsedFile(const std::string& path);

 private:
  explicit SamplingProfiler(const ProfilerOptions& options);

  /// The SIGPROF handler body (async-signal-safe; see file comment).
  void TakeSample();

  friend void ProfilerSignalHandler(int);

  const ProfilerOptions options_;
  std::vector<void*> frames_;          // max_samples * max_depth slots
  std::vector<std::uint16_t> depths_;  // frames captured per sample
  std::atomic<std::size_t> count_{0};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<bool> busy_{false};  // serializes handler bodies
  bool armed_ = false;
  bool old_action_valid_ = false;
  // Opaque storage for the saved sigaction (keeps <csignal> out of the
  // header); large enough for struct sigaction on every libc we build.
  alignas(16) unsigned char old_action_[160] = {};
};

namespace internal {

/// Folds raw stacks into collapsed lines (exposed for deterministic
/// tests that bypass the signal machinery). Each stack is leaf-first,
/// as backtrace() returns it; `skip_leading` drops the handler frames.
std::string FoldStacks(const std::vector<std::vector<std::string>>& stacks,
                       std::size_t samples, std::size_t dropped,
                       unsigned interval_usec);

/// Best-effort symbol name for a return address: dladdr + demangle,
/// falling back to "module+0x<offset>" or a bare hex address.
std::string SymbolizeAddress(void* addr);

}  // namespace internal

}  // namespace fim::obs

#endif  // FIM_OBS_PROFILER_H_
