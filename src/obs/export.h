#ifndef FIM_OBS_EXPORT_H_
#define FIM_OBS_EXPORT_H_

#include <cstddef>
#include <string>

#include "data/itemset.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/miner_stats.h"
#include "obs/perf.h"
#include "obs/trace.h"

namespace fim::obs {

/// Everything one instrumented mining run gathers, assembled for export.
/// `trace` may be nullptr (no spans section is emitted then).
struct StatsReport {
  std::string tool;       // "fim-mine", "fim-verify", ...
  std::string algorithm;  // AlgorithmName(...) or a free-form label
  Support min_support = 0;
  unsigned num_threads = 1;
  std::size_t num_sets = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;          // driving thread's CPU time
  std::size_t peak_rss_bytes = 0;    // 0 when the platform hides it
  MinerStats miner;
  const Trace* trace = nullptr;

  /// Optional: a metric registry whose counters are appended to the
  /// counters section (after the MinerStats catalog, names as
  /// registered — e.g. the `stream.*` counters of a StreamMiner). May
  /// be nullptr.
  const MetricRegistry* registry = nullptr;

  /// Optional: hardware-counter report (`--perf-counters`); adds the
  /// "perf" section. May be nullptr.
  const PerfReport* perf = nullptr;

  /// Optional: memory-attribution report (`--mem-stats`); adds the
  /// "memory" section. May be nullptr.
  const MemoryReport* memory = nullptr;
};

/// Human-readable rendering (aligned counter table + indented span
/// tree), for `--stats` / `--stats=text` on stderr.
std::string RenderStatsText(const StatsReport& report);

/// Machine-readable rendering. Schema (see docs/OBSERVABILITY.md):
///
///   {
///     "schema": "fim-stats-v2",
///     "tool": "...", "algorithm": "...",
///     "min_support": N, "threads": N, "num_sets": N,
///     "wall_seconds": F, "cpu_seconds": F, "peak_rss_bytes": N,
///     "counters": { "<name>": N, ... },           // full catalog
///     "distributions": { "<name>": { "count": N, "sum": N, "min": N,
///                        "max": N, "mean": F, "p50": F, "p95": F,
///                        "p99": F }, ... },       // with a registry only
///     "spans": [ { "name": "...", "wall_seconds": F,
///                  "cpu_seconds": F, "count": N,
///                  "perf": { "cycles": N, ... },  // attached sets only
///                  "children": [ ... ] }, ... ],  // omitted w/o trace
///     "perf": {                                   // with --perf-counters
///       "available": B, "unavailable_reason": "...",  // reason iff !B
///       "kernel_tier": "avx2",
///       "counters": { "cycles": N|null, ..., "ipc": F|null,
///                     "llc_miss_rate": F|null,
///                     "branch_miss_rate": F|null,
///                     "multiplex_scale": F|null } | null,
///       "rusage": { "user_seconds": F, "system_seconds": F,
///                   "minor_faults": N, "major_faults": N,
///                   "voluntary_ctx_switches": N,
///                   "involuntary_ctx_switches": N,
///                   "peak_rss_bytes": N|null },
///       "domains": [ { "name": "shard-0", "work_steps": N,
///                      "cpu_seconds": F, "cycles": N|null, ... } ]
///     },
///     "memory": {                                 // with --mem-stats
///       "accounted_bytes": N, "high_water_bytes": N,
///       "peak_rss_bytes": N|null, "rss_coverage": F|null,
///       "components": [ { "name": "...", "self_bytes": N,
///                         "total_bytes": N,
///                         "children": [ ... ] }, ... ],
///       "profile": {                              // FIM_MEM_PROFILE only
///         "live_bytes": N, "peak_live_bytes": N, "alloc_bytes": N,
///         "allocs": N, "frees": N, "foreign_frees": N,
///         "domains": [ { "name": "ista-tree", "live_bytes": N,
///                        "peak_live_bytes": N, "alloc_bytes": N,
///                        "allocs": N, "frees": N }, ... ] } | null
///     }
///   }
///
/// v1 -> v2: the "distributions" section was added (histogram-backed
/// approximate percentiles of every registry Distribution); everything
/// else is unchanged, so v1 consumers that ignore unknown keys keep
/// working. The optional "perf" section (and per-span "perf" objects)
/// joined v2 later without a version bump — sections stay optional and
/// unknown-key tolerant; counters that did not count render as null,
/// never as a fake 0.
std::string RenderStatsJson(const StatsReport& report);

}  // namespace fim::obs

#endif  // FIM_OBS_EXPORT_H_
