#ifndef FIM_OBS_EXPORT_H_
#define FIM_OBS_EXPORT_H_

#include <cstddef>
#include <string>

#include "data/itemset.h"
#include "obs/metrics.h"
#include "obs/miner_stats.h"
#include "obs/trace.h"

namespace fim::obs {

/// Everything one instrumented mining run gathers, assembled for export.
/// `trace` may be nullptr (no spans section is emitted then).
struct StatsReport {
  std::string tool;       // "fim-mine", "fim-verify", ...
  std::string algorithm;  // AlgorithmName(...) or a free-form label
  Support min_support = 0;
  unsigned num_threads = 1;
  std::size_t num_sets = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;          // driving thread's CPU time
  std::size_t peak_rss_bytes = 0;    // 0 when the platform hides it
  MinerStats miner;
  const Trace* trace = nullptr;

  /// Optional: a metric registry whose counters are appended to the
  /// counters section (after the MinerStats catalog, names as
  /// registered — e.g. the `stream.*` counters of a StreamMiner). May
  /// be nullptr.
  const MetricRegistry* registry = nullptr;
};

/// Human-readable rendering (aligned counter table + indented span
/// tree), for `--stats` / `--stats=text` on stderr.
std::string RenderStatsText(const StatsReport& report);

/// Machine-readable rendering. Schema (see docs/OBSERVABILITY.md):
///
///   {
///     "schema": "fim-stats-v2",
///     "tool": "...", "algorithm": "...",
///     "min_support": N, "threads": N, "num_sets": N,
///     "wall_seconds": F, "cpu_seconds": F, "peak_rss_bytes": N,
///     "counters": { "<name>": N, ... },           // full catalog
///     "distributions": { "<name>": { "count": N, "sum": N, "min": N,
///                        "max": N, "mean": F, "p50": F, "p95": F,
///                        "p99": F }, ... },       // with a registry only
///     "spans": [ { "name": "...", "wall_seconds": F,
///                  "cpu_seconds": F, "count": N,
///                  "children": [ ... ] }, ... ]   // omitted w/o trace
///   }
///
/// v1 -> v2: the "distributions" section was added (histogram-backed
/// approximate percentiles of every registry Distribution); everything
/// else is unchanged, so v1 consumers that ignore unknown keys keep
/// working.
std::string RenderStatsJson(const StatsReport& report);

}  // namespace fim::obs

#endif  // FIM_OBS_EXPORT_H_
