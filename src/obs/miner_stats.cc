#include "obs/miner_stats.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace fim {

void MinerStats::MergeFrom(const MinerStats& other) {
  isect_steps += other.isect_steps;
  peak_nodes = std::max(peak_nodes, other.peak_nodes);
  final_nodes = std::max(final_nodes, other.final_nodes);
  prune_calls += other.prune_calls;
  merge_calls += other.merge_calls;
  weighted_transactions += other.weighted_transactions;
  nodes_visited += other.nodes_visited;
  repo_sets += other.repo_sets;
  repo_hits += other.repo_hits;
  column_switches += other.column_switches;
  extension_checks += other.extension_checks;
  closure_checks += other.closure_checks;
  subsume_checks += other.subsume_checks;
  conditional_trees += other.conditional_trees;
  candidate_sets += other.candidate_sets;
  sets_reported += other.sets_reported;
  kernel_calls += other.kernel_calls;
  kernel_elements_in += other.kernel_elements_in;
  kernel_elements_out += other.kernel_elements_out;
}

std::vector<std::pair<const char*, std::uint64_t>> MinerStats::Counters()
    const {
  return {
      {"isect_steps", isect_steps},
      {"peak_nodes", peak_nodes},
      {"final_nodes", final_nodes},
      {"prune_calls", prune_calls},
      {"merge_calls", merge_calls},
      {"weighted_transactions", weighted_transactions},
      {"nodes_visited", nodes_visited},
      {"repo_sets", repo_sets},
      {"repo_hits", repo_hits},
      {"column_switches", column_switches},
      {"extension_checks", extension_checks},
      {"closure_checks", closure_checks},
      {"subsume_checks", subsume_checks},
      {"conditional_trees", conditional_trees},
      {"candidate_sets", candidate_sets},
      {"sets_reported", sets_reported},
      {"kernel_calls", kernel_calls},
      {"kernel_elements_in", kernel_elements_in},
      {"kernel_elements_out", kernel_elements_out},
  };
}

void MinerStats::ExportTo(obs::MetricRegistry* registry) const {
  for (const auto& [name, value] : Counters()) {
    registry->GetCounter(std::string("miner.") + name).Add(value);
  }
}

}  // namespace fim
