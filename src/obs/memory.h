#ifndef FIM_OBS_MEMORY_H_
#define FIM_OBS_MEMORY_H_

// Memory attribution: which structure owns the bytes behind the one
// opaque peak_rss_bytes number.
//
// Two complementary mechanisms, both output-neutral:
//
//  * **Self-measurement** (always compiled): every major structure
//    reports its exact heap footprint through an ApproxMemoryUsage()
//    method — capacity bytes of the vectors it owns, split into named
//    sub-components (e.g. the IsTa prefix tree's node columns vs its
//    link arena, live slots vs garbage). Miners record these
//    MemoryComponent trees into a MemoryBreakdown collector at the
//    moments the structures are largest; the collector keeps the
//    high-water snapshot per component, so the final breakdown answers
//    "what owned the bytes at the peak".
//
//  * **Allocation domains** (compiled in under FIM_MEM_PROFILE only):
//    replacement operator new/delete count every allocation's bytes
//    into the calling thread's current MemDomain tag (a thread_local
//    set by MemDomainScope, modeled on PerfDomainScope from obs/perf.h).
//    Each block carries a small header recording its size and domain,
//    so frees are attributed to the *allocating* domain no matter which
//    thread or phase releases the memory — live-byte counts are exact,
//    not cumulative-allocation approximations. Without FIM_MEM_PROFILE
//    everything here is a no-op and the binary allocates through the
//    default operator new, byte-identical to before.
//
// The allocator-counted domain totals are the ground truth the
// self-measured component sums are tested against (accounting
// exactness, tests/memory_test.cc); the component trees are what ships
// in every build and feeds the `memory` stats section, fim-prof
// --memory and the bench reports.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/timer.h"

namespace fim::obs {

/// One node of a memory-breakdown tree: bytes owned directly
/// (`self_bytes`, excluding everything attributed to children) plus
/// named sub-components. All byte counts are heap bytes (vector
/// capacities and arena sizes), not sizeof(object) — that is what the
/// allocation-domain tracker counts, so the two sides are comparable.
struct MemoryComponent {
  std::string name;
  std::size_t self_bytes = 0;
  std::vector<MemoryComponent> children;

  MemoryComponent() = default;
  explicit MemoryComponent(std::string component_name,
                           std::size_t bytes = 0)
      : name(std::move(component_name)), self_bytes(bytes) {}

  /// self_bytes plus the total of every child, recursively.
  std::size_t TotalBytes() const;
};

/// Thread-safe collector of top-level MemoryComponent snapshots, passed
/// to miners via MinerOptions::memory (and the per-family options).
///
/// Re-recording a name keeps whichever snapshot has the larger total —
/// high-water semantics, so a breakdown recorded both after the shard
/// phase (all shard trees alive) and after the merge reduction (one
/// large tree) reports the layout of the bigger moment. AccountedBytes
/// additionally tracks the high-water of the *sum* across components
/// over all record points.
class MemoryBreakdown {
 public:
  MemoryBreakdown() = default;
  MemoryBreakdown(const MemoryBreakdown&) = delete;
  MemoryBreakdown& operator=(const MemoryBreakdown&) = delete;

  /// Records one top-level component snapshot (keep-max by name).
  void Record(MemoryComponent component) FIM_EXCLUDES(mutex_);

  /// Shorthand for a leaf component.
  void RecordBytes(std::string name, std::size_t bytes)
      FIM_EXCLUDES(mutex_);

  /// The recorded components, in first-record order.
  std::vector<MemoryComponent> Components() const FIM_EXCLUDES(mutex_);

  /// Sum of the recorded components' totals.
  std::size_t AccountedBytes() const FIM_EXCLUDES(mutex_);

  /// High-water mark of AccountedBytes() over all Record calls.
  std::size_t HighWaterBytes() const FIM_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_{LockRank::kMemoryBreakdown, "MemoryBreakdown"};
  std::vector<MemoryComponent> components_ FIM_GUARDED_BY(mutex_);
  std::size_t high_water_bytes_ FIM_GUARDED_BY(mutex_) = 0;
};

/// Heap bytes of a vector-of-vectors: the spine plus every row buffer.
/// The shape shared by tid lists, transposed rows and the horizontal
/// database.
template <typename T>
std::size_t NestedVectorBytes(const std::vector<std::vector<T>>& rows) {
  std::size_t bytes = rows.capacity() * sizeof(std::vector<T>);
  for (const auto& row : rows) bytes += row.capacity() * sizeof(T);
  return bytes;
}

/// Allocation domains: a small fixed set of tags (an enum, not strings
/// — the tag is read on every operator new call) covering the
/// subsystems whose footprints the breakdown distinguishes.
enum class MemDomain : unsigned {
  kUntagged = 0,  // allocations outside any scope (startup, libstdc++)
  kReader,        // FIMI/binary readers and their line buffers
  kRecode,        // recoding: the coded database and order scratch
  kIstaTree,      // IsTa prefix trees (shard mining and merges)
  kMine,          // the other miner families (tid lists, matrices, ...)
  kStream,        // StreamMiner ingest/seal/query
  kCheckpoint,    // checkpoint serialization buffers
  kObs,           // observability itself (timelines, samplers, reports)
};
inline constexpr std::size_t kNumMemDomains = 8;

/// Stable lower-case name ("untagged", "reader", ...).
const char* MemDomainName(MemDomain domain);

/// Per-domain allocator counters. live/peak are exact (frees are
/// attributed to the allocating domain via the block header);
/// alloc_bytes/allocs/frees are cumulative.
struct MemDomainStats {
  std::uint64_t live_bytes = 0;
  std::uint64_t peak_live_bytes = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
};

/// One snapshot of the allocation-domain tracker. `enabled` is false
/// when the binary was built without FIM_MEM_PROFILE (all counts zero
/// then); consumers render the domain table only when it is true.
struct MemProfileSnapshot {
  bool enabled = false;
  std::uint64_t live_bytes = 0;       // bytes currently allocated
  std::uint64_t peak_live_bytes = 0;  // high-water of live_bytes
  std::uint64_t alloc_bytes = 0;      // cumulative bytes requested
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t foreign_frees = 0;  // deletes of blocks we never saw
  std::array<MemDomainStats, kNumMemDomains> domains{};  // by MemDomain
};

/// Whether the allocation-domain tracker is compiled in.
constexpr bool MemProfileCompiled() {
#ifdef FIM_MEM_PROFILE
  return true;
#else
  return false;
#endif
}

/// Reads the tracker counters (zeros + enabled=false without
/// FIM_MEM_PROFILE). Thread-safe; counters are relaxed atomics, so a
/// snapshot taken while workers allocate is approximate at the margin.
MemProfileSnapshot SnapshotMemProfile();

/// Tags every allocation of the current thread with `domain` for the
/// scope's lifetime (nesting restores the previous tag). A no-op
/// without FIM_MEM_PROFILE. Worker threads do not inherit the spawning
/// thread's tag — open a scope inside the worker, next to its
/// PerfDomainScope.
class MemDomainScope {
 public:
#ifdef FIM_MEM_PROFILE
  explicit MemDomainScope(MemDomain domain);
  ~MemDomainScope();
#else
  explicit MemDomainScope(MemDomain /*domain*/) {}
#endif
  MemDomainScope(const MemDomainScope&) = delete;
  MemDomainScope& operator=(const MemDomainScope&) = delete;

#ifdef FIM_MEM_PROFILE
 private:
  MemDomain saved_;
#endif
};

/// The assembled `memory` section of a stats report: the breakdown
/// tree, its coverage against the process peak RSS, and the domain
/// table when the tracker is compiled in.
struct MemoryReport {
  std::vector<MemoryComponent> components;
  std::size_t accounted_bytes = 0;
  std::size_t high_water_bytes = 0;
  PeakRssResult peak_rss;
  MemProfileSnapshot profile;

  /// accounted_bytes / peak_rss.bytes, or a negative value when the
  /// platform hides the RSS. Can legitimately exceed 1.0 slightly: the
  /// breakdown keeps per-component high-water snapshots whose maxima
  /// need not coincide in time, and malloc can return freed pages to
  /// the OS while ru_maxrss never decreases.
  double RssCoverage() const;
};

/// Snapshots `breakdown` plus the process RSS and the tracker counters
/// into a report ready for StatsReport::memory.
MemoryReport BuildMemoryReport(const MemoryBreakdown& breakdown);

}  // namespace fim::obs

#endif  // FIM_OBS_MEMORY_H_
