#ifndef FIM_OBS_TIMELINE_H_
#define FIM_OBS_TIMELINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "obs/trace.h"

namespace fim::obs {

/// One recorded timeline event. Fixed 64-byte layout: the name is copied
/// into the event (truncated if longer than kNameCapacity), so recording
/// never allocates and never holds a reference into caller memory.
struct TimelineEvent {
  enum class Kind : std::uint8_t {
    kBegin,    // opens a phase on the lane's stack
    kEnd,      // closes the innermost open phase
    kInstant,  // a point-in-time marker
    kCounter,  // a named value sample
  };

  static constexpr std::size_t kNameCapacity = 46;  // excl. terminator

  std::uint64_t ts_ns = 0;  // nanoseconds since the Timeline epoch
  double value = 0.0;       // kCounter only
  Kind kind = Kind::kInstant;
  char name[kNameCapacity + 1] = {};  // NUL-terminated, possibly truncated
};
static_assert(sizeof(TimelineEvent) == 64, "TimelineEvent should stay compact");

/// A single-writer event lane, one per recording thread. Events go into a
/// fixed-capacity ring: when the ring is full the oldest events are
/// overwritten and counted — never a silent truncation; the exporter and
/// DroppedEvents() expose the exact number lost.
///
/// Thread contract: exactly one thread calls the recording methods of a
/// lane (the thread the lane was created for). The write index is
/// published with a release store per event (one relaxed load + one
/// release store, no CAS, no locks), so any thread that has synchronized
/// with the writer — e.g. joined it, which every driver does before
/// exporting — reads fully written events. TSan-clean by construction.
class TimelineLane {
 public:
  TimelineLane(std::string name, std::size_t capacity,
               std::chrono::steady_clock::time_point epoch)
      : name_(std::move(name)), epoch_(epoch), slots_(capacity) {}

  TimelineLane(const TimelineLane&) = delete;
  TimelineLane& operator=(const TimelineLane&) = delete;

  void Begin(std::string_view name) {
    Push(TimelineEvent::Kind::kBegin, name, 0.0);
  }

  /// Closes the innermost open phase (Chrome "E" events need no name).
  void End() { Push(TimelineEvent::Kind::kEnd, {}, 0.0); }

  void Instant(std::string_view name) {
    Push(TimelineEvent::Kind::kInstant, name, 0.0);
  }

  void Counter(std::string_view name, double value) {
    Push(TimelineEvent::Kind::kCounter, name, value);
  }

  const std::string& name() const { return name_; }

  /// Events recorded over the lane's lifetime (including overwritten
  /// ones).
  std::uint64_t TotalEvents() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Events lost to ring overwrite (the oldest ones).
  std::uint64_t DroppedEvents() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return head > slots_.size() ? head - slots_.size() : 0;
  }

  /// Copies the surviving events out in recording order. Only call after
  /// synchronizing with the writing thread (join).
  std::vector<TimelineEvent> Snapshot() const;

 private:
  void Push(TimelineEvent::Kind kind, std::string_view name, double value);

  const std::string name_;
  const std::chrono::steady_clock::time_point epoch_;
  std::vector<TimelineEvent> slots_;
  // Monotone write index; slot = head_ % capacity. Only the owning
  // thread writes it (release store after filling the slot).
  std::atomic<std::uint64_t> head_{0};
};

/// A per-run collection of timeline lanes — the event-level counterpart
/// of the aggregating obs::Trace. The driving thread records into the
/// built-in "main" lane (`driver()`); every worker thread registers its
/// own lane with `AddLane` (mutex-protected registration, lock-free
/// recording afterwards). All lanes share one epoch, so their timestamps
/// interleave correctly in the exported trace.
///
/// Memory is bounded: each lane owns `capacity` preallocated 64-byte
/// slots and overflow overwrites the oldest events, counted per lane.
class Timeline {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 15;

  explicit Timeline(std::size_t capacity_per_lane = kDefaultCapacity);

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  /// The driving thread's lane (always present, named "main"). Reads a
  /// pointer cached at construction, so it is safe to call while other
  /// threads register lanes (AddLane may reallocate the lane vector).
  TimelineLane* driver() { return driver_; }

  /// Registers a new lane for the calling worker thread. Safe to call
  /// from any thread; the returned lane must only be written by its
  /// thread. Lane pointers stay valid for the Timeline's lifetime.
  TimelineLane* AddLane(std::string name) FIM_EXCLUDES(mutex_);

  /// Number of lanes registered so far.
  std::size_t NumLanes() const FIM_EXCLUDES(mutex_);

  /// Sum of DroppedEvents over all lanes.
  std::uint64_t DroppedEvents() const FIM_EXCLUDES(mutex_);

  /// Snapshot of the lane pointers (indexed by lane id, i.e. trace tid).
  std::vector<const TimelineLane*> Lanes() const FIM_EXCLUDES(mutex_);

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

 private:
  const std::size_t capacity_per_lane_;
  const std::chrono::steady_clock::time_point epoch_;
  /// Guards lane registration only; recording on a lane is lock-free.
  mutable Mutex mutex_{LockRank::kTimeline, "Timeline"};
  std::vector<std::unique_ptr<TimelineLane>> lanes_ FIM_GUARDED_BY(mutex_);
  TimelineLane* driver_ = nullptr;  // == lanes_[0], vector-independent
};

/// RAII begin/end guard over a lane; a nullptr lane makes it a no-op, so
/// instrumented code needs no branches (same contract as obs::Span).
class TimelineScope {
 public:
  TimelineScope(TimelineLane* lane, std::string_view name) : lane_(lane) {
    if (lane_ != nullptr) lane_->Begin(name);
  }

  TimelineScope(const TimelineScope&) = delete;
  TimelineScope& operator=(const TimelineScope&) = delete;

  /// Closes the scope now; the destructor then does nothing.
  void End() {
    if (lane_ != nullptr) {
      lane_->End();
      lane_ = nullptr;
    }
  }

  ~TimelineScope() { End(); }

 private:
  TimelineLane* lane_;
};

/// Combined phase guard: one aggregated span in `trace` plus one
/// begin/end event pair on `lane`, either of which may be nullptr. This
/// is what the miners use so every phase shows up in both the --stats
/// span tree and the --trace-out timeline with a single guard object.
class Phase {
 public:
  Phase(Trace* trace, TimelineLane* lane, std::string_view name)
      : span_(trace, name), scope_(lane, name) {}

  void End() {
    span_.End();
    scope_.End();
  }

 private:
  Span span_;
  TimelineScope scope_;
};

/// Identification stamped into the exported trace's otherData section.
struct TraceMeta {
  std::string tool;       // "fim-mine", "fim-stream", ...
  std::string algorithm;  // free-form label, may be empty
};

/// Renders the timeline as Chrome trace-event JSON (`fim-trace-v1`),
/// loadable directly in chrome://tracing and Perfetto. One trace tid per
/// lane; lane names become thread_name metadata events. Begin/end pairs
/// are re-balanced per lane: orphan ends (their begin was overwritten)
/// are skipped and unclosed begins get a synthetic end at the lane's
/// last timestamp, so the output always contains exactly matched B/E
/// pairs; the otherData section reports dropped_events,
/// skipped_orphan_ends and synthesized_ends. Only call after the
/// recording threads have quiesced.
std::string RenderChromeTrace(const Timeline& timeline, const TraceMeta& meta);

/// RenderChromeTrace to a file; IoError when the file cannot be written.
Status WriteChromeTraceFile(const Timeline& timeline, const TraceMeta& meta,
                            const std::string& path);

}  // namespace fim::obs

#endif  // FIM_OBS_TIMELINE_H_
