#include "obs/profiler.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define FIM_PROFILER_POSIX 1
#include <csignal>
#include <sys/time.h>
#if defined(__has_include)
#if __has_include(<execinfo.h>)
#define FIM_PROFILER_BACKTRACE 1
#include <execinfo.h>
#endif
#if __has_include(<dlfcn.h>)
#define FIM_PROFILER_DLADDR 1
#include <dlfcn.h>
#endif
#if __has_include(<cxxabi.h>)
#define FIM_PROFILER_DEMANGLE 1
#include <cxxabi.h>
#endif
#endif
#endif

namespace fim::obs {
namespace {

/// The single active profiler, published for the signal handler. CAS'd
/// from null by Start() (one profiler per process) and cleared by
/// Stop() before the sample memory is touched by the folding code.
std::atomic<SamplingProfiler*> g_active_profiler{nullptr};

/// Handler frames at the top of every captured stack: TakeSample's
/// caller chain (the handler itself and the kernel signal trampoline).
/// Dropped at fold time so flames start at the interrupted frame.
constexpr std::size_t kHandlerFrames = 2;

}  // namespace

void ProfilerSignalHandler(int /*signum*/) {
  // Save and restore errno: the handler may interrupt code between a
  // syscall and its errno check, and backtrace can clobber it.
  const int saved_errno = errno;
  SamplingProfiler* profiler =
      g_active_profiler.load(std::memory_order_acquire);
  if (profiler != nullptr) profiler->TakeSample();
  errno = saved_errno;
}

SamplingProfiler::SamplingProfiler(const ProfilerOptions& options)
    : options_(options),
      frames_(options.max_samples * options.max_depth, nullptr),
      depths_(options.max_samples, 0) {}

std::unique_ptr<SamplingProfiler> SamplingProfiler::Start(
    const ProfilerOptions& options, std::string* error) {
#if !defined(FIM_PROFILER_POSIX) || !defined(FIM_PROFILER_BACKTRACE)
  if (error != nullptr) {
    *error = "sampling profiler unavailable: requires POSIX signals and "
             "backtrace()";
  }
  (void)options;
  return nullptr;
#else
  if (options.interval_usec == 0 || options.max_samples == 0 ||
      options.max_depth == 0 || options.max_depth > UINT16_MAX) {
    if (error != nullptr) *error = "invalid profiler options";
    return nullptr;
  }
  // Preallocate before publishing, then warm up backtrace: its first
  // call may dlopen/allocate inside libgcc, which must not happen in
  // the handler.
  std::unique_ptr<SamplingProfiler> profiler(new SamplingProfiler(options));
  {
    void* warmup[4];
    (void)::backtrace(warmup, 4);
  }

  SamplingProfiler* expected = nullptr;
  if (!g_active_profiler.compare_exchange_strong(
          expected, profiler.get(), std::memory_order_acq_rel)) {
    if (error != nullptr) {
      *error = "a sampling profiler is already running in this process";
    }
    return nullptr;
  }

  static_assert(sizeof(struct sigaction) <= sizeof(profiler->old_action_),
                "old_action_ storage too small for struct sigaction");
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &ProfilerSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  auto* old_action =
      reinterpret_cast<struct sigaction*>(profiler->old_action_);
  if (sigaction(SIGPROF, &action, old_action) != 0) {
    g_active_profiler.store(nullptr, std::memory_order_release);
    if (error != nullptr) *error = "sigaction(SIGPROF) failed";
    return nullptr;
  }
  profiler->old_action_valid_ = true;

  itimerval timer{};
  timer.it_interval.tv_sec = options.interval_usec / 1000000;
  timer.it_interval.tv_usec =
      static_cast<suseconds_t>(options.interval_usec % 1000000);
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    sigaction(SIGPROF, old_action, nullptr);
    profiler->old_action_valid_ = false;
    g_active_profiler.store(nullptr, std::memory_order_release);
    if (error != nullptr) *error = "setitimer(ITIMER_PROF) failed";
    return nullptr;
  }
  profiler->armed_ = true;
  return profiler;
#endif
}

void SamplingProfiler::TakeSample() {
#if defined(FIM_PROFILER_POSIX) && defined(FIM_PROFILER_BACKTRACE)
  // ITIMER_PROF is process-wide: concurrent deliveries on two threads
  // are possible, so handler bodies are serialized by busy_ (the loser
  // drops its sample rather than corrupting a slot).
  if (busy_.exchange(true, std::memory_order_acq_rel)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t index = count_.load(std::memory_order_relaxed);
  if (index < options_.max_samples) {
    const int depth = ::backtrace(
        frames_.data() + index * options_.max_depth,
        static_cast<int>(options_.max_depth));
    depths_[index] = depth > 0 ? static_cast<std::uint16_t>(depth) : 0;
    count_.store(index + 1, std::memory_order_release);
    // The busy_ acq/rel handoff makes successive handler bodies (even
    // on different threads) a serial writer sequence for the lane.
    if (options_.lane != nullptr) options_.lane->Instant("prof");
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  busy_.store(false, std::memory_order_release);
#endif
}

void SamplingProfiler::Stop() {
#if defined(FIM_PROFILER_POSIX) && defined(FIM_PROFILER_BACKTRACE)
  if (armed_) {
    itimerval off{};
    setitimer(ITIMER_PROF, &off, nullptr);
    if (old_action_valid_) {
      sigaction(SIGPROF, reinterpret_cast<struct sigaction*>(old_action_),
                nullptr);
      old_action_valid_ = false;
    }
    armed_ = false;
  }
  if (g_active_profiler.load(std::memory_order_acquire) == this) {
    g_active_profiler.store(nullptr, std::memory_order_release);
  }
  // Wait out an in-flight handler (a signal delivered before the timer
  // was disarmed may still be running on another thread).
  while (busy_.load(std::memory_order_acquire)) {
  }
#endif
}

SamplingProfiler::~SamplingProfiler() { Stop(); }

namespace internal {

std::string SymbolizeAddress(void* addr) {
#if defined(FIM_PROFILER_DLADDR)
  Dl_info info{};
  if (dladdr(addr, &info) != 0) {
    if (info.dli_sname != nullptr) {
#if defined(FIM_PROFILER_DEMANGLE)
      int demangle_status = 0;
      char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                            &demangle_status);
      if (demangle_status == 0 && demangled != nullptr) {
        std::string name(demangled);
        std::free(demangled);  // NOLINT(cppcoreguidelines-no-malloc)
        return name;
      }
      std::free(demangled);  // NOLINT(cppcoreguidelines-no-malloc)
#endif
      return info.dli_sname;
    }
    if (info.dli_fname != nullptr) {
      // No symbol: module basename + offset still groups usefully.
      const char* base = std::strrchr(info.dli_fname, '/');
      const std::string module(base != nullptr ? base + 1 : info.dli_fname);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "+0x%zx",
                    static_cast<std::size_t>(
                        reinterpret_cast<char*>(addr) -
                        reinterpret_cast<char*>(info.dli_fbase)));
      return module + buf;
    }
  }
#endif
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx",
                reinterpret_cast<std::size_t>(addr));
  return buf;
}

std::string FoldStacks(const std::vector<std::vector<std::string>>& stacks,
                       std::size_t samples, std::size_t dropped,
                       unsigned interval_usec) {
  // std::map: the output is sorted by stack string, so the same sample
  // set always renders the same bytes.
  std::map<std::string, std::uint64_t> folded;
  for (const auto& stack : stacks) {
    if (stack.empty()) continue;
    std::string line;
    // Collapsed format wants root first; stacks arrive leaf-first.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (!line.empty()) line += ';';
      line += *it;
    }
    ++folded[line];
  }
  std::ostringstream out;
  out << "# fim-prof-v1 samples=" << samples << " dropped=" << dropped
      << " interval_usec=" << interval_usec << '\n';
  for (const auto& [stack, count] : folded) {
    out << stack << ' ' << count << '\n';
  }
  return out.str();
}

}  // namespace internal

std::string SamplingProfiler::RenderCollapsed() {
  Stop();
  const std::size_t samples = count_.load(std::memory_order_acquire);
  // Symbolize each distinct address once; mining stacks repeat heavily.
  std::unordered_map<void*, std::string> symbol_cache;
  auto symbol = [&symbol_cache](void* addr) -> const std::string& {
    auto [it, inserted] = symbol_cache.try_emplace(addr);
    if (inserted) it->second = internal::SymbolizeAddress(addr);
    return it->second;
  };
  std::vector<std::vector<std::string>> stacks;
  stacks.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t depth = depths_[i];
    std::vector<std::string> stack;
    for (std::size_t f = kHandlerFrames; f < depth; ++f) {
      stack.push_back(symbol(frames_[i * options_.max_depth + f]));
    }
    if (stack.empty() && depth > 0) {
      // Shallower than the handler prologue (signal arrived inside the
      // runtime): keep what we have rather than losing the sample.
      for (std::size_t f = 0; f < depth; ++f) {
        stack.push_back(symbol(frames_[i * options_.max_depth + f]));
      }
    }
    stacks.push_back(std::move(stack));
  }
  return internal::FoldStacks(stacks, samples,
                              dropped_.load(std::memory_order_relaxed),
                              options_.interval_usec);
}

Status SamplingProfiler::WriteCollapsedFile(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << RenderCollapsed();
  out.flush();
  if (!out) {
    return Status::IoError("error writing " + path);
  }
  return Status::OK();
}

}  // namespace fim::obs
