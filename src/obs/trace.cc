#include "obs/trace.h"

#include "common/check.h"

namespace fim::obs {

const SpanNode* SpanNode::FindChild(std::string_view child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  return nullptr;
}

SpanNode* Trace::Begin(std::string_view name) {
  SpanNode* parent = open_.back();
  SpanNode* node = nullptr;
  for (const auto& child : parent->children) {
    if (child->name == name) {
      node = child.get();
      break;
    }
  }
  if (node == nullptr) {
    parent->children.push_back(std::make_unique<SpanNode>());
    node = parent->children.back().get();
    node->name = std::string(name);
  }
  open_.push_back(node);
  if (perf_ != nullptr) perf_open_.push_back(perf_->Read());
  return node;
}

void Trace::End(double wall_seconds, double cpu_seconds) {
  FIM_CHECK(open_.size() > 1) << "Trace::End without a matching Begin";
  SpanNode* node = open_.back();
  open_.pop_back();
  node->wall_seconds += wall_seconds;
  node->cpu_seconds += cpu_seconds;
  ++node->count;
  if (perf_ != nullptr && !perf_open_.empty()) {
    node->perf.Accumulate(perf_->Read().DeltaSince(perf_open_.back()));
    node->perf_valid = true;
    perf_open_.pop_back();
  }
}

}  // namespace fim::obs
