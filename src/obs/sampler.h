#ifndef FIM_OBS_SAMPLER_H_
#define FIM_OBS_SAMPLER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <thread>

#include "common/sync.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace fim::obs {

/// Configuration of a MetricsSampler.
struct MetricsSamplerOptions {
  /// Time between samples. Must be positive.
  std::chrono::milliseconds period{1000};

  /// Registry whose counters and distributions go into every sample.
  /// May be nullptr (the sample then carries only the process fields).
  /// Must outlive the sampler.
  const MetricRegistry* registry = nullptr;

  /// Name of a registry counter to derive a rate from (e.g.
  /// "stream.transactions_ingested"): each sample reports the counter
  /// delta since the previous sample divided by the elapsed time as
  /// `tx_per_second`. Empty disables the field.
  std::string throughput_counter;

  /// Optional timeline lane: every sample additionally records an
  /// instant event ("sample") and a counter event ("rss_mib") on it, so
  /// long-running runs show their sampling cadence in the trace. The
  /// lane must be dedicated to the sampler thread (single-writer).
  TimelineLane* lane = nullptr;

  /// Optional live accounted-bytes source (e.g. a closure over
  /// StreamMiner::ApproxMemoryUsage): each sample reports its value as
  /// `mem.accounted_bytes` in the JSONL line and, with a lane, as a
  /// "mem.accounted_mib" counter track next to "rss_mib". Called on the
  /// sampler thread, so it must be thread-safe; keep it cheap (it runs
  /// once per period).
  std::function<std::size_t()> accounted_bytes;
};

/// Background metrics sampler for long-running sessions: a thread that
/// periodically snapshots the registry, the derived ingest throughput
/// and the process peak RSS into a JSONL time-series, one object per
/// line (`fim-statsline-v1`):
///
///   {"schema":"fim-statsline-v1","seq":0,"elapsed_seconds":1.0,
///    "peak_rss_bytes":N,"tx_per_second":F,
///    "mem":{"accounted_bytes":N,"live_bytes":N},   // optional, see below
///    "counters":{...},"distributions":{"name":{"count":N,"sum":N,
///    "min":N,"max":N,"mean":F,"p50":F,"p95":F,"p99":F},...}}
///
/// The "mem" object appears when an accounted_bytes source is attached
/// and/or the binary carries the FIM_MEM_PROFILE allocation tracker
/// (live_bytes then is the tracker's exact live-byte count); fields that
/// have no source are omitted, never faked as 0.
///
/// Sampling starts on construction. Stop() (or the destructor) wakes the
/// thread, joins it, and emits one final sample — so even a run shorter
/// than the period produces at least one line. The output stream is
/// written only by the sampler thread and, after the join, by Stop();
/// it must stay valid until Stop() returns and must not be written by
/// anyone else in between.
///
/// Abnormal-exit durability: every sample is written as one complete
/// line and flushed immediately, and each live sampler registers itself
/// in a process-wide slot table. The first sampler installs an atexit
/// hook that Stop()s whatever is still live when std::exit is called
/// (local destructors do not run then), and best-effort SIGINT/SIGTERM/
/// SIGHUP handlers — only where the disposition was still SIG_DFL —
/// that flush the registered streams before re-raising. Truncated
/// `fim-statsline-v1` files therefore require a SIGKILL-class death.
class MetricsSampler {
 public:
  MetricsSampler(const MetricsSamplerOptions& options, std::ostream* out);

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  ~MetricsSampler() { Stop(); }

  /// Stops the sampling thread and writes the final sample. Idempotent.
  void Stop() FIM_EXCLUDES(mutex_);

  /// Flushes the output stream. Safe to call at any time from the
  /// owning thread; the fatal-signal hook calls it best-effort.
  void FlushOutput() { out_->flush(); }

  /// Samples written so far (monotone; final value after Stop()).
  std::uint64_t SamplesWritten() const;

 private:
  void Run() FIM_EXCLUDES(mutex_);
  void EmitSample();

  const MetricsSamplerOptions options_;
  std::ostream* const out_;
  const std::chrono::steady_clock::time_point start_;

  Mutex mutex_{LockRank::kMetricsSampler, "MetricsSampler"};
  CondVar wake_;
  bool stopping_ FIM_GUARDED_BY(mutex_) = false;
  bool stopped_ FIM_GUARDED_BY(mutex_) = false;

  // Sampler-thread state (touched by Stop() only after the join); the
  // sequence number is atomic so SamplesWritten can poll it live.
  std::atomic<std::uint64_t> seq_{0};
  std::uint64_t last_throughput_value_ = 0;
  double last_sample_seconds_ = 0.0;

  std::thread thread_;
};

namespace internal {

/// Live samplers currently registered for exit-time flushing (bounded
/// by the slot table; construction past the bound just skips the
/// safety net). Exposed for tests.
std::size_t LiveSamplerCount();

/// The fatal-signal flush body: flushes every registered sampler's
/// stream. Exposed so tests can exercise it without raising a signal.
void FlushLiveSamplerStreams();

}  // namespace internal

}  // namespace fim::obs

#endif  // FIM_OBS_SAMPLER_H_
