#ifndef FIM_OBS_MINER_STATS_H_
#define FIM_OBS_MINER_STATS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fim {

namespace obs {
class MetricRegistry;
}  // namespace obs

/// The uniform execution-statistics snapshot every miner family fills
/// (optional output of MineClosed and the per-family entry points).
/// Fields are plain counters written by the single thread that owns the
/// respective mining state; parallel drivers keep one instance per
/// worker and aggregate with MergeFrom at their merge/reduction stage,
/// so the hot loops never touch shared state. Instrumentation is
/// output-neutral: mining results are bit-identical whether a snapshot
/// is requested or not.
///
/// Not every field is meaningful for every algorithm; unused fields stay
/// zero. The catalog (names, grouping, semantics) is documented in
/// docs/OBSERVABILITY.md.
struct MinerStats {
  // --- intersection family (IsTa, flat cumulative) ---------------------
  std::size_t isect_steps = 0;     // repository nodes visited / pairwise
                                   // set intersections while intersecting
  std::size_t peak_nodes = 0;      // max repository size, incl. all
                                   // workers and merge stages
  std::size_t final_nodes = 0;     // repository size at report time
  std::size_t prune_calls = 0;     // item-elimination prunes, incl.
                                   // mid-merge prunes, all workers
  std::size_t merge_calls = 0;     // pairwise repository merges
  std::size_t weighted_transactions = 0;  // stream length after dedup

  // --- transaction-set enumeration family (Carpenter, Cobbler) ---------
  std::size_t nodes_visited = 0;    // row-enumeration nodes expanded
  std::size_t repo_sets = 0;        // intersections stored for dup pruning
  std::size_t repo_hits = 0;        // branches pruned via the repository
  std::size_t column_switches = 0;  // Cobbler row->column switch-overs

  // --- item-set enumeration family (LCM, CHARM, FP-close, transposed,
  //     Eclat/dEclat) ---------------------------------------------------
  std::size_t extension_checks = 0;   // candidate extensions examined
  std::size_t closure_checks = 0;     // closure computations / merges
  std::size_t subsume_checks = 0;     // subsumption comparisons
  std::size_t conditional_trees = 0;  // FP-close conditional projections
  std::size_t candidate_sets = 0;     // candidates before closed filter

  // --- universal --------------------------------------------------------
  std::size_t sets_reported = 0;  // closed sets delivered to the callback

  // --- intersection kernels (every family; see src/kernels/ and
  //     docs/PERFORMANCE.md). Filled by MineClosed as the delta of the
  //     process-wide kernel counters across the run, so per-family entry
  //     points called directly leave them zero. --------------------------
  std::size_t kernel_calls = 0;         // dispatched kernel invocations
  std::size_t kernel_elements_in = 0;   // input elements streamed
  std::size_t kernel_elements_out = 0;  // result elements produced

  /// Aggregates a worker's (or merge stage's) snapshot into this one:
  /// peak_nodes and final_nodes take the maximum, everything else sums.
  void MergeFrom(const MinerStats& other);

  /// The full counter catalog as (name, value) pairs in a stable order —
  /// zero entries included, so exports always carry the whole schema.
  std::vector<std::pair<const char*, std::uint64_t>> Counters() const;

  /// Adds every counter into `registry` under "miner.<name>".
  void ExportTo(obs::MetricRegistry* registry) const;
};

/// The historical per-family stats names are the same snapshot now;
/// every `MineClosed...(..., IstaStats*)` call keeps compiling.
using IstaStats = MinerStats;
using CarpenterStats = MinerStats;

}  // namespace fim

#endif  // FIM_OBS_MINER_STATS_H_
