#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace fim::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> values) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(values);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto str = ParseString();
      if (!str.ok()) return str.status();
      return JsonValue::MakeString(std::move(str).value());
    }
    if (ConsumeLiteral("true")) return JsonValue::MakeBool(true);
    if (ConsumeLiteral("false")) return JsonValue::MakeBool(false);
    if (ConsumeLiteral("null")) return JsonValue::MakeNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    Consume('{');
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    for (;;) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      auto value = ParseValue();
      if (!value.ok()) return value;
      members.insert_or_assign(std::move(key).value(),
                               std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::MakeObject(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    Consume('[');
    std::vector<JsonValue> values;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(values));
    for (;;) {
      auto value = ParseValue();
      if (!value.ok()) return value;
      values.push_back(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::MakeArray(std::move(values));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return Error("invalid \\u escape digit");
          }
          // UTF-8 encode the BMP code point (the reports only escape
          // control characters, so surrogate pairs are not needed).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue::MakeNumber(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

void JsonWriter::AppendEscaped(std::string* out, std::string_view value) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
  AppendEscaped(&out_, key);
  out_.push_back(':');
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendEscaped(&out_, value);
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) value = 0.0;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_.append(buffer);
}

void JsonWriter::Number(std::uint64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
}

}  // namespace fim::obs
