#include "obs/metrics.h"

namespace fim::obs {

Counter& MetricRegistry::GetCounter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Distribution& MetricRegistry::GetDistribution(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = distributions_.find(name);
  if (it == distributions_.end()) {
    it = distributions_
             .emplace(std::string(name), std::make_unique<Distribution>())
             .first;
  }
  return *it->second;
}

std::map<std::string, std::uint64_t> MetricRegistry::CounterValues() const {
  const std::scoped_lock lock(mutex_);
  std::map<std::string, std::uint64_t> values;
  for (const auto& [name, counter] : counters_) {
    values.emplace(name, counter->Value());
  }
  return values;
}

std::map<std::string, Distribution::Snapshot>
MetricRegistry::DistributionValues() const {
  const std::scoped_lock lock(mutex_);
  std::map<std::string, Distribution::Snapshot> values;
  for (const auto& [name, distribution] : distributions_) {
    values.emplace(name, distribution->Get());
  }
  return values;
}

void MetricRegistry::Reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, distribution] : distributions_) distribution->Reset();
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry& registry = *new MetricRegistry();
  return registry;
}

}  // namespace fim::obs
