#include "obs/metrics.h"

#include <algorithm>

namespace fim::obs {

double Distribution::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based: q = 0 -> first value,
  // q = 1 -> last value.
  const double target = 1.0 + q * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t bucket = 0; bucket < kNumBuckets; ++bucket) {
    const std::uint64_t in_bucket = buckets[bucket];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate linearly inside the bucket, then clamp to the
      // observed range (the extreme buckets usually extend past it).
      const double lower = static_cast<double>(BucketLower(bucket));
      const double upper = static_cast<double>(BucketUpper(bucket));
      const double into = target - static_cast<double>(cumulative);
      const double fraction =
          in_bucket <= 1 ? 0.0
                         : (into - 1.0) / static_cast<double>(in_bucket - 1);
      const double value = lower + fraction * (upper - lower);
      return std::clamp(value, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

Counter& MetricRegistry::GetCounter(std::string_view name) {
  const MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Distribution& MetricRegistry::GetDistribution(std::string_view name) {
  const MutexLock lock(mutex_);
  auto it = distributions_.find(name);
  if (it == distributions_.end()) {
    it = distributions_
             .emplace(std::string(name), std::make_unique<Distribution>())
             .first;
  }
  return *it->second;
}

std::map<std::string, std::uint64_t> MetricRegistry::CounterValues() const {
  const MutexLock lock(mutex_);
  std::map<std::string, std::uint64_t> values;
  for (const auto& [name, counter] : counters_) {
    values.emplace(name, counter->Value());
  }
  return values;
}

std::map<std::string, Distribution::Snapshot>
MetricRegistry::DistributionValues() const {
  const MutexLock lock(mutex_);
  std::map<std::string, Distribution::Snapshot> values;
  for (const auto& [name, distribution] : distributions_) {
    values.emplace(name, distribution->Get());
  }
  return values;
}

void MetricRegistry::Reset() {
  const MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, distribution] : distributions_) distribution->Reset();
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry& registry = *new MetricRegistry();
  return registry;
}

}  // namespace fim::obs
