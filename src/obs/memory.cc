#include "obs/memory.h"

#include <atomic>

#ifdef FIM_MEM_PROFILE
#include <cstdlib>
#include <new>
#endif

namespace fim::obs {

std::size_t MemoryComponent::TotalBytes() const {
  std::size_t total = self_bytes;
  for (const MemoryComponent& child : children) total += child.TotalBytes();
  return total;
}

void MemoryBreakdown::Record(MemoryComponent component) {
  const MutexLock lock(mutex_);
  std::size_t sum = 0;
  bool replaced = false;
  for (MemoryComponent& existing : components_) {
    if (existing.name == component.name) {
      // Keep-max: the breakdown reports each component's layout at its
      // own largest recorded moment.
      if (component.TotalBytes() >= existing.TotalBytes()) {
        existing = std::move(component);
      }
      replaced = true;
    }
    sum += existing.TotalBytes();
  }
  if (!replaced) {
    sum += component.TotalBytes();
    components_.push_back(std::move(component));
  }
  if (sum > high_water_bytes_) high_water_bytes_ = sum;
}

void MemoryBreakdown::RecordBytes(std::string name, std::size_t bytes) {
  Record(MemoryComponent(std::move(name), bytes));
}

std::vector<MemoryComponent> MemoryBreakdown::Components() const {
  const MutexLock lock(mutex_);
  return components_;
}

std::size_t MemoryBreakdown::AccountedBytes() const {
  const MutexLock lock(mutex_);
  std::size_t sum = 0;
  for (const MemoryComponent& component : components_) {
    sum += component.TotalBytes();
  }
  return sum;
}

std::size_t MemoryBreakdown::HighWaterBytes() const {
  const MutexLock lock(mutex_);
  return high_water_bytes_;
}

const char* MemDomainName(MemDomain domain) {
  switch (domain) {
    case MemDomain::kUntagged:
      return "untagged";
    case MemDomain::kReader:
      return "reader";
    case MemDomain::kRecode:
      return "recode";
    case MemDomain::kIstaTree:
      return "ista-tree";
    case MemDomain::kMine:
      return "mine";
    case MemDomain::kStream:
      return "stream";
    case MemDomain::kCheckpoint:
      return "checkpoint";
    case MemDomain::kObs:
      return "obs";
  }
  return "unknown";
}

double MemoryReport::RssCoverage() const {
  if (!peak_rss.known || peak_rss.bytes == 0) return -1.0;
  return static_cast<double>(accounted_bytes) /
         static_cast<double>(peak_rss.bytes);
}

MemoryReport BuildMemoryReport(const MemoryBreakdown& breakdown) {
  MemoryReport report;
  report.components = breakdown.Components();
  report.accounted_bytes = breakdown.AccountedBytes();
  report.high_water_bytes = breakdown.HighWaterBytes();
  report.peak_rss = PeakRssBytes();
  report.profile = SnapshotMemProfile();
  return report;
}

#ifndef FIM_MEM_PROFILE

MemProfileSnapshot SnapshotMemProfile() { return MemProfileSnapshot{}; }

#else  // FIM_MEM_PROFILE

namespace {

// Every counter is a constant-initialized relaxed atomic: the tracker
// must be usable from the very first allocation (before main, before
// any dynamic initializer) and from any thread without locks.
struct DomainCounters {
  std::atomic<std::uint64_t> live{0};
  std::atomic<std::uint64_t> peak{0};
  std::atomic<std::uint64_t> allocated{0};
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
};
constinit DomainCounters g_domains[kNumMemDomains];
constinit std::atomic<std::uint64_t> g_total_live{0};
constinit std::atomic<std::uint64_t> g_total_peak{0};
constinit std::atomic<std::uint64_t> g_foreign_frees{0};

// The calling thread's current domain tag. Constant-initialized, so
// early allocations on any thread count as untagged rather than
// touching a lazily-constructed TLS object from inside operator new.
constinit thread_local MemDomain t_mem_domain = MemDomain::kUntagged;

void AtomicMax(std::atomic<std::uint64_t>* target, std::uint64_t value) {
  std::uint64_t observed = target->load(std::memory_order_relaxed);
  while (observed < value &&
         !target->compare_exchange_weak(observed, value,
                                        std::memory_order_relaxed)) {
  }
}

// Each tracked block carries a header directly before the user
// pointer: the raw malloc pointer (the user pointer is shifted and
// possibly over-aligned), the requested size and the allocating
// domain. The magic tag distinguishes our blocks from foreign memory
// on the free path, where a mismatch falls back to plain free()
// instead of corrupting the heap.
//
// The header lives at `user - sizeof(BlockHeader)` where `user` is
// only guaranteed max_align_t-aligned, so it must not demand more
// alignment than that; the alignas pads sizeof to a max_align_t
// multiple so the user block behind it stays malloc-aligned.
struct alignas(alignof(std::max_align_t)) BlockHeader {
  void* raw;
  std::size_t size;
  std::uint32_t domain;
  std::uint32_t magic;
};
static_assert(sizeof(BlockHeader) % alignof(std::max_align_t) == 0,
              "header must preserve malloc alignment for the user block");
constexpr std::uint32_t kBlockMagic = 0x464d4d50u;  // "PMMF"

}  // namespace

namespace internal {

void* AllocateTracked(std::size_t size, std::size_t alignment) noexcept {
  if (alignment < alignof(std::max_align_t)) {
    alignment = alignof(std::max_align_t);
  }
  // Room for the header plus the worst-case shift to reach `alignment`
  // from the (max_align_t-aligned) malloc result.
  const std::size_t slack =
      alignment > alignof(BlockHeader) ? alignment : 0;
  void* raw = std::malloc(size + sizeof(BlockHeader) + slack);
  if (raw == nullptr) return nullptr;
  std::uintptr_t user =
      reinterpret_cast<std::uintptr_t>(raw) + sizeof(BlockHeader);
  user = (user + alignment - 1) & ~(static_cast<std::uintptr_t>(alignment) - 1);
  auto* header = reinterpret_cast<BlockHeader*>(user) - 1;
  const MemDomain domain = t_mem_domain;
  header->raw = raw;
  header->size = size;
  header->domain = static_cast<std::uint32_t>(domain);
  header->magic = kBlockMagic;

  DomainCounters& counters = g_domains[static_cast<unsigned>(domain)];
  const std::uint64_t live =
      counters.live.fetch_add(size, std::memory_order_relaxed) + size;
  AtomicMax(&counters.peak, live);
  counters.allocated.fetch_add(size, std::memory_order_relaxed);
  counters.allocs.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t total =
      g_total_live.fetch_add(size, std::memory_order_relaxed) + size;
  AtomicMax(&g_total_peak, total);
  return reinterpret_cast<void*>(user);
}

void FreeTracked(void* ptr) noexcept {
  if (ptr == nullptr) return;
  auto* header = reinterpret_cast<BlockHeader*>(ptr) - 1;
  if (header->magic != kBlockMagic) {
    // Not one of ours (e.g. handed over from a module whose operator
    // new did not resolve to this replacement). Only plain free() is
    // safe here; count it so the snapshot exposes the leak in
    // attribution coverage.
    g_foreign_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(ptr);
    return;
  }
  header->magic = 0;  // double-free of this block now reads as foreign
  const std::size_t size = header->size;
  DomainCounters& counters = g_domains[header->domain % kNumMemDomains];
  counters.live.fetch_sub(size, std::memory_order_relaxed);
  counters.frees.fetch_add(1, std::memory_order_relaxed);
  g_total_live.fetch_sub(size, std::memory_order_relaxed);
  std::free(header->raw);
}

}  // namespace internal

MemProfileSnapshot SnapshotMemProfile() {
  MemProfileSnapshot snapshot;
  snapshot.enabled = true;
  snapshot.foreign_frees = g_foreign_frees.load(std::memory_order_relaxed);
  snapshot.peak_live_bytes = g_total_peak.load(std::memory_order_relaxed);
  snapshot.live_bytes = g_total_live.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumMemDomains; ++i) {
    const DomainCounters& counters = g_domains[i];
    MemDomainStats& stats = snapshot.domains[i];
    stats.live_bytes = counters.live.load(std::memory_order_relaxed);
    stats.peak_live_bytes = counters.peak.load(std::memory_order_relaxed);
    stats.alloc_bytes = counters.allocated.load(std::memory_order_relaxed);
    stats.allocs = counters.allocs.load(std::memory_order_relaxed);
    stats.frees = counters.frees.load(std::memory_order_relaxed);
    snapshot.alloc_bytes += stats.alloc_bytes;
    snapshot.allocs += stats.allocs;
    snapshot.frees += stats.frees;
  }
  return snapshot;
}

MemDomainScope::MemDomainScope(MemDomain domain) : saved_(t_mem_domain) {
  t_mem_domain = domain;
}

MemDomainScope::~MemDomainScope() { t_mem_domain = saved_; }

#endif  // FIM_MEM_PROFILE

}  // namespace fim::obs

#ifdef FIM_MEM_PROFILE

// Replacement global allocation functions. Defined at global scope in
// this one TU; the linker picks them over the libstdc++ defaults for
// the whole program (including operator new calls made inside
// libstdc++.so — the executable exports the symbols it defines that
// shared dependencies need), so every new/delete pair goes through the
// same accounting. Sanitizers intercept the underlying malloc/free, so
// ASan/TSan still see every block.

namespace {

void* TrackedNewOrThrow(std::size_t size, std::size_t alignment) {
  void* ptr = fim::obs::internal::AllocateTracked(size, alignment);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) {
  return TrackedNewOrThrow(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return TrackedNewOrThrow(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return TrackedNewOrThrow(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return TrackedNewOrThrow(size, static_cast<std::size_t>(alignment));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return fim::obs::internal::AllocateTracked(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return fim::obs::internal::AllocateTracked(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return fim::obs::internal::AllocateTracked(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return fim::obs::internal::AllocateTracked(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { fim::obs::internal::FreeTracked(ptr); }
void operator delete[](void* ptr) noexcept { fim::obs::internal::FreeTracked(ptr); }
void operator delete(void* ptr, std::size_t) noexcept {
  fim::obs::internal::FreeTracked(ptr);
}
void operator delete[](void* ptr, std::size_t) noexcept {
  fim::obs::internal::FreeTracked(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  fim::obs::internal::FreeTracked(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  fim::obs::internal::FreeTracked(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  fim::obs::internal::FreeTracked(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  fim::obs::internal::FreeTracked(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  fim::obs::internal::FreeTracked(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  fim::obs::internal::FreeTracked(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  fim::obs::internal::FreeTracked(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  fim::obs::internal::FreeTracked(ptr);
}

#endif  // FIM_MEM_PROFILE
