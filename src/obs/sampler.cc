#include "obs/sampler.h"

#include <atomic>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#endif

#include "common/timer.h"
#include "obs/json.h"
#include "obs/memory.h"

namespace fim::obs {

namespace {

// Exit-time safety net: live samplers register in a small lock-free
// slot table (lock-free so the fatal-signal path never blocks on a
// mutex an interrupted thread might hold). The first registration
// installs the atexit stop and — where the disposition is still
// SIG_DFL — best-effort fatal-signal flush handlers.
constexpr std::size_t kMaxLiveSamplers = 8;
std::atomic<MetricsSampler*> g_live_samplers[kMaxLiveSamplers];
std::atomic<bool> g_exit_hooks_installed{false};

void RegisterLiveSampler(MetricsSampler* sampler) {
  for (auto& slot : g_live_samplers) {
    MetricsSampler* expected = nullptr;
    if (slot.compare_exchange_strong(expected, sampler,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
  // Table full: the sampler still works, it just misses the exit net.
}

void DeregisterLiveSampler(MetricsSampler* sampler) {
  for (auto& slot : g_live_samplers) {
    MetricsSampler* expected = sampler;
    if (slot.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
}

// std::exit skips local destructors, so a sampler owned by main would
// otherwise die un-stopped: stop (join + final sample + flush) whatever
// is still registered.
void StopLiveSamplersAtExit() {
  for (auto& slot : g_live_samplers) {
    MetricsSampler* sampler = slot.load(std::memory_order_acquire);
    if (sampler != nullptr) sampler->Stop();
  }
}

#if defined(__unix__) || defined(__APPLE__)
// Best-effort: ostream::flush is not async-signal-safe, but every
// complete sample line is already flushed at write time — this only
// pushes out whatever a dying process still buffers, and the process
// re-raises to its death right after.
void FatalSignalFlush(int signum) {
  internal::FlushLiveSamplerStreams();
  std::signal(signum, SIG_DFL);
  std::raise(signum);
}
#endif

void InstallExitHooksOnce() {
  bool expected = false;
  if (!g_exit_hooks_installed.compare_exchange_strong(expected, true)) {
    return;
  }
  std::atexit(&StopLiveSamplersAtExit);
#if defined(__unix__) || defined(__APPLE__)
  for (const int sig : {SIGINT, SIGTERM, SIGHUP}) {
    struct sigaction current {};
    if (sigaction(sig, nullptr, &current) != 0) continue;
    // Respect anyone else's handler (and explicit SIG_IGN): only claim
    // signals that would have killed the process silently.
    if (current.sa_handler != SIG_DFL) continue;
    struct sigaction action {};
    action.sa_handler = &FatalSignalFlush;
    sigemptyset(&action.sa_mask);
    sigaction(sig, &action, nullptr);
  }
#endif
}

}  // namespace

namespace internal {

std::size_t LiveSamplerCount() {
  std::size_t count = 0;
  for (auto& slot : g_live_samplers) {
    if (slot.load(std::memory_order_acquire) != nullptr) ++count;
  }
  return count;
}

void FlushLiveSamplerStreams() {
  for (auto& slot : g_live_samplers) {
    MetricsSampler* sampler = slot.load(std::memory_order_acquire);
    if (sampler != nullptr) sampler->FlushOutput();
  }
}

}  // namespace internal

MetricsSampler::MetricsSampler(const MetricsSamplerOptions& options,
                               std::ostream* out)
    : options_(options), out_(out), start_(std::chrono::steady_clock::now()) {
  InstallExitHooksOnce();
  RegisterLiveSampler(this);
  thread_ = std::thread([this]() { Run(); });
}

void MetricsSampler::Stop() {
  {
    const MutexLock lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
  }
  wake_.NotifyAll();
  thread_.join();
  // The thread is gone; emit the final sample from here so short runs
  // always produce at least one line and the series covers the full run.
  EmitSample();
  out_->flush();
  {
    const MutexLock lock(mutex_);
    stopped_ = true;
  }
  DeregisterLiveSampler(this);
}

std::uint64_t MetricsSampler::SamplesWritten() const {
  return seq_.load(std::memory_order_relaxed);
}

void MetricsSampler::Run() {
  for (;;) {
    {
      const MutexLock lock(mutex_);
      // One period per iteration; WaitUntil re-checks stopping_ against
      // spurious wakeups without extending the deadline.
      const auto deadline = std::chrono::steady_clock::now() + options_.period;
      while (!stopping_) {
        if (wake_.WaitUntil(mutex_, deadline)) break;
      }
      if (stopping_) return;
    }
    EmitSample();
  }
}

void MetricsSampler::EmitSample() {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema");
  writer.String("fim-statsline-v1");
  writer.Key("seq");
  writer.Number(seq_);
  writer.Key("elapsed_seconds");
  writer.Number(elapsed);
  writer.Key("peak_rss_bytes");
  writer.Number(static_cast<std::uint64_t>(PeakRss()));

  // Live memory lane: the self-measured accounted bytes (when a source
  // is attached) and the allocation tracker's exact live bytes (when
  // compiled in). Absent fields mean "not measured", never 0.
  std::size_t accounted = 0;
  const bool have_accounted = static_cast<bool>(options_.accounted_bytes);
  if (have_accounted) accounted = options_.accounted_bytes();
  const MemProfileSnapshot profile = SnapshotMemProfile();
  if (have_accounted || profile.enabled) {
    writer.Key("mem");
    writer.BeginObject();
    if (have_accounted) {
      writer.Key("accounted_bytes");
      writer.Number(static_cast<std::uint64_t>(accounted));
    }
    if (profile.enabled) {
      writer.Key("live_bytes");
      writer.Number(profile.live_bytes);
    }
    writer.EndObject();
  }

  if (options_.registry != nullptr) {
    if (!options_.throughput_counter.empty()) {
      const auto counters = options_.registry->CounterValues();
      const auto it = counters.find(options_.throughput_counter);
      const std::uint64_t value = it == counters.end() ? 0 : it->second;
      const double dt = elapsed - last_sample_seconds_;
      const double rate =
          dt > 0.0
              ? static_cast<double>(value - last_throughput_value_) / dt
              : 0.0;
      last_throughput_value_ = value;
      writer.Key("tx_per_second");
      writer.Number(rate);
    }
    writer.Key("counters");
    writer.BeginObject();
    for (const auto& [name, value] : options_.registry->CounterValues()) {
      writer.Key(name);
      writer.Number(value);
    }
    writer.EndObject();
    writer.Key("distributions");
    writer.BeginObject();
    for (const auto& [name, snapshot] :
         options_.registry->DistributionValues()) {
      writer.Key(name);
      writer.BeginObject();
      writer.Key("count");
      writer.Number(snapshot.count);
      writer.Key("sum");
      writer.Number(snapshot.sum);
      writer.Key("min");
      writer.Number(snapshot.min);
      writer.Key("max");
      writer.Number(snapshot.max);
      writer.Key("mean");
      writer.Number(snapshot.Mean());
      writer.Key("p50");
      writer.Number(snapshot.Quantile(0.50));
      writer.Key("p95");
      writer.Number(snapshot.Quantile(0.95));
      writer.Key("p99");
      writer.Number(snapshot.Quantile(0.99));
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndObject();

  last_sample_seconds_ = elapsed;
  // One line per sample, flushed immediately so the series is tailable.
  *out_ << std::move(writer).Take() << '\n';
  out_->flush();
  seq_.fetch_add(1, std::memory_order_relaxed);

  if (options_.lane != nullptr) {
    options_.lane->Instant("sample");
    options_.lane->Counter("rss_mib", BytesToMib(PeakRss()));
    if (have_accounted) {
      options_.lane->Counter("mem.accounted_mib", BytesToMib(accounted));
    }
    if (profile.enabled) {
      options_.lane->Counter("mem.live_mib",
                             BytesToMib(profile.live_bytes));
    }
  }
}

}  // namespace fim::obs
