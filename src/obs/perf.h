#ifndef FIM_OBS_PERF_H_
#define FIM_OBS_PERF_H_

// Hardware performance counters over perf_event_open, with graceful
// degradation. A PerfCounterSet opens one grouped fd set per thread
// (cycles, instructions, LLC references/misses, branch
// instructions/misses, L1d read misses) and reads the whole group with
// a single syscall; counts are multiplex-scaled by the kernel-reported
// time_enabled / time_running ratio, so the numbers stay meaningful
// when the PMU rotates more events than it has counters for.
//
// Availability is a first-class result, not an error: containers and
// VMs routinely deny or lack the PMU (perf_event_paranoid, no
// virtualized PMU), so every consumer carries an explicit
// PerfAvailability with a human-readable reason and falls back to
// getrusage()/CpuTimer numbers. Opening a set never fails a run.
//
// See docs/OBSERVABILITY.md ("Hardware counters") for the availability
// matrix and scaling semantics.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/timer.h"

namespace fim::obs {

/// Index of each event in a PerfCounterSet group. The leader (cycles)
/// must open for the set to count at all; the others are best-effort
/// members (a missing member shows up as an unset bit in opened_mask,
/// not as a failure).
enum class PerfEvent : unsigned {
  kCycles = 0,
  kInstructions,
  kCacheReferences,  // LLC accesses
  kCacheMisses,      // LLC misses
  kBranchInstructions,
  kBranchMisses,
  kL1dMisses,  // L1 data cache read misses (HW_CACHE event)
};
inline constexpr unsigned kNumPerfEvents = 7;

inline constexpr unsigned PerfEventBit(PerfEvent e) {
  return 1U << static_cast<unsigned>(e);
}

/// Whether hardware counting works here, and if not, why. `reason` is
/// empty exactly when `available`; otherwise it names the failing
/// syscall, the errno, and the likely fix (e.g. the current
/// kernel.perf_event_paranoid value).
struct PerfAvailability {
  bool available = false;
  std::string reason;
  /// Bit i set = event i of PerfEvent opened and is counting.
  unsigned opened_mask = 0;
};

/// Multiplex-scaled counter values of one read (totals since Start()).
/// Events whose opened_mask bit is clear read as 0; the derived-rate
/// helpers return NaN when their inputs did not count, so exporters can
/// render null instead of a fake 0.
struct PerfCounts {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_instructions = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t l1d_misses = 0;
  /// Group scheduling times from the kernel (summed under Accumulate).
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
  unsigned opened_mask = 0;

  /// Instructions per cycle; NaN when either event did not count.
  double Ipc() const;

  /// LLC misses / LLC references; NaN when either did not count.
  double LlcMissRate() const;

  /// Branch misses / branch instructions; NaN when either did not count.
  double BranchMissRate() const;

  /// time_running / time_enabled in [0, 1]: 1.0 = the group was on the
  /// PMU the whole time (no multiplexing), smaller = counts were scaled
  /// up from a fraction of the run. NaN before any read.
  double MultiplexScale() const;

  /// Field-wise sum (for aggregating deltas into a span or a total).
  void Accumulate(const PerfCounts& other);

  /// Field-wise difference `*this - earlier` (deltas between two reads
  /// of the same set; counters are monotone between Start() calls).
  PerfCounts DeltaSince(const PerfCounts& earlier) const;
};

namespace internal {

/// Multiplex scaling of one raw count: raw * enabled / running, the
/// standard perf extrapolation. running == 0 (event never scheduled)
/// yields 0 — there is nothing to extrapolate from.
std::uint64_t ScalePerfCount(std::uint64_t raw, std::uint64_t enabled,
                             std::uint64_t running);

/// Maps a perf_event_open failure to the explicit unavailable reason
/// (reads /proc/sys/kernel/perf_event_paranoid for the EACCES/EPERM
/// hint). Exposed for tests.
std::string DescribePerfOpenFailure(int saved_errno);

}  // namespace internal

/// A grouped per-thread hardware counter set. Open it on the thread it
/// should measure (counters follow the opening thread, not the CPU).
/// Construction never throws and never fails the caller: when the
/// kernel denies or lacks the PMU the set reports !available() with a
/// reason and all other calls are harmless no-ops.
class PerfCounterSet {
 public:
  PerfCounterSet();
  ~PerfCounterSet();

  PerfCounterSet(const PerfCounterSet&) = delete;
  PerfCounterSet& operator=(const PerfCounterSet&) = delete;

  bool available() const { return avail_.available; }
  const PerfAvailability& availability() const { return avail_; }

  /// Resets the group to zero and enables counting. Returns available().
  bool Start();

  /// Disables counting (totals keep their values for Read()).
  void Stop();

  /// Reads the whole group with one syscall and returns multiplex-scaled
  /// totals since Start(). All-zero (opened_mask == 0) when unavailable.
  PerfCounts Read() const;

 private:
  PerfAvailability avail_;
  int group_fd_ = -1;               // leader (cycles), -1 when unavailable
  int fds_[kNumPerfEvents];         // -1 for events that did not open
  int slot_of_event_[kNumPerfEvents];  // index into the group read, or -1
  unsigned num_open_ = 0;
};

/// One probe of the calling thread, without keeping any state open:
/// what a PerfCounterSet would report. Cheap enough for startup checks.
PerfAvailability ProbePerfCounters();

/// getrusage(RUSAGE_SELF) snapshot — the always-available fallback tier
/// surfaced next to (or instead of) hardware counts.
struct ResourceUsage {
  bool known = false;  // false when getrusage itself failed
  double user_seconds = 0.0;
  double system_seconds = 0.0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;
};

ResourceUsage ReadResourceUsage();

/// One attributed measurement domain: a named stretch of one thread's
/// work (an IsTa shard, a merge step) with its hardware delta (when
/// counting worked), its thread-CPU fallback, and the software work
/// counter the fim-prof inflation table divides by.
struct PerfDomainSample {
  std::string name;
  bool hw_valid = false;  // counts came from a working PerfCounterSet
  PerfCounts counts;
  double cpu_seconds = 0.0;      // thread CPU, always measured
  std::uint64_t work_steps = 0;  // e.g. intersection steps in the domain
};

/// Thread-safe sink for PerfDomainSamples, shared by all workers of a
/// run. hw_enabled() tells scopes whether to open counter sets at all
/// (so `--stats` without `--perf-counters` costs nothing).
class PerfDomainCollector {
 public:
  explicit PerfDomainCollector(bool enable_hw) : enable_hw_(enable_hw) {}

  PerfDomainCollector(const PerfDomainCollector&) = delete;
  PerfDomainCollector& operator=(const PerfDomainCollector&) = delete;

  bool hw_enabled() const { return enable_hw_; }

  void Record(PerfDomainSample sample) FIM_EXCLUDES(mutex_);

  /// Samples in recording order. Call after the recording threads have
  /// quiesced (the miners join their workers before reporting).
  std::vector<PerfDomainSample> Samples() const FIM_EXCLUDES(mutex_);

 private:
  const bool enable_hw_;
  mutable Mutex mutex_{LockRank::kPerfDomains, "PerfDomainCollector"};
  std::vector<PerfDomainSample> samples_ FIM_GUARDED_BY(mutex_);
};

/// RAII domain measurement: opens a counter set on the constructing
/// thread (when the collector wants hardware counts), times thread CPU,
/// and records one PerfDomainSample on destruction. A nullptr collector
/// makes the scope a no-op, mirroring Span/TimelineScope.
class PerfDomainScope {
 public:
  PerfDomainScope(PerfDomainCollector* collector, std::string name);
  ~PerfDomainScope();

  PerfDomainScope(const PerfDomainScope&) = delete;
  PerfDomainScope& operator=(const PerfDomainScope&) = delete;

  /// Attributes `n` units of software work (intersection steps) to the
  /// domain; fim-prof divides cycles by this to expose work inflation.
  void AddWorkSteps(std::uint64_t n) { work_steps_ += n; }

 private:
  PerfDomainCollector* collector_;
  std::string name_;
  std::unique_ptr<PerfCounterSet> counters_;  // only when hw_enabled()
  CpuTimer cpu_;
  std::uint64_t work_steps_ = 0;
};

/// The `perf` section of a stats report: availability, whole-run scaled
/// totals (driver thread), the rusage/RSS fallback tier, the active
/// kernel tier, and the per-domain attribution table.
struct PerfReport {
  PerfAvailability availability;
  bool total_valid = false;  // `total` came from a working set
  PerfCounts total;
  std::string kernel_tier;  // kernels::Active().name
  ResourceUsage rusage;
  PeakRssResult peak_rss;
  std::vector<PerfDomainSample> domains;
};

}  // namespace fim::obs

#endif  // FIM_OBS_PERF_H_
