#ifndef FIM_OBS_JSON_H_
#define FIM_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fim::obs {

/// A parsed JSON value — just enough JSON for the stats/bench reports
/// this library emits: objects, arrays, strings, numbers (as double),
/// booleans, null. Object keys keep insertion order is NOT guaranteed
/// (std::map, sorted); the reports never rely on member order.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray(std::vector<JsonValue> values);
  static JsonValue MakeObject(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document (trailing whitespace allowed, nothing
/// else after the value). Returns InvalidArgument with a byte offset on
/// malformed input.
Result<JsonValue> ParseJson(std::string_view text);

/// Incremental JSON writer producing compact, valid output. Usage:
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("algorithm"); w.String("ista");
///   w.Key("counters"); w.BeginObject(); ... w.EndObject();
///   w.EndObject();
///   std::string json = std::move(w).Take();
///
/// The writer inserts commas itself; misuse (e.g. a value without a key
/// inside an object) produces invalid JSON rather than crashing — the
/// round-trip tests guard the real emitters.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);
  void String(std::string_view value);
  void Number(double value);
  void Number(std::uint64_t value);
  void Bool(bool value);
  void Null();

  std::string Take() && { return std::move(out_); }
  const std::string& str() const { return out_; }

  /// Appends a JSON string literal (quotes + escapes) of `value` to
  /// `out`. Exposed for the hand-rolled emitters in bench_util.
  static void AppendEscaped(std::string* out, std::string_view value);

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true once the first element was
  // written (a comma is needed before the next one).
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace fim::obs

#endif  // FIM_OBS_JSON_H_
