#ifndef FIM_OBS_METRICS_H_
#define FIM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/sync.h"

namespace fim::obs {

/// A named monotonic counter. Increments are relaxed atomics, so
/// instrumented hot loops pay one uncontended atomic add and stay
/// TSan-clean when several threads share a counter. Reads are racy by
/// design (monitoring, not synchronization): a snapshot taken while
/// writers run sees some recent value, never a torn one.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value distribution: count, sum, min, max, plus a fixed log-scale
/// histogram for approximate quantiles. Same relaxed-atomic contract as
/// Counter; min/max use CAS loops, still lock-free and TSan-clean.
/// Concurrent snapshots may be mutually inconsistent (e.g. a count
/// without its sum yet) but each field is valid.
///
/// The histogram has one bucket per power of two: bucket 0 counts the
/// value 0 and bucket k >= 1 counts values in [2^(k-1), 2^k). The
/// bucket layout is fixed (no configuration, no allocation), so
/// recording stays one extra relaxed add and two distributions are
/// always comparable bucket by bucket.
class Distribution {
 public:
  /// Bucket 0 plus one bucket per possible bit width of a uint64.
  static constexpr std::size_t kNumBuckets = 65;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  // 0 when count == 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, kNumBuckets> buckets{};

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Approximate quantile (q in [0, 1]) from the log-scale buckets:
    /// finds the bucket holding the q-th ranked value and interpolates
    /// linearly inside it, clamped to the observed [min, max]. Exact at
    /// q = 0 and q = 1; within a factor of 2 elsewhere (the bucket
    /// resolution). Returns 0 for an empty distribution.
    double Quantile(double q) const;
  };

  /// Maps a value to its histogram bucket.
  static constexpr std::size_t BucketIndex(std::uint64_t value) {
    return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  }

  /// Inclusive value range [lower, upper] a bucket covers.
  static constexpr std::uint64_t BucketLower(std::size_t bucket) {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
  }
  static constexpr std::uint64_t BucketUpper(std::size_t bucket) {
    return bucket == 0 ? 0
           : bucket >= 64
               ? ~std::uint64_t{0}
               : (std::uint64_t{1} << bucket) - 1;
  }

  void Record(std::uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    UpdateMin(value);
    UpdateMax(value);
  }

  Snapshot Get() const {
    Snapshot snapshot;
    snapshot.count = count_.load(std::memory_order_relaxed);
    snapshot.sum = sum_.load(std::memory_order_relaxed);
    const std::uint64_t min = min_.load(std::memory_order_relaxed);
    snapshot.min = snapshot.count == 0 ? 0 : min;
    snapshot.max = max_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return snapshot;
  }

  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(kNoMin, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

  void UpdateMin(std::uint64_t value) {
    std::uint64_t current = min_.load(std::memory_order_relaxed);
    while (value < current &&
           !min_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
    }
  }

  void UpdateMax(std::uint64_t value) {
    std::uint64_t current = max_.load(std::memory_order_relaxed);
    while (value > current &&
           !max_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{kNoMin};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// A registry of named counters and distributions. Registration (the
/// name lookup) takes a mutex, so instrumented code should hoist the
/// returned reference out of its hot loop and increment through it;
/// handed-out references stay valid for the registry's lifetime.
/// Snapshot methods copy the values under the same mutex, which only
/// serializes against registration — never against increments.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Finds or creates the counter / distribution with `name`.
  Counter& GetCounter(std::string_view name) FIM_EXCLUDES(mutex_);
  Distribution& GetDistribution(std::string_view name) FIM_EXCLUDES(mutex_);

  /// Name -> value snapshots, sorted by name.
  std::map<std::string, std::uint64_t> CounterValues() const
      FIM_EXCLUDES(mutex_);
  std::map<std::string, Distribution::Snapshot> DistributionValues() const
      FIM_EXCLUDES(mutex_);

  /// Resets every registered metric to zero (names stay registered).
  void Reset() FIM_EXCLUDES(mutex_);

  /// Process-wide registry for cross-cutting metrics.
  static MetricRegistry& Global();

 private:
  /// Guards the name maps only; the Counter/Distribution objects behind
  /// the unique_ptrs are lock-free and are handed out as references.
  mutable Mutex mutex_{LockRank::kMetricRegistry, "MetricRegistry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      FIM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Distribution>, std::less<>>
      distributions_ FIM_GUARDED_BY(mutex_);
};

}  // namespace fim::obs

#endif  // FIM_OBS_METRICS_H_
