#ifndef FIM_OBS_TRACE_H_
#define FIM_OBS_TRACE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/timer.h"
#include "obs/perf.h"

namespace fim::obs {

/// One node of a hierarchical trace: a named phase with accumulated wall
/// and thread-CPU time. Re-entering a phase with the same name under the
/// same parent accumulates into the existing node (count tracks how
/// often), so loops produce one aggregated node instead of one node per
/// iteration. Children are kept in first-entry order.
struct SpanNode {
  std::string name;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::size_t count = 0;
  std::vector<std::unique_ptr<SpanNode>> children;

  /// Hardware-counter delta accumulated over the span (valid only when
  /// perf_valid — a PerfCounterSet was attached to the trace and
  /// counting worked). Exclusive of nothing: like the timings, a
  /// parent's delta includes its children's.
  PerfCounts perf;
  bool perf_valid = false;

  /// The direct child named `child_name`, or nullptr.
  const SpanNode* FindChild(std::string_view child_name) const;
};

/// A tree of phase timings, built by nesting Span guards. A Trace is
/// thread-confined: open and close spans from one thread at a time (the
/// miners time their parallel sections as one span on the driving
/// thread, so worker threads never touch the trace). The root node is
/// unnamed and carries no timing of its own — its children are the
/// top-level phases.
class Trace {
 public:
  Trace() { open_.push_back(&root_); }
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  const SpanNode& root() const { return root_; }

  /// Number of spans currently open (0 = quiescent).
  std::size_t OpenDepth() const { return open_.size() - 1; }

  /// Attaches a hardware counter set: every span opened afterwards also
  /// records the counter delta across its lifetime into its SpanNode
  /// (one group read per Begin/End). The set must be counting
  /// (Start()ed), opened on the tracing thread, and outlive the spans;
  /// an unavailable set leaves the trace untouched. nullptr detaches.
  void AttachPerfCounters(PerfCounterSet* counters) {
    perf_ = (counters != nullptr && counters->available()) ? counters
                                                           : nullptr;
  }

 private:
  friend class Span;

  /// Opens a child span of the innermost open span, creating or reusing
  /// the child node with `name`.
  SpanNode* Begin(std::string_view name);

  /// Closes the innermost open span, accumulating the elapsed times.
  void End(double wall_seconds, double cpu_seconds);

  SpanNode root_;
  std::vector<SpanNode*> open_;  // root at the bottom; node storage is
                                 // unique_ptr-stable, pointers survive
                                 // sibling insertions
  PerfCounterSet* perf_ = nullptr;
  std::vector<PerfCounts> perf_open_;  // parallel to open_[1..]: the
                                       // counter snapshot at Begin
};

/// RAII phase timer: opens a span on construction, records wall + thread
/// CPU time into the trace on destruction. A null trace makes the guard
/// a no-op, so instrumented code needs no branches:
///
///   {
///     obs::Span span(trace, "recode");   // trace may be nullptr
///     ... phase work ...
///   }                                     // recorded here
class Span {
 public:
  Span(Trace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) trace_->Begin(name);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Closes the span now instead of at scope exit (for phases that run
  /// back to back in one scope); the destructor then does nothing.
  void End() {
    if (trace_ != nullptr) {
      trace_->End(wall_.Seconds(), cpu_.Seconds());
      trace_ = nullptr;
    }
  }

  ~Span() { End(); }

 private:
  Trace* trace_;
  WallTimer wall_;
  CpuTimer cpu_;
};

}  // namespace fim::obs

#endif  // FIM_OBS_TRACE_H_
