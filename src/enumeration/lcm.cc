#include "enumeration/lcm.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"
#include "data/recode.h"
#include "kernels/intersect.h"
#include "obs/memory.h"

namespace fim {

namespace {

// The sequential core of the miner; parallel mode runs one instance per
// worker over disjoint first-level subtrees (PPC extension makes the
// subtrees independent: each closed set has a unique canonical parent).
class LcmCore {
 public:
  LcmCore(const TransactionDatabase& coded, Support min_support)
      : db_(coded),
        tidlists_(coded.BuildVertical()),
        min_support_(min_support) {}

  const TransactionDatabase& db() const { return db_; }

  // Intersection of the transactions referenced by `occ` (occ non-empty).
  // The intermediate results ping-pong between two reused buffers; the
  // scratch is thread_local because this const method runs concurrently
  // on the parallel workers.
  std::vector<ItemId> ComputeClosure(const std::vector<Tid>& occ) const {
    thread_local std::vector<ItemId> ping;
    thread_local std::vector<ItemId> pong;
    std::span<const ItemId> current = db_.transaction(occ.front());
    std::vector<ItemId>* bufs[2] = {&ping, &pong};
    int which = 0;
    for (std::size_t k = 1; k < occ.size() && !current.empty(); ++k) {
      std::vector<ItemId>* out = bufs[which];
      which ^= 1;
      kernels::IntersectInto(current, db_.transaction(occ[k]), out);
      current = *out;
    }
    return std::vector<ItemId>(current.begin(), current.end());
  }

  // occ ∩ tidlist(item), written into `*out` (buffer reused).
  void OccurrencesInto(const std::vector<Tid>& occ, ItemId item,
                       std::vector<Tid>* out) const {
    kernels::IntersectInto(occ, tidlists_[item], out);
  }

  std::vector<Tid> OccurrencesOf(const std::vector<Tid>& occ,
                                 ItemId item) const {
    std::vector<Tid> out;
    OccurrencesInto(occ, item, &out);
    return out;
  }

  // True if q and p contain exactly the same items below `i`.
  static bool PrefixPreserved(const std::vector<ItemId>& p,
                              const std::vector<ItemId>& q, ItemId i) {
    auto pe = std::lower_bound(p.begin(), p.end(), i);
    auto qe = std::lower_bound(q.begin(), q.end(), i);
    return (pe - p.begin()) == (qe - q.begin()) &&
           std::equal(p.begin(), pe, q.begin());
  }

  // Prefix-preserving closure extension below (p, occ, core): extend by
  // every item above the core; keep an extension only if the closure
  // agrees with p below the extension item. `stats` (nullable) is the
  // calling worker's private snapshot.
  void Extend(const std::vector<ItemId>& p, const std::vector<Tid>& occ,
              ItemId core, const ClosedSetCallback& sink,
              MinerStats* stats) const {
    const std::size_t num_items = db_.NumItems();
    const ItemId first =
        core == kInvalidItem ? 0 : static_cast<ItemId>(core + 1);
    // Candidate occurrence lists land in a thread_local scratch first:
    // infrequent extensions (the common case) are rejected without
    // allocating, survivors are copied out exact-size. Safe across the
    // recursion below — the scratch is recomputed every iteration and
    // never read after the recursive call.
    thread_local std::vector<Tid> occ_scratch;
    for (ItemId i = first; i < num_items; ++i) {
      if (std::binary_search(p.begin(), p.end(), i)) continue;
      if (stats != nullptr) ++stats->extension_checks;
      OccurrencesInto(occ, i, &occ_scratch);
      if (occ_scratch.size() < min_support_) continue;
      const std::vector<Tid> occ_i = occ_scratch;
      if (stats != nullptr) ++stats->closure_checks;
      std::vector<ItemId> q = ComputeClosure(occ_i);
      if (!PrefixPreserved(p, q, i)) continue;
      FIM_DCHECK(std::binary_search(q.begin(), q.end(), i))
          << "closure of an extension by item " << i << " must contain it";
      FIM_DCHECK(IsSubsetSorted(p, q))
          << "closure must be a superset of the extended set";
      if (stats != nullptr) ++stats->sets_reported;
      sink(q, static_cast<Support>(occ_i.size()));
      Extend(q, occ_i, i, sink, stats);
    }
  }

  Support min_support() const { return min_support_; }

  // The vertical tid lists are built once and dominate the footprint
  // (per-branch occurrence vectors are intersections, strictly smaller).
  void RecordMemory(obs::MemoryBreakdown* memory) const {
    if (memory == nullptr) return;
    memory->RecordBytes("tid-lists", obs::NestedVectorBytes(tidlists_));
  }

 private:
  const TransactionDatabase& db_;
  std::vector<std::vector<Tid>> tidlists_;
  const Support min_support_;
};

// One independent first-level subtree of the parallel run.
struct FirstLevelTask {
  std::vector<ItemId> closed_set;
  std::vector<Tid> occurrences;
  ItemId core = 0;
};

void MineParallel(const LcmCore& core, const std::vector<ItemId>& root,
                  const std::vector<Tid>& all, unsigned num_threads,
                  const ClosedSetCallback& callback, MinerStats* stats) {
  // Materialize the first level sequentially (cheap: one pass over the
  // items), then fan the subtrees out to the workers.
  std::vector<FirstLevelTask> tasks;
  const std::size_t num_items = core.db().NumItems();
  for (ItemId i = 0; i < num_items; ++i) {
    if (std::binary_search(root.begin(), root.end(), i)) continue;
    if (stats != nullptr) ++stats->extension_checks;
    std::vector<Tid> occ_i = core.OccurrencesOf(all, i);
    if (occ_i.size() < core.min_support()) continue;
    if (stats != nullptr) ++stats->closure_checks;
    std::vector<ItemId> q = core.ComputeClosure(occ_i);
    if (!LcmCore::PrefixPreserved(root, q, i)) continue;
    tasks.push_back(FirstLevelTask{std::move(q), std::move(occ_i), i});
  }

  // One private stats slot per task; workers never share mutable state,
  // the aggregation below happens after the join.
  std::vector<std::vector<ClosedItemset>> results(tasks.size());
  std::vector<MinerStats> task_stats(stats != nullptr ? tasks.size() : 0);
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    obs::MemDomainScope mem_domain(obs::MemDomain::kMine);
    for (;;) {
      const std::size_t t = next.fetch_add(1);
      if (t >= tasks.size()) return;
      MinerStats* slot = stats != nullptr ? &task_stats[t] : nullptr;
      ClosedSetCollector collector;
      const ClosedSetCallback sink = collector.AsCallback();
      if (slot != nullptr) ++slot->sets_reported;
      sink(tasks[t].closed_set, static_cast<Support>(
                                    tasks[t].occurrences.size()));
      core.Extend(tasks[t].closed_set, tasks[t].occurrences, tasks[t].core,
                  sink, slot);
      results[t] = collector.TakeSets();
    }
  };
  std::vector<std::thread> threads;
  const unsigned n = std::max(1u, num_threads);
  threads.reserve(n);
  for (unsigned w = 0; w < n; ++w) threads.emplace_back(worker);
  for (auto& thread : threads) thread.join();

  if (stats != nullptr) {
    for (const MinerStats& s : task_stats) stats->MergeFrom(s);
  }

  // Emit in task order: identical to the sequential DFS order.
  for (const auto& chunk : results) {
    for (const auto& set : chunk) callback(set.items, set.support);
  }
}

}  // namespace

Status MineClosedLcm(const TransactionDatabase& db, const LcmOptions& options,
                     const ClosedSetCallback& callback, MinerStats* stats) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = MinerStats{};
  if (db.NumTransactions() == 0) return Status::OK();

  const Recoding recoding = ComputeRecoding(
      db, ItemOrder::kFrequencyDescending, options.min_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, TransactionOrder::kNone);
  if (coded.NumTransactions() == 0) return Status::OK();

  const ClosedSetCallback decoded = MakeDecodingCallback(recoding, callback);
  LcmCore core(coded, options.min_support);
  if (options.memory != nullptr) {
    obs::MemoryComponent coded_db = coded.ApproxMemoryUsage();
    coded_db.name = "recoded-db";
    options.memory->Record(std::move(coded_db));
    core.RecordMemory(options.memory);
  }

  const auto n = static_cast<Support>(coded.NumTransactions());
  if (n < options.min_support) return Status::OK();
  std::vector<Tid> all(coded.NumTransactions());
  for (std::size_t k = 0; k < all.size(); ++k) all[k] = static_cast<Tid>(k);

  // closure(empty set): the items contained in every transaction.
  if (stats != nullptr) ++stats->closure_checks;
  std::vector<ItemId> root = core.ComputeClosure(all);
  if (!root.empty()) {
    if (stats != nullptr) ++stats->sets_reported;
    decoded(root, n);
  }

  if (options.num_threads <= 1) {
    core.Extend(root, all, kInvalidItem, decoded, stats);
  } else {
    MineParallel(core, root, all, options.num_threads, decoded, stats);
  }
  return Status::OK();
}

}  // namespace fim
