#include "enumeration/declat.h"

#include <algorithm>
#include <vector>

#include "data/recode.h"
#include "kernels/intersect.h"

namespace fim {

namespace {

// A column of the current equivalence class. At the first level `set`
// holds the tid set; deeper, it holds the diffset w.r.t. the class
// prefix.
struct Column {
  ItemId item;
  Support support;
  std::vector<Tid> set;
};

class DeclatMiner {
 public:
  DeclatMiner(Support min_support, const ClosedSetCallback& callback)
      : min_support_(min_support), callback_(callback) {}

  // First level: tid sets; children switch to diffsets.
  void MineRoot(const std::vector<Column>& columns,
                std::vector<ItemId>* prefix) {
    for (std::size_t a = 0; a < columns.size(); ++a) {
      prefix->push_back(columns[a].item);
      callback_(*prefix, columns[a].support);
      std::vector<Column> next;
      // Per-level scratch: infrequent candidates reuse the buffer,
      // survivors are copied out exact-size.
      std::vector<Tid> diff;
      for (std::size_t b = a + 1; b < columns.size(); ++b) {
        // diffset(ab) = t(a) \ t(b); supp(ab) = supp(a) - |diffset|.
        kernels::DifferenceInto(columns[a].set, columns[b].set, &diff);
        const Support support =
            columns[a].support - static_cast<Support>(diff.size());
        if (support >= min_support_) {
          next.push_back(Column{columns[b].item, support, diff});
        }
      }
      if (!next.empty()) MineDiff(next, prefix);
      prefix->pop_back();
    }
  }

 private:
  // Deeper levels: d(P a b) = d(P b) \ d(P a), supp = supp(Pa) - |d(Pab)|.
  void MineDiff(const std::vector<Column>& columns,
                std::vector<ItemId>* prefix) {
    for (std::size_t a = 0; a < columns.size(); ++a) {
      prefix->push_back(columns[a].item);
      callback_(*prefix, columns[a].support);
      std::vector<Column> next;
      std::vector<Tid> diff;  // per-level scratch, as in MineRoot
      for (std::size_t b = a + 1; b < columns.size(); ++b) {
        kernels::DifferenceInto(columns[b].set, columns[a].set, &diff);
        const Support support =
            columns[a].support - static_cast<Support>(diff.size());
        if (support >= min_support_) {
          next.push_back(Column{columns[b].item, support, diff});
        }
      }
      if (!next.empty()) MineDiff(next, prefix);
      prefix->pop_back();
    }
  }

  const Support min_support_;
  const ClosedSetCallback& callback_;
};

}  // namespace

Status MineFrequentDeclat(const TransactionDatabase& db,
                          const DeclatOptions& options,
                          const ClosedSetCallback& callback) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (db.NumTransactions() == 0) return Status::OK();

  const Recoding recoding = ComputeRecoding(
      db, ItemOrder::kFrequencyAscending, options.min_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, TransactionOrder::kNone);
  if (coded.NumTransactions() == 0) return Status::OK();

  auto tidlists = coded.BuildVertical();
  std::vector<Column> columns;
  columns.reserve(tidlists.size());
  for (std::size_t i = 0; i < tidlists.size(); ++i) {
    if (tidlists[i].size() >= options.min_support) {
      columns.push_back(Column{static_cast<ItemId>(i),
                               static_cast<Support>(tidlists[i].size()),
                               std::move(tidlists[i])});
    }
  }

  const ClosedSetCallback decoded = MakeDecodingCallback(recoding, callback);
  DeclatMiner miner(options.min_support, decoded);
  std::vector<ItemId> prefix;
  miner.MineRoot(columns, &prefix);
  return Status::OK();
}

}  // namespace fim
