#ifndef FIM_ENUMERATION_TRANSPOSED_H_
#define FIM_ENUMERATION_TRANSPOSED_H_

#include "common/status.h"
#include "data/itemset.h"
#include "data/transaction_database.h"
#include "obs/miner_stats.h"

namespace fim {

namespace obs {
class MemoryBreakdown;
}  // namespace obs

/// Options of the transposition miner.
struct TransposedOptions {
  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;

  /// Optional memory attribution (obs/memory.h): records the transposed
  /// database rows after the build. Output-neutral; must outlive the
  /// call.
  obs::MemoryBreakdown* memory = nullptr;
};

/// Transposition-based closed mining (Rioult et al., DMKD'03 — the [17]
/// approach the paper's §2.5 builds on): by the Galois bijection, the
/// closed item sets of a database correspond one-to-one to the closed
/// tid sets, which are the closed item sets of the TRANSPOSED database.
/// This miner enumerates closed tid sets by prefix-preserving closure
/// extension over the transpose — the support constraint of the original
/// problem becomes a SIZE constraint (|K| >= smin) with a simple
/// look-ahead bound — and maps each one back through g (the intersection
/// of the selected transactions). Efficient exactly when the original
/// database has few transactions, i.e. the same regime as IsTa/Carpenter.
/// `stats` (optional) receives extension_checks (tid extensions
/// examined), closure_checks (transpose closures computed), and
/// sets_reported; output-neutral.
Status MineClosedTransposed(const TransactionDatabase& db,
                            const TransposedOptions& options,
                            const ClosedSetCallback& callback,
                            MinerStats* stats = nullptr);

}  // namespace fim

#endif  // FIM_ENUMERATION_TRANSPOSED_H_
