#ifndef FIM_ENUMERATION_LCM_H_
#define FIM_ENUMERATION_LCM_H_

#include "common/status.h"
#include "data/itemset.h"
#include "data/transaction_database.h"
#include "obs/miner_stats.h"

namespace fim {

namespace obs {
class MemoryBreakdown;
}  // namespace obs

/// Options of the LCM-style baseline.
struct LcmOptions {
  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;

  /// Worker threads. > 1 fans the independent first-level subtrees of
  /// the prefix-preserving extension out to a thread pool; the output
  /// (and its order) is identical to the sequential run.
  unsigned num_threads = 1;

  /// Optional memory attribution (obs/memory.h): records the vertical
  /// tid lists after the build. Output-neutral; must outlive the call.
  obs::MemoryBreakdown* memory = nullptr;
};

/// Closed frequent item set mining in the style of LCM (Uno et al.):
/// depth-first prefix-preserving closure extension. Each closed set is
/// generated exactly once from its core prefix, so no repository or
/// post-filter is needed and memory stays linear in the input. Same
/// output contract as the other miners.
/// `stats` (optional) receives extension_checks (candidate extensions
/// examined), closure_checks (closure computations), and sets_reported,
/// aggregated over all workers; output-neutral.
Status MineClosedLcm(const TransactionDatabase& db, const LcmOptions& options,
                     const ClosedSetCallback& callback,
                     MinerStats* stats = nullptr);

}  // namespace fim

#endif  // FIM_ENUMERATION_LCM_H_
