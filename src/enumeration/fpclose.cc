#include "enumeration/fpclose.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "data/recode.h"
#include "enumeration/fptree.h"
#include "obs/memory.h"

namespace fim {

namespace {

struct Candidate {
  std::vector<ItemId> items;  // sorted ascending
  Support support = 0;
};

class FpCloseMiner {
 public:
  FpCloseMiner(Support min_support, MinerStats* stats)
      : min_support_(min_support), stats_(stats) {}

  std::vector<Candidate> Run(const TransactionDatabase& coded) {
    FpTree tree(coded.NumItems());
    for (const auto& t : coded.transactions()) tree.Insert(t, 1);
    std::vector<ItemId> prefix;
    Mine(tree, &prefix,
         static_cast<Support>(coded.NumTransactions()));
    return std::move(candidates_);
  }

 private:
  // `prefix` holds the generator items plus all inherited perfect
  // extensions; `prefix_support` is its support. Items of `tree` with
  // full support are this level's perfect extensions; the candidate
  // closed set is prefix + extensions.
  void Mine(const FpTree& tree, std::vector<ItemId>* prefix,
            Support prefix_support) {
    const std::size_t base_size = prefix->size();
    for (std::size_t i = 0; i < tree.num_items(); ++i) {
      if (tree.ItemSupport(static_cast<ItemId>(i)) == prefix_support) {
        prefix->push_back(static_cast<ItemId>(i));
      }
    }
    if (prefix_support >= min_support_ && !prefix->empty()) {
      Candidate candidate;
      candidate.items = *prefix;
      std::sort(candidate.items.begin(), candidate.items.end());
      candidate.items.erase(
          std::unique(candidate.items.begin(), candidate.items.end()),
          candidate.items.end());
      candidate.support = prefix_support;
      if (stats_ != nullptr) ++stats_->candidate_sets;
      candidates_.push_back(std::move(candidate));
    }

    // Recurse over the non-perfect frequent items, least frequent first
    // (descending code, since codes ascend with frequency rank under
    // kFrequencyDescending recoding the driver applies).
    for (std::size_t idx = tree.num_items(); idx > 0; --idx) {
      const ItemId item = static_cast<ItemId>(idx - 1);
      const Support supp = tree.ItemSupport(item);
      if (supp < min_support_ || supp == prefix_support) continue;

      if (stats_ != nullptr) ++stats_->conditional_trees;
      auto paths = tree.ConditionalPaths(item);
      // Count conditional item frequencies to drop infrequent items.
      std::unordered_map<ItemId, Support> freq;
      for (const auto& path : paths) {
        for (ItemId it : path.items) freq[it] += path.count;
      }
      FpTree conditional(tree.num_items());
      std::vector<ItemId> filtered;
      for (const auto& path : paths) {
        filtered.clear();
        for (ItemId it : path.items) {
          if (freq[it] >= min_support_) filtered.push_back(it);
        }
        conditional.Insert(filtered, path.count);
      }
      prefix->push_back(item);
      Mine(conditional, prefix, supp);
      prefix->pop_back();
    }

    prefix->resize(base_size);
  }

  const Support min_support_;
  MinerStats* stats_;
  std::vector<Candidate> candidates_;
};

// Keeps only candidates with no same-support proper superset among the
// candidates (processing larger sets first makes a single pass correct,
// because the closure of any non-closed candidate is itself a candidate).
std::vector<Candidate> FilterClosed(std::vector<Candidate> candidates,
                                    MinerStats* stats) {
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.items.size() > b.items.size();
            });
  std::unordered_map<Support, std::vector<std::size_t>> kept_by_support;
  std::vector<Candidate> kept;
  kept.reserve(candidates.size());
  for (auto& candidate : candidates) {
    bool subsumed = false;
    auto it = kept_by_support.find(candidate.support);
    if (it != kept_by_support.end()) {
      for (std::size_t k : it->second) {
        if (stats != nullptr) ++stats->subsume_checks;
        if (kept[k].items.size() >= candidate.items.size() &&
            IsSubsetSorted(candidate.items, kept[k].items)) {
          subsumed = true;
          break;
        }
      }
    }
    if (!subsumed) {
      kept_by_support[candidate.support].push_back(kept.size());
      kept.push_back(std::move(candidate));
    }
  }
  return kept;
}

}  // namespace

Status MineClosedFpClose(const TransactionDatabase& db,
                         const FpCloseOptions& options,
                         const ClosedSetCallback& callback,
                         MinerStats* stats) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = MinerStats{};
  if (db.NumTransactions() == 0) return Status::OK();

  const Recoding recoding = ComputeRecoding(
      db, ItemOrder::kFrequencyDescending, options.min_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, TransactionOrder::kNone);
  if (coded.NumTransactions() == 0) return Status::OK();

  FpCloseMiner miner(options.min_support, stats);
  std::vector<Candidate> candidates = miner.Run(coded);
  if (options.memory != nullptr) {
    obs::MemoryComponent coded_db = coded.ApproxMemoryUsage();
    coded_db.name = "recoded-db";
    options.memory->Record(std::move(coded_db));
    // The candidate pool before the closed filter is the enumeration
    // side's largest structure (conditional trees are transient).
    obs::MemoryComponent pool("candidates");
    pool.self_bytes = candidates.capacity() * sizeof(candidates[0]);
    std::size_t item_bytes = 0;
    for (const auto& candidate : candidates) {
      item_bytes += candidate.items.capacity() * sizeof(ItemId);
    }
    pool.children.emplace_back("items", item_bytes);
    options.memory->Record(std::move(pool));
  }
  std::vector<Candidate> closed = FilterClosed(std::move(candidates), stats);

  const ClosedSetCallback decoded = MakeDecodingCallback(recoding, callback);
  if (stats != nullptr) stats->sets_reported = closed.size();
  for (const auto& set : closed) decoded(set.items, set.support);
  return Status::OK();
}

}  // namespace fim
