#ifndef FIM_ENUMERATION_APRIORI_H_
#define FIM_ENUMERATION_APRIORI_H_

#include "common/status.h"
#include "data/itemset.h"
#include "data/transaction_database.h"

namespace fim {

/// Options of the Apriori all-frequent-set miner.
struct AprioriOptions {
  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;
};

/// Classic level-wise Apriori (Agrawal & Srikant): generate size-(k+1)
/// candidates by joining frequent size-k sets, prune by the apriori
/// property, count by database scan. Reports ALL frequent item sets.
/// Intended for moderate inputs, tests, and cross-checks.
Status MineFrequentApriori(const TransactionDatabase& db,
                           const AprioriOptions& options,
                           const ClosedSetCallback& callback);

}  // namespace fim

#endif  // FIM_ENUMERATION_APRIORI_H_
