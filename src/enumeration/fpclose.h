#ifndef FIM_ENUMERATION_FPCLOSE_H_
#define FIM_ENUMERATION_FPCLOSE_H_

#include "common/status.h"
#include "data/itemset.h"
#include "data/transaction_database.h"
#include "obs/miner_stats.h"

namespace fim {

namespace obs {
class MemoryBreakdown;
}  // namespace obs

/// Options of the FP-close baseline.
struct FpCloseOptions {
  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;

  /// Optional memory attribution (obs/memory.h): records the root
  /// FP-tree after the build. Output-neutral; must outlive the call.
  obs::MemoryBreakdown* memory = nullptr;
};

/// Closed frequent item set mining via FP-growth (the enumeration-side
/// baseline of the paper's experiments): recursive conditional FP-tree
/// projection with perfect-extension pruning generates the closed-set
/// candidates {generator + perfect extensions}; a final subsumption
/// filter (same support, proper superset) leaves exactly the closed sets.
/// Same output contract as the intersection miners.
/// `stats` (optional) receives conditional_trees (conditional FP-tree
/// projections built), candidate_sets (candidates before the closed
/// filter), subsume_checks (filter comparisons), and sets_reported;
/// output-neutral.
Status MineClosedFpClose(const TransactionDatabase& db,
                         const FpCloseOptions& options,
                         const ClosedSetCallback& callback,
                         MinerStats* stats = nullptr);

}  // namespace fim

#endif  // FIM_ENUMERATION_FPCLOSE_H_
