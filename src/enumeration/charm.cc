#include "enumeration/charm.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "data/recode.h"
#include "kernels/intersect.h"
#include "obs/memory.h"

namespace fim {

namespace {

struct Node {
  std::vector<ItemId> items;  // sorted ascending
  std::vector<Tid> tids;      // sorted ascending
};

class CharmMiner {
 public:
  CharmMiner(Support min_support, const ClosedSetCallback& callback,
             MinerStats* stats)
      : min_support_(min_support), callback_(callback), stats_(stats) {}

  void Run(std::vector<Node> roots) { Extend(&roots); }

 private:
  // Extends every node of the current level, applying the CHARM
  // properties: when two tidsets are equal or nested, the itemsets can
  // be merged without losing closed sets.
  void Extend(std::vector<Node>* nodes) {
    // Process in order of increasing tidset size (CHARM's heuristic).
    std::sort(nodes->begin(), nodes->end(), [](const Node& a, const Node& b) {
      return a.tids.size() < b.tids.size();
    });
    for (std::size_t i = 0; i < nodes->size(); ++i) {
      Node& current = (*nodes)[i];
      if (current.items.empty()) continue;  // merged away
      // First pass: apply properties 1/2 (tidset equal / superset), which
      // only grow `current`'s item set; stash the genuine extensions.
      // Children are materialized afterwards so they inherit ALL merged
      // items — creating them eagerly would lose later property-2 items.
      std::vector<std::pair<std::size_t, std::vector<Tid>>> extensions;
      // One scratch intersection per recursion level, reused across the
      // inner loop: pairs that merge or fall below min_support (the
      // common case) never allocate once the scratch is warm.
      std::vector<Tid> inter;
      for (std::size_t j = i + 1; j < nodes->size(); ++j) {
        Node& other = (*nodes)[j];
        if (other.items.empty()) continue;
        if (stats_ != nullptr) ++stats_->extension_checks;
        kernels::IntersectInto(current.tids, other.tids, &inter);
        const bool covers_current = inter.size() == current.tids.size();
        const bool covers_other = inter.size() == other.tids.size();
        if (covers_current && covers_other) {
          // Property 1: identical tidsets -> merge, drop the other branch.
          if (stats_ != nullptr) ++stats_->closure_checks;
          MergeItems(&current.items, other.items);
          other.items.clear();
        } else if (covers_current) {
          // Property 2: t(current) subset of t(other): every closed set
          // containing `current` also contains `other`'s items.
          if (stats_ != nullptr) ++stats_->closure_checks;
          MergeItems(&current.items, other.items);
        } else if (inter.size() >= min_support_) {
          // Properties 3/4: a genuine new candidate below `current`.
          // Copy exact-size out of the scratch so it keeps its capacity.
          extensions.emplace_back(j, inter);
        }
      }
      std::vector<Node> children;
      children.reserve(extensions.size());
      for (auto& [j, tids] : extensions) {
        Node child;
        child.items = current.items;
        MergeItems(&child.items, (*nodes)[j].items);
        child.tids = std::move(tids);
        children.push_back(std::move(child));
      }
      if (!children.empty()) Extend(&children);
      ReportIfClosed(current);
    }
  }

  static void MergeItems(std::vector<ItemId>* into,
                         const std::vector<ItemId>& from) {
    std::vector<ItemId> merged;
    merged.reserve(into->size() + from.size());
    std::set_union(into->begin(), into->end(), from.begin(), from.end(),
                   std::back_inserter(merged));
    *into = std::move(merged);
  }

  // Subsumption check: `node` is closed unless an already-reported set
  // with the same tidset-hash has the same support and contains it.
  void ReportIfClosed(const Node& node) {
    const Support support = static_cast<Support>(node.tids.size());
    if (support < min_support_) return;
    std::size_t hash = 0;
    for (Tid t : node.tids) hash += t;  // CHARM's tidset-sum hash
    auto& bucket = reported_[hash];
    for (const auto& existing : bucket) {
      if (stats_ != nullptr) ++stats_->subsume_checks;
      if (existing.second == support &&
          IsSubsetSorted(node.items, existing.first)) {
        return;  // subsumed: not closed
      }
    }
    if (stats_ != nullptr) ++stats_->sets_reported;
    callback_(node.items, support);
    bucket.emplace_back(node.items, support);
  }

  const Support min_support_;
  const ClosedSetCallback& callback_;
  MinerStats* stats_;
  std::unordered_map<std::size_t,
                     std::vector<std::pair<std::vector<ItemId>, Support>>>
      reported_;
};

}  // namespace

Status MineClosedCharm(const TransactionDatabase& db,
                       const CharmOptions& options,
                       const ClosedSetCallback& callback, MinerStats* stats) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = MinerStats{};
  if (db.NumTransactions() == 0) return Status::OK();

  const Recoding recoding = ComputeRecoding(
      db, ItemOrder::kFrequencyAscending, options.min_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, TransactionOrder::kNone);
  if (coded.NumTransactions() == 0) return Status::OK();

  auto tidlists = coded.BuildVertical();
  std::vector<Node> roots;
  roots.reserve(tidlists.size());
  for (std::size_t i = 0; i < tidlists.size(); ++i) {
    if (tidlists[i].size() >= options.min_support) {
      roots.push_back(Node{{static_cast<ItemId>(i)},
                           std::move(tidlists[i])});
    }
  }

  if (options.memory != nullptr) {
    obs::MemoryComponent coded_db = coded.ApproxMemoryUsage();
    coded_db.name = "recoded-db";
    options.memory->Record(std::move(coded_db));
    // Root itemset-tidset pairs: the largest vertical structure — child
    // tidsets are intersections of these, so strictly smaller.
    obs::MemoryComponent vertical("root-tidsets");
    vertical.self_bytes = roots.capacity() * sizeof(roots[0]);
    std::size_t tid_bytes = 0;
    std::size_t item_bytes = 0;
    for (const auto& root : roots) {
      tid_bytes += root.tids.capacity() * sizeof(Tid);
      item_bytes += root.items.capacity() * sizeof(ItemId);
    }
    vertical.children.emplace_back("tids", tid_bytes);
    vertical.children.emplace_back("items", item_bytes);
    options.memory->Record(std::move(vertical));
  }

  const ClosedSetCallback decoded = MakeDecodingCallback(recoding, callback);
  CharmMiner miner(options.min_support, decoded, stats);
  miner.Run(std::move(roots));
  return Status::OK();
}

}  // namespace fim
