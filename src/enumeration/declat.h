#ifndef FIM_ENUMERATION_DECLAT_H_
#define FIM_ENUMERATION_DECLAT_H_

#include "common/status.h"
#include "data/itemset.h"
#include "data/transaction_database.h"

namespace fim {

/// Options of the dEclat all-frequent-set miner.
struct DeclatOptions {
  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;
};

/// Eclat with diffsets (Zaki & Gouda): below the first level, each node
/// stores the difference of its parent's tid set and its own instead of
/// the tid set itself — d(PXY) = d(PY) \ d(PX) and supp(PXY) =
/// supp(PX) - |d(PXY)| — which is much smaller on dense data. Reports
/// ALL frequent item sets, exactly like MineFrequentEclat.
Status MineFrequentDeclat(const TransactionDatabase& db,
                          const DeclatOptions& options,
                          const ClosedSetCallback& callback);

}  // namespace fim

#endif  // FIM_ENUMERATION_DECLAT_H_
