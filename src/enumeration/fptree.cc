#include "enumeration/fptree.h"

#include <algorithm>

namespace fim {

FpTree::FpTree(std::size_t num_items) : headers_(num_items) {
  nodes_.push_back(Node{kInvalidItem, 0, kNil, kNil, kNil, kNil});
}

void FpTree::Insert(std::span<const ItemId> items, Support count) {
  if (count == 0) return;
  total_ += count;
  uint32_t current = 0;
  for (ItemId item : items) {
    headers_[item].support += count;
    // Find the child carrying `item`.
    uint32_t child = nodes_[current].child;
    while (child != kNil && nodes_[child].item != item) {
      child = nodes_[child].sibling;
    }
    if (child == kNil) {
      child = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(Node{item, 0, current, headers_[item].head,
                            kNil, nodes_[current].child});
      nodes_[current].child = child;
      headers_[item].head = child;
    }
    nodes_[child].count += count;
    current = child;
  }
}

std::vector<FpTree::WeightedTransaction> FpTree::ConditionalPaths(
    ItemId item) const {
  std::vector<WeightedTransaction> paths;
  for (uint32_t node = headers_[item].head; node != kNil;
       node = nodes_[node].next) {
    WeightedTransaction path;
    path.count = nodes_[node].count;
    for (uint32_t up = nodes_[node].parent; up != 0; up = nodes_[up].parent) {
      path.items.push_back(nodes_[up].item);
    }
    std::reverse(path.items.begin(), path.items.end());
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace fim
