#include "enumeration/apriori.h"

#include <algorithm>
#include <set>
#include <vector>

namespace fim {

namespace {

// Joins two sorted size-k sets sharing their first k-1 items into a
// size-(k+1) candidate; returns false if they do not share the prefix.
bool Join(const std::vector<ItemId>& a, const std::vector<ItemId>& b,
          std::vector<ItemId>* out) {
  if (!std::equal(a.begin(), a.end() - 1, b.begin())) return false;
  if (a.back() >= b.back()) return false;
  *out = a;
  out->push_back(b.back());
  return true;
}

// Apriori pruning: every size-k subset of the candidate must be frequent.
bool AllSubsetsFrequent(const std::vector<ItemId>& candidate,
                        const std::set<std::vector<ItemId>>& frequent) {
  std::vector<ItemId> subset(candidate.size() - 1);
  for (std::size_t skip = 0; skip < candidate.size(); ++skip) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset[out++] = candidate[i];
    }
    if (frequent.find(subset) == frequent.end()) return false;
  }
  return true;
}

}  // namespace

Status MineFrequentApriori(const TransactionDatabase& db,
                           const AprioriOptions& options,
                           const ClosedSetCallback& callback) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (db.NumTransactions() == 0) return Status::OK();

  // Level 1.
  const std::vector<Support> freq = db.ItemFrequencies();
  std::vector<std::vector<ItemId>> level;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    if (freq[i] >= options.min_support) {
      level.push_back({static_cast<ItemId>(i)});
      callback(level.back(), freq[i]);
    }
  }

  while (level.size() > 1) {
    // Candidate generation + prune.
    std::set<std::vector<ItemId>> frequent_prev(level.begin(), level.end());
    std::vector<std::vector<ItemId>> candidates;
    std::vector<ItemId> joined;
    for (std::size_t a = 0; a < level.size(); ++a) {
      for (std::size_t b = a + 1; b < level.size(); ++b) {
        if (!Join(level[a], level[b], &joined)) continue;
        if (AllSubsetsFrequent(joined, frequent_prev)) {
          candidates.push_back(joined);
        }
      }
    }
    if (candidates.empty()) break;

    // Support counting by database scan.
    std::vector<Support> counts(candidates.size(), 0);
    for (const auto& t : db.transactions()) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (IsSubsetSorted(candidates[c], t)) ++counts[c];
      }
    }

    std::vector<std::vector<ItemId>> next;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] >= options.min_support) {
        callback(candidates[c], counts[c]);
        next.push_back(std::move(candidates[c]));
      }
    }
    level = std::move(next);
  }
  return Status::OK();
}

}  // namespace fim
