#ifndef FIM_ENUMERATION_ECLAT_H_
#define FIM_ENUMERATION_ECLAT_H_

#include "common/status.h"
#include "data/itemset.h"
#include "data/transaction_database.h"

namespace fim {

/// Options of the Eclat all-frequent-set miner.
struct EclatOptions {
  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;
};

/// Mines ALL frequent item sets (not only closed ones) with the vertical
/// tid-set intersection scheme of Eclat (Zaki et al.). The callback
/// receives every frequent set exactly once, items ascending. Beware:
/// the output can be exponentially larger than the closed-set output;
/// intended for moderate inputs, tests, and the association-rule example.
Status MineFrequentEclat(const TransactionDatabase& db,
                         const EclatOptions& options,
                         const ClosedSetCallback& callback);

}  // namespace fim

#endif  // FIM_ENUMERATION_ECLAT_H_
