#ifndef FIM_ENUMERATION_CHARM_H_
#define FIM_ENUMERATION_CHARM_H_

#include "common/status.h"
#include "data/itemset.h"
#include "data/transaction_database.h"
#include "obs/miner_stats.h"

namespace fim {

namespace obs {
class MemoryBreakdown;
}  // namespace obs

/// Options of the CHARM baseline.
struct CharmOptions {
  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;

  /// Optional memory attribution (obs/memory.h): records the root
  /// itemset-tidset pairs after the vertical build. Output-neutral;
  /// must outlive the call.
  obs::MemoryBreakdown* memory = nullptr;
};

/// Closed frequent item set mining with a CHARM-style itemset-tidset
/// search (Zaki & Hsiao): vertical tid sets, the four tidset-relation
/// properties to grow closures and prune the search, plus a subsumption
/// check before reporting. A third enumeration-side baseline next to
/// FP-close and LCM. Same output contract as the other miners.
/// `stats` (optional) receives extension_checks (tidset pairs examined),
/// closure_checks (property-1/2 item merges), subsume_checks (bucket
/// comparisons before reporting), and sets_reported; output-neutral.
Status MineClosedCharm(const TransactionDatabase& db,
                       const CharmOptions& options,
                       const ClosedSetCallback& callback,
                       MinerStats* stats = nullptr);

}  // namespace fim

#endif  // FIM_ENUMERATION_CHARM_H_
