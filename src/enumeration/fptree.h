#ifndef FIM_ENUMERATION_FPTREE_H_
#define FIM_ENUMERATION_FPTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/itemset.h"

namespace fim {

/// FP-tree (Han et al.): a prefix tree of transactions whose items are
/// sorted by descending frequency (ascending item code after recoding
/// with ItemOrder::kFrequencyDescending), with per-item header lists
/// linking all nodes that carry the item. Substrate of the FP-close
/// baseline miner.
class FpTree {
 public:
  /// A weighted transaction (a conditional-pattern-base path).
  struct WeightedTransaction {
    std::vector<ItemId> items;  // ascending item codes
    Support count = 0;
  };

  explicit FpTree(std::size_t num_items);

  /// Inserts `items` (ascending codes, duplicate-free) with multiplicity
  /// `count`, sharing prefixes with previously inserted transactions.
  void Insert(std::span<const ItemId> items, Support count);

  /// Total support of `item` in this tree.
  Support ItemSupport(ItemId item) const { return headers_[item].support; }

  std::size_t num_items() const { return headers_.size(); }

  /// Sum of the counts of all inserted transactions.
  Support TotalTransactions() const { return total_; }

  /// True if no transaction was inserted.
  bool Empty() const { return nodes_.size() == 1; }

  /// Number of tree nodes including the root (diagnostics).
  std::size_t NodeCount() const { return nodes_.size(); }

  /// The conditional pattern base of `item`: for every node carrying the
  /// item, its root path (excluding the item itself) weighted by the
  /// node's count. Paths come out with ascending item codes.
  std::vector<WeightedTransaction> ConditionalPaths(ItemId item) const;

 private:
  struct Node {
    ItemId item;
    Support count;
    uint32_t parent;
    uint32_t next;     // header chain
    uint32_t child;    // first child
    uint32_t sibling;  // next sibling
  };

  struct Header {
    uint32_t head = static_cast<uint32_t>(-1);
    Support support = 0;
  };

  static constexpr uint32_t kNil = static_cast<uint32_t>(-1);

  std::vector<Node> nodes_;  // nodes_[0] is the root
  std::vector<Header> headers_;
  Support total_ = 0;
};

}  // namespace fim

#endif  // FIM_ENUMERATION_FPTREE_H_
