#include "enumeration/eclat.h"

#include <algorithm>
#include <vector>

#include "data/recode.h"

namespace fim {

namespace {

struct Column {
  ItemId item;
  std::vector<Tid> tids;
};

class EclatMiner {
 public:
  EclatMiner(Support min_support, const ClosedSetCallback& callback)
      : min_support_(min_support), callback_(callback) {}

  void Mine(const std::vector<Column>& columns, std::vector<ItemId>* prefix) {
    for (std::size_t a = 0; a < columns.size(); ++a) {
      prefix->push_back(columns[a].item);
      callback_(*prefix, static_cast<Support>(columns[a].tids.size()));
      // Extensions: intersect with the later columns.
      std::vector<Column> next;
      for (std::size_t b = a + 1; b < columns.size(); ++b) {
        std::vector<Tid> tids;
        tids.reserve(
            std::min(columns[a].tids.size(), columns[b].tids.size()));
        std::set_intersection(columns[a].tids.begin(), columns[a].tids.end(),
                              columns[b].tids.begin(), columns[b].tids.end(),
                              std::back_inserter(tids));
        if (tids.size() >= min_support_) {
          next.push_back(Column{columns[b].item, std::move(tids)});
        }
      }
      if (!next.empty()) Mine(next, prefix);
      prefix->pop_back();
    }
  }

 private:
  const Support min_support_;
  const ClosedSetCallback& callback_;
};

}  // namespace

Status MineFrequentEclat(const TransactionDatabase& db,
                         const EclatOptions& options,
                         const ClosedSetCallback& callback) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (db.NumTransactions() == 0) return Status::OK();

  const Recoding recoding = ComputeRecoding(
      db, ItemOrder::kFrequencyAscending, options.min_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, TransactionOrder::kNone);
  if (coded.NumTransactions() == 0) return Status::OK();

  auto tidlists = coded.BuildVertical();
  std::vector<Column> columns;
  columns.reserve(tidlists.size());
  for (std::size_t i = 0; i < tidlists.size(); ++i) {
    if (tidlists[i].size() >= options.min_support) {
      columns.push_back(Column{static_cast<ItemId>(i),
                               std::move(tidlists[i])});
    }
  }

  const ClosedSetCallback decoded = MakeDecodingCallback(recoding, callback);
  EclatMiner miner(options.min_support, decoded);
  std::vector<ItemId> prefix;
  miner.Mine(columns, &prefix);
  return Status::OK();
}

}  // namespace fim
