#include "enumeration/eclat.h"

#include <utility>
#include <vector>

#include "data/recode.h"
#include "kernels/tidset.h"

namespace fim {

namespace {

using kernels::TidSet;

// A vertical column: an extension item with the tid set of the current
// prefix extended by it. The TidSet picks sparse or dense (bit vector)
// representation by density, so deep intersection chains on dense data
// run word-at-a-time instead of element-at-a-time.
struct Column {
  ItemId item;
  TidSet tids;
};

class EclatMiner {
 public:
  EclatMiner(Support min_support, const ClosedSetCallback& callback)
      : min_support_(min_support), callback_(callback) {}

  void Mine(const std::vector<Column>& columns, std::vector<ItemId>* prefix) {
    // One scratch result per recursion level, reused across all candidate
    // pairs of the level: infrequent intersections (the vast majority)
    // never allocate once the scratch is warm.
    TidSet scratch;
    for (std::size_t a = 0; a < columns.size(); ++a) {
      prefix->push_back(columns[a].item);
      callback_(*prefix, columns[a].tids.Count());
      // Extensions: intersect with the later columns.
      std::vector<Column> next;
      for (std::size_t b = a + 1; b < columns.size(); ++b) {
        TidSet::Intersect(columns[a].tids, columns[b].tids, &scratch);
        if (scratch.Count() >= min_support_) {
          // Survivor: copy exact-size out of the scratch so the scratch
          // keeps its capacity for the remaining pairs.
          next.push_back(Column{columns[b].item, scratch});
        }
      }
      if (!next.empty()) Mine(next, prefix);
      prefix->pop_back();
    }
  }

 private:
  const Support min_support_;
  const ClosedSetCallback& callback_;
};

}  // namespace

Status MineFrequentEclat(const TransactionDatabase& db,
                         const EclatOptions& options,
                         const ClosedSetCallback& callback) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (db.NumTransactions() == 0) return Status::OK();

  const Recoding recoding = ComputeRecoding(
      db, ItemOrder::kFrequencyAscending, options.min_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, TransactionOrder::kNone);
  if (coded.NumTransactions() == 0) return Status::OK();

  const Tid universe = static_cast<Tid>(coded.NumTransactions());
  auto tidlists = coded.BuildVertical();
  std::vector<Column> columns;
  columns.reserve(tidlists.size());
  for (std::size_t i = 0; i < tidlists.size(); ++i) {
    if (tidlists[i].size() >= options.min_support) {
      columns.push_back(Column{
          static_cast<ItemId>(i),
          TidSet::FromSorted(std::move(tidlists[i]), universe)});
    }
  }

  const ClosedSetCallback decoded = MakeDecodingCallback(recoding, callback);
  EclatMiner miner(options.min_support, decoded);
  std::vector<ItemId> prefix;
  miner.Mine(columns, &prefix);
  return Status::OK();
}

}  // namespace fim
