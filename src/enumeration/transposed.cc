#include "enumeration/transposed.h"

#include <algorithm>
#include <vector>

#include "kernels/intersect.h"
#include "obs/memory.h"

namespace fim {

namespace {

class TransposedMiner {
 public:
  TransposedMiner(const TransactionDatabase& db, Support min_support,
                  const ClosedSetCallback& callback, MinerStats* stats)
      : min_support_(min_support),
        num_tids_(static_cast<Tid>(db.NumTransactions())),
        callback_(callback),
        stats_(stats) {
    // The transpose's transactions are the tid lists of the used items;
    // remember which original item each corresponds to.
    auto tidlists = db.BuildVertical();
    for (std::size_t i = 0; i < tidlists.size(); ++i) {
      if (!tidlists[i].empty()) {
        used_items_.push_back(static_cast<ItemId>(i));
        rows_.push_back(std::move(tidlists[i]));
      }
    }
  }

  void Run() {
    if (rows_.empty() || num_tids_ == 0) return;
    // closure(empty tid set) over the transpose: the tids shared by every
    // used item's list.
    std::vector<std::size_t> all_rows(rows_.size());
    for (std::size_t k = 0; k < rows_.size(); ++k) all_rows[k] = k;
    if (stats_ != nullptr) ++stats_->closure_checks;
    std::vector<Tid> root = IntersectRows(all_rows);
    if (root.size() >= min_support_) Report(root, all_rows);
    Extend(root, all_rows, /*core=*/static_cast<Tid>(-1));
  }

  // The transposed rows are built once and dominate the footprint; the
  // scratch vectors never exceed one row.
  void RecordMemory(obs::MemoryBreakdown* memory) const {
    if (memory == nullptr) return;
    obs::MemoryComponent transpose("transposed-rows");
    transpose.children.emplace_back("rows", obs::NestedVectorBytes(rows_));
    transpose.children.emplace_back(
        "used-items", used_items_.capacity() * sizeof(ItemId));
    transpose.children.emplace_back(
        "scratch", order_.capacity() * sizeof(std::size_t) +
                       (inter_ping_.capacity() + inter_pong_.capacity()) *
                           sizeof(Tid));
    memory->Record(std::move(transpose));
  }

 private:
  // Intersection of the tid lists selected by `rows` (non-empty input).
  // Rows are visited shortest first — the running intersection never
  // exceeds the smallest operand, so starting small keeps every merge
  // (and the galloping cutover against the long rows) cheap — and the
  // intermediate results ping-pong between two reused member buffers
  // instead of allocating a fresh vector per round.
  std::vector<Tid> IntersectRows(const std::vector<std::size_t>& rows) const {
    order_.assign(rows.begin(), rows.end());
    std::sort(order_.begin(), order_.end(),
              [this](std::size_t x, std::size_t y) {
                const std::size_t sx = rows_[x].size();
                const std::size_t sy = rows_[y].size();
                return sx != sy ? sx < sy : x < y;
              });
    const std::vector<Tid>* current = &rows_[order_.front()];
    std::vector<Tid>* bufs[2] = {&inter_ping_, &inter_pong_};
    int which = 0;
    for (std::size_t k = 1; k < order_.size() && !current->empty(); ++k) {
      std::vector<Tid>* out = bufs[which];
      which ^= 1;
      kernels::IntersectInto(*current, rows_[order_[k]], out);
      current = out;
    }
    return *current;  // the caller owns its result; copy out of the scratch
  }

  // Prefix-preserving closure extension over the tid universe. `p` is
  // the current closed tid set, `occ` the transpose transactions (=
  // original items) containing it.
  void Extend(const std::vector<Tid>& p, const std::vector<std::size_t>& occ,
              Tid core) {
    const Tid first = core == static_cast<Tid>(-1) ? 0 : core + 1;
    for (Tid e = first; e < num_tids_; ++e) {
      // Size look-ahead: even taking every remaining tid cannot reach
      // the minimum size (= original minimum support).
      if (p.size() + (num_tids_ - e) < min_support_) break;
      if (std::binary_search(p.begin(), p.end(), e)) continue;
      if (stats_ != nullptr) ++stats_->extension_checks;
      std::vector<std::size_t> occ_e;
      occ_e.reserve(occ.size());
      for (std::size_t k : occ) {
        if (std::binary_search(rows_[k].begin(), rows_[k].end(), e)) {
          occ_e.push_back(k);
        }
      }
      if (occ_e.empty()) continue;  // support over the transpose is zero
      if (stats_ != nullptr) ++stats_->closure_checks;
      std::vector<Tid> q = IntersectRows(occ_e);
      if (!PrefixPreserved(p, q, e)) continue;
      if (q.size() >= min_support_) Report(q, occ_e);
      Extend(q, occ_e, e);
    }
  }

  static bool PrefixPreserved(const std::vector<Tid>& p,
                              const std::vector<Tid>& q, Tid e) {
    auto pe = std::lower_bound(p.begin(), p.end(), e);
    auto qe = std::lower_bound(q.begin(), q.end(), e);
    return (pe - p.begin()) == (qe - q.begin()) &&
           std::equal(p.begin(), pe, q.begin());
  }

  // A closed tid set K with |K| >= smin maps back to the original closed
  // item set g(K) = occ's items, with support |K|.
  void Report(const std::vector<Tid>& k,
              const std::vector<std::size_t>& occ) {
    std::vector<ItemId> items;
    items.reserve(occ.size());
    for (std::size_t row : occ) items.push_back(used_items_[row]);
    if (stats_ != nullptr) ++stats_->sets_reported;
    callback_(items, static_cast<Support>(k.size()));
  }

  const Support min_support_;
  const Tid num_tids_;
  const ClosedSetCallback& callback_;
  MinerStats* stats_;
  std::vector<ItemId> used_items_;
  std::vector<std::vector<Tid>> rows_;
  // IntersectRows scratch. Safe despite the recursion in Extend: each
  // IntersectRows call completes (and its result is copied out) before
  // the next one starts.
  mutable std::vector<std::size_t> order_;
  mutable std::vector<Tid> inter_ping_;
  mutable std::vector<Tid> inter_pong_;
};

}  // namespace

Status MineClosedTransposed(const TransactionDatabase& db,
                            const TransposedOptions& options,
                            const ClosedSetCallback& callback,
                            MinerStats* stats) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = MinerStats{};
  if (db.NumTransactions() == 0) return Status::OK();
  TransposedMiner miner(db, options.min_support, callback, stats);
  miner.Run();
  miner.RecordMemory(options.memory);
  return Status::OK();
}

}  // namespace fim
