#include "enumeration/transposed.h"

#include <algorithm>
#include <vector>

namespace fim {

namespace {

class TransposedMiner {
 public:
  TransposedMiner(const TransactionDatabase& db, Support min_support,
                  const ClosedSetCallback& callback, MinerStats* stats)
      : min_support_(min_support),
        num_tids_(static_cast<Tid>(db.NumTransactions())),
        callback_(callback),
        stats_(stats) {
    // The transpose's transactions are the tid lists of the used items;
    // remember which original item each corresponds to.
    auto tidlists = db.BuildVertical();
    for (std::size_t i = 0; i < tidlists.size(); ++i) {
      if (!tidlists[i].empty()) {
        used_items_.push_back(static_cast<ItemId>(i));
        rows_.push_back(std::move(tidlists[i]));
      }
    }
  }

  void Run() {
    if (rows_.empty() || num_tids_ == 0) return;
    // closure(empty tid set) over the transpose: the tids shared by every
    // used item's list.
    std::vector<std::size_t> all_rows(rows_.size());
    for (std::size_t k = 0; k < rows_.size(); ++k) all_rows[k] = k;
    if (stats_ != nullptr) ++stats_->closure_checks;
    std::vector<Tid> root = IntersectRows(all_rows);
    if (root.size() >= min_support_) Report(root, all_rows);
    Extend(root, all_rows, /*core=*/static_cast<Tid>(-1));
  }

 private:
  // Intersection of the tid lists selected by `rows` (non-empty input).
  std::vector<Tid> IntersectRows(const std::vector<std::size_t>& rows) const {
    std::vector<Tid> inter = rows_[rows.front()];
    for (std::size_t k = 1; k < rows.size() && !inter.empty(); ++k) {
      std::vector<Tid> next;
      next.reserve(inter.size());
      std::set_intersection(inter.begin(), inter.end(),
                            rows_[rows[k]].begin(), rows_[rows[k]].end(),
                            std::back_inserter(next));
      inter = std::move(next);
    }
    return inter;
  }

  // Prefix-preserving closure extension over the tid universe. `p` is
  // the current closed tid set, `occ` the transpose transactions (=
  // original items) containing it.
  void Extend(const std::vector<Tid>& p, const std::vector<std::size_t>& occ,
              Tid core) {
    const Tid first = core == static_cast<Tid>(-1) ? 0 : core + 1;
    for (Tid e = first; e < num_tids_; ++e) {
      // Size look-ahead: even taking every remaining tid cannot reach
      // the minimum size (= original minimum support).
      if (p.size() + (num_tids_ - e) < min_support_) break;
      if (std::binary_search(p.begin(), p.end(), e)) continue;
      if (stats_ != nullptr) ++stats_->extension_checks;
      std::vector<std::size_t> occ_e;
      occ_e.reserve(occ.size());
      for (std::size_t k : occ) {
        if (std::binary_search(rows_[k].begin(), rows_[k].end(), e)) {
          occ_e.push_back(k);
        }
      }
      if (occ_e.empty()) continue;  // support over the transpose is zero
      if (stats_ != nullptr) ++stats_->closure_checks;
      std::vector<Tid> q = IntersectRows(occ_e);
      if (!PrefixPreserved(p, q, e)) continue;
      if (q.size() >= min_support_) Report(q, occ_e);
      Extend(q, occ_e, e);
    }
  }

  static bool PrefixPreserved(const std::vector<Tid>& p,
                              const std::vector<Tid>& q, Tid e) {
    auto pe = std::lower_bound(p.begin(), p.end(), e);
    auto qe = std::lower_bound(q.begin(), q.end(), e);
    return (pe - p.begin()) == (qe - q.begin()) &&
           std::equal(p.begin(), pe, q.begin());
  }

  // A closed tid set K with |K| >= smin maps back to the original closed
  // item set g(K) = occ's items, with support |K|.
  void Report(const std::vector<Tid>& k,
              const std::vector<std::size_t>& occ) {
    std::vector<ItemId> items;
    items.reserve(occ.size());
    for (std::size_t row : occ) items.push_back(used_items_[row]);
    if (stats_ != nullptr) ++stats_->sets_reported;
    callback_(items, static_cast<Support>(k.size()));
  }

  const Support min_support_;
  const Tid num_tids_;
  const ClosedSetCallback& callback_;
  MinerStats* stats_;
  std::vector<ItemId> used_items_;
  std::vector<std::vector<Tid>> rows_;
};

}  // namespace

Status MineClosedTransposed(const TransactionDatabase& db,
                            const TransposedOptions& options,
                            const ClosedSetCallback& callback,
                            MinerStats* stats) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = MinerStats{};
  if (db.NumTransactions() == 0) return Status::OK();
  TransposedMiner miner(db, options.min_support, callback, stats);
  miner.Run();
  return Status::OK();
}

}  // namespace fim
