#ifndef FIM_COMMON_SYNC_H_
#define FIM_COMMON_SYNC_H_

// Annotated synchronization primitives: fim::Mutex, fim::MutexLock and
// fim::CondVar wrap the std primitives and carry Clang Thread Safety
// Analysis capability attributes, so a build with -Wthread-safety (the
// FIM_THREAD_SAFETY CMake option) statically proves that every access to
// a FIM_GUARDED_BY field happens under its lock. On non-Clang compilers
// the attributes expand to nothing and the wrappers behave exactly like
// the std types they hold.
//
// In addition every fim::Mutex is constructed with a LockRank. Debug
// builds (FIM_ENABLE_DCHECKS) maintain a thread-local stack of held
// ranks and abort on any acquisition that is not strictly rank-
// increasing, turning a potential deadlock (lock-order inversion) into a
// deterministic test failure at the first wrong acquisition — see
// docs/STATIC_ANALYSIS.md for the rank table.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#if defined(__clang__)
#define FIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FIM_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a lockable capability ("mutex").
#define FIM_CAPABILITY(x) FIM_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires in its constructor and releases
/// in its destructor.
#define FIM_SCOPED_CAPABILITY FIM_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define FIM_GUARDED_BY(x) FIM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field annotation: the pointee is protected by `x`.
#define FIM_PT_GUARDED_BY(x) FIM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotation: the caller must hold the listed capabilities.
#define FIM_REQUIRES(...) \
  FIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities.
#define FIM_ACQUIRE(...) \
  FIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities.
#define FIM_RELEASE(...) \
  FIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the listed capabilities
/// (the function acquires them itself; guards against self-deadlock).
#define FIM_EXCLUDES(...) FIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function annotation: asserts the capability is held without acquiring.
#define FIM_ASSERT_CAPABILITY(x) FIM_THREAD_ANNOTATION(assert_capability(x))

/// Function annotation: returns a reference to the capability guarding
/// the returned data.
#define FIM_RETURN_CAPABILITY(x) FIM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs
/// a comment explaining why the access is safe.
#define FIM_NO_THREAD_SAFETY_ANALYSIS \
  FIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fim {

/// Deadlock-freedom ranks, one per mutex site in the codebase. Locks
/// must be acquired in strictly increasing rank order on every thread;
/// a mutex whose critical sections never acquire another lock (a leaf)
/// gets the highest rank among the locks it can be nested under. The
/// gaps leave room for future subsystems (fim-serve, distributed
/// mining) without renumbering.
enum class LockRank : std::uint32_t {
  /// StreamMiner::mutex_ — seal / rotate / freeze protocol. Lowest rank:
  /// a miner critical section may bump registry metrics or register
  /// timeline lanes, never the other way around.
  kStreamMiner = 100,

  /// MetricsSampler::mutex_ — stop/wake handshake of the sampler thread.
  kMetricsSampler = 200,

  /// Timeline::mutex_ — lane registration only (recording is lock-free).
  kTimeline = 300,

  /// kernels::CounterRegistry mutex — thread-local counter-block
  /// registration and snapshots. A leaf like the metric registry; held
  /// only while splicing a TLS block in/out or summing a snapshot.
  kKernelCounters = 350,

  /// obs::PerfDomainCollector::mutex_ — per-domain hardware-counter
  /// sample appends from worker threads. A leaf: Record copies one
  /// sample into a vector and takes no other lock.
  kPerfDomains = 375,

  /// obs::MemoryBreakdown::mutex_ — memory-component snapshot records
  /// from miners and tools. A leaf like the perf-domain collector:
  /// Record merges one component tree and takes no other lock.
  kMemoryBreakdown = 390,

  /// MetricRegistry::mutex_ — name -> metric lookup. A leaf: increments
  /// are atomic and a registry critical section takes no other lock.
  kMetricRegistry = 400,

  /// For tests and tools that need an unordered standalone lock.
  kLeaf = 1000,
};

namespace internal {

#ifdef FIM_ENABLE_DCHECKS
/// Aborts via FIM_CHECK when acquiring `mutex` would violate the rank
/// order against the calling thread's currently held locks. Called
/// before blocking on the lock, so an inversion fails deterministically
/// instead of deadlocking intermittently.
void LockRankCheckAcquire(const void* mutex, LockRank rank, const char* name);

/// Records `mutex` as held by the calling thread.
void LockRankRecordAcquire(const void* mutex, LockRank rank, const char* name);

/// Removes `mutex` from the calling thread's held set.
void LockRankRecordRelease(const void* mutex);
#endif  // FIM_ENABLE_DCHECKS

}  // namespace internal

/// A std::mutex carrying a thread-safety capability and a deadlock rank.
/// Prefer MutexLock for scoped acquisition; Lock/Unlock exist for the
/// few protocols (CondVar) that need explicit control.
class FIM_CAPABILITY("mutex") Mutex {
 public:
  /// `name` is used in lock-rank failure messages only; it must outlive
  /// the mutex (string literals do).
  explicit Mutex(LockRank rank, const char* name = "")
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FIM_ACQUIRE() {
#ifdef FIM_ENABLE_DCHECKS
    internal::LockRankCheckAcquire(this, rank_, name_);
#endif
    mu_.lock();
#ifdef FIM_ENABLE_DCHECKS
    internal::LockRankRecordAcquire(this, rank_, name_);
#endif
  }

  void Unlock() FIM_RELEASE() {
#ifdef FIM_ENABLE_DCHECKS
    internal::LockRankRecordRelease(this);
#endif
    mu_.unlock();
  }

  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// RAII lock guard over a fim::Mutex (the annotated replacement for
/// std::lock_guard / std::scoped_lock on one mutex).
class FIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FIM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() FIM_RELEASE() { mutex_.Unlock(); }

 private:
  Mutex& mutex_;
};

/// Condition variable paired with fim::Mutex. The mutex must be held
/// around every Wait; it is released while blocked and re-held on
/// return (the lock-rank bookkeeping keeps the mutex on the waiter's
/// held stack across the wait, which is sound: a blocked waiter
/// acquires nothing).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible, as with the std
  /// primitive — re-check the predicate under the lock).
  void Wait(Mutex& mutex) FIM_REQUIRES(mutex);

  /// Blocks until notified or `deadline` passes. Returns true exactly
  /// when the deadline passed (timeout).
  bool WaitUntil(Mutex& mutex,
                 std::chrono::steady_clock::time_point deadline)
      FIM_REQUIRES(mutex);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fim

#endif  // FIM_COMMON_SYNC_H_
