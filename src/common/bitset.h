#ifndef FIM_COMMON_BITSET_H_
#define FIM_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fim {

/// A fixed-size dynamic bit set used for dense transaction rows and for
/// fast subset tests in the table-based miners and the verification
/// oracle. The size is set at construction; all binary operations
/// require equal sizes.
class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}

  /// Creates a bitset with `size` bits, all cleared.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  void Set(std::size_t pos) { words_[pos >> 6] |= (uint64_t{1} << (pos & 63)); }
  void Reset(std::size_t pos) {
    words_[pos >> 6] &= ~(uint64_t{1} << (pos & 63));
  }
  bool Test(std::size_t pos) const {
    return (words_[pos >> 6] >> (pos & 63)) & 1;
  }

  /// Clears all bits (keeps the size).
  void Clear();

  /// Number of set bits.
  std::size_t Count() const;

  /// True if no bit is set.
  bool None() const;

  /// In-place intersection with `other`. Sizes must match.
  void IntersectWith(const DynamicBitset& other);

  /// In-place union with `other`. Sizes must match.
  void UnionWith(const DynamicBitset& other);

  /// True if every set bit of *this is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// Appends the indices of all set bits, in increasing order, to `out`.
  void AppendSetBits(std::vector<uint32_t>* out) const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  std::size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace fim

#endif  // FIM_COMMON_BITSET_H_
