#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace fim {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  for (auto& s : state_) s = SplitMix64(&seed);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

}  // namespace fim
