#ifndef FIM_COMMON_RNG_H_
#define FIM_COMMON_RNG_H_

#include <cstdint>

namespace fim {

/// Deterministic pseudo-random number generator (xoshiro256**) used by all
/// synthetic data generators so that every experiment is reproducible from
/// a seed. Not cryptographically secure; not thread-safe per instance.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal variate (Box-Muller, cached pair).
  double Normal();

  /// Bernoulli trial with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fim

#endif  // FIM_COMMON_RNG_H_
