#ifndef FIM_COMMON_CHECK_H_
#define FIM_COMMON_CHECK_H_

#include <sstream>

#include "common/status.h"

namespace fim {
namespace internal {

/// Accumulates the streamed message of a failing check and terminates the
/// process from its destructor (message + file:line on stderr, then
/// std::abort). Only ever constructed on the failure path, so the cost of
/// the ostringstream is irrelevant.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  ~CheckFailure();

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Turns the CheckFailure stream expression into void so both arms of the
/// conditional in FIM_CHECK have the same type. operator& binds looser
/// than operator<<, so the whole streamed chain is swallowed.
struct CheckVoidify {
  // Binds the freshly constructed temporary as well as the reference the
  // streaming chain returns.
  void operator&(const CheckFailure&) {}
};

}  // namespace internal
}  // namespace fim

/// FIM_CHECK(cond) — active in every build type. When `cond` is false,
/// prints "FIM_CHECK failed: cond ..." with file:line plus any streamed
/// message and aborts:
///
///   FIM_CHECK(!items.empty()) << "transaction " << t << " is empty";
///
/// The condition is evaluated exactly once; the streamed operands are
/// evaluated only on failure.
#define FIM_CHECK(condition)                     \
  (condition) ? (void)0                          \
              : ::fim::internal::CheckVoidify()& \
                    ::fim::internal::CheckFailure(__FILE__, __LINE__, \
                                                  #condition)

/// FIM_CHECK_OK(expr) — aborts unless the fim::Status expression is OK;
/// the status message becomes part of the failure output.
#define FIM_CHECK_OK(expr)                                               \
  do {                                                                   \
    const ::fim::Status fim_internal_check_status = (expr);              \
    FIM_CHECK(fim_internal_check_status.ok())                            \
        << fim_internal_check_status.ToString();                         \
  } while (0)

/// FIM_DCHECK / FIM_DCHECK_OK — compiled to active checks only when
/// FIM_ENABLE_DCHECKS is defined (the FIM_ENABLE_DCHECKS CMake option;
/// AUTO enables it for Debug builds). Otherwise the condition is type-
/// checked but never evaluated, so dchecks may be arbitrarily expensive.
#ifdef FIM_ENABLE_DCHECKS

#define FIM_DCHECK(condition) FIM_CHECK(condition)
#define FIM_DCHECK_OK(expr) FIM_CHECK_OK(expr)

/// True when structural validators wired into the data structures run.
#define FIM_DCHECK_IS_ON() true

#else  // !FIM_ENABLE_DCHECKS

#define FIM_DCHECK(condition) FIM_CHECK(true || (condition))
#define FIM_DCHECK_OK(expr)                \
  do {                                     \
    if (false) FIM_CHECK_OK(expr);         \
  } while (0)
#define FIM_DCHECK_IS_ON() false

#endif  // FIM_ENABLE_DCHECKS

#endif  // FIM_COMMON_CHECK_H_
