#include "common/sync.h"

#include <vector>

#include "common/check.h"

namespace fim {

namespace internal {

#ifdef FIM_ENABLE_DCHECKS

namespace {

struct HeldLock {
  const void* mutex;
  LockRank rank;
  const char* name;
};

/// The calling thread's acquisition stack, outermost first. Debug-only
/// and tiny (lock nesting in this codebase is depth <= 2), so a plain
/// vector is fine.
thread_local std::vector<HeldLock> held_locks;

const char* DisplayName(const char* name) {
  return (name != nullptr && name[0] != '\0') ? name : "<unnamed>";
}

}  // namespace

void LockRankCheckAcquire(const void* mutex, LockRank rank,
                          const char* name) {
  for (const HeldLock& held : held_locks) {
    FIM_CHECK(held.mutex != mutex)
        << "lock-rank: recursive acquisition of fim::Mutex "
        << DisplayName(name) << " (rank " << static_cast<std::uint32_t>(rank)
        << ") — fim::Mutex is non-recursive, this would self-deadlock";
    FIM_CHECK(static_cast<std::uint32_t>(held.rank) <
              static_cast<std::uint32_t>(rank))
        << "lock-rank inversion: acquiring " << DisplayName(name) << " (rank "
        << static_cast<std::uint32_t>(rank) << ") while holding "
        << DisplayName(held.name) << " (rank "
        << static_cast<std::uint32_t>(held.rank)
        << "); locks must be acquired in strictly increasing rank order "
           "(see the lock-rank table in docs/STATIC_ANALYSIS.md)";
  }
}

void LockRankRecordAcquire(const void* mutex, LockRank rank,
                           const char* name) {
  held_locks.push_back(HeldLock{mutex, rank, name});
}

void LockRankRecordRelease(const void* mutex) {
  // Locks are almost always released innermost-first, so scan from the
  // back; out-of-order release (unlock not matching the top) is legal
  // for a mutex, only the ordering of acquisitions matters for ranks.
  for (std::size_t i = held_locks.size(); i > 0; --i) {
    if (held_locks[i - 1].mutex == mutex) {
      held_locks.erase(held_locks.begin() +
                       static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
  FIM_CHECK(false)
      << "lock-rank: releasing a fim::Mutex the thread does not hold";
}

#endif  // FIM_ENABLE_DCHECKS

}  // namespace internal

// The waits adopt the already-held std::mutex, let the condition
// variable release/re-acquire it, then release the unique_lock without
// unlocking — ownership stays with the caller's MutexLock / Lock()
// exactly as the FIM_REQUIRES contract states.

void CondVar::Wait(Mutex& mutex) {
  std::unique_lock<std::mutex> lock(mutex.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::WaitUntil(Mutex& mutex,
                        std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex.mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  return status == std::cv_status::timeout;
}

}  // namespace fim
