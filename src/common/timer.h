#ifndef FIM_COMMON_TIMER_H_
#define FIM_COMMON_TIMER_H_

#include <chrono>
#include <cstddef>
#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fim {

/// Wall-clock stopwatch used by the benchmark harness.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU-time stopwatch over the calling thread's CPU clock. Measures time
/// the thread actually executed, so a span that sleeps (or waits on a
/// join) shows wall >> cpu, and a span whose workers saturate the cores
/// shows cpu ~ wall on the worker threads. Construct and read on the
/// same thread.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Now(); }

  /// Thread CPU seconds since construction or the last Reset().
  double Seconds() const { return Now() - start_; }

  /// The calling thread's CPU clock in seconds (monotone per thread).
  static double Now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    // Fallback: process CPU time; coarse but monotone.
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

 private:
  double start_;
};

/// Peak resident set size with an explicit error path: `known` is false
/// when the platform does not expose `ru_maxrss` or getrusage() itself
/// failed, so consumers can render "unknown" instead of a fake 0.
struct PeakRssResult {
  std::size_t bytes = 0;
  bool known = false;
};

/// Peak resident set size of the process, normalized to bytes.
/// `ru_maxrss` units differ per platform — KiB on Linux and the BSDs,
/// bytes on macOS — and this is the one place that conversion lives.
/// Monotone over the process lifetime (a high-water mark), so record it
/// once at report time.
inline PeakRssResult PeakRssBytes() {
  PeakRssResult result;
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return result;  // known=false
  if (usage.ru_maxrss <= 0) return result;  // kernel hides it (e.g. WSL1)
#if defined(__APPLE__)
  result.bytes = static_cast<std::size_t>(usage.ru_maxrss);  // bytes
#else
  result.bytes = static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
  result.known = true;
#endif
  return result;
}

/// Legacy accessor: PeakRssBytes().bytes, with the error path collapsed
/// to 0. Prefer PeakRssBytes() where "unknown" matters.
inline std::size_t PeakRss() { return PeakRssBytes().bytes; }

/// Byte counts rendered as MiB — the one shared conversion for every
/// human-readable rendering (stats text, sampler trace counters,
/// fim-prof tables), so the unit cannot drift between them.
inline double BytesToMib(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace fim

#endif  // FIM_COMMON_TIMER_H_
