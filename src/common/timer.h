#ifndef FIM_COMMON_TIMER_H_
#define FIM_COMMON_TIMER_H_

#include <chrono>

namespace fim {

/// Wall-clock stopwatch used by the benchmark harness.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fim

#endif  // FIM_COMMON_TIMER_H_
