#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace fim {
namespace internal {

CheckFailure::CheckFailure(const char* file, int line,
                           const char* condition) {
  stream_ << "FIM_CHECK failed: " << condition << " (" << file << ":" << line
          << ") ";
}

CheckFailure::~CheckFailure() {
  const std::string message = stream_.str();
  std::fwrite(message.data(), 1, message.size(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace fim
