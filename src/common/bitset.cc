#include "common/bitset.h"

#include <algorithm>
#include <bit>

namespace fim {

void DynamicBitset::Clear() { std::fill(words_.begin(), words_.end(), 0); }

std::size_t DynamicBitset::Count() const {
  std::size_t n = 0;
  for (uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void DynamicBitset::IntersectWith(const DynamicBitset& other) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void DynamicBitset::UnionWith(const DynamicBitset& other) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

void DynamicBitset::AppendSetBits(std::vector<uint32_t>* out) const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      int bit = std::countr_zero(w);
      out->push_back(static_cast<uint32_t>(wi * 64 + bit));
      w &= w - 1;
    }
  }
}

}  // namespace fim
