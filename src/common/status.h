#ifndef FIM_COMMON_STATUS_H_
#define FIM_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace fim {

/// Error categories used throughout the library. The library does not
/// throw exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kInternal,
};

/// Lightweight status object (RocksDB-style). Cheap to copy when OK;
/// carries a message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Factory functions for each error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad minimum support".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status (a minimal StatusOr).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error status keeps call
  /// sites terse: `return db;` / `return Status::IoError(...)`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Requires ok(). The checked accessors make misuse loud in debug builds.
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// Requires !ok() for a meaningful error; returns OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace fim

#endif  // FIM_COMMON_STATUS_H_
