#include "data/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "data/fimi_io.h"

namespace fim {

namespace {

constexpr char kMagic[4] = {'F', 'I', 'M', 'B'};
constexpr uint32_t kVersion = 1;

using io::ReadPod;
using io::WritePod;

}  // namespace

Status WriteBinaryFile(const TransactionDatabase& db,
                       const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(db.NumItems()));
  WritePod(out, static_cast<uint64_t>(db.NumTransactions()));
  for (const auto& t : db.transactions()) {
    WritePod(out, static_cast<uint32_t>(t.size()));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(ItemId)));
  }
  out.flush();
  if (!out) return Status::IoError("write failure on " + path);
  return Status::OK();
}

Result<TransactionDatabase> ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a FIMB file");
  }
  uint32_t version = 0;
  uint64_t num_items = 0;
  uint64_t num_transactions = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported FIMB version");
  }
  if (!ReadPod(in, &num_items) || !ReadPod(in, &num_transactions)) {
    return Status::InvalidArgument("truncated FIMB header");
  }

  TransactionDatabase db;
  std::vector<ItemId> items;
  for (uint64_t k = 0; k < num_transactions; ++k) {
    uint32_t length = 0;
    if (!ReadPod(in, &length)) {
      return Status::InvalidArgument("truncated FIMB transaction header");
    }
    items.resize(length);
    in.read(reinterpret_cast<char*>(items.data()),
            static_cast<std::streamsize>(length * sizeof(ItemId)));
    if (!in) return Status::InvalidArgument("truncated FIMB transaction");
    for (ItemId i : items) {
      if (i >= num_items) {
        return Status::InvalidArgument("FIMB item id out of bounds");
      }
    }
    db.AddTransaction(items);
  }
  db.SetNumItems(static_cast<std::size_t>(num_items));
  return db;
}

Result<TransactionDatabase> ReadDatabaseFile(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return Status::IoError("cannot open " + path);
  char magic[4] = {0, 0, 0, 0};
  probe.read(magic, sizeof(magic));
  probe.close();
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) == 0) {
    return ReadBinaryFile(path);
  }
  return ReadFimiFile(path);
}

}  // namespace fim
