#include "data/result_io.h"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>

namespace fim {

std::string ClosedSetsToString(const std::vector<ClosedItemset>& sets) {
  std::string out;
  for (const auto& set : sets) {
    for (std::size_t i = 0; i < set.items.size(); ++i) {
      if (i > 0) out += ' ';
      out += std::to_string(set.items[i]);
    }
    out += " (";
    out += std::to_string(set.support);
    out += ")\n";
  }
  return out;
}

Status WriteClosedSetsFile(const std::vector<ClosedItemset>& sets,
                           const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ClosedSetsToString(sets);
  out.flush();
  if (!out) return Status::IoError("write failure on " + path);
  return Status::OK();
}

namespace {

bool ParseLine(std::string_view line, ClosedItemset* set,
               std::string* error) {
  set->items.clear();
  set->support = 0;
  std::size_t pos = 0;
  bool saw_support = false;
  while (pos < line.size()) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    if (pos >= line.size()) break;
    if (line[pos] == '(') {
      ++pos;
      uint64_t value = 0;
      bool digits = false;
      while (pos < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[pos]))) {
        value = value * 10 + static_cast<uint64_t>(line[pos] - '0');
        digits = true;
        ++pos;
      }
      if (!digits || pos >= line.size() || line[pos] != ')') {
        *error = "malformed support";
        return false;
      }
      ++pos;
      set->support = static_cast<Support>(value);
      saw_support = true;
    } else if (std::isdigit(static_cast<unsigned char>(line[pos]))) {
      if (saw_support) {
        *error = "items after the support";
        return false;
      }
      uint64_t value = 0;
      while (pos < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[pos]))) {
        value = value * 10 + static_cast<uint64_t>(line[pos] - '0');
        ++pos;
      }
      set->items.push_back(static_cast<ItemId>(value));
    } else {
      *error = "unexpected character '" + std::string(1, line[pos]) + "'";
      return false;
    }
  }
  if (!saw_support) {
    *error = "missing support";
    return false;
  }
  NormalizeItems(&set->items);
  return true;
}

}  // namespace

Result<std::vector<ClosedItemset>> ParseClosedSets(std::string_view text) {
  std::vector<ClosedItemset> sets;
  std::string error;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    const bool last = end == text.size();
    start = end + 1;
    if (!line.empty() && line[0] != '#') {
      ClosedItemset set;
      if (!ParseLine(line, &set, &error)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": " + error);
      }
      sets.push_back(std::move(set));
    }
    if (last) break;
  }
  return sets;
}

Result<std::vector<ClosedItemset>> ReadClosedSetsFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on " + path);
  return ParseClosedSets(buffer.str());
}

}  // namespace fim
