#include "data/profiles.h"

#include <algorithm>
#include <cmath>

#include "data/expression.h"
#include "data/generators.h"
#include "data/transpose.h"

namespace fim {

namespace {

std::size_t Scaled(std::size_t full, double scale, std::size_t floor_value) {
  auto scaled = static_cast<std::size_t>(std::llround(
      static_cast<double>(full) * scale));
  return std::max(scaled, floor_value);
}

}  // namespace

TransactionDatabase MakeYeastLike(double scale, uint64_t seed) {
  ExpressionConfig config;
  config.num_genes = Scaled(6316, scale, 64);
  config.num_conditions = 300;
  config.num_modules = Scaled(40, scale, 6);
  config.genes_per_module = Scaled(150, scale, 8);
  config.conditions_per_module = 30;
  config.module_signal = 0.6;
  config.gene_bias_stddev = 0.0;
  // Low background noise: a gene crosses the +/-0.2 thresholds almost
  // only when a planted module drives it, which matches the sparse,
  // structured responses of the real compendium (random threshold
  // crossings would blow the closed-set count up combinatorially).
  config.noise_stddev = 0.1;
  config.seed = seed;
  ExpressionMatrix matrix = GenerateExpression(config);
  return Discretize(matrix, ExpressionOrientation::kConditionsAsTransactions);
}

TransactionDatabase MakeNcbi60Like(double scale, uint64_t seed) {
  ExpressionConfig config;
  config.num_genes = Scaled(1400, scale, 48);
  config.num_conditions = 64;
  config.num_modules = Scaled(12, scale, 3);
  config.genes_per_module = Scaled(200, scale, 8);
  config.conditions_per_module = 48;
  config.module_signal = 0.5;
  // Strong per-gene bias: many genes are consistently over- or
  // under-expressed across nearly all cell lines, which keeps closed sets
  // plentiful even at supports close to the transaction count.
  config.gene_bias_stddev = 0.45;
  config.noise_stddev = 0.15;
  config.seed = seed;
  ExpressionMatrix matrix = GenerateExpression(config);
  return Discretize(matrix, ExpressionOrientation::kConditionsAsTransactions);
}

TransactionDatabase MakeThrombinLike(double scale, uint64_t seed) {
  SparseBinaryConfig config;
  config.num_records = 64;
  config.num_features = Scaled(139351, scale, 512);
  config.num_prototypes = 12;
  config.features_per_prototype = Scaled(800, scale, 32);
  // Records mix half of the prototype pool, so shared feature blocks
  // reach supports in the paper's smin sweep range (25..40 of 64).
  config.prototypes_per_record = 6;
  config.prototype_keep_probability = 0.85;
  config.random_features_per_record = Scaled(300, scale, 16);
  config.seed = seed;
  return GenerateSparseBinary(config);
}

TransactionDatabase MakeWebviewLike(double scale, uint64_t seed) {
  MarketBasketConfig config;
  config.num_items = 497;
  config.num_transactions = Scaled(59602, scale, 512);
  config.avg_transaction_size = 2.5;
  config.zipf_exponent = 1.0;
  config.num_patterns = 60;
  config.avg_pattern_size = 3;
  config.pattern_probability = 0.35;
  config.pattern_keep_probability = 0.9;
  config.seed = seed;
  TransactionDatabase baskets = GenerateMarketBasket(config);
  return Transpose(baskets);
}

}  // namespace fim
