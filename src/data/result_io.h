#ifndef FIM_DATA_RESULT_IO_H_
#define FIM_DATA_RESULT_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/itemset.h"

namespace fim {

/// Writes mined sets in the classic miner output format — one set per
/// line, items space-separated, absolute support in parentheses:
/// "3 17 42 (57)". This is also what the fim-mine tool prints.
Status WriteClosedSetsFile(const std::vector<ClosedItemset>& sets,
                           const std::string& path);

/// Renders the same format to a string.
std::string ClosedSetsToString(const std::vector<ClosedItemset>& sets);

/// Parses the format back (for result pipelines and round-trip tests).
Result<std::vector<ClosedItemset>> ParseClosedSets(std::string_view text);

/// Reads a result file written by WriteClosedSetsFile / fim-mine.
Result<std::vector<ClosedItemset>> ReadClosedSetsFile(
    const std::string& path);

}  // namespace fim

#endif  // FIM_DATA_RESULT_IO_H_
