#include "data/stats.h"

#include <algorithm>
#include <cstdio>

namespace fim {

DatabaseStats ComputeStats(const TransactionDatabase& db) {
  DatabaseStats s;
  s.num_transactions = db.NumTransactions();
  s.num_items = db.NumItems();
  const auto freq = db.ItemFrequencies();
  s.num_used_items =
      static_cast<std::size_t>(std::count_if(freq.begin(), freq.end(),
                                             [](Support f) { return f > 0; }));
  s.min_transaction_size = s.num_transactions > 0 ? SIZE_MAX : 0;
  for (const auto& t : db.transactions()) {
    s.total_occurrences += t.size();
    s.min_transaction_size = std::min(s.min_transaction_size, t.size());
    s.max_transaction_size = std::max(s.max_transaction_size, t.size());
  }
  if (s.num_transactions > 0) {
    s.avg_transaction_size =
        static_cast<double>(s.total_occurrences) /
        static_cast<double>(s.num_transactions);
  }
  if (s.num_transactions > 0 && s.num_used_items > 0) {
    s.density = static_cast<double>(s.total_occurrences) /
                (static_cast<double>(s.num_transactions) *
                 static_cast<double>(s.num_used_items));
  }
  return s;
}

std::string StatsToString(const DatabaseStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu tx x %zu items (%zu used), avg size %.1f, "
                "min/max %zu/%zu, density %.4f",
                stats.num_transactions, stats.num_items, stats.num_used_items,
                stats.avg_transaction_size, stats.min_transaction_size,
                stats.max_transaction_size, stats.density);
  return std::string(buf);
}

}  // namespace fim
