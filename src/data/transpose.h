#ifndef FIM_DATA_TRANSPOSE_H_
#define FIM_DATA_TRANSPOSE_H_

#include "data/transaction_database.h"

namespace fim {

/// Transposes a database: transaction k of the result is the tid list of
/// item k of the input (items and transactions swap roles, paper §4 —
/// used to turn BMS-WebView-1 into a many-items / few-transactions data
/// set). Items that occur in no transaction produce no output transaction;
/// the result's item base size equals the input's transaction count.
TransactionDatabase Transpose(const TransactionDatabase& db);

}  // namespace fim

#endif  // FIM_DATA_TRANSPOSE_H_
