#include "data/expression.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/status.h"

namespace fim {

namespace {

// Samples `count` distinct indices from [0, bound).
std::vector<std::size_t> SampleDistinct(std::size_t count, std::size_t bound,
                                        Rng* rng) {
  count = std::min(count, bound);
  // Floyd's algorithm would be fancier; with our sizes a partial
  // Fisher-Yates over an index vector is simpler and fast enough.
  std::vector<std::size_t> indices(bound);
  for (std::size_t i = 0; i < bound; ++i) indices[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t j = i + rng->Uniform(bound - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

}  // namespace

ExpressionMatrix GenerateExpression(const ExpressionConfig& config) {
  Rng rng(config.seed);
  ExpressionMatrix matrix(config.num_genes, config.num_conditions);

  // Background noise and optional per-gene bias.
  for (std::size_t g = 0; g < config.num_genes; ++g) {
    double bias = config.gene_bias_stddev > 0.0
                      ? rng.Normal() * config.gene_bias_stddev
                      : 0.0;
    for (std::size_t c = 0; c < config.num_conditions; ++c) {
      matrix.at(g, c) = bias + rng.Normal() * config.noise_stddev;
    }
  }

  // Planted modules: each module picks a gene block and a condition block;
  // every member gene gets a consistent up or down response over the
  // module's conditions.
  for (std::size_t m = 0; m < config.num_modules; ++m) {
    auto genes = SampleDistinct(config.genes_per_module, config.num_genes,
                                &rng);
    auto conditions = SampleDistinct(config.conditions_per_module,
                                     config.num_conditions, &rng);
    for (std::size_t g : genes) {
      double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      double magnitude =
          config.module_signal * (0.75 + 0.5 * rng.UniformDouble());
      for (std::size_t c : conditions) {
        matrix.at(g, c) += sign * magnitude;
      }
    }
  }
  return matrix;
}

TransactionDatabase Discretize(const ExpressionMatrix& matrix,
                               ExpressionOrientation orientation,
                               double over_threshold, double under_threshold) {
  TransactionDatabase db;
  std::vector<ItemId> items;
  if (orientation == ExpressionOrientation::kConditionsAsTransactions) {
    for (std::size_t c = 0; c < matrix.num_conditions(); ++c) {
      items.clear();
      for (std::size_t g = 0; g < matrix.num_genes(); ++g) {
        double v = matrix.at(g, c);
        if (v > over_threshold) {
          items.push_back(static_cast<ItemId>(2 * g));
        } else if (v < under_threshold) {
          items.push_back(static_cast<ItemId>(2 * g + 1));
        }
      }
      db.AddTransaction(items);
    }
    db.SetNumItems(2 * matrix.num_genes());
  } else {
    for (std::size_t g = 0; g < matrix.num_genes(); ++g) {
      items.clear();
      for (std::size_t c = 0; c < matrix.num_conditions(); ++c) {
        double v = matrix.at(g, c);
        if (v > over_threshold) {
          items.push_back(static_cast<ItemId>(2 * c));
        } else if (v < under_threshold) {
          items.push_back(static_cast<ItemId>(2 * c + 1));
        }
      }
      db.AddTransaction(items);
    }
    db.SetNumItems(2 * matrix.num_conditions());
  }
  return db;
}


Result<TransactionDatabase> DiscretizeQuantile(
    const ExpressionMatrix& matrix, ExpressionOrientation orientation,
    double tail_fraction) {
  if (!(tail_fraction > 0.0 && tail_fraction < 0.5)) {
    return Status::InvalidArgument("tail_fraction must be in (0, 0.5)");
  }
  const std::size_t total = matrix.num_genes() * matrix.num_conditions();
  if (total == 0) {
    return Status::InvalidArgument("empty expression matrix");
  }
  std::vector<double> values;
  values.reserve(total);
  for (std::size_t g = 0; g < matrix.num_genes(); ++g) {
    for (std::size_t c = 0; c < matrix.num_conditions(); ++c) {
      values.push_back(matrix.at(g, c));
    }
  }
  std::sort(values.begin(), values.end());
  const auto tail = static_cast<std::size_t>(
      std::floor(tail_fraction * static_cast<double>(total)));
  if (tail == 0 || 2 * tail >= total) {
    return Status::InvalidArgument(
        "tail_fraction leaves no interior values for this matrix size");
  }
  // A value is over-expressed when strictly above the upper cut and
  // under-expressed when strictly below the lower cut; ties at the cut
  // fall into the neutral middle, so at most tail_fraction of the
  // entries land in each tail.
  const double lower_cut = values[tail];
  const double upper_cut = values[total - tail - 1];
  return Discretize(matrix, orientation, upper_cut, lower_cut);
}
}  // namespace fim
