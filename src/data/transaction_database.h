#ifndef FIM_DATA_TRANSACTION_DATABASE_H_
#define FIM_DATA_TRANSACTION_DATABASE_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/itemset.h"
#include "obs/memory.h"

namespace fim {

/// Horizontal transaction database: a bag of transactions, each a sorted,
/// duplicate-free vector of item ids over the item base 0..NumItems()-1.
///
/// This is the input type of every miner in the library. Construction is
/// incremental via AddTransaction(); items are normalized on insertion.
/// Empty transactions are kept out (they carry no information for closed
/// item set mining; see paper §2.2 "no empty transactions are ever kept").
class TransactionDatabase {
 public:
  TransactionDatabase() = default;

  /// Builds a database from raw transactions; items are normalized.
  /// `num_items` may be 0 to derive the item base from the data.
  static TransactionDatabase FromTransactions(
      std::vector<std::vector<ItemId>> transactions, std::size_t num_items = 0);

  /// Adds one transaction (sorted + deduplicated internally). Empty
  /// transactions are dropped. Grows the item base if needed.
  void AddTransaction(std::vector<ItemId> items);

  /// Declares the item base size (useful when some items never occur).
  /// Never shrinks below the largest item seen.
  void SetNumItems(std::size_t num_items);

  /// Optional human-readable item names (for examples / reporting).
  /// Must have exactly NumItems() entries when set.
  Status SetItemNames(std::vector<std::string> names);
  const std::vector<std::string>& item_names() const { return item_names_; }

  /// Name of `item`, or its numeric id when no names are attached.
  std::string ItemName(ItemId item) const;

  std::size_t NumTransactions() const { return transactions_.size(); }
  std::size_t NumItems() const { return num_items_; }

  /// Total number of item occurrences over all transactions.
  std::size_t TotalItemOccurrences() const;

  const std::vector<ItemId>& transaction(std::size_t i) const {
    return transactions_[i];
  }
  const std::vector<std::vector<ItemId>>& transactions() const {
    return transactions_;
  }

  /// Number of transactions containing each item.
  std::vector<Support> ItemFrequencies() const;

  /// Vertical representation: for each item, the ascending list of
  /// transaction indices containing it (the Carpenter representation).
  std::vector<std::vector<Tid>> BuildVertical() const;

  /// Support of an arbitrary (sorted) item set by direct counting.
  /// O(total database size); meant for tests and small inputs.
  Support CountSupport(std::span<const ItemId> items) const;

  /// Exact heap footprint (capacity bytes) as a breakdown named
  /// "database": the transaction spine + per-row buffers vs the
  /// optional item names. O(NumTransactions()) — call once at record
  /// time, not per transaction.
  obs::MemoryComponent ApproxMemoryUsage() const;

 private:
  std::vector<std::vector<ItemId>> transactions_;
  std::vector<std::string> item_names_;
  std::size_t num_items_ = 0;
};

}  // namespace fim

#endif  // FIM_DATA_TRANSACTION_DATABASE_H_
