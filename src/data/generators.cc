#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace fim {

namespace {

// Samples an index from the cumulative weight table via binary search.
std::size_t SampleCumulative(const std::vector<double>& cumulative, Rng* rng) {
  double u = rng->UniformDouble() * cumulative.back();
  auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
  std::size_t idx = static_cast<std::size_t>(it - cumulative.begin());
  return std::min(idx, cumulative.size() - 1);
}

// Geometric-ish size around `mean` with a floor of `floor_size`.
std::size_t SampleSize(double mean, std::size_t floor_size, Rng* rng) {
  if (mean <= static_cast<double>(floor_size)) return floor_size;
  // Exponential with the right mean above the floor.
  double extra = -(mean - static_cast<double>(floor_size)) *
                 std::log(1.0 - rng->UniformDouble());
  return floor_size + static_cast<std::size_t>(extra);
}

}  // namespace

TransactionDatabase GenerateMarketBasket(const MarketBasketConfig& config) {
  Rng rng(config.seed);

  // Zipf popularity over a random permutation of the items (so that item
  // id carries no popularity information).
  std::vector<ItemId> perm(config.num_items);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    perm[i] = static_cast<ItemId>(i);
  }
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Uniform(i)]);
  }
  std::vector<double> cumulative(config.num_items);
  double total = 0.0;
  for (std::size_t rank = 0; rank < config.num_items; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1),
                            config.zipf_exponent);
    cumulative[rank] = total;
  }

  // Planted patterns: popular-item-biased subsets.
  std::vector<std::vector<ItemId>> patterns(config.num_patterns);
  for (auto& pattern : patterns) {
    std::size_t size =
        SampleSize(static_cast<double>(config.avg_pattern_size), 2, &rng);
    size = std::min(size, config.num_items);
    while (pattern.size() < size) {
      ItemId item = perm[SampleCumulative(cumulative, &rng)];
      if (std::find(pattern.begin(), pattern.end(), item) == pattern.end()) {
        pattern.push_back(item);
      }
    }
  }

  TransactionDatabase db;
  std::vector<ItemId> items;
  for (std::size_t t = 0; t < config.num_transactions; ++t) {
    items.clear();
    if (!patterns.empty() && rng.Bernoulli(config.pattern_probability)) {
      const auto& pattern = patterns[rng.Uniform(patterns.size())];
      for (ItemId item : pattern) {
        if (rng.Bernoulli(config.pattern_keep_probability)) {
          items.push_back(item);
        }
      }
    }
    std::size_t target = SampleSize(config.avg_transaction_size, 1, &rng);
    while (items.size() < target) {
      items.push_back(perm[SampleCumulative(cumulative, &rng)]);
    }
    db.AddTransaction(items);
  }
  db.SetNumItems(config.num_items);
  return db;
}

TransactionDatabase GenerateRandomDense(std::size_t num_transactions,
                                        std::size_t num_items, double density,
                                        uint64_t seed) {
  Rng rng(seed);
  TransactionDatabase db;
  std::vector<ItemId> items;
  for (std::size_t t = 0; t < num_transactions; ++t) {
    items.clear();
    for (std::size_t i = 0; i < num_items; ++i) {
      if (rng.Bernoulli(density)) items.push_back(static_cast<ItemId>(i));
    }
    db.AddTransaction(items);
  }
  db.SetNumItems(num_items);
  return db;
}

TransactionDatabase GenerateSparseBinary(const SparseBinaryConfig& config) {
  Rng rng(config.seed);

  std::vector<std::vector<ItemId>> prototypes(config.num_prototypes);
  for (auto& proto : prototypes) {
    proto.reserve(config.features_per_prototype);
    for (std::size_t f = 0; f < config.features_per_prototype; ++f) {
      proto.push_back(static_cast<ItemId>(rng.Uniform(config.num_features)));
    }
    NormalizeItems(&proto);
  }

  TransactionDatabase db;
  std::vector<ItemId> items;
  for (std::size_t r = 0; r < config.num_records; ++r) {
    items.clear();
    for (std::size_t p = 0; p < config.prototypes_per_record &&
                            !prototypes.empty();
         ++p) {
      const auto& proto = prototypes[rng.Uniform(prototypes.size())];
      for (ItemId f : proto) {
        if (rng.Bernoulli(config.prototype_keep_probability)) {
          items.push_back(f);
        }
      }
    }
    for (std::size_t f = 0; f < config.random_features_per_record; ++f) {
      items.push_back(static_cast<ItemId>(rng.Uniform(config.num_features)));
    }
    db.AddTransaction(items);
  }
  db.SetNumItems(config.num_features);
  return db;
}

}  // namespace fim
