#include "data/transpose.h"

namespace fim {

TransactionDatabase Transpose(const TransactionDatabase& db) {
  std::vector<std::vector<Tid>> tidlists = db.BuildVertical();
  TransactionDatabase out;
  for (auto& tids : tidlists) {
    if (tids.empty()) continue;
    out.AddTransaction(std::move(tids));  // Tid and ItemId are both uint32_t
  }
  out.SetNumItems(db.NumTransactions());
  return out;
}

}  // namespace fim
