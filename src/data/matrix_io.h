#ifndef FIM_DATA_MATRIX_IO_H_
#define FIM_DATA_MATRIX_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "data/expression.h"

namespace fim {

/// Reads an expression matrix from tab/space-separated text: one gene
/// per row, one numeric log-ratio per condition. All rows must have the
/// same number of columns; blank lines and lines starting with '#' are
/// skipped. This is the interchange format for real compendium data
/// (paper §4); the gene_expression example and the fim-discretize tool
/// consume it.
Result<ExpressionMatrix> ReadExpressionMatrixFile(const std::string& path);

/// Parses the same format from a string (for tests).
Result<ExpressionMatrix> ParseExpressionMatrix(std::string_view text);

/// Writes a matrix in the same format. Overwrites `path`.
Status WriteExpressionMatrixFile(const ExpressionMatrix& matrix,
                                 const std::string& path);

}  // namespace fim

#endif  // FIM_DATA_MATRIX_IO_H_
