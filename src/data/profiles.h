#ifndef FIM_DATA_PROFILES_H_
#define FIM_DATA_PROFILES_H_

#include <cstdint>

#include "data/transaction_database.h"

namespace fim {

/// Synthetic stand-ins for the paper's four evaluation data sets (see
/// DESIGN.md §3). `scale` in (0, 1] shrinks the item/gene/feature axis
/// (and for the web-view profile also the basket count) so the benches
/// can run quickly; scale = 1 reproduces the paper's dimensions. Each
/// profile is deterministic per seed.

/// Baker's-yeast compendium stand-in: 300 condition-transactions over
/// ~2 * 6316 * scale over/under-expression items, planted co-expression
/// modules, discretized at the paper's +/-0.2 thresholds.
TransactionDatabase MakeYeastLike(double scale = 1.0, uint64_t seed = 42);

/// NCBI60 stand-in: 64 cell-line transactions over ~2 * 1400 * scale
/// items with strong per-gene bias, so many items occur in almost every
/// transaction (the paper sweeps smin 46..54 of ~60).
TransactionDatabase MakeNcbi60Like(double scale = 1.0, uint64_t seed = 43);

/// Thrombin (KDD Cup 2001) subset stand-in: 64 sparse binary records over
/// 139351 * scale features with shared prototype feature blocks.
TransactionDatabase MakeThrombinLike(double scale = 1.0, uint64_t seed = 44);

/// Transposed BMS-WebView-1 stand-in: a 497-item power-law click-stream
/// basket database with 59602 * scale baskets, transposed so that the
/// result has 497 transactions over many items.
TransactionDatabase MakeWebviewLike(double scale = 1.0, uint64_t seed = 45);

}  // namespace fim

#endif  // FIM_DATA_PROFILES_H_
