#ifndef FIM_DATA_RECODE_H_
#define FIM_DATA_RECODE_H_

#include <span>
#include <vector>

#include "data/itemset.h"
#include "data/transaction_database.h"

namespace fim {

namespace obs {
class Timeline;
}  // namespace obs

/// Item code assignment policy (paper §3.4). The intersection miners are
/// fastest with ascending frequency (the rarest item gets code 0).
enum class ItemOrder {
  kNone,                  // keep original ids
  kFrequencyAscending,    // rarest item -> code 0 (paper default)
  kFrequencyDescending,   // most frequent item -> code 0
};

/// Transaction processing order (paper §3.4). Increasing size is the
/// paper's recommendation for the cumulative scheme.
enum class TransactionOrder {
  kNone,            // keep input order
  kSizeAscending,   // smallest transactions first (paper default)
  kSizeDescending,  // largest transactions first
};

/// A bijective (up to dropped items) mapping between original item ids and
/// mining codes. Items below the minimum support can be dropped up front:
/// this never changes the frequent closed item sets or their supports,
/// because every item of a frequent closed set is itself frequent, and so
/// is every item its closure could add.
struct Recoding {
  std::vector<ItemId> old_to_new;  // kInvalidItem for dropped items
  std::vector<ItemId> new_to_old;

  std::size_t num_kept() const { return new_to_old.size(); }
};

/// Computes the code assignment for `order`, dropping all items whose
/// frequency is below `min_item_support` (pass 0 or 1 to keep everything).
Recoding ComputeRecoding(const TransactionDatabase& db, ItemOrder order,
                         Support min_item_support);

/// Produces the recoded database: items mapped (dropped items removed,
/// transactions renormalized, empty transactions discarded) and
/// transactions reordered according to `transaction_order`. Same-size
/// transactions are ordered lexicographically on their descending item
/// sequence, as in the paper.
///
/// With `num_threads` > 1 the mapping and the reordering run on that many
/// worker threads (chunked mapping, then a stable parallel merge sort).
/// A stable sort's output is uniquely determined by the comparator and the
/// input order, so the result is identical to the sequential one for every
/// thread count.
///
/// `timeline` (optional, obs/timeline.h) gives each worker thread its own
/// event lane ("recode-map-N", "recode-sort-N", "recode-merge-..."); the
/// recorded events never affect the result.
TransactionDatabase ApplyRecoding(const TransactionDatabase& db,
                                  const Recoding& recoding,
                                  TransactionOrder transaction_order,
                                  unsigned num_threads = 1,
                                  obs::Timeline* timeline = nullptr);

/// Maps mined item codes back to original item ids (sorted ascending).
std::vector<ItemId> DecodeItems(std::span<const ItemId> coded,
                                const Recoding& recoding);

/// Wraps `inner` so that reported sets are translated back to original
/// item ids before being forwarded.
ClosedSetCallback MakeDecodingCallback(const Recoding& recoding,
                                       ClosedSetCallback inner);

}  // namespace fim

#endif  // FIM_DATA_RECODE_H_
