#include "data/itemset.h"

#include <algorithm>

#include "kernels/intersect.h"

namespace fim {

bool ClosedItemsetLess(const ClosedItemset& a, const ClosedItemset& b) {
  if (a.items != b.items) {
    return std::lexicographical_compare(a.items.begin(), a.items.end(),
                                        b.items.begin(), b.items.end());
  }
  return a.support < b.support;
}

ClosedSetCallback ClosedSetCollector::AsCallback() {
  return [this](std::span<const ItemId> items, Support support) {
    sets_.push_back(
        ClosedItemset{std::vector<ItemId>(items.begin(), items.end()),
                      support});
  };
}

void ClosedSetCollector::SortCanonical() {
  std::sort(sets_.begin(), sets_.end(), ClosedItemsetLess);
}

void NormalizeItems(std::vector<ItemId>* items) {
  std::sort(items->begin(), items->end());
  items->erase(std::unique(items->begin(), items->end()), items->end());
}

std::vector<ItemId> IntersectSorted(std::span<const ItemId> a,
                                    std::span<const ItemId> b) {
  std::vector<ItemId> out;
  kernels::IntersectInto(a, b, &out);
  return out;
}

bool IsSubsetSorted(std::span<const ItemId> a, std::span<const ItemId> b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::string ItemsToString(std::span<const ItemId> items) {
  std::string s = "{";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(items[i]);
  }
  s += "}";
  return s;
}

}  // namespace fim
