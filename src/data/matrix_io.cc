#include "data/matrix_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace fim {

namespace {

// Splits one line into doubles. Returns false on a malformed token.
bool ParseRow(std::string_view line, std::vector<double>* row,
              std::string* error) {
  row->clear();
  const char* p = line.data();
  const char* end = line.data() + line.size();
  while (p < end) {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    if (p >= end) break;
    char* after = nullptr;
    const double value = std::strtod(p, &after);
    if (after == p) {
      *error = "unparsable number near '" +
               std::string(p, std::min<std::size_t>(8, end - p)) + "'";
      return false;
    }
    row->push_back(value);
    p = after;
  }
  return true;
}

}  // namespace

Result<ExpressionMatrix> ParseExpressionMatrix(std::string_view text) {
  std::vector<std::vector<double>> rows;
  std::string error;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    const bool last = end == text.size();
    start = end + 1;
    if (!line.empty() && line[0] != '#') {
      std::vector<double> row;
      if (!ParseRow(line, &row, &error)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": " + error);
      }
      if (!row.empty()) {
        if (!rows.empty() && row.size() != rows.front().size()) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) + ": expected " +
              std::to_string(rows.front().size()) + " columns, got " +
              std::to_string(row.size()));
        }
        rows.push_back(std::move(row));
      }
    }
    if (last) break;
  }
  if (rows.empty()) {
    return Status::InvalidArgument("no data rows");
  }
  ExpressionMatrix matrix(rows.size(), rows.front().size());
  for (std::size_t g = 0; g < rows.size(); ++g) {
    for (std::size_t c = 0; c < rows[g].size(); ++c) {
      matrix.at(g, c) = rows[g][c];
    }
  }
  return matrix;
}

Result<ExpressionMatrix> ReadExpressionMatrixFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on " + path);
  return ParseExpressionMatrix(buffer.str());
}

Status WriteExpressionMatrixFile(const ExpressionMatrix& matrix,
                                 const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (std::size_t g = 0; g < matrix.num_genes(); ++g) {
    for (std::size_t c = 0; c < matrix.num_conditions(); ++c) {
      if (c > 0) out << '\t';
      out << matrix.at(g, c);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failure on " + path);
  return Status::OK();
}

}  // namespace fim
