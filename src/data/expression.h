#ifndef FIM_DATA_EXPRESSION_H_
#define FIM_DATA_EXPRESSION_H_

#include <cstdint>
#include <vector>

#include "data/transaction_database.h"

namespace fim {

/// Dense genes x conditions matrix of log expression ratios. Rows are
/// genes, columns are experimental conditions (paper §4).
class ExpressionMatrix {
 public:
  ExpressionMatrix(std::size_t num_genes, std::size_t num_conditions)
      : num_genes_(num_genes),
        num_conditions_(num_conditions),
        values_(num_genes * num_conditions, 0.0) {}

  std::size_t num_genes() const { return num_genes_; }
  std::size_t num_conditions() const { return num_conditions_; }

  double at(std::size_t gene, std::size_t condition) const {
    return values_[gene * num_conditions_ + condition];
  }
  double& at(std::size_t gene, std::size_t condition) {
    return values_[gene * num_conditions_ + condition];
  }

 private:
  std::size_t num_genes_;
  std::size_t num_conditions_;
  std::vector<double> values_;
};

/// Configuration of the planted-module expression generator. Modules are
/// (gene subset, condition subset) blocks with a shared up/down signal per
/// gene — the co-expression structure that makes transaction intersection
/// productive on this kind of data.
struct ExpressionConfig {
  std::size_t num_genes = 6316;
  std::size_t num_conditions = 300;
  std::size_t num_modules = 40;
  std::size_t genes_per_module = 150;
  std::size_t conditions_per_module = 30;
  double module_signal = 0.6;     // mean |shift| of module entries
  double gene_bias_stddev = 0.0;  // per-gene global bias (NCBI60-like
                                  // density when > 0)
  double noise_stddev = 0.2;
  uint64_t seed = 1;
};

/// Generates a synthetic expression matrix with planted modules.
ExpressionMatrix GenerateExpression(const ExpressionConfig& config);

/// Which axis becomes the transactions after discretization.
enum class ExpressionOrientation {
  kGenesAsTransactions,       // items = conditions (few items, many tx)
  kConditionsAsTransactions,  // items = genes (many items, few tx; the
                              // regime the paper's experiments use)
};

/// Boolean discretization following the paper: a value > `over_threshold`
/// yields the "over-expressed" item (2*id), a value < `under_threshold`
/// yields the "under-expressed" item (2*id + 1); values in between yield
/// nothing. Default thresholds are the paper's +/-0.2.
TransactionDatabase Discretize(const ExpressionMatrix& matrix,
                               ExpressionOrientation orientation,
                               double over_threshold = 0.2,
                               double under_threshold = -0.2);

/// Quantile-based discretization: per matrix, the upper `tail_fraction`
/// of all values becomes over-expression items and the lower
/// `tail_fraction` becomes under-expression items (a common alternative
/// when log-ratios are not centered or scaled like the paper's data;
/// tail_fraction must be in (0, 0.5)). Item encoding as in Discretize.
Result<TransactionDatabase> DiscretizeQuantile(
    const ExpressionMatrix& matrix, ExpressionOrientation orientation,
    double tail_fraction = 0.1);

}  // namespace fim

#endif  // FIM_DATA_EXPRESSION_H_
