#ifndef FIM_DATA_ITEMSET_H_
#define FIM_DATA_ITEMSET_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace fim {

/// Integer identifier of an item. Items of a database are 0..NumItems()-1.
using ItemId = uint32_t;

/// Index of a transaction within a database.
using Tid = uint32_t;

/// Absolute support (number of transactions containing an item set).
using Support = uint32_t;

/// Sentinel for "no item".
inline constexpr ItemId kInvalidItem = static_cast<ItemId>(-1);

/// An item set together with its support, as reported by the miners.
/// `items` is sorted ascending and duplicate-free.
struct ClosedItemset {
  std::vector<ItemId> items;
  Support support = 0;

  friend bool operator==(const ClosedItemset& a,
                         const ClosedItemset& b) = default;
};

/// Canonical order: by items lexicographically, then by support.
bool ClosedItemsetLess(const ClosedItemset& a, const ClosedItemset& b);

/// Callback invoked once per reported closed item set. `items` is sorted
/// ascending; it is only valid for the duration of the call.
using ClosedSetCallback =
    std::function<void(std::span<const ItemId> items, Support support)>;

/// Convenience sink that materializes all reported sets.
class ClosedSetCollector {
 public:
  /// Returns a callback bound to this collector.
  ClosedSetCallback AsCallback();

  /// Sorts the collected sets into canonical order (for comparisons).
  void SortCanonical();

  const std::vector<ClosedItemset>& sets() const { return sets_; }
  std::vector<ClosedItemset> TakeSets() { return std::move(sets_); }
  std::size_t size() const { return sets_.size(); }

 private:
  std::vector<ClosedItemset> sets_;
};

/// Sorts `items` ascending and removes duplicates, in place.
void NormalizeItems(std::vector<ItemId>* items);

/// Intersection of two ascending sorted item vectors.
std::vector<ItemId> IntersectSorted(std::span<const ItemId> a,
                                    std::span<const ItemId> b);

/// True if sorted `a` is a subset of sorted `b`.
bool IsSubsetSorted(std::span<const ItemId> a, std::span<const ItemId> b);

/// Renders an item vector as "{1, 4, 7}".
std::string ItemsToString(std::span<const ItemId> items);

}  // namespace fim

#endif  // FIM_DATA_ITEMSET_H_
