#ifndef FIM_DATA_GENERATORS_H_
#define FIM_DATA_GENERATORS_H_

#include <cstdint>

#include "data/transaction_database.h"

namespace fim {

/// Configuration of the synthetic market-basket generator (IBM-Quest
/// style): Zipf-distributed item popularity plus planted patterns that
/// make some item combinations genuinely frequent. Deterministic per seed.
struct MarketBasketConfig {
  std::size_t num_items = 1000;
  std::size_t num_transactions = 10000;
  double avg_transaction_size = 10.0;
  double zipf_exponent = 1.0;       // 0 = uniform popularity
  std::size_t num_patterns = 50;    // planted co-occurrence patterns
  std::size_t avg_pattern_size = 4; // geometric around this mean (>= 2)
  double pattern_probability = 0.5; // chance a transaction embeds a pattern
  double pattern_keep_probability = 0.9;  // per-item corruption
  uint64_t seed = 1;
};

/// Generates a market-basket style database.
TransactionDatabase GenerateMarketBasket(const MarketBasketConfig& config);

/// Generates a database where each of `num_items` items appears in each of
/// `num_transactions` transactions independently with probability
/// `density`. Used by the property tests to cover unstructured inputs.
TransactionDatabase GenerateRandomDense(std::size_t num_transactions,
                                        std::size_t num_items, double density,
                                        uint64_t seed);

/// Generates sparse binary records made of shared "prototype" feature
/// blocks — the Thrombin-like shape (few records, very many features,
/// records in the same group share large feature blocks).
struct SparseBinaryConfig {
  std::size_t num_records = 64;
  std::size_t num_features = 139351;
  std::size_t num_prototypes = 12;          // shared feature blocks
  std::size_t features_per_prototype = 800; // block size
  std::size_t prototypes_per_record = 3;    // blocks mixed into a record
  double prototype_keep_probability = 0.85; // per-feature subsampling
  std::size_t random_features_per_record = 300;
  uint64_t seed = 1;
};

/// Generates a Thrombin-like sparse binary database.
TransactionDatabase GenerateSparseBinary(const SparseBinaryConfig& config);

}  // namespace fim

#endif  // FIM_DATA_GENERATORS_H_
