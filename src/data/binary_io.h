#ifndef FIM_DATA_BINARY_IO_H_
#define FIM_DATA_BINARY_IO_H_

#include <istream>
#include <ostream>
#include <string>
#include <type_traits>

#include "common/status.h"
#include "data/transaction_database.h"

namespace fim::io {

/// Raw little-endian scalar I/O shared by the binary formats (FIMB
/// databases, fim-tree-v1 repository blobs, fim-stream-v1 checkpoints).
/// The library only targets little-endian platforms, so the in-memory
/// representation is the wire representation.
template <typename T>
void WritePod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value),
            static_cast<std::streamsize>(sizeof(value)));
}

/// Reads one scalar; returns false on a short read (truncated input).
template <typename T>
bool ReadPod(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value),
          static_cast<std::streamsize>(sizeof(*value)));
  return static_cast<bool>(in);
}

}  // namespace fim::io

namespace fim {

/// Compact binary database format ("FIMB"): parsing FIMI text dominates
/// the load time of the larger synthetic data sets, so the tools can
/// also exchange databases in this format. Layout (little-endian):
///   char[4]  magic "FIMB"
///   u32      version (1)
///   u64      num_items
///   u64      num_transactions
///   per transaction: u32 length, then `length` u32 item ids (ascending)
Status WriteBinaryFile(const TransactionDatabase& db,
                       const std::string& path);

/// Reads a FIMB file; validates magic, version, and item bounds.
Result<TransactionDatabase> ReadBinaryFile(const std::string& path);

/// Reads a database file of either format, dispatching on the magic
/// bytes (FIMB binary, otherwise FIMI text).
Result<TransactionDatabase> ReadDatabaseFile(const std::string& path);

}  // namespace fim

#endif  // FIM_DATA_BINARY_IO_H_
