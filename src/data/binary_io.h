#ifndef FIM_DATA_BINARY_IO_H_
#define FIM_DATA_BINARY_IO_H_

#include <string>

#include "common/status.h"
#include "data/transaction_database.h"

namespace fim {

/// Compact binary database format ("FIMB"): parsing FIMI text dominates
/// the load time of the larger synthetic data sets, so the tools can
/// also exchange databases in this format. Layout (little-endian):
///   char[4]  magic "FIMB"
///   u32      version (1)
///   u64      num_items
///   u64      num_transactions
///   per transaction: u32 length, then `length` u32 item ids (ascending)
Status WriteBinaryFile(const TransactionDatabase& db,
                       const std::string& path);

/// Reads a FIMB file; validates magic, version, and item bounds.
Result<TransactionDatabase> ReadBinaryFile(const std::string& path);

/// Reads a database file of either format, dispatching on the magic
/// bytes (FIMB binary, otherwise FIMI text).
Result<TransactionDatabase> ReadDatabaseFile(const std::string& path);

}  // namespace fim

#endif  // FIM_DATA_BINARY_IO_H_
