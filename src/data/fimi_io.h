#ifndef FIM_DATA_FIMI_IO_H_
#define FIM_DATA_FIMI_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "data/transaction_database.h"

namespace fim {

/// Reads a database in FIMI text format (one transaction per line,
/// whitespace-separated non-negative integer item ids; blank lines and
/// lines starting with '#' are skipped).
Result<TransactionDatabase> ReadFimiFile(const std::string& path);

/// Parses FIMI text from a string (same format as ReadFimiFile).
Result<TransactionDatabase> ParseFimi(std::string_view text);

/// Writes a database in FIMI text format. Overwrites `path`.
Status WriteFimiFile(const TransactionDatabase& db, const std::string& path);

/// Renders a database as FIMI text (for tests and small outputs).
std::string ToFimiString(const TransactionDatabase& db);

}  // namespace fim

#endif  // FIM_DATA_FIMI_IO_H_
