#include "data/fimi_io.h"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "obs/memory.h"

namespace fim {

namespace {

// Parses one FIMI line into `items`. Returns false on malformed input.
bool ParseLine(std::string_view line, std::vector<ItemId>* items,
               std::string* error) {
  items->clear();
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    if (pos >= line.size()) break;
    if (!std::isdigit(static_cast<unsigned char>(line[pos]))) {
      *error = "unexpected character '" + std::string(1, line[pos]) + "'";
      return false;
    }
    uint64_t value = 0;
    while (pos < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[pos]))) {
      value = value * 10 + static_cast<uint64_t>(line[pos] - '0');
      if (value > kInvalidItem - 1) {
        *error = "item id out of range";
        return false;
      }
      ++pos;
    }
    items->push_back(static_cast<ItemId>(value));
  }
  return true;
}

}  // namespace

Result<TransactionDatabase> ParseFimi(std::string_view text) {
  obs::MemDomainScope mem_domain(obs::MemDomain::kReader);
  TransactionDatabase db;
  std::vector<ItemId> items;
  std::string error;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    start = end + 1;
    if (line.empty() || line[0] == '#') {
      if (end == text.size()) break;
      continue;
    }
    if (!ParseLine(line, &items, &error)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     error);
    }
    db.AddTransaction(items);
    if (end == text.size()) break;
  }
  return db;
}

Result<TransactionDatabase> ReadFimiFile(const std::string& path) {
  obs::MemDomainScope mem_domain(obs::MemDomain::kReader);
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on " + path);
  return ParseFimi(buffer.str());
}

std::string ToFimiString(const TransactionDatabase& db) {
  std::string out;
  for (const auto& t : db.transactions()) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ' ';
      out += std::to_string(t[i]);
    }
    out += '\n';
  }
  return out;
}

Status WriteFimiFile(const TransactionDatabase& db, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToFimiString(db);
  out.flush();
  if (!out) return Status::IoError("write failure on " + path);
  return Status::OK();
}

}  // namespace fim
