#include "data/recode.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <thread>

#include "obs/memory.h"
#include "obs/timeline.h"

namespace fim {

Recoding ComputeRecoding(const TransactionDatabase& db, ItemOrder order,
                         Support min_item_support) {
  const std::vector<Support> freq = db.ItemFrequencies();
  const std::size_t n = freq.size();

  std::vector<ItemId> kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (freq[i] >= min_item_support && freq[i] > 0) {
      kept.push_back(static_cast<ItemId>(i));
    }
  }

  switch (order) {
    case ItemOrder::kNone:
      break;
    case ItemOrder::kFrequencyAscending:
      std::stable_sort(kept.begin(), kept.end(), [&](ItemId a, ItemId b) {
        return freq[a] < freq[b];
      });
      break;
    case ItemOrder::kFrequencyDescending:
      std::stable_sort(kept.begin(), kept.end(), [&](ItemId a, ItemId b) {
        return freq[a] > freq[b];
      });
      break;
  }

  Recoding recoding;
  recoding.old_to_new.assign(n, kInvalidItem);
  recoding.new_to_old = std::move(kept);
  for (std::size_t code = 0; code < recoding.new_to_old.size(); ++code) {
    recoding.old_to_new[recoding.new_to_old[code]] =
        static_cast<ItemId>(code);
  }
  return recoding;
}

namespace {

// Lexicographic comparison on the descending item sequence (items are
// stored ascending, so compare from the back).
bool DescendingLexLess(const std::vector<ItemId>& a,
                       const std::vector<ItemId>& b) {
  auto ia = a.rbegin();
  auto ib = b.rbegin();
  for (; ia != a.rend() && ib != b.rend(); ++ia, ++ib) {
    if (*ia != *ib) return *ia < *ib;
  }
  return a.size() < b.size();
}

}  // namespace

namespace {

// Maps the transactions of [begin, end) through the recoding, dropping
// eliminated items and empty results; relative order is preserved.
std::vector<std::vector<ItemId>> MapChunk(
    std::span<const std::vector<ItemId>> transactions,
    const Recoding& recoding) {
  std::vector<std::vector<ItemId>> mapped;
  mapped.reserve(transactions.size());
  for (const auto& t : transactions) {
    std::vector<ItemId> coded;
    coded.reserve(t.size());
    for (ItemId i : t) {
      if (i < recoding.old_to_new.size() &&
          recoding.old_to_new[i] != kInvalidItem) {
        coded.push_back(recoding.old_to_new[i]);
      }
    }
    if (coded.empty()) continue;
    std::sort(coded.begin(), coded.end());
    mapped.push_back(std::move(coded));
  }
  return mapped;
}

// Stable sort of `mapped` under `less` on `num_chunks` threads: each chunk
// is stable-sorted privately, then adjacent runs are joined with
// std::inplace_merge (stable, left run first on ties). Stability plus a
// fixed comparator determine the output uniquely, so the result is
// identical to a sequential std::stable_sort.
void ParallelStableSort(
    std::vector<std::vector<ItemId>>* mapped, std::size_t num_chunks,
    bool (*less)(const std::vector<ItemId>&, const std::vector<ItemId>&),
    obs::Timeline* timeline) {
  num_chunks = std::min(num_chunks, std::max<std::size_t>(mapped->size(), 1));
  if (num_chunks <= 1) {
    obs::TimelineScope sort_scope(
        timeline != nullptr ? timeline->driver() : nullptr, "sort");
    std::stable_sort(mapped->begin(), mapped->end(), less);
    return;
  }
  std::vector<std::size_t> bounds(num_chunks + 1);
  for (std::size_t c = 0; c <= num_chunks; ++c) {
    bounds[c] = c * mapped->size() / num_chunks;
  }
  {
    std::vector<std::thread> workers;
    workers.reserve(num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      workers.emplace_back([mapped, &bounds, less, timeline, c]() {
        obs::MemDomainScope worker_mem_domain(obs::MemDomain::kRecode);
        obs::TimelineLane* wlane =
            timeline != nullptr
                ? timeline->AddLane("recode-sort-" + std::to_string(c))
                : nullptr;
        obs::TimelineScope sort_scope(wlane, "sort-chunk");
        std::stable_sort(mapped->begin() + bounds[c],
                         mapped->begin() + bounds[c + 1], less);
      });
    }
    for (auto& worker : workers) worker.join();
  }
  for (std::size_t stride = 1; stride < num_chunks; stride *= 2) {
    std::vector<std::thread> mergers;
    for (std::size_t c = 0; c + stride < num_chunks; c += 2 * stride) {
      mergers.emplace_back(
          [mapped, &bounds, less, timeline, c, stride, num_chunks]() {
            obs::MemDomainScope merger_mem_domain(obs::MemDomain::kRecode);
            obs::TimelineLane* mlane =
                timeline != nullptr
                    ? timeline->AddLane("recode-merge-" +
                                        std::to_string(stride) + "-" +
                                        std::to_string(c))
                    : nullptr;
            obs::TimelineScope merge_scope(mlane, "merge-runs");
            std::inplace_merge(
                mapped->begin() + bounds[c],
                mapped->begin() + bounds[c + stride],
                mapped->begin() + bounds[std::min(c + 2 * stride, num_chunks)],
                less);
          });
    }
    for (auto& merger : mergers) merger.join();
  }
}

bool SizeAscendingLess(const std::vector<ItemId>& a,
                       const std::vector<ItemId>& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return DescendingLexLess(a, b);
}

bool SizeDescendingLess(const std::vector<ItemId>& a,
                        const std::vector<ItemId>& b) {
  if (a.size() != b.size()) return a.size() > b.size();
  return DescendingLexLess(a, b);
}

}  // namespace

TransactionDatabase ApplyRecoding(const TransactionDatabase& db,
                                  const Recoding& recoding,
                                  TransactionOrder transaction_order,
                                  unsigned num_threads,
                                  obs::Timeline* timeline) {
  obs::MemDomainScope mem_domain(obs::MemDomain::kRecode);
  const auto& transactions = db.transactions();
  const std::size_t num_chunks = std::max<std::size_t>(
      std::min<std::size_t>(num_threads, transactions.size()), 1);

  std::vector<std::vector<ItemId>> mapped;
  if (num_chunks <= 1) {
    obs::TimelineScope map_scope(
        timeline != nullptr ? timeline->driver() : nullptr, "map");
    mapped = MapChunk(transactions, recoding);
  } else {
    // Map disjoint chunks concurrently, then splice them back together in
    // order; the concatenation sees exactly the sequential mapping.
    std::vector<std::vector<std::vector<ItemId>>> chunks(num_chunks);
    std::vector<std::thread> workers;
    workers.reserve(num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      workers.emplace_back([&, c]() {
        obs::MemDomainScope worker_mem_domain(obs::MemDomain::kRecode);
        obs::TimelineLane* wlane =
            timeline != nullptr
                ? timeline->AddLane("recode-map-" + std::to_string(c))
                : nullptr;
        obs::TimelineScope map_scope(wlane, "map-chunk");
        const std::size_t begin = c * transactions.size() / num_chunks;
        const std::size_t end = (c + 1) * transactions.size() / num_chunks;
        chunks[c] = MapChunk(
            std::span(transactions).subspan(begin, end - begin), recoding);
      });
    }
    for (auto& worker : workers) worker.join();
    std::size_t total = 0;
    for (const auto& chunk : chunks) total += chunk.size();
    mapped.reserve(total);
    for (auto& chunk : chunks) {
      for (auto& t : chunk) mapped.push_back(std::move(t));
    }
  }

  switch (transaction_order) {
    case TransactionOrder::kNone:
      break;
    case TransactionOrder::kSizeAscending:
      ParallelStableSort(&mapped, num_chunks, SizeAscendingLess, timeline);
      break;
    case TransactionOrder::kSizeDescending:
      ParallelStableSort(&mapped, num_chunks, SizeDescendingLess, timeline);
      break;
  }

  TransactionDatabase out;
  for (auto& t : mapped) out.AddTransaction(std::move(t));
  out.SetNumItems(recoding.num_kept());
  return out;
}

std::vector<ItemId> DecodeItems(std::span<const ItemId> coded,
                                const Recoding& recoding) {
  std::vector<ItemId> out;
  out.reserve(coded.size());
  for (ItemId c : coded) out.push_back(recoding.new_to_old[c]);
  std::sort(out.begin(), out.end());
  return out;
}

ClosedSetCallback MakeDecodingCallback(const Recoding& recoding,
                                       ClosedSetCallback inner) {
  // The recoding is copied so the callback stays valid beyond the caller's
  // scope (miners may run asynchronously from the setup code).
  std::vector<ItemId> new_to_old = recoding.new_to_old;
  return [new_to_old = std::move(new_to_old),
          inner = std::move(inner)](std::span<const ItemId> items,
                                    Support support) {
    std::vector<ItemId> decoded;
    decoded.reserve(items.size());
    for (ItemId c : items) decoded.push_back(new_to_old[c]);
    std::sort(decoded.begin(), decoded.end());
    inner(decoded, support);
  };
}

}  // namespace fim
