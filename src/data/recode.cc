#include "data/recode.h"

#include <algorithm>
#include <numeric>

namespace fim {

Recoding ComputeRecoding(const TransactionDatabase& db, ItemOrder order,
                         Support min_item_support) {
  const std::vector<Support> freq = db.ItemFrequencies();
  const std::size_t n = freq.size();

  std::vector<ItemId> kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (freq[i] >= min_item_support && freq[i] > 0) {
      kept.push_back(static_cast<ItemId>(i));
    }
  }

  switch (order) {
    case ItemOrder::kNone:
      break;
    case ItemOrder::kFrequencyAscending:
      std::stable_sort(kept.begin(), kept.end(), [&](ItemId a, ItemId b) {
        return freq[a] < freq[b];
      });
      break;
    case ItemOrder::kFrequencyDescending:
      std::stable_sort(kept.begin(), kept.end(), [&](ItemId a, ItemId b) {
        return freq[a] > freq[b];
      });
      break;
  }

  Recoding recoding;
  recoding.old_to_new.assign(n, kInvalidItem);
  recoding.new_to_old = std::move(kept);
  for (std::size_t code = 0; code < recoding.new_to_old.size(); ++code) {
    recoding.old_to_new[recoding.new_to_old[code]] =
        static_cast<ItemId>(code);
  }
  return recoding;
}

namespace {

// Lexicographic comparison on the descending item sequence (items are
// stored ascending, so compare from the back).
bool DescendingLexLess(const std::vector<ItemId>& a,
                       const std::vector<ItemId>& b) {
  auto ia = a.rbegin();
  auto ib = b.rbegin();
  for (; ia != a.rend() && ib != b.rend(); ++ia, ++ib) {
    if (*ia != *ib) return *ia < *ib;
  }
  return a.size() < b.size();
}

}  // namespace

TransactionDatabase ApplyRecoding(const TransactionDatabase& db,
                                  const Recoding& recoding,
                                  TransactionOrder transaction_order) {
  std::vector<std::vector<ItemId>> mapped;
  mapped.reserve(db.NumTransactions());
  for (const auto& t : db.transactions()) {
    std::vector<ItemId> coded;
    coded.reserve(t.size());
    for (ItemId i : t) {
      if (i < recoding.old_to_new.size() &&
          recoding.old_to_new[i] != kInvalidItem) {
        coded.push_back(recoding.old_to_new[i]);
      }
    }
    if (coded.empty()) continue;
    std::sort(coded.begin(), coded.end());
    mapped.push_back(std::move(coded));
  }

  switch (transaction_order) {
    case TransactionOrder::kNone:
      break;
    case TransactionOrder::kSizeAscending:
      std::stable_sort(mapped.begin(), mapped.end(),
                       [](const auto& a, const auto& b) {
                         if (a.size() != b.size()) return a.size() < b.size();
                         return DescendingLexLess(a, b);
                       });
      break;
    case TransactionOrder::kSizeDescending:
      std::stable_sort(mapped.begin(), mapped.end(),
                       [](const auto& a, const auto& b) {
                         if (a.size() != b.size()) return a.size() > b.size();
                         return DescendingLexLess(a, b);
                       });
      break;
  }

  TransactionDatabase out;
  for (auto& t : mapped) out.AddTransaction(std::move(t));
  out.SetNumItems(recoding.num_kept());
  return out;
}

std::vector<ItemId> DecodeItems(std::span<const ItemId> coded,
                                const Recoding& recoding) {
  std::vector<ItemId> out;
  out.reserve(coded.size());
  for (ItemId c : coded) out.push_back(recoding.new_to_old[c]);
  std::sort(out.begin(), out.end());
  return out;
}

ClosedSetCallback MakeDecodingCallback(const Recoding& recoding,
                                       ClosedSetCallback inner) {
  // The recoding is copied so the callback stays valid beyond the caller's
  // scope (miners may run asynchronously from the setup code).
  std::vector<ItemId> new_to_old = recoding.new_to_old;
  return [new_to_old = std::move(new_to_old),
          inner = std::move(inner)](std::span<const ItemId> items,
                                    Support support) {
    std::vector<ItemId> decoded;
    decoded.reserve(items.size());
    for (ItemId c : items) decoded.push_back(new_to_old[c]);
    std::sort(decoded.begin(), decoded.end());
    inner(decoded, support);
  };
}

}  // namespace fim
