#include "data/transaction_database.h"

#include <algorithm>

namespace fim {

TransactionDatabase TransactionDatabase::FromTransactions(
    std::vector<std::vector<ItemId>> transactions, std::size_t num_items) {
  TransactionDatabase db;
  for (auto& t : transactions) db.AddTransaction(std::move(t));
  db.SetNumItems(num_items);
  return db;
}

void TransactionDatabase::AddTransaction(std::vector<ItemId> items) {
  NormalizeItems(&items);
  if (items.empty()) return;
  num_items_ = std::max(num_items_, static_cast<std::size_t>(items.back()) + 1);
  transactions_.push_back(std::move(items));
}

void TransactionDatabase::SetNumItems(std::size_t num_items) {
  num_items_ = std::max(num_items_, num_items);
}

Status TransactionDatabase::SetItemNames(std::vector<std::string> names) {
  if (names.size() != num_items_) {
    return Status::InvalidArgument("item name count does not match item base");
  }
  item_names_ = std::move(names);
  return Status::OK();
}

std::string TransactionDatabase::ItemName(ItemId item) const {
  if (item < item_names_.size()) return item_names_[item];
  return std::to_string(item);
}

std::size_t TransactionDatabase::TotalItemOccurrences() const {
  std::size_t total = 0;
  for (const auto& t : transactions_) total += t.size();
  return total;
}

std::vector<Support> TransactionDatabase::ItemFrequencies() const {
  std::vector<Support> freq(num_items_, 0);
  for (const auto& t : transactions_) {
    for (ItemId i : t) ++freq[i];
  }
  return freq;
}

std::vector<std::vector<Tid>> TransactionDatabase::BuildVertical() const {
  std::vector<std::vector<Tid>> tidlists(num_items_);
  for (std::size_t k = 0; k < transactions_.size(); ++k) {
    for (ItemId i : transactions_[k]) {
      tidlists[i].push_back(static_cast<Tid>(k));
    }
  }
  return tidlists;
}

Support TransactionDatabase::CountSupport(std::span<const ItemId> items) const {
  Support s = 0;
  for (const auto& t : transactions_) {
    if (IsSubsetSorted(items, t)) ++s;
  }
  return s;
}

obs::MemoryComponent TransactionDatabase::ApproxMemoryUsage() const {
  obs::MemoryComponent db("database");
  std::size_t row_bytes = 0;
  for (const auto& t : transactions_) {
    row_bytes += t.capacity() * sizeof(ItemId);
  }
  obs::MemoryComponent transactions("transactions");
  transactions.children.emplace_back(
      "spine", transactions_.capacity() * sizeof(transactions_[0]));
  transactions.children.emplace_back("rows", row_bytes);
  db.children.push_back(std::move(transactions));
  if (!item_names_.empty()) {
    std::size_t name_bytes = item_names_.capacity() * sizeof(item_names_[0]);
    for (const auto& name : item_names_) {
      // Count only heap-backed strings: an SSO buffer lives inside the
      // vector storage already counted above.
      const char* data = name.data();
      const char* object = reinterpret_cast<const char*>(&name);
      if (data < object || data >= object + sizeof(name)) {
        name_bytes += name.capacity() + 1;  // +1: the terminator slot
      }
    }
    db.children.emplace_back("item-names", name_bytes);
  }
  return db;
}

}  // namespace fim
