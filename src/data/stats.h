#ifndef FIM_DATA_STATS_H_
#define FIM_DATA_STATS_H_

#include <cstddef>
#include <string>

#include "data/transaction_database.h"

namespace fim {

/// Shape summary of a transaction database. The ratio of items to
/// transactions is what decides between intersection and enumeration
/// miners (paper §1/§5), so the examples and benches print this.
struct DatabaseStats {
  std::size_t num_transactions = 0;
  std::size_t num_items = 0;        // size of the item base
  std::size_t num_used_items = 0;   // items occurring at least once
  std::size_t total_occurrences = 0;
  std::size_t min_transaction_size = 0;
  std::size_t max_transaction_size = 0;
  double avg_transaction_size = 0.0;
  double density = 0.0;  // total_occurrences / (transactions * used items)
};

/// Computes the shape summary of `db`.
DatabaseStats ComputeStats(const TransactionDatabase& db);

/// One-line rendering, e.g. "300 tx x 9812 items, avg size 412.3, ...".
std::string StatsToString(const DatabaseStats& stats);

}  // namespace fim

#endif  // FIM_DATA_STATS_H_
