#ifndef FIM_CUMULATIVE_FLAT_CUMULATIVE_H_
#define FIM_CUMULATIVE_FLAT_CUMULATIVE_H_

#include "common/status.h"
#include "data/itemset.h"
#include "data/recode.h"
#include "data/transaction_database.h"
#include "obs/miner_stats.h"

namespace fim {

namespace obs {
class MemoryBreakdown;
}  // namespace obs

/// Options of the flat cumulative baseline.
struct FlatCumulativeOptions {
  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;

  /// Drop globally infrequent items up front (safe, see recode.h).
  bool item_elimination = true;

  /// Transaction processing order (kept for the §3.4 ablation).
  TransactionOrder transaction_order = TransactionOrder::kSizeAscending;

  /// Optional memory attribution (obs/memory.h): records the flat
  /// repository at its final (largest) size. Output-neutral; must
  /// outlive the call.
  obs::MemoryBreakdown* memory = nullptr;
};

/// The cumulative intersection scheme of Mielikäinen (FIMI'03) with the
/// flat repository the paper compares against (§5: "this implementation
/// does not employ a prefix tree, but a simple flat structure"):
/// C(T + t) = C(T) + {t} + {s ∩ t : s ∈ C(T)}, with the repository kept
/// as a hash map from item set to support. Exact but deliberately naive —
/// this is the ablation baseline that motivates IsTa's prefix tree.
/// `stats` (optional) receives isect_steps (pairwise set intersections
/// computed), repo_sets (final repository size), final_nodes, and
/// sets_reported; output-neutral.
Status MineClosedFlatCumulative(const TransactionDatabase& db,
                                const FlatCumulativeOptions& options,
                                const ClosedSetCallback& callback,
                                MinerStats* stats = nullptr);

}  // namespace fim

#endif  // FIM_CUMULATIVE_FLAT_CUMULATIVE_H_
