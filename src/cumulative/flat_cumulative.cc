#include "cumulative/flat_cumulative.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "obs/memory.h"

namespace fim {

namespace {

struct VectorHash {
  std::size_t operator()(const std::vector<ItemId>& v) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (ItemId i : v) {
      h ^= i;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

using Repository =
    std::unordered_map<std::vector<ItemId>, Support, VectorHash>;

}  // namespace

Status MineClosedFlatCumulative(const TransactionDatabase& db,
                                const FlatCumulativeOptions& options,
                                const ClosedSetCallback& callback,
                                MinerStats* stats) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = MinerStats{};
  if (db.NumTransactions() == 0) return Status::OK();

  const Support min_item_support =
      options.item_elimination ? options.min_support : 1;
  const Recoding recoding =
      ComputeRecoding(db, ItemOrder::kNone, min_item_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, options.transaction_order);
  if (coded.NumTransactions() == 0) return Status::OK();

  Repository repo;
  // Intersections of the new transaction with every stored set, keyed by
  // the resulting set; the value is the largest source support (the count
  // of earlier transactions containing the result).
  Repository updates;
  for (const auto& t : coded.transactions()) {
    updates.clear();
    updates.emplace(t, 0);
    if (stats != nullptr) stats->isect_steps += repo.size();
    for (const auto& [stored, support] : repo) {
      std::vector<ItemId> inter = IntersectSorted(stored, t);
      if (inter.empty()) continue;
      auto [it, inserted] = updates.emplace(std::move(inter), support);
      if (!inserted && it->second < support) it->second = support;
    }
    for (auto& [items, source_support] : updates) {
      auto [it, inserted] = repo.emplace(items, source_support);
      // A set already in the repository has its exact count there; a new
      // set inherits the best source count. Either way the new
      // transaction contains the set, so add one.
      ++it->second;
    }
  }

  if (stats != nullptr) {
    stats->repo_sets = repo.size();
    stats->final_nodes = repo.size();
  }
  if (options.memory != nullptr) {
    obs::MemoryComponent coded_db = coded.ApproxMemoryUsage();
    coded_db.name = "recoded-db";
    options.memory->Record(std::move(coded_db));
    // The flat repository is a node-based hash map; buckets and nodes
    // are estimated from the libstdc++ layout (one next pointer plus the
    // cached hash per node), the key buffers are exact.
    obs::MemoryComponent flat("flat-repository");
    flat.children.emplace_back("buckets",
                               repo.bucket_count() * sizeof(void*));
    flat.children.emplace_back(
        "nodes", repo.size() * (sizeof(Repository::value_type) +
                                2 * sizeof(void*)));
    std::size_t key_bytes = 0;
    for (const auto& [items, support] : repo) {
      key_bytes += items.capacity() * sizeof(ItemId);
    }
    flat.children.emplace_back("keys", key_bytes);
    options.memory->Record(std::move(flat));
  }
  const ClosedSetCallback decoded = MakeDecodingCallback(recoding, callback);
  for (const auto& [items, support] : repo) {
    FIM_DCHECK(!items.empty() &&
               std::is_sorted(items.begin(), items.end()) &&
               std::adjacent_find(items.begin(), items.end()) == items.end())
        << "stored sets must be non-empty, sorted, duplicate-free";
    FIM_DCHECK(support >= 1 && support <= coded.NumTransactions())
        << "stored support " << support << " outside [1, "
        << coded.NumTransactions() << "]";
    if (support >= options.min_support) {
      if (stats != nullptr) ++stats->sets_reported;
      decoded(items, support);
    }
  }
  return Status::OK();
}

}  // namespace fim
