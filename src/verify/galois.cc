#include "verify/galois.h"

namespace fim {

std::vector<Tid> CoverOf(const TransactionDatabase& db,
                         std::span<const ItemId> items) {
  std::vector<Tid> cover;
  for (std::size_t k = 0; k < db.NumTransactions(); ++k) {
    if (IsSubsetSorted(items, db.transaction(k))) {
      cover.push_back(static_cast<Tid>(k));
    }
  }
  return cover;
}

std::vector<ItemId> IntersectionOf(const TransactionDatabase& db,
                                   std::span<const Tid> tids) {
  if (tids.empty()) {
    std::vector<ItemId> all(db.NumItems());
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<ItemId>(i);
    }
    return all;
  }
  std::vector<ItemId> inter = db.transaction(tids.front());
  for (std::size_t k = 1; k < tids.size() && !inter.empty(); ++k) {
    inter = IntersectSorted(inter, db.transaction(tids[k]));
  }
  return inter;
}

std::vector<ItemId> ItemClosure(const TransactionDatabase& db,
                                std::span<const ItemId> items) {
  return IntersectionOf(db, CoverOf(db, items));
}

std::vector<Tid> TidClosure(const TransactionDatabase& db,
                            std::span<const Tid> tids) {
  return CoverOf(db, IntersectionOf(db, tids));
}

}  // namespace fim
