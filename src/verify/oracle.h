#ifndef FIM_VERIFY_ORACLE_H_
#define FIM_VERIFY_ORACLE_H_

#include <vector>

#include "common/status.h"
#include "data/itemset.h"
#include "data/transaction_database.h"

namespace fim {

/// Exact reference miner based directly on the characterization of §2.4:
/// the closed item sets are exactly the intersections of the non-empty
/// subsets of the transactions; the support of each is its cover size
/// over the full database. Enumerates all 2^n - 1 subsets, so it requires
/// NumTransactions() <= kOracleMaxTransactions. The empty set is never
/// reported (library-wide convention). Output is in canonical order.
inline constexpr std::size_t kOracleMaxTransactions = 16;

Result<std::vector<ClosedItemset>> OracleClosedSets(
    const TransactionDatabase& db, Support min_support);

}  // namespace fim

#endif  // FIM_VERIFY_ORACLE_H_
