#include "verify/oracle.h"

#include <algorithm>
#include <bit>
#include <map>

namespace fim {

Result<std::vector<ClosedItemset>> OracleClosedSets(
    const TransactionDatabase& db, Support min_support) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  const std::size_t n = db.NumTransactions();
  if (n > kOracleMaxTransactions) {
    return Status::InvalidArgument(
        "oracle supports at most " + std::to_string(kOracleMaxTransactions) +
        " transactions");
  }

  // inter[mask] = intersection of the transactions selected by mask,
  // built incrementally from the mask without its lowest bit.
  const std::size_t num_masks = std::size_t{1} << n;
  std::vector<std::vector<ItemId>> inter(num_masks);
  std::map<std::vector<ItemId>, Support> closed;
  for (std::size_t mask = 1; mask < num_masks; ++mask) {
    const int low = std::countr_zero(mask);
    const std::size_t rest = mask & (mask - 1);
    const std::vector<ItemId>& t = db.transaction(static_cast<std::size_t>(low));
    if (rest == 0) {
      inter[mask] = t;
    } else {
      if (inter[rest].empty()) continue;  // intersection already empty
      inter[mask] = IntersectSorted(inter[rest], t);
    }
    if (!inter[mask].empty()) closed.emplace(inter[mask], 0);
  }

  std::vector<ClosedItemset> result;
  for (auto& [items, support] : closed) {
    support = db.CountSupport(items);
    if (support >= min_support) {
      result.push_back(ClosedItemset{items, support});
    }
  }
  std::sort(result.begin(), result.end(), ClosedItemsetLess);
  return result;
}

}  // namespace fim
