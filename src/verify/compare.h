#ifndef FIM_VERIFY_COMPARE_H_
#define FIM_VERIFY_COMPARE_H_

#include <string>
#include <vector>

#include "data/itemset.h"

namespace fim {

/// Sorts both result vectors into canonical order and compares them.
bool SameResults(std::vector<ClosedItemset> a, std::vector<ClosedItemset> b);

/// Human-readable diff of two result vectors (canonicalized first):
/// empty string when equal, otherwise up to `max_lines` difference lines
/// ("only in A: {...} supp 4", ...). For test failure messages.
std::string DiffResults(std::vector<ClosedItemset> a,
                        std::vector<ClosedItemset> b,
                        std::size_t max_lines = 10);

}  // namespace fim

#endif  // FIM_VERIFY_COMPARE_H_
