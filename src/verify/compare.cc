#include "verify/compare.h"

#include <algorithm>

namespace fim {

namespace {

std::string Render(const ClosedItemset& set) {
  return ItemsToString(set.items) + " supp " + std::to_string(set.support);
}

}  // namespace

bool SameResults(std::vector<ClosedItemset> a, std::vector<ClosedItemset> b) {
  std::sort(a.begin(), a.end(), ClosedItemsetLess);
  std::sort(b.begin(), b.end(), ClosedItemsetLess);
  return a == b;
}

std::string DiffResults(std::vector<ClosedItemset> a,
                        std::vector<ClosedItemset> b, std::size_t max_lines) {
  std::sort(a.begin(), a.end(), ClosedItemsetLess);
  std::sort(b.begin(), b.end(), ClosedItemsetLess);
  std::string out;
  std::size_t lines = 0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  auto emit = [&](const std::string& line) {
    if (lines < max_lines) out += line + "\n";
    ++lines;
  };
  while (ia < a.size() || ib < b.size()) {
    if (ib >= b.size() ||
        (ia < a.size() && ClosedItemsetLess(a[ia], b[ib]))) {
      emit("only in A: " + Render(a[ia]));
      ++ia;
    } else if (ia >= a.size() || ClosedItemsetLess(b[ib], a[ia])) {
      emit("only in B: " + Render(b[ib]));
      ++ib;
    } else {
      ++ia;
      ++ib;
    }
  }
  if (lines > max_lines) {
    out += "... (" + std::to_string(lines - max_lines) + " more)\n";
  }
  return out;
}

}  // namespace fim
