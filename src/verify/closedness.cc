#include "verify/closedness.h"

namespace fim {

std::vector<ItemId> Closure(const TransactionDatabase& db,
                            std::span<const ItemId> items) {
  std::vector<ItemId> closure;
  bool first = true;
  for (const auto& t : db.transactions()) {
    if (!IsSubsetSorted(items, t)) continue;
    if (first) {
      closure = t;
      first = false;
    } else {
      closure = IntersectSorted(closure, t);
    }
  }
  return closure;
}

Status VerifyClosedSets(const TransactionDatabase& db,
                        const std::vector<ClosedItemset>& sets,
                        Support min_support) {
  for (const auto& set : sets) {
    if (set.items.empty()) {
      return Status::Internal("reported the empty set");
    }
    const Support actual = db.CountSupport(set.items);
    if (actual != set.support) {
      return Status::Internal("support mismatch for " +
                              ItemsToString(set.items) + ": reported " +
                              std::to_string(set.support) + ", actual " +
                              std::to_string(actual));
    }
    if (actual < min_support) {
      return Status::Internal("infrequent set reported: " +
                              ItemsToString(set.items));
    }
    const std::vector<ItemId> closure = Closure(db, set.items);
    if (closure != set.items) {
      return Status::Internal("non-closed set reported: " +
                              ItemsToString(set.items) + ", closure " +
                              ItemsToString(closure));
    }
  }
  return Status::OK();
}

}  // namespace fim
