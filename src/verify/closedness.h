#ifndef FIM_VERIFY_CLOSEDNESS_H_
#define FIM_VERIFY_CLOSEDNESS_H_

#include <vector>

#include "common/status.h"
#include "data/itemset.h"
#include "data/transaction_database.h"

namespace fim {

/// Soundness check: verifies that every reported set (a) has the claimed
/// support (by direct counting), (b) meets the minimum support, and
/// (c) is closed, i.e. no single-item extension has the same support
/// (equivalently, the set equals the intersection of its cover, §2.4).
/// Returns the first violation found. O(|sets| * db size); for tests.
Status VerifyClosedSets(const TransactionDatabase& db,
                        const std::vector<ClosedItemset>& sets,
                        Support min_support);

/// Computes the closure of `items` (intersection of all transactions
/// containing it). Returns an empty vector if the cover is empty.
std::vector<ItemId> Closure(const TransactionDatabase& db,
                            std::span<const ItemId> items);

}  // namespace fim

#endif  // FIM_VERIFY_CLOSEDNESS_H_
