#ifndef FIM_VERIFY_GALOIS_H_
#define FIM_VERIFY_GALOIS_H_

#include <vector>

#include "data/itemset.h"
#include "data/transaction_database.h"

namespace fim {

/// The Galois connection of §2.5 between item sets and transaction index
/// sets:
///   f : 2^B -> 2^{0..n-1},  I |-> cover(I)   (transactions containing I)
///   g : 2^{0..n-1} -> 2^B,  K |-> intersection of the transactions in K
/// f o g and g o f are closure operators; restricted to their fixpoints,
/// f is a bijection whose inverse is g. The tests exercise exactly these
/// laws; the miners' correctness rests on them.

/// f: the cover of `items` (ascending tids). The empty item set maps to
/// all transaction indices.
std::vector<Tid> CoverOf(const TransactionDatabase& db,
                         std::span<const ItemId> items);

/// g: the intersection of the transactions selected by `tids` (ascending
/// items). The empty tid set maps to the full item base.
std::vector<ItemId> IntersectionOf(const TransactionDatabase& db,
                                   std::span<const Tid> tids);

/// The closure operator f o g on item sets: g(f(I)).
std::vector<ItemId> ItemClosure(const TransactionDatabase& db,
                                std::span<const ItemId> items);

/// The closure operator g o f on tid sets: f(g(K)).
std::vector<Tid> TidClosure(const TransactionDatabase& db,
                            std::span<const Tid> tids);

}  // namespace fim

#endif  // FIM_VERIFY_GALOIS_H_
