#ifndef FIM_CARPENTER_COBBLER_H_
#define FIM_CARPENTER_COBBLER_H_

#include "carpenter/carpenter.h"
#include "common/status.h"
#include "data/itemset.h"
#include "data/transaction_database.h"

namespace fim {

/// Options of the Cobbler-style hybrid miner.
struct CobblerOptions {
  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;

  /// Item code assignment / transaction order (as for Carpenter).
  ItemOrder item_order = ItemOrder::kFrequencyAscending;
  TransactionOrder transaction_order = TransactionOrder::kSizeAscending;

  /// §3.1.1 item elimination (never changes the output).
  bool item_elimination = true;

  /// Switch from row enumeration to column enumeration when the current
  /// intersection has at most this many items and at least
  /// `switch_min_rows` unprocessed transactions remain. 0 disables
  /// switching (pure Carpenter behaviour).
  std::size_t switch_max_items = 24;
  std::size_t switch_min_rows = 8;

  /// Optional memory attribution (obs/memory.h): records the vertical
  /// tid lists and the duplicate repository at their largest.
  /// Output-neutral; must outlive the call.
  obs::MemoryBreakdown* memory = nullptr;
};

/// Cobbler-style hybrid of row and column enumeration (Pan et al.,
/// SSDBM'04 — the companion algorithm the paper cites next to
/// Carpenter): the search runs as Carpenter's transaction-set
/// enumeration, but when a subproblem's conditional database becomes
/// narrow (few items in the current intersection) and long (many
/// remaining transactions), the whole subtree is mined in one shot with
/// a column-enumeration closed miner (LCM) over the conditional rows.
/// Supports are completed with the enumeration context, duplicates
/// across the two strategies are resolved with the same repository plus
/// an explicit backward check, so the output is exactly the closed
/// frequent item sets — verified against the oracle like every other
/// miner.
Status MineClosedCobbler(const TransactionDatabase& db,
                         const CobblerOptions& options,
                         const ClosedSetCallback& callback,
                         CarpenterStats* stats = nullptr);

}  // namespace fim

#endif  // FIM_CARPENTER_COBBLER_H_
