#include "carpenter/repository.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"

namespace fim {

ClosedSetRepository::ClosedSetRepository(std::size_t num_items)
    : top_(num_items, kNil) {}

uint32_t ClosedSetRepository::NewNode(ItemId item) {
  nodes_.push_back(Node{item, kNil, kNil, 0});
  return static_cast<uint32_t>(nodes_.size() - 1);
}

uint32_t ClosedSetRepository::FindOrCreateChild(uint32_t parent, ItemId item) {
  uint32_t prev = kNil;
  uint32_t cur = nodes_[parent].children;
  while (cur != kNil && nodes_[cur].item > item) {
    prev = cur;
    cur = nodes_[cur].sibling;
  }
  if (cur != kNil && nodes_[cur].item == item) return cur;
  uint32_t fresh = NewNode(item);
  nodes_[fresh].sibling = cur;
  if (prev == kNil) {
    nodes_[parent].children = fresh;
  } else {
    nodes_[prev].sibling = fresh;
  }
  return fresh;
}

uint32_t ClosedSetRepository::FindChild(uint32_t parent, ItemId item) const {
  uint32_t cur = nodes_[parent].children;
  while (cur != kNil && nodes_[cur].item > item) cur = nodes_[cur].sibling;
  if (cur != kNil && nodes_[cur].item == item) return cur;
  return kNil;
}

bool ClosedSetRepository::InsertIfAbsent(std::span<const ItemId> items) {
  FIM_CHECK(!items.empty()) << "cannot store the empty set";
  FIM_DCHECK(std::is_sorted(items.begin(), items.end()) &&
             std::adjacent_find(items.begin(), items.end()) == items.end())
      << "stored sets must be sorted ascending and duplicate-free";
  FIM_DCHECK(items.back() < top_.size())
      << "item " << items.back() << " out of range (num_items "
      << top_.size() << ")";
  const ItemId first = items.back();  // highest item heads the path
  uint32_t node = top_[first];
  if (node == kNil) {
    node = NewNode(first);
    top_[first] = node;
  }
  for (std::size_t idx = items.size() - 1; idx > 0; --idx) {
    node = FindOrCreateChild(node, items[idx - 1]);
  }
  if (nodes_[node].terminal) return false;
  nodes_[node].terminal = 1;
  ++stored_;
  // Full validation is O(nodes); amortize it over power-of-two sizes so
  // debug mining runs stay roughly O(total work * log inserts).
  if (FIM_DCHECK_IS_ON() && (stored_ & (stored_ - 1)) == 0) {
    FIM_DCHECK_OK(ValidateInvariants());
  }
  return true;
}

bool ClosedSetRepository::Contains(std::span<const ItemId> items) const {
  if (items.empty()) return false;
  uint32_t node = top_[items.back()];
  if (node == kNil) return false;
  for (std::size_t idx = items.size() - 1; idx > 0 && node != kNil; --idx) {
    node = FindChild(node, items[idx - 1]);
  }
  return node != kNil && nodes_[node].terminal;
}

namespace {

std::string RepoNodeLabel(uint32_t index, ItemId item) {
  return "node " + std::to_string(index) + " (item " + std::to_string(item) +
         ")";
}

}  // namespace

Status ClosedSetRepository::ValidateInvariants() const {
  const std::size_t num_items = top_.size();
  const auto total = static_cast<uint32_t>(nodes_.size());
  std::vector<uint8_t> visited(nodes_.size(), 0);
  std::size_t reachable = 0;
  std::size_t terminals = 0;
  // Each stack entry is the head of an unvisited child list plus the item
  // of the node that owns it (kInvalidItem for top-level heads, which have
  // no parent and no siblings).
  std::vector<std::pair<uint32_t, ItemId>> stack;
  for (std::size_t i = 0; i < num_items; ++i) {
    const uint32_t head = top_[i];
    if (head == kNil) continue;
    if (head >= total) {
      return Status::Internal("repository: top slot " + std::to_string(i) +
                              " links to unallocated node " +
                              std::to_string(head));
    }
    const Node& node = nodes_[head];
    if (node.item != static_cast<ItemId>(i)) {
      return Status::Internal(
          "repository: top slot " + std::to_string(i) + " heads " +
          RepoNodeLabel(head, node.item) + " instead of item " +
          std::to_string(i));
    }
    if (node.sibling != kNil) {
      return Status::Internal("repository: top-level " +
                              RepoNodeLabel(head, node.item) +
                              " has a sibling; the flat array is the only "
                              "top level");
    }
    visited[head] = 1;
    ++reachable;
    if (node.terminal) ++terminals;
    if (node.children != kNil) stack.emplace_back(node.children, node.item);
  }
  while (!stack.empty()) {
    auto [head, parent_item] = stack.back();
    stack.pop_back();
    ItemId prev_item = kInvalidItem;  // sentinel: no left sibling yet
    for (uint32_t n = head; n != kNil; n = nodes_[n].sibling) {
      if (n >= total) {
        return Status::Internal("repository: link to unallocated node " +
                                std::to_string(n));
      }
      const Node& node = nodes_[n];
      if (visited[n]) {
        return Status::Internal("repository: " + RepoNodeLabel(n, node.item) +
                                " reachable twice (cycle or shared subtree)");
      }
      visited[n] = 1;
      ++reachable;
      if (node.item >= num_items) {
        return Status::Internal("repository: " + RepoNodeLabel(n, node.item) +
                                " has item code >= num_items " +
                                std::to_string(num_items));
      }
      if (prev_item != kInvalidItem && node.item >= prev_item) {
        return Status::Internal(
            "repository: sibling list not strictly descending at " +
            RepoNodeLabel(n, node.item) + " after item " +
            std::to_string(prev_item));
      }
      prev_item = node.item;
      if (node.item >= parent_item) {
        return Status::Internal(
            "repository: child " + RepoNodeLabel(n, node.item) +
            " does not carry a lower code than its parent (item " +
            std::to_string(parent_item) + ")");
      }
      if (node.terminal) ++terminals;
      if (node.children != kNil) stack.emplace_back(node.children, node.item);
    }
  }
  if (reachable != nodes_.size()) {
    return Status::Internal(
        "repository: " + std::to_string(nodes_.size() - reachable) +
        " allocated nodes are unreachable");
  }
  if (terminals != stored_) {
    return Status::Internal(
        "repository: terminal-node count " + std::to_string(terminals) +
        " != stored-set count " + std::to_string(stored_));
  }
  return Status::OK();
}

}  // namespace fim
