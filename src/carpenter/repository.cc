#include "carpenter/repository.h"

#include <cassert>

namespace fim {

ClosedSetRepository::ClosedSetRepository(std::size_t num_items)
    : top_(num_items, kNil) {}

uint32_t ClosedSetRepository::NewNode(ItemId item) {
  nodes_.push_back(Node{item, kNil, kNil, 0});
  return static_cast<uint32_t>(nodes_.size() - 1);
}

uint32_t ClosedSetRepository::FindOrCreateChild(uint32_t parent, ItemId item) {
  uint32_t prev = kNil;
  uint32_t cur = nodes_[parent].children;
  while (cur != kNil && nodes_[cur].item > item) {
    prev = cur;
    cur = nodes_[cur].sibling;
  }
  if (cur != kNil && nodes_[cur].item == item) return cur;
  uint32_t fresh = NewNode(item);
  nodes_[fresh].sibling = cur;
  if (prev == kNil) {
    nodes_[parent].children = fresh;
  } else {
    nodes_[prev].sibling = fresh;
  }
  return fresh;
}

uint32_t ClosedSetRepository::FindChild(uint32_t parent, ItemId item) const {
  uint32_t cur = nodes_[parent].children;
  while (cur != kNil && nodes_[cur].item > item) cur = nodes_[cur].sibling;
  if (cur != kNil && nodes_[cur].item == item) return cur;
  return kNil;
}

bool ClosedSetRepository::InsertIfAbsent(std::span<const ItemId> items) {
  assert(!items.empty());
  const ItemId first = items.back();  // highest item heads the path
  uint32_t node = top_[first];
  if (node == kNil) {
    node = NewNode(first);
    top_[first] = node;
  }
  for (std::size_t idx = items.size() - 1; idx > 0; --idx) {
    node = FindOrCreateChild(node, items[idx - 1]);
  }
  if (nodes_[node].terminal) return false;
  nodes_[node].terminal = 1;
  ++stored_;
  return true;
}

bool ClosedSetRepository::Contains(std::span<const ItemId> items) const {
  if (items.empty()) return false;
  uint32_t node = top_[items.back()];
  if (node == kNil) return false;
  for (std::size_t idx = items.size() - 1; idx > 0 && node != kNil; --idx) {
    node = FindChild(node, items[idx - 1]);
  }
  return node != kNil && nodes_[node].terminal;
}

}  // namespace fim
