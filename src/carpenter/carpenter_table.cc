#include <string>
#include <vector>

#include "carpenter/carpenter.h"
#include "carpenter/repository.h"
#include "common/check.h"
#include "kernels/intersect.h"
#include "obs/memory.h"

namespace fim {

std::vector<Support> BuildCarpenterMatrix(const TransactionDatabase& db) {
  const std::size_t n = db.NumTransactions();
  const std::size_t m = db.NumItems();
  std::vector<Support> matrix(n * m, 0);
  std::vector<Support> running(m, 0);
  for (std::size_t k = n; k > 0; --k) {
    const std::size_t row = k - 1;
    for (ItemId i : db.transaction(row)) {
      ++running[i];
      matrix[row * m + i] = running[i];
    }
  }
  return matrix;
}

Status ValidateCarpenterMatrix(const TransactionDatabase& db,
                               std::span<const Support> matrix) {
  const std::size_t n = db.NumTransactions();
  const std::size_t m = db.NumItems();
  if (matrix.size() != n * m) {
    return Status::Internal(
        "carpenter matrix: size " + std::to_string(matrix.size()) + " != " +
        std::to_string(n) + " transactions x " + std::to_string(m) +
        " items");
  }
  // Sweep bottom-up, maintaining per column the suffix occurrence count
  // and re-deriving the expected entry of every cell.
  std::vector<Support> suffix_count(m, 0);
  std::vector<uint8_t> member(m, 0);
  for (std::size_t k = n; k > 0; --k) {
    const std::size_t row = k - 1;
    for (ItemId i : db.transaction(row)) member[i] = 1;
    for (std::size_t i = 0; i < m; ++i) {
      const Support entry = matrix[row * m + i];
      if (!member[i]) {
        if (entry != 0) {
          return Status::Internal(
              "carpenter matrix: zero consistency violated at row " +
              std::to_string(row) + " item " + std::to_string(i) +
              ": entry " + std::to_string(entry) +
              " for an item not in the transaction");
        }
        continue;
      }
      if (entry == 0) {
        return Status::Internal(
            "carpenter matrix: zero consistency violated at row " +
            std::to_string(row) + " item " + std::to_string(i) +
            ": zero entry for an item of the transaction");
      }
      // Non-zero entries of a column are the suffix occurrence counts, so
      // going down they decrease by exactly one per occurrence.
      if (entry != suffix_count[i] + 1) {
        return Status::Internal(
            "carpenter matrix: column " + std::to_string(i) +
            " not a decreasing suffix count at row " + std::to_string(row) +
            ": entry " + std::to_string(entry) + ", expected " +
            std::to_string(suffix_count[i] + 1));
      }
      suffix_count[i] = entry;
    }
    for (ItemId i : db.transaction(row)) member[i] = 0;
  }
  return Status::OK();
}

namespace {

class TableMiner {
 public:
  TableMiner(const TransactionDatabase& coded, const CarpenterOptions& options,
             const ClosedSetCallback& callback, CarpenterStats* stats)
      : matrix_(BuildCarpenterMatrix(coded)),
        n_(static_cast<Tid>(coded.NumTransactions())),
        num_items_(coded.NumItems()),
        min_support_(options.min_support),
        item_elimination_(options.item_elimination),
        callback_(callback),
        repo_(coded.NumItems()),
        stats_(stats) {
    FIM_DCHECK_OK(ValidateCarpenterMatrix(coded, matrix_));
  }

  void Run() {
    std::vector<ItemId> initial;
    initial.reserve(num_items_);
    // Row 0 of the matrix is non-zero exactly for items of t_0; the item
    // base of the coded database contains only items occurring somewhere,
    // so take all of them.
    for (std::size_t i = 0; i < num_items_; ++i) {
      initial.push_back(static_cast<ItemId>(i));
    }
    if (initial.empty() || n_ == 0) return;
    Mine(initial, 0, 0);
    if (stats_ != nullptr) stats_->repo_sets = repo_.size();
  }

  // The matrix is built once; the repository only grows, so everything
  // is at its largest at the end of the run.
  void RecordMemory(obs::MemoryBreakdown* memory) const {
    if (memory == nullptr) return;
    memory->RecordBytes("matrix", matrix_.capacity() * sizeof(Support));
    memory->Record(repo_.ApproxMemoryUsage());
  }

 private:
  const Support* Row(Tid j) const { return matrix_.data() + j * num_items_; }

  // Same enumeration as the list-based variant, but the intersection with
  // t_j is computed by indexing the matrix row j with the items of the
  // current set (paper §3.1.2) — no cursors or tid-list traversal, and the
  // per-branch state is just the item list.
  void Mine(const std::vector<ItemId>& items, Support count, Tid l) {
    if (stats_ != nullptr) ++stats_->nodes_visited;
    Support supp = count;
    std::vector<ItemId> members;
    std::vector<ItemId> child;
    for (Tid j = l; j < n_; ++j) {
      const Support* row = Row(j);
      // The matrix-row intersection (paper §3.1.2) is an occurrence-row
      // filter: keep the items whose entry in row j is non-zero. Runs
      // through the dispatched kernel (gather-based under AVX2).
      members.resize(items.size());
      members.resize(kernels::Active().filter_nonzero(
          items.data(), items.size(), row, members.data()));
      if (members.empty()) continue;
      if (members.size() == items.size()) {
        ++supp;  // t_j contains I: absorb (perfect extension analog)
        continue;
      }
      child.clear();
      for (ItemId i : members) {
        // row[i] counts occurrences of i from transaction j onward,
        // including j itself, so row[i] - 1 occurrences remain below.
        if (item_elimination_ && supp + 1 + (row[i] - 1) < min_support_) {
          continue;
        }
        child.push_back(i);
      }
      if (child.empty()) continue;
      if (repo_.InsertIfAbsent(child)) {
        Mine(child, supp + 1, j + 1);
      } else if (stats_ != nullptr) {
        ++stats_->repo_hits;
      }
    }
    if (supp >= min_support_) {
      if (stats_ != nullptr) ++stats_->sets_reported;
      callback_(items, supp);
    }
  }

  std::vector<Support> matrix_;
  const Tid n_;
  const std::size_t num_items_;
  const Support min_support_;
  const bool item_elimination_;
  const ClosedSetCallback& callback_;
  ClosedSetRepository repo_;
  CarpenterStats* stats_;
};

}  // namespace

Status MineClosedCarpenterTable(const TransactionDatabase& db,
                                const CarpenterOptions& options,
                                const ClosedSetCallback& callback,
                                CarpenterStats* stats) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = CarpenterStats{};
  if (db.NumTransactions() == 0) return Status::OK();

  const Support min_item_support =
      options.item_elimination ? options.min_support : 1;
  const Recoding recoding =
      ComputeRecoding(db, options.item_order, min_item_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, options.transaction_order);
  if (coded.NumTransactions() == 0) return Status::OK();

  const ClosedSetCallback decoded =
      MakeDecodingCallback(recoding, callback);
  TableMiner miner(coded, options, decoded, stats);
  miner.Run();
  if (options.memory != nullptr) {
    obs::MemoryComponent coded_db = coded.ApproxMemoryUsage();
    coded_db.name = "recoded-db";
    options.memory->Record(std::move(coded_db));
    miner.RecordMemory(options.memory);
  }
  return Status::OK();
}

}  // namespace fim
