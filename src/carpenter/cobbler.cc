#include "carpenter/cobbler.h"

#include <algorithm>
#include <vector>

#include "carpenter/repository.h"
#include "enumeration/lcm.h"
#include "obs/memory.h"

namespace fim {

namespace {

// Item of the current intersection with its cursor into the item's tid
// list (same representation as the list-based Carpenter).
struct Entry {
  ItemId item;
  uint32_t pos;
};

class CobblerMiner {
 public:
  CobblerMiner(const TransactionDatabase& coded,
               const CobblerOptions& options,
               const ClosedSetCallback& callback, CarpenterStats* stats)
      : db_(coded),
        tidlists_(coded.BuildVertical()),
        n_(static_cast<Tid>(coded.NumTransactions())),
        options_(options),
        callback_(callback),
        repo_(coded.NumItems()),
        stats_(stats) {}

  void Run() {
    std::vector<Entry> initial;
    initial.reserve(tidlists_.size());
    for (std::size_t i = 0; i < tidlists_.size(); ++i) {
      if (!tidlists_[i].empty()) {
        initial.push_back(Entry{static_cast<ItemId>(i), 0});
      }
    }
    if (initial.empty()) return;
    Mine(initial, 0, 0);
    if (stats_ != nullptr) stats_->repo_sets = repo_.size();
  }

  // Tid lists are built once, the repository only grows: largest at the
  // end of the run.
  void RecordMemory(obs::MemoryBreakdown* memory) const {
    if (memory == nullptr) return;
    memory->RecordBytes("tid-lists", obs::NestedVectorBytes(tidlists_));
    memory->Record(repo_.ApproxMemoryUsage());
  }

 private:
  // Row-enumeration node, identical contract to the list-based
  // Carpenter: `entries` is the current intersection I (= intersection
  // of the chosen transactions, which are exactly `chosen_`), `count` =
  // |chosen_|, cursors point at the first tid >= l.
  void Mine(const std::vector<Entry>& entries, Support count, Tid l) {
    if (stats_ != nullptr) ++stats_->nodes_visited;

    if (ShouldSwitch(entries.size(), l)) {
      if (stats_ != nullptr) ++stats_->column_switches;
      MineConditionalByColumns(entries, count, l);
      return;
    }

    std::vector<Entry> sweep = entries;
    Support supp = count;
    std::vector<Entry> members;
    std::vector<ItemId> key;
    for (;;) {
      Tid j = n_;
      for (const Entry& e : sweep) {
        const auto& tids = tidlists_[e.item];
        if (e.pos < tids.size()) j = std::min(j, tids[e.pos]);
      }
      if (j >= n_) break;

      members.clear();
      for (Entry& e : sweep) {
        const auto& tids = tidlists_[e.item];
        if (e.pos < tids.size() && tids[e.pos] == j) {
          members.push_back(Entry{e.item, e.pos + 1});
          ++e.pos;
        }
      }
      if (members.size() == sweep.size()) {
        ++supp;  // absorbed: t_j contains I
        chosen_.push_back(j);
        continue;
      }

      std::vector<Entry> child;
      child.reserve(members.size());
      for (const Entry& e : members) {
        if (options_.item_elimination) {
          const auto remaining =
              static_cast<Support>(tidlists_[e.item].size() - e.pos);
          if (supp + 1 + remaining < options_.min_support) continue;
        }
        child.push_back(e);
      }
      if (child.empty()) continue;
      key.clear();
      for (const Entry& e : child) key.push_back(e.item);
      if (repo_.InsertIfAbsent(key)) {
        chosen_.push_back(j);
        Mine(child, supp + 1, j + 1);
        chosen_.pop_back();
      } else if (stats_ != nullptr) {
        ++stats_->repo_hits;
      }
    }

    if (supp >= options_.min_support) {
      key.clear();
      for (const Entry& e : sweep) key.push_back(e.item);
      if (stats_ != nullptr) ++stats_->sets_reported;
      callback_(key, supp);
    }
    // Undo the absorptions recorded during this sweep.
    while (!chosen_.empty() && chosen_.back() >= l) chosen_.pop_back();
  }

  bool ShouldSwitch(std::size_t num_items, Tid l) const {
    return options_.switch_max_items > 0 &&
           num_items <= options_.switch_max_items &&
           static_cast<std::size_t>(n_ - l) >= options_.switch_min_rows;
  }

  // Column-enumeration takeover of the whole subtree: the closed sets
  // below this node are exactly the closed sets of the conditional
  // database {t_j ∩ I : j >= l}, each completed with `count` chosen
  // transactions — except for sets also contained in an earlier,
  // not-chosen transaction, which an earlier branch has already produced
  // with their full support (the backward check below discards those).
  void MineConditionalByColumns(const std::vector<Entry>& entries,
                                Support count, Tid l) {
    std::vector<ItemId> current;
    current.reserve(entries.size());
    for (const Entry& e : entries) current.push_back(e.item);

    // Build the conditional rows and count the rows equal to I.
    TransactionDatabase conditional;
    conditional.SetNumItems(db_.NumItems());
    Support rows_equal_to_current = 0;
    for (Tid j = l; j < n_; ++j) {
      std::vector<ItemId> row = IntersectSorted(current, db_.transaction(j));
      if (row.size() == current.size()) ++rows_equal_to_current;
      if (!row.empty()) conditional.AddTransaction(std::move(row));
    }

    // I itself: supported by the chosen transactions plus the rows that
    // equal it (the absorptions plain Carpenter would have made). The
    // repository invariant already guarantees no earlier unchosen
    // transaction contains I.
    const Support current_support = count + rows_equal_to_current;
    if (current_support >= options_.min_support) {
      if (stats_ != nullptr) ++stats_->sets_reported;
      callback_(current, current_support);
    }
    repo_.InsertIfAbsent(current);

    if (conditional.NumTransactions() == 0) return;
    const Support sub_min =
        options_.min_support > count ? options_.min_support - count : 1;

    LcmOptions lcm;
    lcm.min_support = sub_min;
    Status status = MineClosedLcm(
        conditional, lcm,
        [this, &current, count, l](std::span<const ItemId> items,
                                   Support sub_support) {
          if (items.size() == current.size()) return;  // I handled above
          // Backward check: an earlier transaction outside the chosen
          // set that contains the candidate means an earlier branch owns
          // it (with its complete support).
          std::vector<ItemId> set(items.begin(), items.end());
          if (!ContainedInEarlierUnchosen(set, l)) {
            const Support support = count + sub_support;
            if (support >= options_.min_support) {
              if (stats_ != nullptr) ++stats_->sets_reported;
              callback_(set, support);
            }
          }
          // Either way the subtree around it is fully covered now.
          repo_.InsertIfAbsent(set);
        });
    (void)status;  // options validated by the caller; cannot fail here
  }

  bool ContainedInEarlierUnchosen(const std::vector<ItemId>& set,
                                  Tid l) const {
    for (Tid j = 0; j < l; ++j) {
      if (std::binary_search(chosen_.begin(), chosen_.end(), j)) continue;
      if (IsSubsetSorted(set, db_.transaction(j))) return true;
    }
    return false;
  }

  const TransactionDatabase& db_;
  std::vector<std::vector<Tid>> tidlists_;
  const Tid n_;
  const CobblerOptions& options_;
  const ClosedSetCallback& callback_;
  ClosedSetRepository repo_;
  CarpenterStats* stats_;
  std::vector<Tid> chosen_;  // ascending: branch + absorbed transactions
};

}  // namespace

Status MineClosedCobbler(const TransactionDatabase& db,
                         const CobblerOptions& options,
                         const ClosedSetCallback& callback,
                         CarpenterStats* stats) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = CarpenterStats{};
  if (db.NumTransactions() == 0) return Status::OK();

  const Support min_item_support =
      options.item_elimination ? options.min_support : 1;
  const Recoding recoding =
      ComputeRecoding(db, options.item_order, min_item_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, options.transaction_order);
  if (coded.NumTransactions() == 0) return Status::OK();

  const ClosedSetCallback decoded = MakeDecodingCallback(recoding, callback);
  CobblerMiner miner(coded, options, decoded, stats);
  miner.Run();
  if (options.memory != nullptr) {
    obs::MemoryComponent coded_db = coded.ApproxMemoryUsage();
    coded_db.name = "recoded-db";
    options.memory->Record(std::move(coded_db));
    miner.RecordMemory(options.memory);
  }
  return Status::OK();
}

}  // namespace fim
