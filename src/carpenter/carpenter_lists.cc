#include <algorithm>
#include <vector>

#include "carpenter/carpenter.h"
#include "carpenter/repository.h"
#include "obs/memory.h"

namespace fim {

namespace {

// One item of the current intersection together with its cursor into the
// item's tid list (the cursor points at the first tid >= the enumeration
// position, the "next unprocessed transaction index" of §3.1.1).
struct Entry {
  ItemId item;
  uint32_t pos;
};

class ListsMiner {
 public:
  ListsMiner(const TransactionDatabase& coded, const CarpenterOptions& options,
             const ClosedSetCallback& callback, CarpenterStats* stats)
      : tidlists_(coded.BuildVertical()),
        n_(static_cast<Tid>(coded.NumTransactions())),
        min_support_(options.min_support),
        item_elimination_(options.item_elimination),
        callback_(callback),
        repo_(coded.NumItems()),
        stats_(stats) {}

  void Run() {
    // The root subproblem: I = item base, no transactions chosen yet.
    std::vector<Entry> initial;
    initial.reserve(tidlists_.size());
    for (std::size_t i = 0; i < tidlists_.size(); ++i) {
      if (!tidlists_[i].empty()) {
        initial.push_back(Entry{static_cast<ItemId>(i), 0});
      }
    }
    if (initial.empty()) return;
    Mine(initial, 0, 0);
    if (stats_ != nullptr) stats_->repo_sets = repo_.size();
  }

  // Both structures are at their largest at the end of the run: the tid
  // lists are built once, the repository only grows.
  void RecordMemory(obs::MemoryBreakdown* memory) const {
    if (memory == nullptr) return;
    memory->RecordBytes("tid-lists", obs::NestedVectorBytes(tidlists_));
    memory->Record(repo_.ApproxMemoryUsage());
  }

 private:
  // Processes the subproblem (I = `entries`, |chosen| = `count`, next
  // index `l`). Sweeps the remaining transactions in order; a transaction
  // containing all of I is absorbed into the support (the perfect
  // extension analog), any other non-empty intersection opens a branch
  // guarded by the duplicate repository.
  void Mine(const std::vector<Entry>& entries, Support count, Tid l) {
    if (stats_ != nullptr) ++stats_->nodes_visited;
    std::vector<Entry> sweep = entries;
    Support supp = count;
    std::vector<Entry> members;
    std::vector<ItemId> key;
    (void)l;  // cursors already point at the first tid >= l
    for (;;) {
      // Next transaction containing at least one item of I.
      Tid j = n_;
      for (const Entry& e : sweep) {
        const auto& tids = tidlists_[e.item];
        if (e.pos < tids.size()) j = std::min(j, tids[e.pos]);
      }
      if (j >= n_) break;

      members.clear();
      for (Entry& e : sweep) {
        const auto& tids = tidlists_[e.item];
        if (e.pos < tids.size() && tids[e.pos] == j) {
          members.push_back(Entry{e.item, e.pos + 1});
          ++e.pos;
        }
      }
      if (members.size() == sweep.size()) {
        // t_j contains I completely: absorb it into the support; opening
        // a branch could only rediscover I (paper: skip the second
        // subproblem when the intersection is unchanged).
        ++supp;
        continue;
      }

      // Branch: include j. Item elimination (§3.1.1): an item that does
      // not occur often enough in the remaining transactions can never be
      // part of a frequent set found below this branch.
      std::vector<Entry> child;
      child.reserve(members.size());
      for (const Entry& e : members) {
        if (item_elimination_) {
          const auto remaining =
              static_cast<Support>(tidlists_[e.item].size() - e.pos);
          if (supp + 1 + remaining < min_support_) continue;
        }
        child.push_back(e);
      }
      if (child.empty()) continue;
      key.clear();
      for (const Entry& e : child) key.push_back(e.item);
      if (repo_.InsertIfAbsent(key)) {
        Mine(child, supp + 1, j + 1);
      } else if (stats_ != nullptr) {
        ++stats_->repo_hits;
      }
    }

    if (supp >= min_support_) {
      key.clear();
      for (const Entry& e : sweep) key.push_back(e.item);
      if (stats_ != nullptr) ++stats_->sets_reported;
      callback_(key, supp);
    }
  }

  std::vector<std::vector<Tid>> tidlists_;
  const Tid n_;
  const Support min_support_;
  const bool item_elimination_;
  const ClosedSetCallback& callback_;
  ClosedSetRepository repo_;
  CarpenterStats* stats_;
};

}  // namespace

Status MineClosedCarpenterLists(const TransactionDatabase& db,
                                const CarpenterOptions& options,
                                const ClosedSetCallback& callback,
                                CarpenterStats* stats) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = CarpenterStats{};
  if (db.NumTransactions() == 0) return Status::OK();

  const Support min_item_support =
      options.item_elimination ? options.min_support : 1;
  const Recoding recoding =
      ComputeRecoding(db, options.item_order, min_item_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, options.transaction_order);
  if (coded.NumTransactions() == 0) return Status::OK();

  const ClosedSetCallback decoded =
      MakeDecodingCallback(recoding, callback);
  ListsMiner miner(coded, options, decoded, stats);
  miner.Run();
  if (options.memory != nullptr) {
    obs::MemoryComponent coded_db = coded.ApproxMemoryUsage();
    coded_db.name = "recoded-db";
    options.memory->Record(std::move(coded_db));
    miner.RecordMemory(options.memory);
  }
  return Status::OK();
}

}  // namespace fim
