#ifndef FIM_CARPENTER_REPOSITORY_H_
#define FIM_CARPENTER_REPOSITORY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/itemset.h"
#include "obs/memory.h"

namespace fim {

/// Repository of already-encountered intersections used by both Carpenter
/// variants for duplicate pruning (paper §3.1.1). Implemented as a prefix
/// tree whose top level is a flat array indexed by item — important for
/// the many-items data Carpenter targets, because the top level is almost
/// fully populated while deeper levels are sparse sibling lists.
///
/// Sets are stored along root paths in descending item order; a terminal
/// flag marks nodes whose root path is a stored set (so a stored set and
/// a longer set sharing its prefix do not collide).
class ClosedSetRepository {
 public:
  explicit ClosedSetRepository(std::size_t num_items);

  /// Inserts `items` (sorted ascending, non-empty) unless already present.
  /// Returns true if the set was newly inserted.
  bool InsertIfAbsent(std::span<const ItemId> items);

  /// True if `items` is stored. (Mainly for tests.)
  bool Contains(std::span<const ItemId> items) const;

  /// Number of stored sets.
  std::size_t size() const { return stored_; }

  /// Number of allocated tree nodes (memory diagnostics).
  std::size_t NodeCount() const { return nodes_.size(); }

  /// Exact heap footprint (capacity bytes) as a breakdown named
  /// "repository": the flat per-item top level vs the node arena. O(1).
  obs::MemoryComponent ApproxMemoryUsage() const {
    obs::MemoryComponent repo("repository");
    repo.children.emplace_back("top-level",
                               top_.capacity() * sizeof(top_[0]));
    repo.children.emplace_back("nodes", nodes_.capacity() * sizeof(Node));
    return repo;
  }

  /// Exhaustively checks the structural invariants of the repository and
  /// returns OK, or an Internal status naming the first violation:
  ///   - a populated top-level slot i heads a node carrying item i with no
  ///     sibling (the top level is the flat array itself);
  ///   - every sibling list is sorted by strictly descending item code;
  ///   - every child carries a strictly lower item code than its parent;
  ///   - item codes are < num_items;
  ///   - every allocated node is reachable exactly once (no cycles, no
  ///     leaks);
  ///   - the number of terminal nodes equals size().
  /// O(nodes). Debug builds run this automatically at mutation points via
  /// FIM_DCHECK; tests and fim-verify call it on demand.
  Status ValidateInvariants() const;

 private:
  friend struct ClosedSetRepositoryTestPeer;  // corruption hooks for tests

  struct Node {
    ItemId item;
    uint32_t sibling;
    uint32_t children;
    uint8_t terminal;
  };

  static constexpr uint32_t kNil = static_cast<uint32_t>(-1);

  uint32_t NewNode(ItemId item);
  uint32_t FindOrCreateChild(uint32_t parent, ItemId item);
  uint32_t FindChild(uint32_t parent, ItemId item) const;

  std::vector<uint32_t> top_;  // flat per-item top level
  std::vector<Node> nodes_;
  std::size_t stored_ = 0;
};

}  // namespace fim

#endif  // FIM_CARPENTER_REPOSITORY_H_
