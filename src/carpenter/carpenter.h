#ifndef FIM_CARPENTER_CARPENTER_H_
#define FIM_CARPENTER_CARPENTER_H_

#include <cstddef>
#include <span>

#include "common/status.h"
#include "data/itemset.h"
#include "data/recode.h"
#include "data/transaction_database.h"
#include "obs/miner_stats.h"

namespace fim {

namespace obs {
class MemoryBreakdown;
}  // namespace obs

/// Options shared by both Carpenter variants (paper §3.1).
struct CarpenterOptions {
  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;

  /// Item code assignment (affects only repository shape / speed).
  ItemOrder item_order = ItemOrder::kFrequencyAscending;

  /// Order in which transaction indices are enumerated.
  TransactionOrder transaction_order = TransactionOrder::kSizeAscending;

  /// The paper's §3.1.1 improvement: drop an item i from an intersection
  /// as soon as |K| plus the number of remaining transactions containing
  /// i cannot reach the minimum support. Never changes the output.
  bool item_elimination = true;

  /// Optional memory attribution (obs/memory.h): the list variant
  /// records its vertical tid lists and duplicate repository, the table
  /// variant its suffix-count matrix and repository, at their largest.
  /// Output-neutral; must outlive the call.
  obs::MemoryBreakdown* memory = nullptr;
};

// Execution statistics (optional output): the unified MinerStats snapshot
// (obs/miner_stats.h) under its historical name. Both variants populate
// nodes_visited, repo_sets, repo_hits, and sets_reported.

/// Carpenter with the vertical tid-list representation (paper §3.1.1):
/// per item an array of transaction indices plus per-branch cursors.
/// Reports every closed frequent item set exactly once (ascending
/// original ids); the empty set is never reported.
Status MineClosedCarpenterLists(const TransactionDatabase& db,
                                const CarpenterOptions& options,
                                const ClosedSetCallback& callback,
                                CarpenterStats* stats = nullptr);

/// Carpenter with the table-/matrix-based representation (paper §3.1.2,
/// Table 1): an n x |B| matrix whose entry (k, i) is 0 when item i is not
/// in transaction k and otherwise the number of transactions from k
/// onward that contain i. Same output contract as the list variant.
Status MineClosedCarpenterTable(const TransactionDatabase& db,
                                const CarpenterOptions& options,
                                const ClosedSetCallback& callback,
                                CarpenterStats* stats = nullptr);

/// Builds the §3.1.2 suffix-count matrix in row-major layout (row k at
/// [k * num_items, (k+1) * num_items)). Exposed for tests (Table 1) and
/// benches.
std::vector<Support> BuildCarpenterMatrix(const TransactionDatabase& db);

/// Checks that `matrix` is a well-formed §3.1.2 occurrence matrix for
/// `db` (Table 1) and returns OK, or an Internal status naming the first
/// violated invariant:
///   - the matrix has NumTransactions() x NumItems() entries;
///   - zero consistency: entry (k, i) is zero exactly when item i is not
///     in transaction k;
///   - down each column, non-zero entries are strictly decreasing and
///     each equals the number of transactions from row k onward that
///     contain the item (so the bottom-most non-zero entry is 1).
/// O(n * |B|). Debug builds run this automatically when the table miner
/// materializes its matrix; tests and fim-verify call it on demand.
Status ValidateCarpenterMatrix(const TransactionDatabase& db,
                               std::span<const Support> matrix);

}  // namespace fim

#endif  // FIM_CARPENTER_CARPENTER_H_
