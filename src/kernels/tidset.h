#ifndef FIM_KERNELS_TIDSET_H_
#define FIM_KERNELS_TIDSET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/itemset.h"

namespace fim::kernels {

/// A transaction-id set over a fixed universe [0, universe) that picks
/// its own representation: a sorted sparse `std::vector<Tid>` below the
/// density cutover, a packed bit vector above it. Intersections run
/// through the dispatched kernels (sorted-list merge/gallop for sparse
/// operands, word-at-a-time AND for dense ones) and the result converts
/// itself back below the cutover, so long Eclat-style intersection
/// chains stay in the cheapest representation automatically.
///
/// Representation is an implementation detail: Tids(), Count() and the
/// intersection results are identical whichever side of the cutover the
/// operands are on (tests/kernels_test.cc fuzzes the boundary).
class TidSet {
 public:
  /// Dense when count * kDensityCutover >= universe (density >= 1/32):
  /// the bit vector costs universe/8 bytes against 4*count sparse bytes,
  /// so memory breaks even at 1/32 and the word-AND kernel wins well
  /// before that on time.
  static constexpr std::size_t kDensityCutover = 32;

  TidSet() = default;

  /// Takes a sorted duplicate-free tid list over [0, universe).
  static TidSet FromSorted(std::vector<Tid> tids, Tid universe);

  /// Number of tids in the set (the support of the column).
  Support Count() const { return count_; }

  Tid universe() const { return universe_; }
  bool dense() const { return dense_; }

  /// The tids, ascending. Sparse sets return their storage; dense sets
  /// materialize into `scratch` (resized as needed).
  std::span<const Tid> Tids(std::vector<Tid>* scratch) const;

  /// result = a ∩ b, reusing `result`'s buffers (no allocation once
  /// warm). `result` must not alias `a` or `b`. Both operands must share
  /// the same universe.
  static void Intersect(const TidSet& a, const TidSet& b, TidSet* result);

  /// Exact heap bytes behind this set (capacity of whichever buffers
  /// exist — a set that crossed the density cutover may hold both).
  /// Summed per column by the miners feeding the memory breakdown.
  std::size_t ApproxMemoryUsage() const {
    return sparse_.capacity() * sizeof(Tid) +
           words_.capacity() * sizeof(std::uint64_t);
  }

 private:
  static bool ShouldBeDense(std::size_t count, Tid universe) {
    return static_cast<std::uint64_t>(count) * kDensityCutover >=
           static_cast<std::uint64_t>(universe);
  }
  static std::size_t WordsFor(Tid universe) {
    return (static_cast<std::size_t>(universe) + 63) / 64;
  }

  void ConvertToDense();
  void ConvertToSparseIfBelowCutover();

  Tid universe_ = 0;
  Support count_ = 0;
  bool dense_ = false;
  std::vector<Tid> sparse_;           // sorted, valid when !dense_
  std::vector<std::uint64_t> words_;  // valid when dense_
};

}  // namespace fim::kernels

#endif  // FIM_KERNELS_TIDSET_H_
