// AVX2 tier: 8-wide shuffle-based sorted-u32 intersection, 256-bit
// word-at-a-time bitset AND, and a gather-based occurrence-row filter
// for Carpenter's matrix path. Same all-pairs-compare + left-pack shape
// as the SSE tier, with the 4-lane rotations replaced by 8-lane
// permutes and the 16-entry shuffle table by a 256-entry permutation
// table. Compiled with -mavx2 (see src/CMakeLists.txt); the runtime
// dispatcher never hands this tier to a CPU without AVX2.

#include "kernels/intersect.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace fim::kernels {

namespace {

// Left-packing permutations for _mm256_permutevar8x32_epi32: entry m
// moves the lanes whose bit is set in m to the front, in order.
struct PermuteTable {
  alignas(32) std::uint32_t lanes[256][8];
};

constexpr PermuteTable BuildPermuteTable() {
  PermuteTable table{};
  for (int mask = 0; mask < 256; ++mask) {
    int out_lane = 0;
    for (std::uint32_t lane = 0; lane < 8; ++lane) {
      if ((mask >> lane) & 1) table.lanes[mask][out_lane++] = lane;
    }
    for (; out_lane < 8; ++out_lane) table.lanes[mask][out_lane] = 0;
  }
  return table;
}

constexpr PermuteTable kPermutes = BuildPermuteTable();

// Cyclic 8-lane rotations 1..7 for the all-pairs comparison.
constexpr PermuteTable BuildRotations() {
  PermuteTable table{};
  for (int r = 0; r < 8; ++r) {
    for (std::uint32_t lane = 0; lane < 8; ++lane) {
      table.lanes[r][lane] = (lane + static_cast<std::uint32_t>(r)) % 8;
    }
  }
  return table;
}

constexpr PermuteTable kRotations = BuildRotations();

std::size_t Avx2Intersect(const std::uint32_t* a, std::size_t na,
                          const std::uint32_t* b, std::size_t nb,
                          std::uint32_t* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      const __m256i rot = _mm256_permutevar8x32_epi32(
          vb, _mm256_load_si256(
                  reinterpret_cast<const __m256i*>(kRotations.lanes[r])));
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, rot));
    }
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
    const __m256i packed = _mm256_permutevar8x32_epi32(
        va, _mm256_load_si256(
                reinterpret_cast<const __m256i*>(kPermutes.lanes[mask])));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), packed);
    k += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mask)));
    const std::uint32_t a_max = a[i + 7];
    const std::uint32_t b_max = b[j + 7];
    if (a_max <= b_max) i += 8;
    if (b_max <= a_max) j += 8;
  }
  while (i < na && j < nb) {
    const std::uint32_t va = a[i];
    const std::uint32_t vb = b[j];
    if (va < vb) {
      ++i;
    } else if (vb < va) {
      ++j;
    } else {
      out[k++] = va;
      ++i;
      ++j;
    }
  }
  CountCall(na + nb, k);
  return k;
}

std::size_t Avx2BitsetAnd(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words, std::uint64_t* out) {
  std::size_t count = 0;
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w),
                        _mm256_and_si256(va, vb));
    count += static_cast<std::size_t>(std::popcount(out[w])) +
             static_cast<std::size_t>(std::popcount(out[w + 1])) +
             static_cast<std::size_t>(std::popcount(out[w + 2])) +
             static_cast<std::size_t>(std::popcount(out[w + 3]));
  }
  for (; w < words; ++w) {
    const std::uint64_t v = a[w] & b[w];
    out[w] = v;
    count += static_cast<std::size_t>(std::popcount(v));
  }
  CountCall(2 * 64 * words, count);
  return count;
}

std::size_t Avx2FilterNonzero(const std::uint32_t* items, std::size_t n,
                              const std::uint32_t* row, std::uint32_t* out) {
  std::size_t i = 0;
  std::size_t k = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    const __m256i vitems =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i));
    const __m256i gathered = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(row), vitems, 4);
    // Keep lanes whose gathered row entry is non-zero.
    const int zero_mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(gathered,
                                                                  zero)));
    const int mask = (~zero_mask) & 0xFF;
    const __m256i packed = _mm256_permutevar8x32_epi32(
        vitems, _mm256_load_si256(
                    reinterpret_cast<const __m256i*>(kPermutes.lanes[mask])));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), packed);
    k += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) {
    const std::uint32_t item = items[i];
    if (row[item] != 0) out[k++] = item;
  }
  CountCall(n, k);
  return k;
}

constexpr IntersectKernel kAvx2Kernel = {
    KernelId::kAvx2, "avx2",
    &Avx2Intersect, &Avx2BitsetAnd, &Avx2FilterNonzero,
};

}  // namespace

const IntersectKernel* Avx2Kernel() { return &kAvx2Kernel; }

}  // namespace fim::kernels

#else  // !defined(__AVX2__)

namespace fim::kernels {

const IntersectKernel* Avx2Kernel() { return nullptr; }

}  // namespace fim::kernels

#endif  // defined(__AVX2__)
