#include "kernels/tidset.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "kernels/intersect.h"

namespace fim::kernels {

TidSet TidSet::FromSorted(std::vector<Tid> tids, Tid universe) {
  FIM_DCHECK(std::is_sorted(tids.begin(), tids.end()) &&
             std::adjacent_find(tids.begin(), tids.end()) == tids.end())
      << "TidSet input must be sorted ascending and duplicate-free";
  FIM_DCHECK(tids.empty() || tids.back() < universe)
      << "tid " << tids.back() << " outside universe " << universe;
  TidSet set;
  set.universe_ = universe;
  set.count_ = static_cast<Support>(tids.size());
  set.sparse_ = std::move(tids);
  if (ShouldBeDense(set.sparse_.size(), universe)) set.ConvertToDense();
  return set;
}

std::span<const Tid> TidSet::Tids(std::vector<Tid>* scratch) const {
  if (!dense_) return sparse_;
  scratch->clear();
  scratch->reserve(count_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      scratch->push_back(static_cast<Tid>(w * 64 + bit));
      word &= word - 1;
    }
  }
  return *scratch;
}

void TidSet::ConvertToDense() {
  words_.assign(WordsFor(universe_), 0);
  for (Tid t : sparse_) {
    words_[t >> 6] |= std::uint64_t{1} << (t & 63);
  }
  sparse_.clear();
  dense_ = true;
}

void TidSet::ConvertToSparseIfBelowCutover() {
  if (!dense_ || ShouldBeDense(count_, universe_)) return;
  sparse_.clear();
  sparse_.reserve(count_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      sparse_.push_back(static_cast<Tid>(w * 64 + bit));
      word &= word - 1;
    }
  }
  words_.clear();
  dense_ = false;
}

void TidSet::Intersect(const TidSet& a, const TidSet& b, TidSet* result) {
  FIM_DCHECK(a.universe_ == b.universe_)
      << "TidSet universes differ: " << a.universe_ << " vs " << b.universe_;
  FIM_DCHECK(result != &a && result != &b)
      << "TidSet::Intersect result must not alias an operand";
  result->universe_ = a.universe_;
  if (a.dense_ && b.dense_) {
    // Word-at-a-time AND through the dispatched kernel; the result may
    // fall below the cutover and converts itself back to sparse.
    result->words_.resize(a.words_.size());
    result->count_ = static_cast<Support>(Active().bitset_and(
        a.words_.data(), b.words_.data(), a.words_.size(),
        result->words_.data()));
    result->dense_ = true;
    result->sparse_.clear();
    result->ConvertToSparseIfBelowCutover();
    return;
  }
  if (a.dense_ != b.dense_) {
    // Probe the dense side with the sparse side's tids. The result is at
    // most the sparse operand, which is below the cutover by
    // construction, so it stays sparse.
    const TidSet& sparse = a.dense_ ? b : a;
    const TidSet& dense = a.dense_ ? a : b;
    result->sparse_.resize(sparse.sparse_.size());
    std::size_t k = 0;
    for (Tid t : sparse.sparse_) {
      if ((dense.words_[t >> 6] >> (t & 63)) & 1) {
        result->sparse_[k++] = t;
      }
    }
    CountCall(sparse.sparse_.size(), k);
    result->sparse_.resize(k);
    result->count_ = static_cast<Support>(k);
    result->dense_ = false;
    result->words_.clear();
    return;
  }
  // Both sparse: adaptive merge/gallop kernel; the result cannot exceed
  // the smaller operand, so it stays below the cutover.
  IntersectInto(a.sparse_, b.sparse_, &result->sparse_);
  result->count_ = static_cast<Support>(result->sparse_.size());
  result->dense_ = false;
  result->words_.clear();
}

}  // namespace fim::kernels
