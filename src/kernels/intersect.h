#ifndef FIM_KERNELS_INTERSECT_H_
#define FIM_KERNELS_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace fim::kernels {

/// Runtime-dispatched intersection kernels for the hot paths (see
/// docs/PERFORMANCE.md). Every miner that intersects sorted u32 id
/// sequences — tid lists, item lists, diffsets — goes through this
/// interface; the implementation behind it is chosen once per process,
/// at first use, from the CPU's feature set (CPUID) or the FIM_KERNEL
/// environment variable / ForceKernel override.
///
/// Contract: all kernels are EXACT drop-in replacements for
/// std::set_intersection over sorted, duplicate-free uint32_t ranges —
/// same elements, same order, for every input. The property tests in
/// tests/kernels_test.cc enforce element-for-element agreement, which is
/// what keeps the miners' closed-set output bit-identical under every
/// FIM_KERNEL setting.

/// Identifies one registered implementation tier.
enum class KernelId : int {
  kScalar = 0,  // portable C++, the reference implementation
  kSse = 1,     // SSSE3 shuffle-based block intersection
  kAvx2 = 2,    // AVX2 8-wide shuffle-based block intersection
};

/// One implementation tier: a table of raw kernels sharing a contract.
/// All function pointers are non-null (tiers fall back to the scalar
/// routine for ops they do not accelerate).
/// Store slack the `intersect` kernels require beyond the result bound:
/// `out` must have capacity >= min(na, nb) + kIntersectPad. The SIMD
/// tiers always store a full vector at out+k, and k can legitimately
/// reach min(na, nb) while blocks remain (the matches so far may all
/// come from the still-current block of the shorter side), so the write
/// may extend up to 8 lanes past the result bound. IntersectInto
/// provides the slack automatically.
inline constexpr std::size_t kIntersectPad = 8;

struct IntersectKernel {
  KernelId id;
  const char* name;  // "scalar" | "sse" | "avx2"

  /// Writes the intersection of the sorted duplicate-free ranges
  /// [a, a+na) and [b, b+nb) to `out` (capacity >= min(na, nb) +
  /// kIntersectPad; lanes past the returned count hold garbage) and
  /// returns the number of elements written. `out` must not alias either
  /// input: the SIMD tiers store full vectors at out+k and may re-read an
  /// input block that did not advance, so even the shrinking `out == a`
  /// pattern that is safe for the scalar merge would corrupt the input.
  std::size_t (*intersect)(const std::uint32_t* a, std::size_t na,
                           const std::uint32_t* b, std::size_t nb,
                           std::uint32_t* out);

  /// ANDs `words` 64-bit words of `a` and `b` into `out` (aliasing with
  /// either input allowed) and returns the population count of the
  /// result.
  std::size_t (*bitset_and)(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words, std::uint64_t* out);

  /// Copies the elements i of `items` with row[i] != 0 to `out`
  /// (capacity >= n), preserving order; returns the count. This is the
  /// occurrence-row filter of Carpenter's matrix path. `out == items` is
  /// allowed.
  std::size_t (*filter_nonzero)(const std::uint32_t* items, std::size_t n,
                                const std::uint32_t* row, std::uint32_t* out);
};

/// The kernel tier selected for this process. First call selects:
/// honours FIM_KERNEL=scalar|sse|avx2 when set (falling back to the best
/// supported tier, with a warning on stderr, if the named tier is not
/// available on this CPU), otherwise picks the best tier CPUID reports.
const IntersectKernel& Active();

/// Overrides the active tier by name. Returns false (and changes
/// nothing) if the name is unknown or the tier is not supported on this
/// CPU. Not thread-safe against concurrent mining: call between runs
/// (tests, tool flag parsing).
bool ForceKernel(std::string_view name);

/// The tiers supported on this machine, scalar first.
std::vector<const IntersectKernel*> AvailableKernels();

/// Cumulative kernel-call counters, summed over all threads that ever
/// ran a kernel (cheap thread-local counting; exact once those threads
/// are quiescent, e.g. after a mining run joined its workers).
struct CounterSnapshot {
  std::uint64_t calls = 0;        // kernel invocations (any op)
  std::uint64_t elements_in = 0;  // input elements consumed (na + nb)
  std::uint64_t elements_out = 0; // elements produced
};
CounterSnapshot Counters();

// ---------------------------------------------------------------------------
// Adaptive front doors used by the miners.

/// Length ratio above which the adaptive intersection switches from the
/// block-merge kernel to galloping: one-sided binary search wins once
/// the longer list is ~16x the shorter one (see BENCH_kernels.json for
/// the measured crossover on the committed sweeps).
inline constexpr std::size_t kGallopRatio = 16;

/// Adaptive sorted intersection: galloping for skewed length ratios
/// (>= kGallopRatio), the active tier's block-merge kernel otherwise.
/// Same contract as IntersectKernel::intersect.
std::size_t Intersect(const std::uint32_t* a, std::size_t na,
                      const std::uint32_t* b, std::size_t nb,
                      std::uint32_t* out);

/// Convenience span versions writing into a reusable vector (resized to
/// the result; existing capacity is reused — no allocation once warm).
void IntersectInto(std::span<const std::uint32_t> a,
                   std::span<const std::uint32_t> b,
                   std::vector<std::uint32_t>* out);

/// Sorted set difference a \ b into `out` (same reuse semantics as
/// IntersectInto). Scalar — the dEclat diffset loops are bound by the
/// allocation churn this interface removes, not by the subtraction —
/// but counted like every other kernel call.
void DifferenceInto(std::span<const std::uint32_t> a,
                    std::span<const std::uint32_t> b,
                    std::vector<std::uint32_t>* out);

/// Galloping intersection (exposed for the bench and the property
/// tests; Intersect() calls it automatically). Requires na <= nb.
std::size_t GallopIntersect(const std::uint32_t* a, std::size_t na,
                            const std::uint32_t* b, std::size_t nb,
                            std::uint32_t* out);

// ---------------------------------------------------------------------------
// Raw tier tables (registration; exposed so tests and the bench can pin
// one tier regardless of the active selection). Null when the binary
// was built without the tier's instruction-set support.

const IntersectKernel* ScalarKernel();
const IntersectKernel* SseKernel();   // null unless compiled for x86 SSSE3
const IntersectKernel* Avx2Kernel();  // null unless compiled for x86 AVX2

/// True when the running CPU supports the tier (always true for scalar).
bool CpuSupports(KernelId id);

/// Internal: counting helper shared by the tier tables and front doors.
void CountCall(std::size_t elements_in, std::size_t elements_out);

}  // namespace fim::kernels

#endif  // FIM_KERNELS_INTERSECT_H_
