// Kernel registry, runtime dispatch, counters, and the scalar reference
// implementations. The SSE/AVX2 tiers live in their own translation
// units (intersect_sse.cc, intersect_avx2.cc) compiled with the
// matching -m flags; this file must stay buildable on any CPU.

#include "kernels/intersect.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/sync.h"
#include "obs/metrics.h"

#if defined(__x86_64__) || defined(__i386__)
#define FIM_KERNELS_X86 1
#else
#define FIM_KERNELS_X86 0
#endif

namespace fim::kernels {

namespace {

// ---------------------------------------------------------------------------
// Per-thread counters. The hot loops pay one non-RMW relaxed store per
// kernel call (single writer: the owning thread); snapshots sum the
// registered blocks plus the totals of exited threads. TSan-clean.

struct LocalCounters;

struct CounterRegistry {
  Mutex mutex{LockRank::kKernelCounters, "KernelCounters"};
  std::vector<LocalCounters*> live FIM_GUARDED_BY(mutex);
  CounterSnapshot retired FIM_GUARDED_BY(mutex);
};

CounterRegistry& Registry() {
  static CounterRegistry& registry = *new CounterRegistry();
  return registry;
}

struct LocalCounters {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> elements_in{0};
  std::atomic<std::uint64_t> elements_out{0};

  LocalCounters() {
    CounterRegistry& registry = Registry();
    const MutexLock lock(registry.mutex);
    registry.live.push_back(this);
  }

  ~LocalCounters() {
    CounterRegistry& registry = Registry();
    const MutexLock lock(registry.mutex);
    registry.retired.calls += calls.load(std::memory_order_relaxed);
    registry.retired.elements_in +=
        elements_in.load(std::memory_order_relaxed);
    registry.retired.elements_out +=
        elements_out.load(std::memory_order_relaxed);
    std::erase(registry.live, this);
  }
};

LocalCounters& Local() {
  thread_local LocalCounters counters;
  return counters;
}

// Single-writer relaxed add: no lock prefix, safe to read racily.
void Bump(std::atomic<std::uint64_t>& counter, std::uint64_t n) {
  counter.store(counter.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Scalar reference kernels.

std::size_t ScalarIntersect(const std::uint32_t* a, std::size_t na,
                            const std::uint32_t* b, std::size_t nb,
                            std::uint32_t* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  while (i < na && j < nb) {
    const std::uint32_t va = a[i];
    const std::uint32_t vb = b[j];
    if (va < vb) {
      ++i;
    } else if (vb < va) {
      ++j;
    } else {
      out[k++] = va;
      ++i;
      ++j;
    }
  }
  CountCall(na + nb, k);
  return k;
}

std::size_t ScalarBitsetAnd(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t words, std::uint64_t* out) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t v = a[w] & b[w];
    out[w] = v;
    count += static_cast<std::size_t>(std::popcount(v));
  }
  CountCall(2 * 64 * words, count);
  return count;
}

std::size_t ScalarFilterNonzero(const std::uint32_t* items, std::size_t n,
                                const std::uint32_t* row, std::uint32_t* out) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t item = items[i];
    if (row[item] != 0) out[k++] = item;
  }
  CountCall(n, k);
  return k;
}

constexpr IntersectKernel kScalarKernel = {
    KernelId::kScalar, "scalar",
    &ScalarIntersect, &ScalarBitsetAnd, &ScalarFilterNonzero,
};

// ---------------------------------------------------------------------------
// Selection.

const IntersectKernel* BestSupported() {
  if (const IntersectKernel* avx2 = Avx2Kernel();
      avx2 != nullptr && CpuSupports(KernelId::kAvx2)) {
    return avx2;
  }
  if (const IntersectKernel* sse = SseKernel();
      sse != nullptr && CpuSupports(KernelId::kSse)) {
    return sse;
  }
  return &kScalarKernel;
}

const IntersectKernel* FindByName(std::string_view name) {
  if (name == "scalar") return &kScalarKernel;
  if (name == "sse") return SseKernel();
  if (name == "avx2") return Avx2Kernel();
  return nullptr;
}

bool Supported(const IntersectKernel* kernel) {
  return kernel != nullptr && CpuSupports(kernel->id);
}

const IntersectKernel* SelectAtStartup() {
  const char* env = std::getenv("FIM_KERNEL");
  const IntersectKernel* selected = nullptr;
  if (env != nullptr && env[0] != '\0') {
    const IntersectKernel* requested = FindByName(env);
    if (Supported(requested)) {
      selected = requested;
    } else {
      std::fprintf(stderr,
                   "fim: FIM_KERNEL=%s is not available on this CPU/build; "
                   "falling back to the best supported kernel\n",
                   env);
    }
  }
  if (selected == nullptr) selected = BestSupported();
  obs::MetricRegistry::Global()
      .GetCounter(std::string("kernels.selected.") + selected->name)
      .Add(1);
  return selected;
}

std::atomic<const IntersectKernel*>& ActiveSlot() {
  static std::atomic<const IntersectKernel*>& slot =
      *new std::atomic<const IntersectKernel*>(SelectAtStartup());
  return slot;
}

}  // namespace

void CountCall(std::size_t elements_in, std::size_t elements_out) {
  LocalCounters& local = Local();
  Bump(local.calls, 1);
  Bump(local.elements_in, elements_in);
  Bump(local.elements_out, elements_out);
}

const IntersectKernel* ScalarKernel() { return &kScalarKernel; }

bool CpuSupports(KernelId id) {
  switch (id) {
    case KernelId::kScalar:
      return true;
    case KernelId::kSse:
#if FIM_KERNELS_X86
      return __builtin_cpu_supports("ssse3") != 0;
#else
      return false;
#endif
    case KernelId::kAvx2:
#if FIM_KERNELS_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

const IntersectKernel& Active() {
  return *ActiveSlot().load(std::memory_order_acquire);
}

bool ForceKernel(std::string_view name) {
  const IntersectKernel* kernel = FindByName(name);
  if (!Supported(kernel)) return false;
  ActiveSlot().store(kernel, std::memory_order_release);
  obs::MetricRegistry::Global()
      .GetCounter(std::string("kernels.selected.") + kernel->name)
      .Add(1);
  return true;
}

std::vector<const IntersectKernel*> AvailableKernels() {
  std::vector<const IntersectKernel*> kernels{&kScalarKernel};
  if (const IntersectKernel* sse = SseKernel();
      sse != nullptr && CpuSupports(KernelId::kSse)) {
    kernels.push_back(sse);
  }
  if (const IntersectKernel* avx2 = Avx2Kernel();
      avx2 != nullptr && CpuSupports(KernelId::kAvx2)) {
    kernels.push_back(avx2);
  }
  return kernels;
}

CounterSnapshot Counters() {
  CounterRegistry& registry = Registry();
  const MutexLock lock(registry.mutex);
  CounterSnapshot snapshot = registry.retired;
  for (const LocalCounters* local : registry.live) {
    snapshot.calls += local->calls.load(std::memory_order_relaxed);
    snapshot.elements_in +=
        local->elements_in.load(std::memory_order_relaxed);
    snapshot.elements_out +=
        local->elements_out.load(std::memory_order_relaxed);
  }
  return snapshot;
}

std::size_t GallopIntersect(const std::uint32_t* a, std::size_t na,
                            const std::uint32_t* b, std::size_t nb,
                            std::uint32_t* out) {
  // One-sided binary search: for each element of the short list, gallop
  // forward through the long list (exponential probe, then bisect the
  // bracketed range). O(na * log(nb/na)) — the win on skewed pairs.
  std::size_t k = 0;
  std::size_t lo = 0;
  for (std::size_t i = 0; i < na && lo < nb; ++i) {
    const std::uint32_t needle = a[i];
    // Exponential probe from the current frontier.
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < nb && b[hi] < needle) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    if (hi > nb) hi = nb;
    // Bisect [lo, hi) for the first element >= needle.
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (b[mid] < needle) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < nb && b[lo] == needle) {
      out[k++] = needle;
      ++lo;
    }
  }
  CountCall(na + nb, k);
  return k;
}

std::size_t Intersect(const std::uint32_t* a, std::size_t na,
                      const std::uint32_t* b, std::size_t nb,
                      std::uint32_t* out) {
  if (na == 0 || nb == 0) return 0;
  // Adaptive cutover: one-sided galloping beats even the SIMD merge once
  // the lengths diverge by kGallopRatio (the merge must still stream the
  // whole long list; galloping skips most of it).
  if (na > nb) {
    if (na >= kGallopRatio * nb) return GallopIntersect(b, nb, a, na, out);
  } else if (nb >= kGallopRatio * na) {
    return GallopIntersect(a, na, b, nb, out);
  }
  return Active().intersect(a, na, b, nb, out);
}

void IntersectInto(std::span<const std::uint32_t> a,
                   std::span<const std::uint32_t> b,
                   std::vector<std::uint32_t>* out) {
  // kIntersectPad of slack for the SIMD tiers' full-vector stores.
  const std::size_t cap = std::min(a.size(), b.size()) + kIntersectPad;
  out->resize(cap);
  const std::size_t n =
      Intersect(a.data(), a.size(), b.data(), b.size(), out->data());
  out->resize(n);
}

void DifferenceInto(std::span<const std::uint32_t> a,
                    std::span<const std::uint32_t> b,
                    std::vector<std::uint32_t>* out) {
  out->resize(a.size());
  std::uint32_t* dst = out->data();
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint32_t va = a[i];
    const std::uint32_t vb = b[j];
    if (va < vb) {
      dst[k++] = va;
      ++i;
    } else if (vb < va) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  while (i < a.size()) dst[k++] = a[i++];
  CountCall(a.size() + b.size(), k);
  out->resize(k);
}

}  // namespace fim::kernels
