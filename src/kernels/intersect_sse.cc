// SSSE3 shuffle-based sorted-u32 intersection tier. The block kernel is
// the classic branch-light scheme (Schlegel et al.; PISA's and Lemire's
// intersection libraries use the same shape): load 4 elements from each
// list, compare all 16 pairs with three cyclic rotations, turn the match
// mask into a left-packing shuffle through a 16-entry lookup table, and
// advance whichever block ends lower. Tails fall back to the scalar
// merge. Compiled with -mssse3 (see src/CMakeLists.txt); the runtime
// dispatcher never hands this tier to a CPU without SSSE3.

#include "kernels/intersect.h"

#if defined(__SSSE3__)

#include <immintrin.h>

#include <bit>
#include <cstring>

namespace fim::kernels {

namespace {

// Left-packing shuffles: entry m rearranges the 4 u32 lanes so that the
// lanes whose bit is set in m come first, in order. Built at compile
// time; 16 entries x 16 bytes.
struct ShuffleTable {
  alignas(16) unsigned char bytes[16][16];
};

constexpr ShuffleTable BuildShuffleTable() {
  ShuffleTable table{};
  for (int mask = 0; mask < 16; ++mask) {
    int out_lane = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask >> lane) & 1) {
        for (int byte = 0; byte < 4; ++byte) {
          table.bytes[mask][out_lane * 4 + byte] =
              static_cast<unsigned char>(lane * 4 + byte);
        }
        ++out_lane;
      }
    }
    // Unused trailing lanes copy lane 0; they are never stored past the
    // popcount-advanced cursor.
    for (; out_lane < 4; ++out_lane) {
      for (int byte = 0; byte < 4; ++byte) {
        table.bytes[mask][out_lane * 4 + byte] =
            static_cast<unsigned char>(byte);
      }
    }
  }
  return table;
}

constexpr ShuffleTable kShuffles = BuildShuffleTable();

std::size_t SseIntersect(const std::uint32_t* a, std::size_t na,
                         const std::uint32_t* b, std::size_t nb,
                         std::uint32_t* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    // All-pairs equality: compare va against vb rotated by 0..3 lanes.
    const __m128i rot1 = _mm_alignr_epi8(vb, vb, 4);
    const __m128i rot2 = _mm_alignr_epi8(vb, vb, 8);
    const __m128i rot3 = _mm_alignr_epi8(vb, vb, 12);
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, rot1));
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, rot2));
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, rot3));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
    const __m128i shuffle = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kShuffles.bytes[mask]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k),
                     _mm_shuffle_epi8(va, shuffle));
    k += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mask)));
    // Advance the block that ends lower (both when equal): every element
    // still unmatched in it is smaller than the other block's remainder.
    const std::uint32_t a_max = a[i + 3];
    const std::uint32_t b_max = b[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }
  // Scalar merge over the tails.
  while (i < na && j < nb) {
    const std::uint32_t va = a[i];
    const std::uint32_t vb = b[j];
    if (va < vb) {
      ++i;
    } else if (vb < va) {
      ++j;
    } else {
      out[k++] = va;
      ++i;
      ++j;
    }
  }
  CountCall(na + nb, k);
  return k;
}

constexpr IntersectKernel kSseKernel = {
    KernelId::kSse, "sse",
    &SseIntersect,
    // Word-AND and the matrix-row filter gain little below AVX2; reuse
    // the scalar routines so the tier table stays total.
    nullptr, nullptr,
};

}  // namespace

const IntersectKernel* SseKernel() {
  static const IntersectKernel kernel = [] {
    IntersectKernel k = kSseKernel;
    k.bitset_and = ScalarKernel()->bitset_and;
    k.filter_nonzero = ScalarKernel()->filter_nonzero;
    return k;
  }();
  return &kernel;
}

}  // namespace fim::kernels

#else  // !defined(__SSSE3__)

namespace fim::kernels {

const IntersectKernel* SseKernel() { return nullptr; }

}  // namespace fim::kernels

#endif  // defined(__SSSE3__)
