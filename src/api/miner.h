#ifndef FIM_API_MINER_H_
#define FIM_API_MINER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/itemset.h"
#include "data/recode.h"
#include "data/transaction_database.h"
#include "obs/miner_stats.h"
#include "obs/trace.h"

namespace fim {

namespace obs {
class MemoryBreakdown;
class PerfDomainCollector;
class Timeline;
}  // namespace obs

/// All closed-set mining algorithms of the library.
enum class Algorithm {
  kIsta,            // cumulative intersection, prefix-tree repository (§3.2-3.3)
  kCarpenterLists,  // transaction-set enumeration, tid lists (§3.1.1)
  kCarpenterTable,  // transaction-set enumeration, matrix (§3.1.2)
  kFlatCumulative,  // cumulative intersection, flat repository (baseline)
  kFpClose,         // item set enumeration via FP-growth (baseline)
  kLcm,             // item set enumeration via closure extension (baseline)
  kCharm,           // item set enumeration via tidset properties (baseline)
  kTransposed,      // closed tid sets over the transpose, mapped back
                    // through the Galois bijection (Rioult et al. [17])
  kCobbler,         // Carpenter rows with column-enumeration switch-over
                    // (Pan et al., SSDBM'04)
};

/// Stable lower-case name ("ista", "carpenter-lists", ...).
const char* AlgorithmName(Algorithm algorithm);

/// Parses an algorithm name as produced by AlgorithmName.
Result<Algorithm> ParseAlgorithm(std::string_view name);

/// Every Algorithm value, in declaration order.
const std::vector<Algorithm>& AllAlgorithms();

/// Unified options for MineClosed. Fields that an algorithm does not use
/// are ignored (e.g. transaction order for FP-close / LCM).
struct MinerOptions {
  Algorithm algorithm = Algorithm::kIsta;

  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;

  /// §3.1.1/§3.2 item elimination for the intersection miners.
  bool item_elimination = true;

  /// §3.4 orders for the intersection miners.
  ItemOrder item_order = ItemOrder::kFrequencyAscending;
  TransactionOrder transaction_order = TransactionOrder::kSizeAscending;

  /// Worker threads for the algorithms that support parallel mining
  /// (IsTa shards the transaction stream and merges repositories; LCM
  /// fans out first-level subtrees). Other algorithms ignore it. Output
  /// is identical to the sequential run for every thread count.
  unsigned num_threads = 1;

  /// Optional per-thread event timeline (obs/timeline.h): the driving
  /// thread records its phases on the timeline's driver lane and every
  /// worker thread (IsTa shards, merge reduction, recoding chunks)
  /// registers its own lane, so a Chrome-trace export shows the real
  /// parallel schedule. Output-neutral like stats/trace. The timeline
  /// must outlive the call.
  obs::Timeline* timeline = nullptr;

  /// Optional per-domain hardware-counter attribution (obs/perf.h):
  /// every IsTa shard and merge stage records a PerfDomainSample
  /// (thread CPU + intersection steps, plus PMU deltas when the
  /// collector has hardware counting enabled and the kernel allows
  /// it). Feeds the `perf.domains` stats section and the fim-prof
  /// work-inflation table. Output-neutral; must outlive the call.
  obs::PerfDomainCollector* perf_domains = nullptr;

  /// Optional memory attribution (obs/memory.h): every algorithm
  /// records the self-measured byte breakdown of its major structures
  /// (IsTa prefix trees, tid lists, Carpenter matrices, duplicate
  /// repositories, the recoded database) at the moments they are
  /// largest. Feeds the `memory` stats section, fim-prof --memory and
  /// the bench mem payloads. Output-neutral; must outlive the call.
  obs::MemoryBreakdown* memory = nullptr;
};

/// Mines the closed frequent item sets of `db` with the selected
/// algorithm. Every algorithm produces the identical output: each closed
/// frequent item set exactly once, items ascending by original id; the
/// empty set is never reported.
///
/// `stats` (optional) receives the uniform MinerStats snapshot — every
/// algorithm fills the fields of its family (see obs/miner_stats.h and
/// docs/OBSERVABILITY.md) plus sets_reported. `trace` (optional)
/// receives phase spans: a "mine" span for every algorithm, with IsTa's
/// internal phases (recode, dedup, shard-mine, merge, report) nested
/// below it. Instrumentation is output-neutral: the mined sets and
/// their order are bit-identical whether stats/trace are requested or
/// not, at every thread count.
Status MineClosed(const TransactionDatabase& db, const MinerOptions& options,
                  const ClosedSetCallback& callback,
                  MinerStats* stats = nullptr, obs::Trace* trace = nullptr);

/// Convenience wrapper collecting the output in canonical order.
Result<std::vector<ClosedItemset>> MineClosedCollect(
    const TransactionDatabase& db, const MinerOptions& options,
    MinerStats* stats = nullptr, obs::Trace* trace = nullptr);

}  // namespace fim

#endif  // FIM_API_MINER_H_
