#ifndef FIM_API_SELECT_H_
#define FIM_API_SELECT_H_

#include "api/miner.h"
#include "data/stats.h"

namespace fim {

/// Picks a mining algorithm from the shape of the data, following the
/// paper's conclusions (§5): intersection miners (IsTa) win when there
/// are (very) many items and few transactions; enumeration miners (LCM)
/// win in the classic many-transactions regime. The crossover is
/// heuristic — `items_per_transaction_threshold` is the used-items to
/// transactions ratio above which the intersection side is chosen.
Algorithm ChooseAlgorithm(const DatabaseStats& stats,
                          double items_per_transaction_threshold = 2.0);

/// Convenience: compute stats and choose.
Algorithm ChooseAlgorithm(const TransactionDatabase& db);

}  // namespace fim

#endif  // FIM_API_SELECT_H_
