#ifndef FIM_API_CONSTRAINED_H_
#define FIM_API_CONSTRAINED_H_

#include <vector>

#include "api/miner.h"

namespace fim {

/// Item constraints for closed-set mining (in the spirit of
/// Mielikäinen's "intersecting data to closed sets with constraints").
struct ItemConstraints {
  /// Every reported set must contain all of these items.
  std::vector<ItemId> must_contain;

  /// No reported set may contain any of these items. Note the semantics:
  /// the result is the closed sets of the database with the forbidden
  /// items REMOVED (the standard constrained-closure semantics) — a set
  /// that is closed in the original database only thanks to a forbidden
  /// item is reported in its reduced, re-closed form.
  std::vector<ItemId> must_not_contain;
};

/// Mines the closed frequent item sets satisfying `constraints`, using
/// any of the library's algorithms:
///  - must_not_contain is handled by deleting the items up front;
///  - must_contain is handled by conditioning: mine the transactions
///    containing all required items (with those items removed), then add
///    the required items back to every result — supports carry over
///    because cover(I ∪ R) within the conditional database equals
///    cover(I ∪ R) in the original one.
/// Reported sets include the required items. Returns InvalidArgument if
/// the two constraint lists overlap.
Status MineClosedConstrained(const TransactionDatabase& db,
                             const MinerOptions& options,
                             const ItemConstraints& constraints,
                             const ClosedSetCallback& callback);

/// Convenience wrapper collecting the output in canonical order.
Result<std::vector<ClosedItemset>> MineClosedConstrainedCollect(
    const TransactionDatabase& db, const MinerOptions& options,
    const ItemConstraints& constraints);

}  // namespace fim

#endif  // FIM_API_CONSTRAINED_H_
