#include "api/constrained.h"

#include <algorithm>

namespace fim {

Status MineClosedConstrained(const TransactionDatabase& db,
                             const MinerOptions& options,
                             const ItemConstraints& constraints,
                             const ClosedSetCallback& callback) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  std::vector<ItemId> required = constraints.must_contain;
  std::vector<ItemId> forbidden = constraints.must_not_contain;
  NormalizeItems(&required);
  NormalizeItems(&forbidden);
  if (!IntersectSorted(required, forbidden).empty()) {
    return Status::InvalidArgument(
        "an item cannot be both required and forbidden");
  }

  // Conditioning pass: keep the transactions containing every required
  // item; drop required and forbidden items from them.
  TransactionDatabase conditional;
  conditional.SetNumItems(db.NumItems());
  std::size_t cover = 0;
  std::vector<ItemId> reduced;
  for (const auto& t : db.transactions()) {
    if (!IsSubsetSorted(required, t)) continue;
    ++cover;
    reduced.clear();
    for (ItemId i : t) {
      if (!std::binary_search(required.begin(), required.end(), i) &&
          !std::binary_search(forbidden.begin(), forbidden.end(), i)) {
        reduced.push_back(i);
      }
    }
    conditional.AddTransaction(reduced);
  }

  // The required set itself is closed in the conditional view iff no
  // item is shared by all matching transactions; the miners never report
  // the empty set, so handle it here when it is frequent. Its support is
  // the number of matching transactions; it is reported only when no
  // perfect extension exists (i.e. the conditional closure of the empty
  // set is empty).
  if (!required.empty() && cover >= options.min_support) {
    // R itself is closed in the constrained view iff no item occurs in
    // every matching transaction. A matching transaction that became
    // empty after removing R (and the forbidden items) is dropped from
    // `conditional`, so "covers everything" means frequency == cover AND
    // no transaction was dropped.
    bool has_perfect_extension = false;
    if (conditional.NumTransactions() == cover) {
      for (Support f : conditional.ItemFrequencies()) {
        if (f == cover) {
          has_perfect_extension = true;
          break;
        }
      }
    }
    if (!has_perfect_extension) {
      callback(required, static_cast<Support>(cover));
    }
  }

  if (conditional.NumTransactions() == 0) return Status::OK();

  // Mine the conditional database and prepend the required items.
  const ClosedSetCallback augmented =
      [&required, &callback](std::span<const ItemId> items, Support support) {
        std::vector<ItemId> full;
        full.reserve(items.size() + required.size());
        std::merge(items.begin(), items.end(), required.begin(),
                   required.end(), std::back_inserter(full));
        callback(full, support);
      };
  return MineClosed(conditional, options, augmented);
}

Result<std::vector<ClosedItemset>> MineClosedConstrainedCollect(
    const TransactionDatabase& db, const MinerOptions& options,
    const ItemConstraints& constraints) {
  ClosedSetCollector collector;
  Status status =
      MineClosedConstrained(db, options, constraints, collector.AsCallback());
  if (!status.ok()) return status;
  collector.SortCanonical();
  return collector.TakeSets();
}

}  // namespace fim
