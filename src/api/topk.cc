#include "api/topk.h"

#include <algorithm>

namespace fim {

Result<std::vector<ClosedItemset>> MineTopKClosed(
    const TransactionDatabase& db, std::size_t k,
    const MinerOptions& base_options) {
  if (k == 0) return std::vector<ClosedItemset>{};
  if (db.NumTransactions() == 0) return std::vector<ClosedItemset>{};

  // No closed set can beat the best single-item support.
  Support threshold = 0;
  for (Support f : db.ItemFrequencies()) threshold = std::max(threshold, f);
  if (threshold == 0) return std::vector<ClosedItemset>{};

  MinerOptions options = base_options;
  for (;;) {
    options.min_support = threshold;
    auto mined = MineClosedCollect(db, options);
    if (!mined.ok()) return mined.status();
    std::vector<ClosedItemset> sets = std::move(mined).value();
    if (sets.size() >= k || threshold == 1) {
      std::stable_sort(sets.begin(), sets.end(),
                       [](const ClosedItemset& a, const ClosedItemset& b) {
                         return a.support > b.support;
                       });
      if (sets.size() > k) {
        // Keep everything tied with the k-th best support.
        const Support cutoff = sets[k - 1].support;
        auto end = std::find_if(sets.begin() + static_cast<long>(k),
                                sets.end(),
                                [cutoff](const ClosedItemset& s) {
                                  return s.support < cutoff;
                                });
        sets.erase(end, sets.end());
      }
      return sets;
    }
    // Geometric descent; the last full mine at threshold 1 is exact.
    threshold = threshold > 1 ? std::max<Support>(1, threshold / 2)
                              : 1;
  }
}

}  // namespace fim
