#ifndef FIM_API_TOPK_H_
#define FIM_API_TOPK_H_

#include <vector>

#include "api/miner.h"

namespace fim {

/// Mines the k closed item sets of highest support (ties broken towards
/// including more sets: every set whose support equals the k-th best is
/// included, so the result may be slightly larger than k). No support
/// threshold needs to be guessed: the miner starts at the maximum item
/// frequency and geometrically lowers the threshold until k sets exist.
/// Output is sorted by descending support, then canonically.
Result<std::vector<ClosedItemset>> MineTopKClosed(
    const TransactionDatabase& db, std::size_t k,
    const MinerOptions& base_options = MinerOptions{});

}  // namespace fim

#endif  // FIM_API_TOPK_H_
