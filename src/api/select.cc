#include "api/select.h"

namespace fim {

Algorithm ChooseAlgorithm(const DatabaseStats& stats,
                          double items_per_transaction_threshold) {
  if (stats.num_transactions == 0) return Algorithm::kIsta;
  const double ratio = static_cast<double>(stats.num_used_items) /
                       static_cast<double>(stats.num_transactions);
  return ratio >= items_per_transaction_threshold ? Algorithm::kIsta
                                                  : Algorithm::kLcm;
}

Algorithm ChooseAlgorithm(const TransactionDatabase& db) {
  return ChooseAlgorithm(ComputeStats(db));
}

}  // namespace fim
