#include "api/miner.h"

#include "kernels/intersect.h"
#include "obs/memory.h"
#include "obs/timeline.h"

#include "carpenter/carpenter.h"
#include "carpenter/cobbler.h"
#include "cumulative/flat_cumulative.h"
#include "enumeration/charm.h"
#include "enumeration/fpclose.h"
#include "enumeration/transposed.h"
#include "enumeration/lcm.h"
#include "ista/ista.h"

namespace fim {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kIsta:
      return "ista";
    case Algorithm::kCarpenterLists:
      return "carpenter-lists";
    case Algorithm::kCarpenterTable:
      return "carpenter-table";
    case Algorithm::kFlatCumulative:
      return "flat-cumulative";
    case Algorithm::kFpClose:
      return "fpclose";
    case Algorithm::kLcm:
      return "lcm";
    case Algorithm::kCharm:
      return "charm";
    case Algorithm::kTransposed:
      return "transposed";
    case Algorithm::kCobbler:
      return "cobbler";
  }
  return "unknown";
}

Result<Algorithm> ParseAlgorithm(std::string_view name) {
  for (Algorithm algorithm : AllAlgorithms()) {
    if (name == AlgorithmName(algorithm)) return algorithm;
  }
  return Status::NotFound("unknown algorithm '" + std::string(name) + "'");
}

const std::vector<Algorithm>& AllAlgorithms() {
  static const std::vector<Algorithm>& all = *new std::vector<Algorithm>{
      Algorithm::kIsta,          Algorithm::kCarpenterLists,
      Algorithm::kCarpenterTable, Algorithm::kFlatCumulative,
      Algorithm::kFpClose,       Algorithm::kLcm,
      Algorithm::kCharm,         Algorithm::kTransposed,
      Algorithm::kCobbler,
  };
  return all;
}

namespace {

Status MineClosedDispatch(const TransactionDatabase& db,
                          const MinerOptions& options,
                          const ClosedSetCallback& callback, MinerStats* stats,
                          obs::Trace* trace) {
  switch (options.algorithm) {
    case Algorithm::kIsta: {
      IstaOptions ista;
      ista.min_support = options.min_support;
      ista.item_order = options.item_order;
      ista.transaction_order = options.transaction_order;
      ista.item_elimination = options.item_elimination;
      ista.num_threads = options.num_threads;
      ista.timeline = options.timeline;
      ista.perf_domains = options.perf_domains;
      ista.memory = options.memory;
      return MineClosedIsta(db, ista, callback, stats, trace);
    }
    case Algorithm::kCarpenterLists:
    case Algorithm::kCarpenterTable: {
      CarpenterOptions carpenter;
      carpenter.min_support = options.min_support;
      carpenter.item_order = options.item_order;
      carpenter.transaction_order = options.transaction_order;
      carpenter.item_elimination = options.item_elimination;
      carpenter.memory = options.memory;
      if (options.algorithm == Algorithm::kCarpenterLists) {
        return MineClosedCarpenterLists(db, carpenter, callback, stats);
      }
      return MineClosedCarpenterTable(db, carpenter, callback, stats);
    }
    case Algorithm::kFlatCumulative: {
      FlatCumulativeOptions flat;
      flat.min_support = options.min_support;
      flat.item_elimination = options.item_elimination;
      flat.transaction_order = options.transaction_order;
      flat.memory = options.memory;
      return MineClosedFlatCumulative(db, flat, callback, stats);
    }
    case Algorithm::kFpClose: {
      FpCloseOptions fpclose;
      fpclose.min_support = options.min_support;
      fpclose.memory = options.memory;
      return MineClosedFpClose(db, fpclose, callback, stats);
    }
    case Algorithm::kLcm: {
      LcmOptions lcm;
      lcm.min_support = options.min_support;
      lcm.num_threads = options.num_threads;
      lcm.memory = options.memory;
      return MineClosedLcm(db, lcm, callback, stats);
    }
    case Algorithm::kCharm: {
      CharmOptions charm;
      charm.min_support = options.min_support;
      charm.memory = options.memory;
      return MineClosedCharm(db, charm, callback, stats);
    }
    case Algorithm::kTransposed: {
      TransposedOptions transposed;
      transposed.min_support = options.min_support;
      transposed.memory = options.memory;
      return MineClosedTransposed(db, transposed, callback, stats);
    }
    case Algorithm::kCobbler: {
      CobblerOptions cobbler;
      cobbler.min_support = options.min_support;
      cobbler.item_order = options.item_order;
      cobbler.transaction_order = options.transaction_order;
      cobbler.item_elimination = options.item_elimination;
      cobbler.memory = options.memory;
      return MineClosedCobbler(db, cobbler, callback, stats);
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

}  // namespace

Status MineClosed(const TransactionDatabase& db, const MinerOptions& options,
                  const ClosedSetCallback& callback, MinerStats* stats,
                  obs::Trace* trace) {
  // Every algorithm mines inside one "mine" span (and one "mine"
  // timeline event pair on the driver lane); IsTa nests its internal
  // phases below it.
  obs::TimelineLane* lane =
      options.timeline != nullptr ? options.timeline->driver() : nullptr;
  obs::Phase mine_phase(trace, lane, "mine");
  // The per-family entry points reset *stats before filling it, so the
  // kernel delta must be applied after the dispatch returns. The
  // snapshots are exact here: every family joins its workers before
  // returning, so all thread-local kernel counters are quiescent.
  const kernels::CounterSnapshot before = kernels::Counters();
  // Allocations of the driving thread during the mine are tagged kMine;
  // IsTa's shard/merge workers open their own kIstaTree scopes.
  obs::MemDomainScope mem_domain(obs::MemDomain::kMine);
  const Status status = MineClosedDispatch(db, options, callback, stats, trace);
  if (stats != nullptr) {
    const kernels::CounterSnapshot after = kernels::Counters();
    stats->kernel_calls += after.calls - before.calls;
    stats->kernel_elements_in += after.elements_in - before.elements_in;
    stats->kernel_elements_out += after.elements_out - before.elements_out;
  }
  return status;
}

Result<std::vector<ClosedItemset>> MineClosedCollect(
    const TransactionDatabase& db, const MinerOptions& options,
    MinerStats* stats, obs::Trace* trace) {
  ClosedSetCollector collector;
  Status status = MineClosed(db, options, collector.AsCallback(), stats, trace);
  if (!status.ok()) return status;
  collector.SortCanonical();
  return collector.TakeSets();
}

}  // namespace fim
