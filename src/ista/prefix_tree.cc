#include "ista/prefix_tree.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"

namespace fim {

IstaPrefixTree::IstaPrefixTree(std::size_t num_items)
    : in_transaction_(num_items, 0) {
  // Node 0 is the pseudo-root representing the empty set.
  uint32_t root = NewNode(kInvalidItem, 0, 0);
  FIM_CHECK(root == kRoot);
  node_count_ = 0;  // the root does not count
}

uint32_t IstaPrefixTree::NewNode(ItemId item, uint32_t step, Support supp) {
  uint32_t index = next_index_++;
  node_step_.push_back(step);
  node_item_.push_back(item);
  node_supp_.push_back(supp);
  node_trans_.push_back(0);
  links_.push_back(kNil);  // ChildSlot(index)
  links_.push_back(kNil);  // SibSlot(index)
  ++node_count_;
  if (node_count_ > peak_node_count_) peak_node_count_ = node_count_;
  return index;
}

uint32_t IstaPrefixTree::FindOrCreateChild(uint32_t parent, ItemId item,
                                           Support supp) {
  // Sibling lists are sorted by descending item code. The cursor is a
  // link-arena slot index, so it survives the allocation below.
  uint32_t slot = ChildSlot(parent);
  while (links_[slot] != kNil && node_item_[links_[slot]] > item) {
    slot = SibSlot(links_[slot]);
  }
  const uint32_t found = links_[slot];
  if (found != kNil && node_item_[found] == item) return found;
  const uint32_t node = NewNode(item, 0, supp);
  links_[SibSlot(node)] = found;
  links_[slot] = node;
  return node;
}

uint32_t IstaPrefixTree::InsertTransactionPath(std::span<const ItemId> items) {
  uint32_t current = kRoot;
  for (std::size_t idx = items.size(); idx > 0; --idx) {
    current = FindOrCreateChild(current, items[idx - 1], 0);
  }
  return current;
}

void IstaPrefixTree::AddTransaction(std::span<const ItemId> items,
                                    Support weight) {
  FIM_CHECK(!items.empty()) << "transactions must be non-empty";
  FIM_CHECK(weight >= 1) << "transaction weight must be >= 1";
  FIM_DCHECK(std::is_sorted(items.begin(), items.end()) &&
             std::adjacent_find(items.begin(), items.end()) == items.end())
      << "transaction items must be sorted ascending and duplicate-free";
  FIM_DCHECK(items.back() < in_transaction_.size())
      << "item " << items.back() << " out of range (num_items "
      << in_transaction_.size() << ")";
  ++step_;
  total_weight_ += weight;
  for (ItemId i : items) in_transaction_[i] = 1;
  imin_ = items.front();
  node_trans_[InsertTransactionPath(items)] += weight;
  Isect(links_[ChildSlot(kRoot)], ChildSlot(kRoot), weight);
  for (ItemId i : items) in_transaction_[i] = 0;
  // Full validation is O(nodes); amortize it over power-of-two steps so
  // debug test runs stay roughly O(total work * log steps).
  if (FIM_DCHECK_IS_ON() && (step_ & (step_ - 1)) == 0) {
    FIM_DCHECK_OK(ValidateInvariants());
  }
}

void IstaPrefixTree::Isect(uint32_t node, uint32_t ins_slot, Support weight) {
  // The recursion of Figure 2, on an explicit stack: a frame suspends the
  // remainder of a sibling list while the current node's child level is
  // intersected. Insertion cursors are link-arena slot indices, so they
  // stay valid across node allocations. The walk streams over the item,
  // support and link arrays only — the SoA layout keeps the cold
  // step/trans fields off those cache lines.
  isect_stack_.clear();
  isect_stack_.push_back(IsectFrame{node, ins_slot});
  while (!isect_stack_.empty()) {
    node = isect_stack_.back().node;
    uint32_t ins = isect_stack_.back().ins_slot;
    isect_stack_.pop_back();
    while (node != kNil) {
      ++isect_steps_;
      const ItemId i = node_item_[node];
      if (in_transaction_[i]) {
        // The item is in the intersection: find/create the node that
        // represents the extended intersection in the insertion list.
        while (links_[ins] != kNil && node_item_[links_[ins]] > i) {
          ins = SibSlot(links_[ins]);
        }
        uint32_t d = links_[ins];
        if (d != kNil && node_item_[d] == i) {
          // If this node was already updated for the current transaction,
          // discount it before taking the maximum (Figure 2).
          if (node_step_[d] == step_) node_supp_[d] -= weight;
          if (node_supp_[d] < node_supp_[node]) {
            node_supp_[d] = node_supp_[node];
          }
          node_supp_[d] += weight;
          node_step_[d] = step_;
        } else {
          d = NewNode(i, step_, node_supp_[node] + weight);
          links_[SibSlot(d)] = links_[ins];
          links_[ins] = d;
        }
        if (i <= imin_) break;  // nothing below the transaction's minimum
        // Descend into the child level; resume the remaining siblings
        // (with the insertion cursor as advanced so far) afterwards.
        isect_stack_.push_back(IsectFrame{links_[SibSlot(node)], ins});
        const uint32_t child_ins = ChildSlot(d);
        node = links_[ChildSlot(node)];
        ins = child_ins;
      } else {
        if (i <= imin_) break;
        isect_stack_.push_back(IsectFrame{links_[SibSlot(node)], ins});
        node = links_[ChildSlot(node)];
      }
    }
  }
}

void IstaPrefixTree::Report(Support min_support,
                            const ClosedSetCallback& callback) const {
  // Iterative post-order DFS (deep repositories must not overflow the
  // call stack). A frame holds the next unvisited child and the largest
  // child support seen so far (the closedness check of Figure 4).
  struct Frame {
    uint32_t node;
    uint32_t child;
    Support max_child;
  };
  std::vector<Frame> stack;
  std::vector<ItemId> path;       // root path, descending item codes
  std::vector<ItemId> ascending;  // scratch reused across reported sets
  for (uint32_t c = links_[ChildSlot(kRoot)]; c != kNil;
       c = links_[SibSlot(c)]) {
    if (node_supp_[c] < min_support) continue;
    path.push_back(node_item_[c]);
    stack.push_back(Frame{c, links_[ChildSlot(c)], 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.child != kNil) {
        const uint32_t child = frame.child;
        const Support cs = node_supp_[child];
        frame.child = links_[SibSlot(child)];
        if (cs > frame.max_child) frame.max_child = cs;
        if (cs < min_support) continue;
        path.push_back(node_item_[child]);
        stack.push_back(Frame{child, links_[ChildSlot(child)], 0});
        continue;
      }
      if (node_supp_[frame.node] > frame.max_child) {
        // The path is in descending code order; report ascending.
        ascending.assign(path.rbegin(), path.rend());
        callback(ascending, node_supp_[frame.node]);
      }
      path.pop_back();
      stack.pop_back();
    }
  }
}

void IstaPrefixTree::Merge(const IstaPrefixTree& other) {
  Merge(other, 0, {}, std::numeric_limits<std::size_t>::max());
}

void IstaPrefixTree::Merge(const IstaPrefixTree& other, Support min_support,
                           std::span<const Support> remaining,
                           std::size_t prune_node_threshold) {
  FIM_CHECK(&other != this) << "cannot merge a repository into itself";
  FIM_CHECK(in_transaction_.size() == other.in_transaction_.size())
      << "cannot merge repositories over different item universes ("
      << in_transaction_.size() << " vs " << other.in_transaction_.size()
      << " items)";
  const bool pruning = !remaining.empty();
  FIM_CHECK(!pruning || remaining.size() == in_transaction_.size())
      << "remaining-occurrence table size " << remaining.size()
      << " != num_items " << in_transaction_.size();
  // Max-plus product merge. The repository of the concatenated streams
  // stores the pairwise intersections a∩b of the two stored families,
  // with supp(x) = supp_A(cl_A(x)) + supp_B(cl_B(x)). Every stored set b
  // of `other` is replayed against this tree: for each own stored set S
  // the node S∩b is created or updated to max(old, aside(S) + supp_B(b)),
  // where aside(S) is the support S receives from this tree's own
  // pre-merge side alone. Each such update is certified by the stored
  // pair (S, b) — it never exceeds the true union support — and the pair
  // (cl_A(y), cl_B(y)) of any union-frequent set y yields its exact
  // union support. Crucially this consumes the other repository's
  // *computed supports* rather than its transaction multiplicities, so
  // both sides may have been pruned (Prune preserves exact supports for
  // every set that can still be frequent); this is what lets the shard
  // repositories of the parallel driver prune independently.
  std::vector<Support> aside(node_supp_.begin(),
                             node_supp_.begin() + next_index_);
  uint32_t frozen = next_index_;
  total_weight_ += other.total_weight_;
  if (other.step_ > step_) step_ = other.step_;
  // Absorb the other repository's observability history, so the final
  // tree of a reduction reports totals over every worker and stage.
  peak_node_count_ = std::max(peak_node_count_, other.peak_node_count_);
  prune_count_ += other.prune_count_;
  isect_steps_ += other.isect_steps_;
  std::size_t threshold = prune_node_threshold;
  // Pre-order DFS over the other repository, replaying every stored set.
  struct Frame {
    uint32_t node;
    uint32_t child;
  };
  std::vector<Frame> stack;
  std::vector<ItemId> path;       // root path in other, descending codes
  std::vector<ItemId> ascending;  // scratch: replayed stored set
  auto replay = [&](uint32_t n) {
    // Only closed stored sets need replaying: a set masked by an
    // equal-support child is dominated by a closed superset Z with the
    // same stored support, and Z's replay produces every intersection the
    // masked set could contribute, with the same candidate value (any
    // union-closed y has cl_B(y) closed in B, and in a pruned tree the
    // equal-support chain above the reduced cl_B(y) node ends at a closed
    // set that still intersects A's side to exactly y). Skipping masked
    // sets keeps the replay linear in the closed family — in particular a
    // single deep chain replays one set, not one per prefix.
    Support max_child = 0;
    for (uint32_t c = other.links_[ChildSlot(n)]; c != kNil;
         c = other.links_[SibSlot(c)]) {
      if (other.node_supp_[c] > max_child) max_child = other.node_supp_[c];
    }
    if (other.node_supp_[n] <= max_child) return;
    ascending.assign(path.rbegin(), path.rend());
    ReplayStoredSet(ascending, other.node_supp_[n], other.node_trans_[n],
                    frozen, &aside);
    if (pruning && node_count_ > threshold) {
      // Prune against the occurrences outside this tree's own pre-merge
      // stream: that bound counts the other repository's support mass as
      // still to come, so it is sound however much has been replayed.
      IstaPrefixTree fresh(in_transaction_.size());
      fresh.step_ = step_;
      fresh.total_weight_ = total_weight_;
      std::vector<Support> fresh_aside(1, 0);  // index 0: pseudo-root
      PruneInto(links_[ChildSlot(kRoot)], min_support, remaining, &fresh,
                kRoot, &aside, &fresh_aside);
      fresh.peak_node_count_ =
          std::max(peak_node_count_, fresh.peak_node_count_);
      fresh.prune_count_ = prune_count_ + 1;
      fresh.isect_steps_ = isect_steps_ + fresh.isect_steps_;
      *this = std::move(fresh);
      aside = std::move(fresh_aside);
      frozen = next_index_;
      threshold = std::max(threshold, 2 * NodeCount());
    }
  };
  for (uint32_t c = other.links_[ChildSlot(kRoot)]; c != kNil;
       c = other.links_[SibSlot(c)]) {
    path.push_back(other.node_item_[c]);
    replay(c);
    stack.push_back(Frame{c, other.links_[ChildSlot(c)]});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.child == kNil) {
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const uint32_t child = frame.child;
      frame.child = other.links_[SibSlot(child)];
      path.push_back(other.node_item_[child]);
      replay(child);
      stack.push_back(Frame{child, other.links_[ChildSlot(child)]});
    }
  }
  FIM_DCHECK_OK(ValidateInvariants());
}

void IstaPrefixTree::ReplayStoredSet(std::span<const ItemId> items,
                                     Support other_supp, Support other_trans,
                                     uint32_t frozen,
                                     std::vector<Support>* aside) {
  for (ItemId i : items) in_transaction_[i] = 1;
  imin_ = items.front();
  // Insert the set's path and raise every node on it to at least the
  // other side's support: each path prefix is a subset of the set, so its
  // union support is at least supp_B(b). Raising the whole path (rather
  // than only the final node) keeps the parent-support monotonicity, and
  // each prefix keeps an on-path child of equal support, so a prefix that
  // is not itself an intersection can never look closed. The own-side
  // support of a fresh path node is 0.
  uint32_t current = kRoot;
  for (std::size_t idx = items.size(); idx > 0; --idx) {
    current = FindOrCreateChild(current, items[idx - 1], 0);
    if (aside->size() < next_index_) aside->resize(next_index_, 0);
    if (other_supp > node_supp_[current]) node_supp_[current] = other_supp;
  }
  node_trans_[current] += other_trans;
  IsectMax(links_[ChildSlot(kRoot)], ChildSlot(kRoot), other_supp, frozen,
           aside);
  for (ItemId i : items) in_transaction_[i] = 0;
}

void IstaPrefixTree::IsectMax(uint32_t node, uint32_t ins_slot,
                              Support other_supp, uint32_t frozen,
                              std::vector<Support>* aside) {
  // The walk of Isect with the additive update replaced by a max with
  // aside(S) + other_supp. Only nodes frozen by the last (re)freeze act
  // as stored sets S: newer nodes' intersections are already covered by
  // their frozen creators. A new node's subtree holds only new nodes, so
  // whole new subtrees are skipped. No step stamps are needed: max is
  // idempotent, unlike the additive update of a transaction pass.
  isect_stack_.clear();
  isect_stack_.push_back(IsectFrame{node, ins_slot});
  while (!isect_stack_.empty()) {
    node = isect_stack_.back().node;
    uint32_t ins = isect_stack_.back().ins_slot;
    isect_stack_.pop_back();
    while (node != kNil) {
      ++isect_steps_;
      if (node >= frozen) {  // created since the last freeze: not a source
        node = links_[SibSlot(node)];
        continue;
      }
      const ItemId i = node_item_[node];
      if (in_transaction_[i]) {
        const Support source_aside = (*aside)[node];
        const Support candidate = source_aside + other_supp;
        while (links_[ins] != kNil && node_item_[links_[ins]] > i) {
          ins = SibSlot(links_[ins]);
        }
        uint32_t d = links_[ins];
        if (d != kNil && node_item_[d] == i) {
          if (candidate > node_supp_[d]) node_supp_[d] = candidate;
          if (source_aside > (*aside)[d]) (*aside)[d] = source_aside;
        } else {
          d = NewNode(i, 0, candidate);
          aside->push_back(source_aside);
          links_[SibSlot(d)] = links_[ins];
          links_[ins] = d;
        }
        if (i <= imin_) break;  // nothing below the set's minimum item
        isect_stack_.push_back(IsectFrame{links_[SibSlot(node)], ins});
        const uint32_t child_ins = ChildSlot(d);
        node = links_[ChildSlot(node)];
        ins = child_ins;
      } else {
        if (i <= imin_) break;
        isect_stack_.push_back(IsectFrame{links_[SibSlot(node)], ins});
        node = links_[ChildSlot(node)];
      }
    }
  }
}

void IstaPrefixTree::Prune(Support min_support,
                           std::span<const Support> remaining) {
  FIM_DCHECK(remaining.size() == in_transaction_.size())
      << "remaining-occurrence table size " << remaining.size()
      << " != num_items " << in_transaction_.size();
  IstaPrefixTree fresh(in_transaction_.size());
  fresh.step_ = step_;
  fresh.total_weight_ = total_weight_;
  PruneInto(links_[ChildSlot(kRoot)], min_support, remaining, &fresh, kRoot);
  // The rebuilt tree carries on this tree's observability history.
  fresh.peak_node_count_ = std::max(peak_node_count_, fresh.peak_node_count_);
  fresh.prune_count_ = prune_count_ + 1;
  fresh.isect_steps_ = isect_steps_ + fresh.isect_steps_;
  *this = std::move(fresh);
  FIM_DCHECK_OK(ValidateInvariants());
}

obs::MemoryComponent IstaPrefixTree::ApproxMemoryUsage() const {
  // Bytes one node occupies across the four parallel columns, derived
  // from the vectors so a field-type change cannot desynchronize this.
  constexpr std::size_t kColumnBytesPerNode =
      sizeof(node_step_[0]) + sizeof(node_item_[0]) + sizeof(node_supp_[0]) +
      sizeof(node_trans_[0]);
  constexpr std::size_t kLinkBytesPerNode = 2 * sizeof(links_[0]);
  // Reachable slots: the live nodes plus the pseudo-root (which owns
  // column and link slots like any other node).
  const std::size_t live_nodes = node_count_ + 1;

  obs::MemoryComponent tree("prefix-tree");

  obs::MemoryComponent columns("node-columns");
  const std::size_t column_capacity_bytes =
      node_step_.capacity() * sizeof(node_step_[0]) +
      node_item_.capacity() * sizeof(node_item_[0]) +
      node_supp_.capacity() * sizeof(node_supp_[0]) +
      node_trans_.capacity() * sizeof(node_trans_[0]);
  const std::size_t column_live_bytes = live_nodes * kColumnBytesPerNode;
  columns.children.emplace_back("live", column_live_bytes);
  columns.children.emplace_back(
      "garbage", column_capacity_bytes > column_live_bytes
                     ? column_capacity_bytes - column_live_bytes
                     : 0);
  tree.children.push_back(std::move(columns));

  obs::MemoryComponent links("link-arena");
  const std::size_t link_capacity_bytes =
      links_.capacity() * sizeof(links_[0]);
  const std::size_t link_live_bytes = live_nodes * kLinkBytesPerNode;
  links.children.emplace_back("live", link_live_bytes);
  links.children.emplace_back("garbage",
                              link_capacity_bytes > link_live_bytes
                                  ? link_capacity_bytes - link_live_bytes
                                  : 0);
  tree.children.push_back(std::move(links));

  tree.children.emplace_back(
      "scratch",
      in_transaction_.capacity() * sizeof(in_transaction_[0]) +
          isect_stack_.capacity() * sizeof(isect_stack_[0]));
  return tree;
}

namespace {

std::string NodeLabel(uint32_t index, ItemId item) {
  return "node " + std::to_string(index) + " (item " + std::to_string(item) +
         ")";
}

}  // namespace

Status IstaPrefixTree::ValidateInvariants() const {
  const std::size_t num_items = in_transaction_.size();
  if (next_index_ == 0) {
    return Status::Internal("prefix tree: missing pseudo-root");
  }
  if (At(kRoot).item != kInvalidItem) {
    return Status::Internal("prefix tree: root must carry kInvalidItem");
  }
  std::vector<uint8_t> visited(next_index_, 0);
  visited[kRoot] = 1;
  // Each stack entry is the head of an unvisited sibling list plus the
  // node that owns that child list.
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  if (At(kRoot).children != kNil) stack.emplace_back(At(kRoot).children, kRoot);
  std::size_t reachable = 0;
  uint64_t trans_weight_sum = 0;
  while (!stack.empty()) {
    auto [head, parent] = stack.back();
    stack.pop_back();
    const ConstNodeRef parent_node = At(parent);
    ItemId prev_item = kInvalidItem;  // sentinel: no left sibling yet
    for (uint32_t n = head; n != kNil; n = At(n).sibling) {
      if (n >= next_index_) {
        return Status::Internal("prefix tree: link to unallocated node " +
                                std::to_string(n));
      }
      const ConstNodeRef node = At(n);
      if (visited[n]) {
        return Status::Internal("prefix tree: " + NodeLabel(n, node.item) +
                                " reachable twice (cycle or shared subtree)");
      }
      visited[n] = 1;
      ++reachable;
      if (node.item >= num_items) {
        return Status::Internal("prefix tree: " + NodeLabel(n, node.item) +
                                " has item code >= num_items " +
                                std::to_string(num_items));
      }
      if (prev_item != kInvalidItem && node.item >= prev_item) {
        return Status::Internal(
            "prefix tree: sibling list not strictly descending at " +
            NodeLabel(n, node.item) + " after item " +
            std::to_string(prev_item));
      }
      prev_item = node.item;
      if (parent != kRoot && node.item >= parent_node.item) {
        return Status::Internal("prefix tree: child " +
                                NodeLabel(n, node.item) +
                                " does not carry a lower code than parent " +
                                NodeLabel(parent, parent_node.item));
      }
      if (node.step > step_) {
        return Status::Internal(
            "prefix tree: " + NodeLabel(n, node.item) + " step stamp " +
            std::to_string(node.step) + " exceeds global step " +
            std::to_string(step_));
      }
      if (parent != kRoot && node.supp > parent_node.supp) {
        return Status::Internal(
            "prefix tree: support not monotone: child " +
            NodeLabel(n, node.item) + " support " + std::to_string(node.supp) +
            " > parent " + NodeLabel(parent, parent_node.item) + " support " +
            std::to_string(parent_node.supp));
      }
      if (node.supp > total_weight_) {
        return Status::Internal(
            "prefix tree: " + NodeLabel(n, node.item) + " support " +
            std::to_string(node.supp) + " exceeds total transaction weight " +
            std::to_string(total_weight_));
      }
      trans_weight_sum += node.trans;
      if (node.children != kNil) stack.emplace_back(node.children, n);
    }
  }
  if (reachable != node_count_) {
    return Status::Internal(
        "prefix tree: node_count_ " + std::to_string(node_count_) +
        " != reachable nodes " + std::to_string(reachable));
  }
  if (reachable + 1 != next_index_) {
    return Status::Internal("prefix tree: " +
                            std::to_string(next_index_ - 1 - reachable) +
                            " allocated nodes are unreachable");
  }
  if (trans_weight_sum > total_weight_) {
    return Status::Internal(
        "prefix tree: stored transaction weights sum to " +
        std::to_string(trans_weight_sum) + " > total added weight " +
        std::to_string(total_weight_));
  }
  for (std::size_t i = 0; i < num_items; ++i) {
    if (in_transaction_[i] != 0) {
      return Status::Internal(
          "prefix tree: transaction flag for item " + std::to_string(i) +
          " not cleared outside AddTransaction");
    }
  }
  return Status::OK();
}

void IstaPrefixTree::PruneInto(uint32_t node, Support min_support,
                               std::span<const Support> remaining,
                               IstaPrefixTree* target, uint32_t cursor,
                               const std::vector<Support>* aside_src,
                               std::vector<Support>* aside_dst) const {
  // Iterative: a work item is one sibling list plus the target cursor
  // representing the filtered path so far (deep repositories must not
  // overflow the call stack).
  struct Frame {
    uint32_t node;
    uint32_t cursor;
  };
  if (node == kNil) return;
  std::vector<Frame> stack;
  stack.push_back(Frame{node, cursor});
  const auto merge_aside = [&](uint32_t source, uint32_t dest) {
    if (aside_dst == nullptr) return;
    if (aside_dst->size() < target->next_index_) {
      aside_dst->resize(target->next_index_, 0);
    }
    if ((*aside_src)[source] > (*aside_dst)[dest]) {
      (*aside_dst)[dest] = (*aside_src)[source];
    }
  };
  while (!stack.empty()) {
    node = stack.back().node;
    cursor = stack.back().cursor;
    stack.pop_back();
    for (; node != kNil; node = links_[SibSlot(node)]) {
      const ItemId item = node_item_[node];
      const Support supp = node_supp_[node];
      const Support trans = node_trans_[node];
      uint32_t next_cursor = cursor;
      if (supp + remaining[item] >= min_support) {
        // The item can still contribute to a frequent set: keep it.
        next_cursor = target->FindOrCreateChild(cursor, item, 0);
        if (supp > target->node_supp_[next_cursor]) {
          target->node_supp_[next_cursor] = supp;
        }
        target->node_trans_[next_cursor] += trans;
        merge_aside(node, next_cursor);
      } else if (cursor != kRoot) {
        // Drop the item; the reduced set keeps the best support seen and
        // accumulates the reduced transactions' weight.
        if (supp > target->node_supp_[cursor]) {
          target->node_supp_[cursor] = supp;
        }
        target->node_trans_[cursor] += trans;
        merge_aside(node, cursor);
      }
      // Transactions whose items are all dropped reduce to the empty set
      // and vanish (the repository never stores empty transactions);
      // their weight can no longer matter for any frequent set.
      const uint32_t kids = links_[ChildSlot(node)];
      if (kids != kNil) stack.push_back(Frame{kids, next_cursor});
    }
  }
}

}  // namespace fim
