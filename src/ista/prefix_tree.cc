#include "ista/prefix_tree.h"

#include <cassert>

namespace fim {

IstaPrefixTree::IstaPrefixTree(std::size_t num_items)
    : in_transaction_(num_items, 0) {
  // Node 0 is the pseudo-root representing the empty set.
  uint32_t root = NewNode(kInvalidItem, 0, 0);
  (void)root;
  assert(root == kRoot);
  node_count_ = 0;  // the root does not count
}

uint32_t IstaPrefixTree::NewNode(ItemId item, uint32_t step, Support supp) {
  if ((next_index_ & (kChunkSize - 1)) == 0 &&
      (next_index_ >> kChunkShift) == chunks_.size()) {
    chunks_.emplace_back();
    chunks_.back().reserve(kChunkSize);
  }
  uint32_t index = next_index_++;
  chunks_[index >> kChunkShift].push_back(
      Node{step, item, supp, kNil, kNil});
  ++node_count_;
  return index;
}

uint32_t IstaPrefixTree::FindOrCreateChild(uint32_t parent, ItemId item,
                                           Support supp) {
  // Sibling lists are sorted by descending item code.
  uint32_t* link = &At(parent).children;
  while (*link != kNil && At(*link).item > item) link = &At(*link).sibling;
  if (*link != kNil && At(*link).item == item) return *link;
  uint32_t node = NewNode(item, 0, supp);
  At(node).sibling = *link;
  *link = node;
  return node;
}

void IstaPrefixTree::InsertTransactionPath(std::span<const ItemId> items) {
  uint32_t current = kRoot;
  for (std::size_t idx = items.size(); idx > 0; --idx) {
    current = FindOrCreateChild(current, items[idx - 1], 0);
  }
}

void IstaPrefixTree::AddTransaction(std::span<const ItemId> items) {
  assert(!items.empty());
  ++step_;
  for (ItemId i : items) in_transaction_[i] = 1;
  imin_ = items.front();
  InsertTransactionPath(items);
  Isect(At(kRoot).children, &At(kRoot).children);
  for (ItemId i : items) in_transaction_[i] = 0;
}

void IstaPrefixTree::Isect(uint32_t node, uint32_t* ins) {
  while (node != kNil) {
    const ItemId i = At(node).item;
    if (in_transaction_[i]) {
      // The item is in the intersection: find/create the node that
      // represents the extended intersection in the insertion list.
      while (*ins != kNil && At(*ins).item > i) ins = &At(*ins).sibling;
      uint32_t d = *ins;
      if (d != kNil && At(d).item == i) {
        Node& dn = At(d);
        // If this node was already updated for the current transaction,
        // discount it before taking the maximum (Figure 2).
        if (dn.step == step_) --dn.supp;
        if (dn.supp < At(node).supp) dn.supp = At(node).supp;
        ++dn.supp;
        dn.step = step_;
      } else {
        d = NewNode(i, step_, At(node).supp + 1);
        At(d).sibling = *ins;
        *ins = d;
      }
      if (i <= imin_) return;  // nothing below the transaction's minimum
      Isect(At(node).children, &At(d).children);
    } else {
      if (i <= imin_) return;
      Isect(At(node).children, ins);
    }
    node = At(node).sibling;
  }
}

void IstaPrefixTree::Report(Support min_support,
                            const ClosedSetCallback& callback) const {
  std::vector<ItemId> path;
  for (uint32_t c = At(kRoot).children; c != kNil; c = At(c).sibling) {
    if (At(c).supp < min_support) continue;
    path.push_back(At(c).item);
    ReportNode(c, min_support, &path, callback);
    path.pop_back();
  }
}

void IstaPrefixTree::ReportNode(uint32_t node, Support min_support,
                                std::vector<ItemId>* path,
                                const ClosedSetCallback& callback) const {
  Support max_child = 0;
  for (uint32_t c = At(node).children; c != kNil; c = At(c).sibling) {
    const Support cs = At(c).supp;
    if (cs > max_child) max_child = cs;
    if (cs < min_support) continue;
    path->push_back(At(c).item);
    ReportNode(c, min_support, path, callback);
    path->pop_back();
  }
  if (At(node).supp > max_child) {
    // The path is in descending code order; report ascending.
    std::vector<ItemId> ascending(path->rbegin(), path->rend());
    callback(ascending, At(node).supp);
  }
}

void IstaPrefixTree::Prune(Support min_support,
                           std::span<const Support> remaining) {
  IstaPrefixTree fresh(in_transaction_.size());
  fresh.step_ = step_;
  PruneInto(At(kRoot).children, min_support, remaining, &fresh, kRoot);
  *this = std::move(fresh);
}

void IstaPrefixTree::PruneInto(uint32_t node, Support min_support,
                               std::span<const Support> remaining,
                               IstaPrefixTree* target, uint32_t cursor) const {
  for (; node != kNil; node = At(node).sibling) {
    const Node& n = At(node);
    uint32_t next_cursor = cursor;
    if (n.supp + remaining[n.item] >= min_support) {
      // The item can still contribute to a frequent set: keep it.
      next_cursor = target->FindOrCreateChild(cursor, n.item, 0);
      Node& t = target->At(next_cursor);
      if (n.supp > t.supp) t.supp = n.supp;
    } else if (cursor != kRoot) {
      // Drop the item; the reduced set keeps the best support seen.
      Node& t = target->At(cursor);
      if (n.supp > t.supp) t.supp = n.supp;
    }
    PruneInto(n.children, min_support, remaining, target, next_cursor);
  }
}

}  // namespace fim
