#include "ista/prefix_tree.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"

namespace fim {

IstaPrefixTree::IstaPrefixTree(std::size_t num_items)
    : in_transaction_(num_items, 0) {
  // Node 0 is the pseudo-root representing the empty set.
  uint32_t root = NewNode(kInvalidItem, 0, 0);
  FIM_CHECK(root == kRoot);
  node_count_ = 0;  // the root does not count
}

uint32_t IstaPrefixTree::NewNode(ItemId item, uint32_t step, Support supp) {
  if ((next_index_ & (kChunkSize - 1)) == 0 &&
      (next_index_ >> kChunkShift) == chunks_.size()) {
    chunks_.emplace_back();
    chunks_.back().reserve(kChunkSize);
  }
  uint32_t index = next_index_++;
  chunks_[index >> kChunkShift].push_back(
      Node{step, item, supp, kNil, kNil});
  ++node_count_;
  return index;
}

uint32_t IstaPrefixTree::FindOrCreateChild(uint32_t parent, ItemId item,
                                           Support supp) {
  // Sibling lists are sorted by descending item code.
  uint32_t* link = &At(parent).children;
  while (*link != kNil && At(*link).item > item) link = &At(*link).sibling;
  if (*link != kNil && At(*link).item == item) return *link;
  uint32_t node = NewNode(item, 0, supp);
  At(node).sibling = *link;
  *link = node;
  return node;
}

void IstaPrefixTree::InsertTransactionPath(std::span<const ItemId> items) {
  uint32_t current = kRoot;
  for (std::size_t idx = items.size(); idx > 0; --idx) {
    current = FindOrCreateChild(current, items[idx - 1], 0);
  }
}

void IstaPrefixTree::AddTransaction(std::span<const ItemId> items) {
  FIM_CHECK(!items.empty()) << "transactions must be non-empty";
  FIM_DCHECK(std::is_sorted(items.begin(), items.end()) &&
             std::adjacent_find(items.begin(), items.end()) == items.end())
      << "transaction items must be sorted ascending and duplicate-free";
  FIM_DCHECK(items.back() < in_transaction_.size())
      << "item " << items.back() << " out of range (num_items "
      << in_transaction_.size() << ")";
  ++step_;
  for (ItemId i : items) in_transaction_[i] = 1;
  imin_ = items.front();
  InsertTransactionPath(items);
  Isect(At(kRoot).children, &At(kRoot).children);
  for (ItemId i : items) in_transaction_[i] = 0;
  // Full validation is O(nodes); amortize it over power-of-two steps so
  // debug test runs stay roughly O(total work * log steps).
  if (FIM_DCHECK_IS_ON() && (step_ & (step_ - 1)) == 0) {
    FIM_DCHECK_OK(ValidateInvariants());
  }
}

void IstaPrefixTree::Isect(uint32_t node, uint32_t* ins) {
  while (node != kNil) {
    const ItemId i = At(node).item;
    if (in_transaction_[i]) {
      // The item is in the intersection: find/create the node that
      // represents the extended intersection in the insertion list.
      while (*ins != kNil && At(*ins).item > i) ins = &At(*ins).sibling;
      uint32_t d = *ins;
      if (d != kNil && At(d).item == i) {
        Node& dn = At(d);
        // If this node was already updated for the current transaction,
        // discount it before taking the maximum (Figure 2).
        if (dn.step == step_) --dn.supp;
        if (dn.supp < At(node).supp) dn.supp = At(node).supp;
        ++dn.supp;
        dn.step = step_;
      } else {
        d = NewNode(i, step_, At(node).supp + 1);
        At(d).sibling = *ins;
        *ins = d;
      }
      if (i <= imin_) return;  // nothing below the transaction's minimum
      Isect(At(node).children, &At(d).children);
    } else {
      if (i <= imin_) return;
      Isect(At(node).children, ins);
    }
    node = At(node).sibling;
  }
}

void IstaPrefixTree::Report(Support min_support,
                            const ClosedSetCallback& callback) const {
  std::vector<ItemId> path;
  for (uint32_t c = At(kRoot).children; c != kNil; c = At(c).sibling) {
    if (At(c).supp < min_support) continue;
    path.push_back(At(c).item);
    ReportNode(c, min_support, &path, callback);
    path.pop_back();
  }
}

void IstaPrefixTree::ReportNode(uint32_t node, Support min_support,
                                std::vector<ItemId>* path,
                                const ClosedSetCallback& callback) const {
  Support max_child = 0;
  for (uint32_t c = At(node).children; c != kNil; c = At(c).sibling) {
    const Support cs = At(c).supp;
    if (cs > max_child) max_child = cs;
    if (cs < min_support) continue;
    path->push_back(At(c).item);
    ReportNode(c, min_support, path, callback);
    path->pop_back();
  }
  if (At(node).supp > max_child) {
    // The path is in descending code order; report ascending.
    std::vector<ItemId> ascending(path->rbegin(), path->rend());
    callback(ascending, At(node).supp);
  }
}

void IstaPrefixTree::Prune(Support min_support,
                           std::span<const Support> remaining) {
  FIM_DCHECK(remaining.size() == in_transaction_.size())
      << "remaining-occurrence table size " << remaining.size()
      << " != num_items " << in_transaction_.size();
  IstaPrefixTree fresh(in_transaction_.size());
  fresh.step_ = step_;
  PruneInto(At(kRoot).children, min_support, remaining, &fresh, kRoot);
  *this = std::move(fresh);
  FIM_DCHECK_OK(ValidateInvariants());
}

namespace {

std::string NodeLabel(uint32_t index, ItemId item) {
  return "node " + std::to_string(index) + " (item " + std::to_string(item) +
         ")";
}

}  // namespace

Status IstaPrefixTree::ValidateInvariants() const {
  const std::size_t num_items = in_transaction_.size();
  if (next_index_ == 0) {
    return Status::Internal("prefix tree: missing pseudo-root");
  }
  if (At(kRoot).item != kInvalidItem) {
    return Status::Internal("prefix tree: root must carry kInvalidItem");
  }
  std::vector<uint8_t> visited(next_index_, 0);
  visited[kRoot] = 1;
  // Each stack entry is the head of an unvisited sibling list plus the
  // node that owns that child list.
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  if (At(kRoot).children != kNil) stack.emplace_back(At(kRoot).children, kRoot);
  std::size_t reachable = 0;
  while (!stack.empty()) {
    auto [head, parent] = stack.back();
    stack.pop_back();
    const Node& parent_node = At(parent);
    ItemId prev_item = kInvalidItem;  // sentinel: no left sibling yet
    for (uint32_t n = head; n != kNil; n = At(n).sibling) {
      if (n >= next_index_) {
        return Status::Internal("prefix tree: link to unallocated node " +
                                std::to_string(n));
      }
      const Node& node = At(n);
      if (visited[n]) {
        return Status::Internal("prefix tree: " + NodeLabel(n, node.item) +
                                " reachable twice (cycle or shared subtree)");
      }
      visited[n] = 1;
      ++reachable;
      if (node.item >= num_items) {
        return Status::Internal("prefix tree: " + NodeLabel(n, node.item) +
                                " has item code >= num_items " +
                                std::to_string(num_items));
      }
      if (prev_item != kInvalidItem && node.item >= prev_item) {
        return Status::Internal(
            "prefix tree: sibling list not strictly descending at " +
            NodeLabel(n, node.item) + " after item " +
            std::to_string(prev_item));
      }
      prev_item = node.item;
      if (parent != kRoot && node.item >= parent_node.item) {
        return Status::Internal("prefix tree: child " +
                                NodeLabel(n, node.item) +
                                " does not carry a lower code than parent " +
                                NodeLabel(parent, parent_node.item));
      }
      if (node.step > step_) {
        return Status::Internal(
            "prefix tree: " + NodeLabel(n, node.item) + " step stamp " +
            std::to_string(node.step) + " exceeds global step " +
            std::to_string(step_));
      }
      if (parent != kRoot && node.supp > parent_node.supp) {
        return Status::Internal(
            "prefix tree: support not monotone: child " +
            NodeLabel(n, node.item) + " support " + std::to_string(node.supp) +
            " > parent " + NodeLabel(parent, parent_node.item) + " support " +
            std::to_string(parent_node.supp));
      }
      if (node.children != kNil) stack.emplace_back(node.children, n);
    }
  }
  if (reachable != node_count_) {
    return Status::Internal(
        "prefix tree: node_count_ " + std::to_string(node_count_) +
        " != reachable nodes " + std::to_string(reachable));
  }
  if (reachable + 1 != next_index_) {
    return Status::Internal("prefix tree: " +
                            std::to_string(next_index_ - 1 - reachable) +
                            " allocated nodes are unreachable");
  }
  for (std::size_t i = 0; i < num_items; ++i) {
    if (in_transaction_[i] != 0) {
      return Status::Internal(
          "prefix tree: transaction flag for item " + std::to_string(i) +
          " not cleared outside AddTransaction");
    }
  }
  return Status::OK();
}

void IstaPrefixTree::PruneInto(uint32_t node, Support min_support,
                               std::span<const Support> remaining,
                               IstaPrefixTree* target, uint32_t cursor) const {
  for (; node != kNil; node = At(node).sibling) {
    const Node& n = At(node);
    uint32_t next_cursor = cursor;
    if (n.supp + remaining[n.item] >= min_support) {
      // The item can still contribute to a frequent set: keep it.
      next_cursor = target->FindOrCreateChild(cursor, n.item, 0);
      Node& t = target->At(next_cursor);
      if (n.supp > t.supp) t.supp = n.supp;
    } else if (cursor != kRoot) {
      // Drop the item; the reduced set keeps the best support seen.
      Node& t = target->At(cursor);
      if (n.supp > t.supp) t.supp = n.supp;
    }
    PruneInto(n.children, min_support, remaining, target, next_cursor);
  }
}

}  // namespace fim
