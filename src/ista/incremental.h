#ifndef FIM_ISTA_INCREMENTAL_H_
#define FIM_ISTA_INCREMENTAL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "data/itemset.h"
#include "data/transaction_database.h"

namespace fim {

/// Online/streaming closed item set mining — the natural strength of the
/// cumulative intersection scheme: transactions arrive one at a time and
/// the current closed sets (over everything seen so far) can be queried
/// at any point, without re-mining from scratch.
///
/// Unlike the batch driver (MineClosedIsta), no global item statistics
/// are available up front, so item codes are assigned in arrival order
/// and the repository keeps all closed sets (min support 1 semantics
/// internally); `min_support` only filters queries. Memory therefore
/// grows with the number of distinct closed sets seen — bound it with
/// the max_items capacity and by the data's structure, not by smin.
class IncrementalClosedSetMiner {
 public:
  /// `max_items` is the capacity of the item universe (ids must stay
  /// below it).
  explicit IncrementalClosedSetMiner(std::size_t max_items);
  ~IncrementalClosedSetMiner();

  IncrementalClosedSetMiner(const IncrementalClosedSetMiner&) = delete;
  IncrementalClosedSetMiner& operator=(const IncrementalClosedSetMiner&) =
      delete;

  /// Feeds one transaction (any order, duplicates allowed; normalized
  /// internally). Returns InvalidArgument if an item id is out of range
  /// or the transaction is empty after normalization.
  Status AddTransaction(std::vector<ItemId> items);

  /// Number of transactions fed so far.
  std::size_t NumTransactions() const;

  /// Reports the closed item sets with support >= min_support over all
  /// transactions seen so far (items ascending). min_support must be
  /// >= 1.
  Status Query(Support min_support, const ClosedSetCallback& callback) const;

  /// Convenience: collect the current closed sets in canonical order.
  Result<std::vector<ClosedItemset>> QueryCollect(Support min_support) const;

  /// Current repository size in nodes (memory diagnostics).
  std::size_t NodeCount() const;

 private:
  struct Impl;
  Impl* impl_;  // plain pointer: keeps the header light, dtor defined in .cc
};

}  // namespace fim

#endif  // FIM_ISTA_INCREMENTAL_H_
