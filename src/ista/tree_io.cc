// Serialization of the IsTa prefix-tree repository — the `fim-tree-v1`
// binary format (layout documented at SerializeTo in prefix_tree.h).
//
// The format is a raw dump of the node storage plus the scalar state, so
// a round trip reproduces the tree bit for bit: node indices, sibling
// order, step stamps and counters all survive, and every later operation
// (AddTransaction, Merge with its frozen-index logic, Prune, Report)
// behaves exactly as it would have on the original. This is what lets a
// StreamMiner checkpoint resume a stream with output identical to an
// uninterrupted run.

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/check.h"
#include "data/binary_io.h"
#include "ista/prefix_tree.h"

namespace fim {

namespace {

constexpr char kTreeMagic[4] = {'F', 'I', 'M', 'T'};
constexpr uint32_t kTreeVersion = 1;

/// Upper bound on a plausible item universe. Deserializing allocates one
/// transaction-flag byte per item before any node is validated, so this
/// bound is what keeps a corrupt (or fuzzed) header from driving a
/// multi-gigabyte allocation: 16M items caps that buffer at 16 MB while
/// staying two orders of magnitude above the largest real dataset
/// (webview, ~1M items).
constexpr uint64_t kMaxSerializedItems = uint64_t{1} << 24;

using io::ReadPod;
using io::WritePod;

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("fim-tree-v1 blob: " + what);
}

}  // namespace

Status IstaPrefixTree::SerializeTo(std::ostream& out) const {
  FIM_DCHECK_OK(ValidateInvariants());
  out.write(kTreeMagic, sizeof(kTreeMagic));
  WritePod(out, kTreeVersion);
  WritePod(out, static_cast<uint64_t>(in_transaction_.size()));
  WritePod(out, next_index_);
  WritePod(out, step_);
  WritePod(out, total_weight_);
  WritePod(out, static_cast<uint64_t>(node_count_));
  WritePod(out, static_cast<uint64_t>(peak_node_count_));
  WritePod(out, static_cast<uint64_t>(prune_count_));
  WritePod(out, isect_steps_);
  for (uint32_t n = 0; n < next_index_; ++n) {
    const ConstNodeRef node = At(n);
    WritePod(out, node.step);
    WritePod(out, node.item);
    WritePod(out, node.supp);
    WritePod(out, node.trans);
    WritePod(out, node.sibling);
    WritePod(out, node.children);
  }
  if (!out) return Status::IoError("write failure while serializing tree");
  return Status::OK();
}

Result<IstaPrefixTree> IstaPrefixTree::Deserialize(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kTreeMagic, sizeof(kTreeMagic)) != 0) {
    return Corrupt("bad magic (not a serialized prefix tree)");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version)) return Corrupt("truncated header");
  if (version != kTreeVersion) {
    return Corrupt("unsupported version " + std::to_string(version));
  }
  uint64_t num_items = 0;
  uint32_t next_index = 0;
  uint32_t step = 0;
  uint64_t total_weight = 0;
  uint64_t node_count = 0;
  uint64_t peak_node_count = 0;
  uint64_t prune_count = 0;
  uint64_t isect_steps = 0;
  if (!ReadPod(in, &num_items) || !ReadPod(in, &next_index) ||
      !ReadPod(in, &step) || !ReadPod(in, &total_weight) ||
      !ReadPod(in, &node_count) || !ReadPod(in, &peak_node_count) ||
      !ReadPod(in, &prune_count) || !ReadPod(in, &isect_steps)) {
    return Corrupt("truncated header");
  }
  if (num_items > kMaxSerializedItems) {
    return Corrupt("implausible item universe size " +
                   std::to_string(num_items));
  }
  if (next_index == 0) return Corrupt("missing pseudo-root");
  // A quiescent validated tree never carries unreachable nodes, so the
  // stored node count must account for every allocation except the root.
  if (node_count + 1 != next_index) {
    return Corrupt("node count " + std::to_string(node_count) +
                   " inconsistent with " + std::to_string(next_index) +
                   " allocated nodes");
  }

  IstaPrefixTree tree(static_cast<std::size_t>(num_items));
  tree.node_step_.clear();
  tree.node_item_.clear();
  tree.node_supp_.clear();
  tree.node_trans_.clear();
  tree.links_.clear();
  tree.next_index_ = 0;
  // Nodes are read one at a time with a short-read check each, so a
  // truncated blob fails cleanly before any header-sized allocation. The
  // on-disk record order (step, item, supp, trans, sibling, children) is
  // fixed by the format; the in-memory structure-of-arrays layout is
  // filled field by field.
  for (uint32_t n = 0; n < next_index; ++n) {
    uint32_t node_step = 0;
    ItemId item = 0;
    Support supp = 0;
    Support trans = 0;
    uint32_t sibling = 0;
    uint32_t children = 0;
    if (!ReadPod(in, &node_step) || !ReadPod(in, &item) ||
        !ReadPod(in, &supp) || !ReadPod(in, &trans) ||
        !ReadPod(in, &sibling) || !ReadPod(in, &children)) {
      return Corrupt("truncated at node " + std::to_string(n) + " of " +
                     std::to_string(next_index));
    }
    tree.node_step_.push_back(node_step);
    tree.node_item_.push_back(item);
    tree.node_supp_.push_back(supp);
    tree.node_trans_.push_back(trans);
    tree.links_.push_back(children);  // ChildSlot(n)
    tree.links_.push_back(sibling);   // SibSlot(n)
    ++tree.next_index_;
  }
  tree.node_count_ = static_cast<std::size_t>(node_count);
  tree.step_ = step;
  tree.total_weight_ = total_weight;
  tree.peak_node_count_ = std::max<std::size_t>(
      static_cast<std::size_t>(peak_node_count), tree.node_count_);
  tree.prune_count_ = static_cast<std::size_t>(prune_count);
  tree.isect_steps_ = isect_steps;
  // Full structural validation before the tree escapes: link targets,
  // sibling/child ordering, support monotonicity, reachability — any
  // bit-flip that breaks an invariant is rejected here with a clean
  // status instead of corrupting a later mining step.
  Status valid = tree.ValidateInvariants();
  if (!valid.ok()) return Corrupt(valid.message());
  return tree;
}

}  // namespace fim
