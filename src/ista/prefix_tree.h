#ifndef FIM_ISTA_PREFIX_TREE_H_
#define FIM_ISTA_PREFIX_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/itemset.h"
#include "obs/memory.h"

namespace fim {

/// The prefix-tree repository of closed item sets at the heart of IsTa
/// (paper §3.3). Each node represents the item set formed by the items on
/// its root path; sibling lists are ordered by descending item code and
/// children carry lower codes than their parent, so every set is stored
/// along exactly one path. `AddTransaction` implements the combined
/// "insert transaction + merge all intersections" recursion of Figure 2,
/// using a per-node step stamp to keep supports correct when several
/// stored sets intersect the new transaction to the same result.
///
/// Item codes must be < num_items; for the performance characteristics of
/// the paper, assign codes ascending by frequency (see recode.h) before
/// feeding transactions.
class IstaPrefixTree {
 public:
  explicit IstaPrefixTree(std::size_t num_items);

  // The tree owns bulk node storage; moving is fine, copying is not
  // meaningful for a mining-in-progress structure.
  IstaPrefixTree(const IstaPrefixTree&) = delete;
  IstaPrefixTree& operator=(const IstaPrefixTree&) = delete;
  IstaPrefixTree(IstaPrefixTree&&) = default;
  IstaPrefixTree& operator=(IstaPrefixTree&&) = default;

  /// Processes one transaction of multiplicity `weight` (>= 1): adds it
  /// to the repository and creates or updates every intersection with a
  /// stored set, adding `weight` instead of +1 wherever Figure 2 counts
  /// the transaction (the step-stamp discount is adjusted accordingly).
  /// Equivalent to `weight` consecutive unit additions, in one pass.
  /// `items` must be sorted ascending and duplicate-free, non-empty, all
  /// < num_items.
  void AddTransaction(std::span<const ItemId> items, Support weight = 1);

  /// Folds another repository into this one by replaying each of its
  /// stored sets against this tree's own stored sets with a max-plus
  /// update: the node for S∩b is raised to supp(S) + supp(b) for every
  /// stored pair, which is exactly the support of S∩b in the
  /// concatenated stream when S and b are the respective closures. The
  /// closed frequent sets reported afterwards are identical to a single
  /// sequential run over both streams — even if either repository has
  /// been pruned, since Prune keeps the supports of all still-potentially
  /// frequent sets exact. `other` must share this tree's item universe
  /// and must not alias `*this`.
  ///
  /// The second overload additionally prunes whenever the node count
  /// exceeds `prune_node_threshold` (which then doubles), against
  /// `remaining` = the occurrences of each item outside THIS tree's own
  /// stream before the merge. That bound conservatively counts the other
  /// repository's not-yet-replayed support mass as still to come, so
  /// mid-merge pruning never touches an item a frequent set of the
  /// union still needs.
  void Merge(const IstaPrefixTree& other);
  void Merge(const IstaPrefixTree& other, Support min_support,
             std::span<const Support> remaining,
             std::size_t prune_node_threshold);

  /// Reports every stored set with support >= min_support whose support
  /// exceeds the support of all its direct children (the closedness check
  /// of Figure 4). Items are passed to the callback in ascending order.
  void Report(Support min_support, const ClosedSetCallback& callback) const;

  /// Item-elimination pruning (paper §3.2): rebuilds the tree, removing
  /// item i from every stored set whose node support s satisfies
  /// s + remaining[i] < min_support, where remaining[i] is the number of
  /// occurrences of i in the not-yet-processed transactions. Reduced sets
  /// are merged with max support. Never changes the reported frequent
  /// closed sets.
  void Prune(Support min_support, std::span<const Support> remaining);

  /// Number of live nodes (excluding the pseudo-root).
  std::size_t NodeCount() const { return node_count_; }

  /// Size of the item universe this repository was created over.
  std::size_t NumItems() const { return in_transaction_.size(); }

  /// High-water mark of NodeCount() over the tree's whole history,
  /// including the transient growth during Merge replays (which an
  /// external observer polling NodeCount() between operations misses).
  /// Merge folds the absorbed repository's peak in, so the final tree of
  /// a parallel reduction reports the true maximum over all workers and
  /// merge stages.
  std::size_t PeakNodeCount() const { return peak_node_count_; }

  /// Number of Prune() rebuilds performed, including the threshold
  /// prunes Merge runs internally mid-replay; Merge folds the absorbed
  /// repository's count in.
  std::size_t PruneCount() const { return prune_count_; }

  /// Repository nodes visited by the intersection walks (Figure 2's
  /// Isect and the max-plus replay of Merge) — the paper's measure of
  /// intersection work. Merge folds the absorbed repository's count in.
  std::uint64_t IsectSteps() const { return isect_steps_; }

  /// Number of transactions processed so far (weighted additions and
  /// replayed merge transactions each count as one step).
  std::size_t StepCount() const { return step_; }

  /// Total transaction weight processed so far (each AddTransaction adds
  /// its weight; Merge adds the replayed weight of the other tree).
  uint64_t TotalWeight() const { return total_weight_; }

  /// Exact heap footprint of the repository (capacity bytes of the SoA
  /// arenas), as a breakdown named "prefix-tree": the node columns and
  /// the link arena each split into "live" (slots of reachable nodes)
  /// and "garbage" (allocated-but-dead slots plus capacity slack —
  /// vectors never shrink, so this is the pruning/growth overhead),
  /// plus the transaction-flag and Isect-stack scratch. The total
  /// matches what the FIM_MEM_PROFILE allocation tracker counts for the
  /// tree's domain. O(1).
  obs::MemoryComponent ApproxMemoryUsage() const;

  /// Exhaustively checks the structural invariants of the repository
  /// (paper §3.3, Figure 2) and returns OK, or an Internal status naming
  /// the first violated invariant:
  ///   - every sibling list is sorted by strictly descending item code;
  ///   - every child carries a strictly lower item code than its parent;
  ///   - item codes are valid (< num_items; kInvalidItem only at the root);
  ///   - no node's step stamp exceeds the global step counter;
  ///   - support never increases from parent to child (a child path is a
  ///     superset item set, so it is contained in no more transactions);
  ///   - no node's support exceeds the total transaction weight processed
  ///     (weighted additions and merged repositories included);
  ///   - the accumulated per-node transaction weights sum to at most the
  ///     total transaction weight (pruning may shed weight, never gain);
  ///   - every allocated node is reachable exactly once (no cycles, no
  ///     leaks) and `NodeCount()` matches;
  ///   - the transaction flag array is fully cleared (quiescent state).
  /// O(nodes). Debug builds run this automatically at mutation points via
  /// FIM_DCHECK; tests and fim-verify call it on demand.
  Status ValidateInvariants() const;

  /// Serializes the repository into `out` in the versioned binary format
  /// `fim-tree-v1` (implemented in tree_io.cc):
  ///   char[4] "FIMT", u32 version (1),
  ///   u64 num_items, u32 next_index, u32 step, u64 total_weight,
  ///   u64 node_count, u64 peak_node_count, u64 prune_count,
  ///   u64 isect_steps,
  ///   then `next_index` nodes of
  ///   (u32 step, u32 item, u32 supp, u32 trans, u32 sibling, u32 children)
  /// in allocation order (node 0 is the pseudo-root). The dump captures
  /// the exact node layout, so a deserialized tree behaves bit-identically
  /// to the original under further AddTransaction/Merge/Prune/Report
  /// calls. Must be called on a quiescent tree (never from inside a
  /// mutation), which is the only state observable through the public API.
  Status SerializeTo(std::ostream& out) const;

  /// Reads one fim-tree-v1 blob from `in` (leaving the stream positioned
  /// after it) and reconstructs the repository. Corrupted or truncated
  /// input yields a clean InvalidArgument — the blob is fully range- and
  /// invariant-checked (ValidateInvariants) before the tree is returned,
  /// so no malformed structure can escape.
  static Result<IstaPrefixTree> Deserialize(std::istream& in);

 private:
  friend struct IstaPrefixTreeTestPeer;  // corruption hooks for check_test

  // Node storage is a structure of arrays: one parallel vector per field,
  // indexed by node id, plus a single link arena holding both links of a
  // node in adjacent slots (slot 2n = children of node n, slot 2n+1 = its
  // sibling). The intersection walks touch only item codes, supports and
  // links, so splitting the fields keeps the cache lines they stream over
  // free of the cold step/trans fields, and the unified link arena lets
  // an insertion cursor be a stable uint32_t slot index instead of a
  // pointer that vector growth would invalidate.

  static constexpr uint32_t kNil = static_cast<uint32_t>(-1);
  static constexpr uint32_t kRoot = 0;

  /// Link-arena slots of node n. links_[ChildSlot(n)] heads n's child
  /// list; links_[SibSlot(n)] is n's next sibling.
  static uint32_t ChildSlot(uint32_t n) { return 2 * n; }
  static uint32_t SibSlot(uint32_t n) { return 2 * n + 1; }

  /// A view of one node's fields across the parallel arrays, for the
  /// cold paths (validation, serialization, the test peer) that want the
  /// old whole-node access. The references follow vector reallocation
  /// rules: do not hold one across NewNode.
  struct NodeRef {
    uint32_t& step;      // last update step (0 = never)
    ItemId& item;        // item of this node (kInvalidItem for the root)
    Support& supp;       // support of the set on the root path
    Support& trans;      // accumulated weight of transactions equal to the
                         // set on the root path (0 for pure intersections);
                         // exactly the replay weights needed by Merge
    uint32_t& sibling;   // next node in the sibling list (descending items)
    uint32_t& children;  // head of the child list
  };
  struct ConstNodeRef {
    const uint32_t& step;
    const ItemId& item;
    const Support& supp;
    const Support& trans;
    const uint32_t& sibling;
    const uint32_t& children;
  };

  NodeRef At(uint32_t index) {
    return NodeRef{node_step_[index],          node_item_[index],
                   node_supp_[index],          node_trans_[index],
                   links_[SibSlot(index)],     links_[ChildSlot(index)]};
  }
  ConstNodeRef At(uint32_t index) const {
    return ConstNodeRef{node_step_[index],      node_item_[index],
                        node_supp_[index],      node_trans_[index],
                        links_[SibSlot(index)], links_[ChildSlot(index)]};
  }

  /// Allocates a node. Node ids and link-arena slot indices are stable
  /// across allocation (they are indices, not pointers); references and
  /// NodeRefs are not.
  uint32_t NewNode(ItemId item, uint32_t step, Support supp);

  /// Inserts the transaction as a path (descending item codes), creating
  /// missing nodes with support 0. Returns the node of the full
  /// transaction path; supports are brought up to date by the subsequent
  /// Isect pass.
  uint32_t InsertTransactionPath(std::span<const ItemId> items);

  /// The recursion of Figure 2, run on an explicit stack so adversarially
  /// deep repositories (one node per item of a very long transaction)
  /// cannot overflow the call stack. `node` heads a sibling list of the
  /// current tree level; `ins_slot` indexes the link-arena slot
  /// (children/sibling) where intersection results for the current prefix
  /// are merged. `weight` is the multiplicity of the current transaction.
  void Isect(uint32_t node, uint32_t ins_slot, Support weight);

  /// Merge helper: replays one stored set of the other repository
  /// (`other_supp`/`other_trans` are its support and transaction weight
  /// there) against this tree's frozen sources: nodes with index
  /// < `frozen`. `aside` holds, per node, the support contributed by this
  /// tree's own pre-merge side alone (never the other repository's), so
  /// candidates aside[S] + other_supp never double-count the other side;
  /// it is grown in sync with node allocation.
  void ReplayStoredSet(std::span<const ItemId> items, Support other_supp,
                       Support other_trans, uint32_t frozen,
                       std::vector<Support>* aside);

  /// The walk of Isect with the max-plus update of Merge: for every
  /// frozen stored set S compatible with the current replayed set, the
  /// node of the intersection is raised to aside[S] + other_supp (and its
  /// own aside to aside[S]).
  void IsectMax(uint32_t node, uint32_t ins_slot, Support other_supp,
                uint32_t frozen, std::vector<Support>* aside);

  /// Prune helper: re-inserts the filtered sets of the subtree headed by
  /// `node` into `target`, with `cursor` the target node representing the
  /// filtered path so far. Iterative (explicit work stack). When
  /// `aside_src`/`aside_dst` are given (mid-merge pruning), the per-node
  /// own-side supports are carried over with the same max-merge rule as
  /// the supports.
  void PruneInto(uint32_t node, Support min_support,
                 std::span<const Support> remaining, IstaPrefixTree* target,
                 uint32_t cursor,
                 const std::vector<Support>* aside_src = nullptr,
                 std::vector<Support>* aside_dst = nullptr) const;

  /// Finds or creates the child of `parent` carrying `item`; keeps the
  /// sibling list sorted by descending item code.
  uint32_t FindOrCreateChild(uint32_t parent, ItemId item, Support supp);

  /// One suspended sibling list of the explicit Isect stack. `ins_slot`
  /// indexes the link arena, so it stays valid across node allocation.
  struct IsectFrame {
    uint32_t node;
    uint32_t ins_slot;
  };

  // Structure-of-arrays node storage (see the layout note above).
  std::vector<uint32_t> node_step_;
  std::vector<ItemId> node_item_;
  std::vector<Support> node_supp_;
  std::vector<Support> node_trans_;
  std::vector<uint32_t> links_;  // slot 2n: children of n, 2n+1: sibling
  uint32_t next_index_ = 0;
  std::size_t node_count_ = 0;
  std::size_t peak_node_count_ = 0;
  std::size_t prune_count_ = 0;
  uint64_t isect_steps_ = 0;
  uint32_t step_ = 0;
  uint64_t total_weight_ = 0;            // sum of all transaction weights
  std::vector<uint8_t> in_transaction_;  // flag array `trans` of Figure 2
  ItemId imin_ = 0;                      // minimum item of the transaction
  std::vector<IsectFrame> isect_stack_;  // reused across AddTransaction
};

}  // namespace fim

#endif  // FIM_ISTA_PREFIX_TREE_H_
