#ifndef FIM_ISTA_PREFIX_TREE_H_
#define FIM_ISTA_PREFIX_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/itemset.h"

namespace fim {

/// The prefix-tree repository of closed item sets at the heart of IsTa
/// (paper §3.3). Each node represents the item set formed by the items on
/// its root path; sibling lists are ordered by descending item code and
/// children carry lower codes than their parent, so every set is stored
/// along exactly one path. `AddTransaction` implements the combined
/// "insert transaction + merge all intersections" recursion of Figure 2,
/// using a per-node step stamp to keep supports correct when several
/// stored sets intersect the new transaction to the same result.
///
/// Item codes must be < num_items; for the performance characteristics of
/// the paper, assign codes ascending by frequency (see recode.h) before
/// feeding transactions.
class IstaPrefixTree {
 public:
  explicit IstaPrefixTree(std::size_t num_items);

  // The tree owns bulk node storage; moving is fine, copying is not
  // meaningful for a mining-in-progress structure.
  IstaPrefixTree(const IstaPrefixTree&) = delete;
  IstaPrefixTree& operator=(const IstaPrefixTree&) = delete;
  IstaPrefixTree(IstaPrefixTree&&) = default;
  IstaPrefixTree& operator=(IstaPrefixTree&&) = default;

  /// Processes one transaction: adds it to the repository and creates or
  /// updates every intersection with a stored set. `items` must be sorted
  /// ascending and duplicate-free, non-empty, all < num_items.
  void AddTransaction(std::span<const ItemId> items);

  /// Reports every stored set with support >= min_support whose support
  /// exceeds the support of all its direct children (the closedness check
  /// of Figure 4). Items are passed to the callback in ascending order.
  void Report(Support min_support, const ClosedSetCallback& callback) const;

  /// Item-elimination pruning (paper §3.2): rebuilds the tree, removing
  /// item i from every stored set whose node support s satisfies
  /// s + remaining[i] < min_support, where remaining[i] is the number of
  /// occurrences of i in the not-yet-processed transactions. Reduced sets
  /// are merged with max support. Never changes the reported frequent
  /// closed sets.
  void Prune(Support min_support, std::span<const Support> remaining);

  /// Number of live nodes (excluding the pseudo-root).
  std::size_t NodeCount() const { return node_count_; }

  /// Number of transactions processed so far.
  std::size_t StepCount() const { return step_; }

  /// Exhaustively checks the structural invariants of the repository
  /// (paper §3.3, Figure 2) and returns OK, or an Internal status naming
  /// the first violated invariant:
  ///   - every sibling list is sorted by strictly descending item code;
  ///   - every child carries a strictly lower item code than its parent;
  ///   - item codes are valid (< num_items; kInvalidItem only at the root);
  ///   - no node's step stamp exceeds the global step counter;
  ///   - support never increases from parent to child (a child path is a
  ///     superset item set, so it is contained in no more transactions);
  ///   - every allocated node is reachable exactly once (no cycles, no
  ///     leaks) and `NodeCount()` matches;
  ///   - the transaction flag array is fully cleared (quiescent state).
  /// O(nodes). Debug builds run this automatically at mutation points via
  /// FIM_DCHECK; tests and fim-verify call it on demand.
  Status ValidateInvariants() const;

 private:
  friend struct IstaPrefixTreeTestPeer;  // corruption hooks for check_test

  struct Node {
    uint32_t step;      // last update step (0 = never)
    ItemId item;        // item of this node (kInvalidItem for the root)
    Support supp;       // support of the set on the root path
    uint32_t sibling;   // next node in the sibling list (descending items)
    uint32_t children;  // head of the child list
  };

  static constexpr uint32_t kNil = static_cast<uint32_t>(-1);
  static constexpr uint32_t kRoot = 0;
  static constexpr std::size_t kChunkShift = 16;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  Node& At(uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Node& At(uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  /// Allocates a node; node addresses are stable (chunked storage), so
  /// uint32_t* links into nodes survive allocation.
  uint32_t NewNode(ItemId item, uint32_t step, Support supp);

  /// Inserts the transaction as a path (descending item codes), creating
  /// missing nodes with support 0. Returns nothing; supports are brought
  /// up to date by the subsequent Isect pass.
  void InsertTransactionPath(std::span<const ItemId> items);

  /// The recursion of Figure 2. `node` heads a sibling list of the
  /// current tree level; `ins` points at the link (children/sibling slot)
  /// where intersection results for the current prefix are merged.
  void Isect(uint32_t node, uint32_t* ins);

  /// Recursive helper of Report; `path` holds the items from the root in
  /// descending code order.
  void ReportNode(uint32_t node, Support min_support,
                  std::vector<ItemId>* path,
                  const ClosedSetCallback& callback) const;

  /// Prune helper: re-inserts the filtered sets of the subtree headed by
  /// `node` into `target`, with `cursor` the target node representing the
  /// filtered path so far.
  void PruneInto(uint32_t node, Support min_support,
                 std::span<const Support> remaining, IstaPrefixTree* target,
                 uint32_t cursor) const;

  /// Finds or creates the child of `parent` carrying `item`; keeps the
  /// sibling list sorted by descending item code.
  uint32_t FindOrCreateChild(uint32_t parent, ItemId item, Support supp);

  std::vector<std::vector<Node>> chunks_;
  uint32_t next_index_ = 0;
  std::size_t node_count_ = 0;
  uint32_t step_ = 0;
  std::vector<uint8_t> in_transaction_;  // flag array `trans` of Figure 2
  ItemId imin_ = 0;                      // minimum item of the transaction
};

}  // namespace fim

#endif  // FIM_ISTA_PREFIX_TREE_H_
