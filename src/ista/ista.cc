#include "ista/ista.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.h"
#include "ista/prefix_tree.h"
#include "obs/memory.h"
#include "obs/perf.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace fim {

namespace {

/// Records the preprocessing structures that stay alive for the whole
/// mining call: the recoded database, the weighted stream over it, and
/// the per-worker remaining-occurrence tables.
void RecordPreprocessingMemory(obs::MemoryBreakdown* memory,
                               const TransactionDatabase& coded,
                               std::size_t stream_bytes,
                               std::size_t remaining_tables) {
  if (memory == nullptr) return;
  obs::MemoryComponent coded_db = coded.ApproxMemoryUsage();
  coded_db.name = "recoded-db";
  memory->Record(std::move(coded_db));
  memory->RecordBytes("weighted-stream", stream_bytes);
  memory->RecordBytes("remaining-tables",
                      remaining_tables * coded.NumItems() * sizeof(Support));
}

/// One entry of the mining stream: a recoded transaction plus its
/// multiplicity after duplicate merging.
struct WeightedTransaction {
  const std::vector<ItemId>* items;
  Support weight;
};

/// Builds the weighted stream. With `merge_duplicates`, runs of identical
/// adjacent transactions collapse into one weighted transaction; under the
/// default size-ascending order (which breaks ties lexicographically) all
/// duplicates are adjacent, so this is a full deduplication there.
std::vector<WeightedTransaction> BuildWeightedStream(
    const TransactionDatabase& coded, bool merge_duplicates) {
  std::vector<WeightedTransaction> stream;
  stream.reserve(coded.NumTransactions());
  for (const auto& transaction : coded.transactions()) {
    if (merge_duplicates && !stream.empty() &&
        *stream.back().items == transaction) {
      ++stream.back().weight;
    } else {
      stream.push_back(WeightedTransaction{&transaction, 1});
    }
  }
  return stream;
}

/// Mines the stream slice [start, end) into a private repository.
/// `remaining` must hold the occurrence counts of every item over the
/// whole coded database: only the slice's own occurrences are subtracted
/// as it advances, so entries of other slices stay counted as
/// "remaining" — exactly what makes the item-elimination pruning sound
/// against supports that other slices may still contribute. The
/// repository tracks its own peak/prune/isect statistics.
IstaPrefixTree MineShard(const std::vector<WeightedTransaction>& stream,
                         std::size_t start, std::size_t end,
                         std::size_t num_items, std::vector<Support>* remaining,
                         const IstaOptions& options,
                         obs::TimelineLane* lane = nullptr) {
  IstaPrefixTree tree(num_items);
  std::size_t prune_threshold = options.prune_node_threshold;
  for (std::size_t k = start; k < end; ++k) {
    const WeightedTransaction& wt = stream[k];
    tree.AddTransaction(*wt.items, wt.weight);
    for (ItemId i : *wt.items) (*remaining)[i] -= wt.weight;
    if (options.item_elimination && tree.NodeCount() > prune_threshold) {
      obs::TimelineScope prune_scope(lane, "prune");
      tree.Prune(options.min_support, *remaining);
      prune_threshold = std::max(prune_threshold, 2 * tree.NodeCount());
      prune_scope.End();
      if (lane != nullptr) {
        lane->Counter("nodes", static_cast<double>(tree.NodeCount()));
      }
    }
  }
  return tree;
}

/// Copies the repository's own counters into the snapshot and reports the
/// final tree, counting the emitted sets. The counting wrapper only
/// observes the callback sequence, so the output is identical with and
/// without stats.
void ReportWithStats(const IstaPrefixTree& tree, const Recoding& recoding,
                     Support min_support, const ClosedSetCallback& callback,
                     IstaStats* stats) {
  if (stats == nullptr) {
    tree.Report(min_support, MakeDecodingCallback(recoding, callback));
    return;
  }
  stats->peak_nodes = tree.PeakNodeCount();
  stats->final_nodes = tree.NodeCount();
  stats->prune_calls = tree.PruneCount();
  stats->isect_steps = tree.IsectSteps();
  const ClosedSetCallback decoding = MakeDecodingCallback(recoding, callback);
  tree.Report(min_support,
              [stats, &decoding](std::span<const ItemId> items,
                                 Support support) {
                ++stats->sets_reported;
                decoding(items, support);
              });
}

}  // namespace

Status MineClosedIsta(const TransactionDatabase& db, const IstaOptions& options,
                      const ClosedSetCallback& callback, IstaStats* stats,
                      obs::Trace* trace) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = IstaStats{};
  if (db.NumTransactions() == 0) return Status::OK();

  // Preprocessing: assign item codes, drop items that cannot occur in any
  // frequent set, order the transactions (paper §3.4).
  const Support min_item_support =
      options.item_elimination ? options.min_support : 1;
  obs::Timeline* const timeline = options.timeline;
  obs::TimelineLane* const lane =
      timeline != nullptr ? timeline->driver() : nullptr;
  obs::Phase recode_phase(trace, lane, "recode");
  const Recoding recoding =
      ComputeRecoding(db, options.item_order, min_item_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, options.transaction_order,
                    options.num_threads, timeline);
  recode_phase.End();
  if (coded.NumTransactions() == 0) return Status::OK();

  obs::Phase dedup_phase(trace, lane, "dedup");
  const std::vector<WeightedTransaction> stream =
      BuildWeightedStream(coded, options.merge_duplicate_transactions);
  dedup_phase.End();
  if (stats != nullptr) stats->weighted_transactions = stream.size();

  // Remaining occurrences of each item over the full coded database; each
  // worker subtracts only what it has processed itself.
  const std::vector<Support> frequencies = coded.ItemFrequencies();

  const std::size_t num_workers = std::min<std::size_t>(
      std::max(1u, options.num_threads), stream.size());

  RecordPreprocessingMemory(options.memory, coded,
                            stream.capacity() * sizeof(stream[0]),
                            num_workers);

  if (num_workers <= 1) {
    std::vector<Support> remaining = frequencies;
    obs::Phase mine_phase(trace, lane, "shard-mine");
    std::optional<IstaPrefixTree> tree_slot;
    {
      obs::PerfDomainScope shard_domain(options.perf_domains, "shard-0");
      obs::MemDomainScope mem_domain(obs::MemDomain::kIstaTree);
      tree_slot.emplace(MineShard(stream, 0, stream.size(), coded.NumItems(),
                                  &remaining, options, lane));
      shard_domain.AddWorkSteps(tree_slot->IsectSteps());
    }
    IstaPrefixTree& tree = *tree_slot;
    mine_phase.End();
    FIM_DCHECK_OK(tree.ValidateInvariants());
    if (options.memory != nullptr) {
      obs::MemoryComponent trees("prefix-trees");
      trees.children.push_back(tree.ApproxMemoryUsage());
      trees.children.back().name = "shard-0";
      options.memory->Record(std::move(trees));
    }
    obs::Phase report_phase(trace, lane, "report");
    ReportWithStats(tree, recoding, options.min_support, callback, stats);
    return Status::OK();
  }

  // Parallel mode: contiguous slices of the size-ascending weighted
  // stream. Identical transactions are adjacent in that order, so after
  // duplicate merging no two shards hold copies of the same transaction,
  // and neighbouring transactions overlap heavily, which keeps the shard
  // repositories compact. Every worker owns its repository; no shared
  // mutable state. Each worker prunes against the occurrences outside
  // its own slice — a sound bound on what the other slices can still
  // contribute — which keeps the shard repositories small; the max-plus
  // Merge stays exact on pruned repositories.
  std::vector<std::optional<IstaPrefixTree>> trees(num_workers);
  std::vector<std::vector<Support>> remaining(num_workers);
  {
    obs::Phase mine_phase(trace, lane, "shard-mine");
    std::vector<std::thread> workers;
    workers.reserve(num_workers);
    for (std::size_t w = 0; w < num_workers; ++w) {
      workers.emplace_back([&, w]() {
        obs::TimelineLane* wlane =
            timeline != nullptr
                ? timeline->AddLane("ista-worker-" + std::to_string(w))
                : nullptr;
        obs::TimelineScope shard_scope(wlane, "shard-mine");
        obs::PerfDomainScope shard_domain(options.perf_domains,
                                          "shard-" + std::to_string(w));
        obs::MemDomainScope mem_domain(obs::MemDomain::kIstaTree);
        const std::size_t begin = w * stream.size() / num_workers;
        const std::size_t end = (w + 1) * stream.size() / num_workers;
        remaining[w] = frequencies;
        trees[w].emplace(MineShard(stream, begin, end, coded.NumItems(),
                                   &remaining[w], options, wlane));
        if (options.item_elimination) {
          obs::TimelineScope prune_scope(wlane, "prune");
          trees[w]->Prune(options.min_support, remaining[w]);
        }
        shard_domain.AddWorkSteps(trees[w]->IsectSteps());
      });
    }
    for (auto& worker : workers) worker.join();
  }

  if (options.memory != nullptr) {
    // Snapshot the per-shard repositories at their collective largest:
    // after the shard phase every worker's tree is live at once. The
    // merge releases absorbed trees, so the merged-tree snapshot below
    // usually totals less; Record keeps whichever is larger.
    obs::MemoryComponent trees_component("prefix-trees");
    for (std::size_t w = 0; w < num_workers; ++w) {
      trees_component.children.push_back(trees[w]->ApproxMemoryUsage());
      trees_component.children.back().name = "shard-" + std::to_string(w);
    }
    options.memory->Record(std::move(trees_component));
  }

  // Pairwise reduction: the closed sets of a transaction stream are a
  // deterministic function of the stream's multiset of transactions, and
  // the max-plus Merge computes exactly the repository product, so the
  // reduction recovers the repository of the full stream no matter how
  // the pairs are grouped. Each level merges disjoint pairs
  // concurrently. A merged repository covers the union of its shards, so
  // the occurrences still outside it are remaining_a + remaining_b -
  // total; pruning against that bound after every merge keeps the
  // repositories shrinking as their coverage grows (by the final merge
  // it reaches full sequential pruning strength). Merge folds the
  // absorbed repository's peak/prune/isect counters into the target, so
  // the final tree carries the totals over all workers and stages.
  std::size_t merge_calls = 0;
  {
    obs::Phase merge_phase(trace, lane, "merge");
    for (std::size_t stride = 1; stride < num_workers; stride *= 2) {
      std::vector<std::thread> mergers;
      for (std::size_t i = 0; i + stride < num_workers; i += 2 * stride) {
        ++merge_calls;
        mergers.emplace_back(
            [&trees, &remaining, &frequencies, &options, timeline, i,
             stride]() {
              obs::TimelineLane* mlane =
                  timeline != nullptr
                      ? timeline->AddLane("ista-merge-" +
                                          std::to_string(stride) + "-" +
                                          std::to_string(i))
                      : nullptr;
              obs::TimelineScope merge_scope(mlane, "merge");
              obs::PerfDomainScope merge_domain(
                  options.perf_domains, "merge-" + std::to_string(stride) +
                                            "-" + std::to_string(i));
              obs::MemDomainScope mem_domain(obs::MemDomain::kIstaTree);
              // Replaying the smaller repository into the larger one is
              // cheaper (the replay visits every stored set of the source);
              // the result is identical either way. The remaining table
              // travels with its tree: the mid-merge pruning bound is the
              // occurrences outside the *target's* own pre-merge stream.
              if (trees[i]->NodeCount() < trees[i + stride]->NodeCount()) {
                std::swap(trees[i], trees[i + stride]);
                std::swap(remaining[i], remaining[i + stride]);
              }
              // Merge folds the absorbed tree's counters into the target,
              // so the merge stage's own intersection work is the step
              // growth beyond the two inputs' pre-merge totals.
              const std::uint64_t steps_before =
                  trees[i]->IsectSteps() + trees[i + stride]->IsectSteps();
              if (options.item_elimination) {
                trees[i]->Merge(*trees[i + stride], options.min_support,
                                remaining[i], options.prune_node_threshold);
              } else {
                trees[i]->Merge(*trees[i + stride]);
              }
              trees[i + stride].reset();  // release the absorbed repository
              for (std::size_t item = 0; item < frequencies.size(); ++item) {
                remaining[i][item] = remaining[i][item] +
                                     remaining[i + stride][item] -
                                     frequencies[item];
              }
              if (options.item_elimination) {
                trees[i]->Prune(options.min_support, remaining[i]);
              }
              const std::uint64_t steps_after = trees[i]->IsectSteps();
              merge_domain.AddWorkSteps(
                  steps_after > steps_before ? steps_after - steps_before : 0);
            });
      }
      for (auto& merger : mergers) merger.join();
    }
  }

  IstaPrefixTree& tree = *trees.front();
  FIM_DCHECK_OK(tree.ValidateInvariants());
  if (options.memory != nullptr) {
    obs::MemoryComponent trees_component("prefix-trees");
    trees_component.children.push_back(tree.ApproxMemoryUsage());
    trees_component.children.back().name = "merged";
    options.memory->Record(std::move(trees_component));
  }
  obs::Phase report_phase(trace, lane, "report");
  ReportWithStats(tree, recoding, options.min_support, callback, stats);
  if (stats != nullptr) stats->merge_calls = merge_calls;
  return Status::OK();
}

}  // namespace fim
