#include "ista/ista.h"

#include <algorithm>

#include "common/check.h"
#include "ista/prefix_tree.h"

namespace fim {

Status MineClosedIsta(const TransactionDatabase& db, const IstaOptions& options,
                      const ClosedSetCallback& callback, IstaStats* stats) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = IstaStats{};
  if (db.NumTransactions() == 0) return Status::OK();

  // Preprocessing: assign item codes, drop items that cannot occur in any
  // frequent set, order the transactions (paper §3.4).
  const Support min_item_support =
      options.item_elimination ? options.min_support : 1;
  const Recoding recoding =
      ComputeRecoding(db, options.item_order, min_item_support);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, options.transaction_order);
  if (coded.NumTransactions() == 0) return Status::OK();

  // Remaining occurrences of each item in the unprocessed transactions,
  // used by the item-elimination pruning of the repository.
  std::vector<Support> remaining = coded.ItemFrequencies();

  IstaPrefixTree tree(coded.NumItems());
  std::size_t prune_threshold = options.prune_node_threshold;

  for (const auto& transaction : coded.transactions()) {
    tree.AddTransaction(transaction);
    for (ItemId i : transaction) --remaining[i];
    if (stats != nullptr) {
      stats->peak_nodes = std::max(stats->peak_nodes, tree.NodeCount());
    }
    if (options.item_elimination && tree.NodeCount() > prune_threshold) {
      tree.Prune(options.min_support, remaining);
      prune_threshold = std::max(prune_threshold, 2 * tree.NodeCount());
      if (stats != nullptr) ++stats->prune_calls;
    }
  }

  if (stats != nullptr) stats->final_nodes = tree.NodeCount();
  FIM_DCHECK_OK(tree.ValidateInvariants());
  tree.Report(options.min_support, MakeDecodingCallback(recoding, callback));
  return Status::OK();
}

}  // namespace fim
