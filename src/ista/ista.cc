#include "ista/ista.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.h"
#include "ista/prefix_tree.h"

namespace fim {

namespace {

/// One entry of the mining stream: a recoded transaction plus its
/// multiplicity after duplicate merging.
struct WeightedTransaction {
  const std::vector<ItemId>* items;
  Support weight;
};

/// Builds the weighted stream. With `merge_duplicates`, runs of identical
/// adjacent transactions collapse into one weighted transaction; under the
/// default size-ascending order (which breaks ties lexicographically) all
/// duplicates are adjacent, so this is a full deduplication there.
std::vector<WeightedTransaction> BuildWeightedStream(
    const TransactionDatabase& coded, bool merge_duplicates) {
  std::vector<WeightedTransaction> stream;
  stream.reserve(coded.NumTransactions());
  for (const auto& transaction : coded.transactions()) {
    if (merge_duplicates && !stream.empty() &&
        *stream.back().items == transaction) {
      ++stream.back().weight;
    } else {
      stream.push_back(WeightedTransaction{&transaction, 1});
    }
  }
  return stream;
}

/// Mines the stream slice [start, end) into a private repository.
/// `remaining` must hold the occurrence counts of every item over the
/// whole coded database: only the slice's own occurrences are subtracted
/// as it advances, so entries of other slices stay counted as
/// "remaining" — exactly what makes the item-elimination pruning sound
/// against supports that other slices may still contribute.
///
IstaPrefixTree MineShard(const std::vector<WeightedTransaction>& stream,
                         std::size_t start, std::size_t end,
                         std::size_t num_items, std::vector<Support>* remaining,
                         const IstaOptions& options, std::size_t* peak_nodes,
                         std::size_t* prune_calls) {
  IstaPrefixTree tree(num_items);
  std::size_t prune_threshold = options.prune_node_threshold;
  for (std::size_t k = start; k < end; ++k) {
    const WeightedTransaction& wt = stream[k];
    tree.AddTransaction(*wt.items, wt.weight);
    for (ItemId i : *wt.items) (*remaining)[i] -= wt.weight;
    *peak_nodes = std::max(*peak_nodes, tree.NodeCount());
    if (options.item_elimination && tree.NodeCount() > prune_threshold) {
      tree.Prune(options.min_support, *remaining);
      prune_threshold = std::max(prune_threshold, 2 * tree.NodeCount());
      ++*prune_calls;
    }
  }
  return tree;
}

}  // namespace

Status MineClosedIsta(const TransactionDatabase& db, const IstaOptions& options,
                      const ClosedSetCallback& callback, IstaStats* stats) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (stats != nullptr) *stats = IstaStats{};
  if (db.NumTransactions() == 0) return Status::OK();

  // Preprocessing: assign item codes, drop items that cannot occur in any
  // frequent set, order the transactions (paper §3.4).
  const Support min_item_support =
      options.item_elimination ? options.min_support : 1;
  const Recoding recoding =
      ComputeRecoding(db, options.item_order, min_item_support);
  const TransactionDatabase coded = ApplyRecoding(
      db, recoding, options.transaction_order, options.num_threads);
  if (coded.NumTransactions() == 0) return Status::OK();

  const std::vector<WeightedTransaction> stream =
      BuildWeightedStream(coded, options.merge_duplicate_transactions);
  if (stats != nullptr) stats->weighted_transactions = stream.size();

  // Remaining occurrences of each item over the full coded database; each
  // worker subtracts only what it has processed itself.
  const std::vector<Support> frequencies = coded.ItemFrequencies();

  const std::size_t num_workers = std::min<std::size_t>(
      std::max(1u, options.num_threads), stream.size());

  if (num_workers <= 1) {
    std::size_t peak_nodes = 0;
    std::size_t prune_calls = 0;
    std::vector<Support> remaining = frequencies;
    IstaPrefixTree tree =
        MineShard(stream, 0, stream.size(), coded.NumItems(), &remaining,
                  options, &peak_nodes, &prune_calls);
    if (stats != nullptr) {
      stats->peak_nodes = peak_nodes;
      stats->prune_calls = prune_calls;
      stats->final_nodes = tree.NodeCount();
    }
    FIM_DCHECK_OK(tree.ValidateInvariants());
    tree.Report(options.min_support, MakeDecodingCallback(recoding, callback));
    return Status::OK();
  }

  // Parallel mode: contiguous slices of the size-ascending weighted
  // stream. Identical transactions are adjacent in that order, so after
  // duplicate merging no two shards hold copies of the same transaction,
  // and neighbouring transactions overlap heavily, which keeps the shard
  // repositories compact. Every worker owns its repository; no shared
  // mutable state. Each worker prunes against the occurrences outside
  // its own slice — a sound bound on what the other slices can still
  // contribute — which keeps the shard repositories small; the max-plus
  // Merge stays exact on pruned repositories.
  std::vector<std::optional<IstaPrefixTree>> trees(num_workers);
  std::vector<std::vector<Support>> remaining(num_workers);
  std::vector<std::size_t> peak_nodes(num_workers, 0);
  std::vector<std::size_t> prune_calls(num_workers, 0);
  {
    std::vector<std::thread> workers;
    workers.reserve(num_workers);
    for (std::size_t w = 0; w < num_workers; ++w) {
      workers.emplace_back([&, w]() {
        const std::size_t begin = w * stream.size() / num_workers;
        const std::size_t end = (w + 1) * stream.size() / num_workers;
        remaining[w] = frequencies;
        trees[w].emplace(MineShard(stream, begin, end, coded.NumItems(),
                                   &remaining[w], options, &peak_nodes[w],
                                   &prune_calls[w]));
        if (options.item_elimination) {
          trees[w]->Prune(options.min_support, remaining[w]);
          ++prune_calls[w];
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }

  // Pairwise reduction: the closed sets of a transaction stream are a
  // deterministic function of the stream's multiset of transactions, and
  // the max-plus Merge computes exactly the repository product, so the
  // reduction recovers the repository of the full stream no matter how
  // the pairs are grouped. Each level merges disjoint pairs
  // concurrently. A merged repository covers the union of its shards, so
  // the occurrences still outside it are remaining_a + remaining_b -
  // total; pruning against that bound after every merge keeps the
  // repositories shrinking as their coverage grows (by the final merge
  // it reaches full sequential pruning strength).
  std::size_t merge_calls = 0;
  for (std::size_t stride = 1; stride < num_workers; stride *= 2) {
    std::vector<std::thread> mergers;
    for (std::size_t i = 0; i + stride < num_workers; i += 2 * stride) {
      ++merge_calls;
      mergers.emplace_back([&trees, &remaining, &peak_nodes, &prune_calls,
                            &frequencies, &options, i, stride]() {
        // Replaying the smaller repository into the larger one is
        // cheaper (the replay visits every stored set of the source);
        // the result is identical either way. The remaining table
        // travels with its tree: the mid-merge pruning bound is the
        // occurrences outside the *target's* own pre-merge stream.
        if (trees[i]->NodeCount() < trees[i + stride]->NodeCount()) {
          std::swap(trees[i], trees[i + stride]);
          std::swap(remaining[i], remaining[i + stride]);
        }
        if (options.item_elimination) {
          trees[i]->Merge(*trees[i + stride], options.min_support,
                          remaining[i], options.prune_node_threshold);
        } else {
          trees[i]->Merge(*trees[i + stride]);
        }
        trees[i + stride].reset();  // release the absorbed repository
        peak_nodes[i] = std::max(peak_nodes[i], trees[i]->NodeCount());
        for (std::size_t item = 0; item < frequencies.size(); ++item) {
          remaining[i][item] = remaining[i][item] +
                               remaining[i + stride][item] -
                               frequencies[item];
        }
        if (options.item_elimination) {
          trees[i]->Prune(options.min_support, remaining[i]);
          ++prune_calls[i];
        }
      });
    }
    for (auto& merger : mergers) merger.join();
  }

  IstaPrefixTree& tree = *trees.front();
  if (stats != nullptr) {
    stats->peak_nodes = *std::max_element(peak_nodes.begin(), peak_nodes.end());
    for (std::size_t calls : prune_calls) stats->prune_calls += calls;
    stats->merge_calls = merge_calls;
    stats->final_nodes = tree.NodeCount();
  }
  FIM_DCHECK_OK(tree.ValidateInvariants());
  tree.Report(options.min_support, MakeDecodingCallback(recoding, callback));
  return Status::OK();
}

}  // namespace fim
