#include "ista/incremental.h"

#include "stream/stream_miner.h"

namespace fim {

// One code path for online mining: the historical incremental miner is a
// thin wrapper over StreamMiner's landmark mode (src/stream/). Semantics
// are unchanged — every query reports the closed sets over everything
// seen so far — but queries are now safe against concurrent ingest and
// duplicate bursts collapse into weighted Figure-2 additions.
struct IncrementalClosedSetMiner::Impl {
  explicit Impl(std::size_t num_items) : miner(MakeOptions(num_items)) {}

  static StreamMinerOptions MakeOptions(std::size_t num_items) {
    StreamMinerOptions options;
    options.max_items = num_items;
    return options;  // pane_size == window_panes == 0: landmark mode
  }

  StreamMiner miner;
};

IncrementalClosedSetMiner::IncrementalClosedSetMiner(std::size_t max_items)
    : impl_(new Impl(max_items)) {}

IncrementalClosedSetMiner::~IncrementalClosedSetMiner() { delete impl_; }

Status IncrementalClosedSetMiner::AddTransaction(std::vector<ItemId> items) {
  return impl_->miner.AddTransaction(std::move(items));
}

std::size_t IncrementalClosedSetMiner::NumTransactions() const {
  return static_cast<std::size_t>(impl_->miner.NumTransactions());
}

Status IncrementalClosedSetMiner::Query(
    Support min_support, const ClosedSetCallback& callback) const {
  return impl_->miner.Query(min_support, callback);
}

Result<std::vector<ClosedItemset>> IncrementalClosedSetMiner::QueryCollect(
    Support min_support) const {
  return impl_->miner.QueryCollect(min_support);
}

std::size_t IncrementalClosedSetMiner::NodeCount() const {
  return impl_->miner.NodeCount();
}

}  // namespace fim
