#include "ista/incremental.h"

#include <algorithm>

#include "ista/prefix_tree.h"

namespace fim {

struct IncrementalClosedSetMiner::Impl {
  explicit Impl(std::size_t num_items) : tree(num_items), max_items(num_items) {}

  IstaPrefixTree tree;
  std::size_t max_items;
};

IncrementalClosedSetMiner::IncrementalClosedSetMiner(std::size_t max_items)
    : impl_(new Impl(max_items)) {}

IncrementalClosedSetMiner::~IncrementalClosedSetMiner() { delete impl_; }

Status IncrementalClosedSetMiner::AddTransaction(std::vector<ItemId> items) {
  NormalizeItems(&items);
  if (items.empty()) {
    return Status::InvalidArgument("empty transaction");
  }
  if (items.back() >= impl_->max_items) {
    return Status::OutOfRange("item id " + std::to_string(items.back()) +
                              " exceeds the miner's item capacity");
  }
  impl_->tree.AddTransaction(items);
  return Status::OK();
}

std::size_t IncrementalClosedSetMiner::NumTransactions() const {
  return impl_->tree.StepCount();
}

Status IncrementalClosedSetMiner::Query(
    Support min_support, const ClosedSetCallback& callback) const {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  impl_->tree.Report(min_support, callback);
  return Status::OK();
}

Result<std::vector<ClosedItemset>> IncrementalClosedSetMiner::QueryCollect(
    Support min_support) const {
  ClosedSetCollector collector;
  Status status = Query(min_support, collector.AsCallback());
  if (!status.ok()) return status;
  collector.SortCanonical();
  return collector.TakeSets();
}

std::size_t IncrementalClosedSetMiner::NodeCount() const {
  return impl_->tree.NodeCount();
}

}  // namespace fim
