#ifndef FIM_ISTA_ISTA_H_
#define FIM_ISTA_ISTA_H_

#include <cstddef>

#include "common/status.h"
#include "data/itemset.h"
#include "data/recode.h"
#include "data/transaction_database.h"
#include "obs/miner_stats.h"
#include "obs/trace.h"

namespace fim {

namespace obs {
class MemoryBreakdown;
class PerfDomainCollector;
class Timeline;
}  // namespace obs

/// Options of the IsTa miner (cumulative transaction intersection with a
/// prefix-tree repository, paper §3.2-§3.4).
struct IstaOptions {
  /// Absolute minimum support; must be >= 1.
  Support min_support = 1;

  /// Item code assignment; the paper found ascending frequency fastest.
  ItemOrder item_order = ItemOrder::kFrequencyAscending;

  /// Transaction processing order; the paper found increasing size
  /// fastest.
  TransactionOrder transaction_order = TransactionOrder::kSizeAscending;

  /// Item elimination (paper §3.2): drop globally infrequent items up
  /// front and periodically remove items that can no longer reach the
  /// minimum support from the repository. Never changes the output.
  bool item_elimination = true;

  /// Tree pruning is triggered when the node count exceeds this threshold
  /// (the threshold then doubles). Only relevant with item_elimination.
  std::size_t prune_node_threshold = std::size_t{1} << 16;

  /// Merge identical (recoded) transactions into a single weighted
  /// transaction before mining. Never changes the output; a substantial
  /// win when rows repeat, e.g. on discretized gene-expression data.
  bool merge_duplicate_transactions = true;

  /// Worker threads. > 1 shards the recoded (and deduplicated) stream
  /// into contiguous size-ascending slices mined into private per-worker
  /// repositories, each pruned against its shard's remaining-occurrence
  /// counters, then reduces the repositories pairwise with the max-plus
  /// IstaPrefixTree::Merge. The repository of a stream is a
  /// deterministic function of its transaction multiset, so the output —
  /// including its order — is bit-identical to the sequential run for
  /// every thread count.
  unsigned num_threads = 1;

  /// Optional per-thread event timeline (obs/timeline.h). The driving
  /// thread records the phase events on the driver lane; every shard
  /// worker and merge worker registers its own lane. Output-neutral;
  /// must outlive the call.
  obs::Timeline* timeline = nullptr;

  /// Optional hardware-counter attribution (obs/perf.h): each shard
  /// worker and merge stage measures itself in a PerfDomainScope named
  /// "shard-N" / "merge-<stride>-<i>", attributing its intersection
  /// steps (work_steps), thread CPU and — when the collector enables
  /// hardware and the kernel allows it — PMU deltas. This is what the
  /// fim-prof work-inflation table renders. Output-neutral; must
  /// outlive the call.
  obs::PerfDomainCollector* perf_domains = nullptr;

  /// Optional memory attribution (obs/memory.h): records the recoded
  /// database, the weighted stream, the remaining-occurrence tables and
  /// the prefix trees (per-shard children after the shard phase, the
  /// merged tree before the report — the collector keeps whichever
  /// snapshot is larger). Output-neutral; must outlive the call.
  obs::MemoryBreakdown* memory = nullptr;
};

// Execution statistics (optional output of MineClosedIsta): the unified
// MinerStats snapshot (obs/miner_stats.h) under its historical name. The
// populated fields are isect_steps, peak_nodes, final_nodes, prune_calls
// (all including every worker and merge stage of a parallel run),
// merge_calls, weighted_transactions, and sets_reported.

/// Mines all closed frequent item sets of `db` with the IsTa algorithm
/// and reports each exactly once through `callback` (items in ascending
/// original ids). The empty set is never reported. Returns
/// InvalidArgument for min_support == 0.
///
/// `stats` (optional) receives the execution statistics; `trace`
/// (optional) receives the phase spans `recode`, `dedup`, `shard-mine`,
/// `merge`, and `report`. Both are output-neutral: the mining result is
/// bit-identical whether they are requested or not.
Status MineClosedIsta(const TransactionDatabase& db, const IstaOptions& options,
                      const ClosedSetCallback& callback,
                      IstaStats* stats = nullptr,
                      obs::Trace* trace = nullptr);

}  // namespace fim

#endif  // FIM_ISTA_ISTA_H_
