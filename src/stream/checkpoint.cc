// Checkpoint/restore of a StreamMiner — the `fim-stream-v1` container
// format. Layout (little-endian, see docs/STREAMING.md):
//
//   char[4] "FIMS", u32 version (1)
//   u64 max_items, u64 pane_size, u64 window_panes, u8 merge_duplicates
//   u64 transactions_ingested, u64 fill, u64 current_pane
//   u64 weighted_additions, u64 panes_rotated, u64 panes_expired,
//   u64 queries, u64 snapshot_merges, u64 segments_compacted,
//   u64 checkpoint_bytes_written, u64 checkpoint_bytes_read
//   u32 pending_len, ItemId[pending_len], u32 pending_weight
//   u32 num_segments, then per segment: u64 pane + one fim-tree-v1 blob
//   char[4] "SMND" end marker
//
// The embedded tree blobs are exact node-layout dumps (see
// ista/tree_io.cc), so a restored miner continues the stream with output
// bit-identical to an uninterrupted run. Restore validates everything —
// header coherence, pane bookkeeping, pending-run shape, every tree's
// structural invariants, and the end marker — and returns a clean
// InvalidArgument on any corruption or truncation.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "data/binary_io.h"
#include "obs/memory.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "stream/stream_miner.h"

namespace fim {

namespace {

constexpr char kCheckpointMagic[4] = {'F', 'I', 'M', 'S'};
constexpr char kCheckpointEnd[4] = {'S', 'M', 'N', 'D'};
constexpr uint32_t kCheckpointVersion = 1;

/// Backstops against a corrupt header driving an unbounded read loop or
/// a giant up-front allocation (a restored miner allocates one
/// transaction-flag byte per item in its live tree before anything is
/// validated, so the item bound must match fim-tree-v1's
/// kMaxSerializedItems; 16M items = 16 MB).
constexpr uint32_t kMaxSegments = uint32_t{1} << 20;
constexpr uint64_t kMaxCheckpointItems = uint64_t{1} << 24;

using io::ReadPod;
using io::WritePod;

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("fim-stream-v1 checkpoint: " + what);
}

}  // namespace

Status StreamMiner::CheckpointTo(std::ostream& out) {
  obs::MemDomainScope mem_domain(obs::MemDomain::kCheckpoint);
  obs::Phase checkpoint_phase(options_.trace, lane_, "checkpoint");
  FrozenState frozen;
  {
    const MutexLock lock(mutex_);
    frozen = FreezeLocked();
  }
  // Everything below writes immutable shared segments and private
  // copies, so ingest and queries proceed concurrently with the write.
  const std::streampos begin = out.tellp();
  out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  WritePod(out, kCheckpointVersion);
  WritePod(out, static_cast<uint64_t>(options_.max_items));
  WritePod(out, static_cast<uint64_t>(options_.pane_size));
  WritePod(out, static_cast<uint64_t>(options_.window_panes));
  WritePod(out,
           static_cast<uint8_t>(options_.merge_duplicate_transactions ? 1 : 0));
  WritePod(out, frozen.ingested);
  WritePod(out, frozen.fill);
  WritePod(out, frozen.current_pane);
  WritePod(out, frozen.counters.weighted_additions);
  WritePod(out, frozen.counters.panes_rotated);
  WritePod(out, frozen.counters.panes_expired);
  WritePod(out, frozen.counters.queries);
  WritePod(out, frozen.counters.snapshot_merges);
  WritePod(out, frozen.counters.segments_compacted);
  WritePod(out, frozen.counters.checkpoint_bytes_written);
  WritePod(out, frozen.counters.checkpoint_bytes_read);
  WritePod(out, static_cast<uint32_t>(frozen.pending_items.size()));
  for (ItemId item : frozen.pending_items) WritePod(out, item);
  WritePod(out, static_cast<uint32_t>(frozen.pending_weight));
  WritePod(out, static_cast<uint32_t>(frozen.segments.size()));
  for (const Segment& segment : frozen.segments) {
    WritePod(out, segment.pane);
    Status status = segment.tree->SerializeTo(out);
    if (!status.ok()) return status;
  }
  out.write(kCheckpointEnd, sizeof(kCheckpointEnd));
  out.flush();
  if (!out) return Status::IoError("write failure while checkpointing");
  const std::streampos end = out.tellp();
  const std::uint64_t bytes =
      (begin >= 0 && end >= 0 && end > begin)
          ? static_cast<std::uint64_t>(end - begin)
          : 0;
  {
    const MutexLock lock(mutex_);
    counters_.checkpoint_bytes_written += bytes;
  }
  Bump(kCkptWritten, bytes);
  return Status::OK();
}

Status StreamMiner::Checkpoint(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return CheckpointTo(out);
}

Result<std::unique_ptr<StreamMiner>> StreamMiner::RestoreFrom(
    std::istream& in, obs::MetricRegistry* registry, obs::Trace* trace,
    obs::Timeline* timeline) {
  obs::MemDomainScope mem_domain(obs::MemDomain::kCheckpoint);
  const std::streampos begin = in.tellg();
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return Corrupt("bad magic (not a stream checkpoint)");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version)) return Corrupt("truncated header");
  if (version != kCheckpointVersion) {
    return Corrupt("unsupported version " + std::to_string(version));
  }
  uint64_t max_items = 0;
  uint64_t pane_size = 0;
  uint64_t window_panes = 0;
  uint8_t merge_duplicates = 0;
  uint64_t ingested = 0;
  uint64_t fill = 0;
  uint64_t current_pane = 0;
  if (!ReadPod(in, &max_items) || !ReadPod(in, &pane_size) ||
      !ReadPod(in, &window_panes) || !ReadPod(in, &merge_duplicates) ||
      !ReadPod(in, &ingested) || !ReadPod(in, &fill) ||
      !ReadPod(in, &current_pane)) {
    return Corrupt("truncated header");
  }
  if (max_items == 0 || max_items > kMaxCheckpointItems) {
    return Corrupt("implausible item universe size " +
                   std::to_string(max_items));
  }
  if ((pane_size == 0) != (window_panes == 0)) {
    return Corrupt("pane_size/window_panes must select one mode");
  }
  if (merge_duplicates > 1) return Corrupt("corrupt merge_duplicates flag");
  if (pane_size > 0) {
    if (current_pane != ingested / pane_size || fill != ingested % pane_size) {
      return Corrupt("pane bookkeeping inconsistent with stream position");
    }
  } else if (fill != 0 || current_pane != 0) {
    return Corrupt("landmark checkpoint carries pane bookkeeping");
  }

  StreamStats counters;
  counters.transactions_ingested = ingested;
  if (!ReadPod(in, &counters.weighted_additions) ||
      !ReadPod(in, &counters.panes_rotated) ||
      !ReadPod(in, &counters.panes_expired) ||
      !ReadPod(in, &counters.queries) ||
      !ReadPod(in, &counters.snapshot_merges) ||
      !ReadPod(in, &counters.segments_compacted) ||
      !ReadPod(in, &counters.checkpoint_bytes_written) ||
      !ReadPod(in, &counters.checkpoint_bytes_read)) {
    return Corrupt("truncated counters");
  }

  uint32_t pending_len = 0;
  if (!ReadPod(in, &pending_len)) return Corrupt("truncated pending run");
  if (pending_len > max_items) return Corrupt("pending run longer than universe");
  std::vector<ItemId> pending_items(pending_len);
  for (uint32_t k = 0; k < pending_len; ++k) {
    if (!ReadPod(in, &pending_items[k])) return Corrupt("truncated pending run");
  }
  uint32_t pending_weight = 0;
  if (!ReadPod(in, &pending_weight)) return Corrupt("truncated pending run");
  if ((pending_len == 0) != (pending_weight == 0)) {
    return Corrupt("pending run and weight disagree");
  }
  if (pending_len > 0) {
    if (!std::is_sorted(pending_items.begin(), pending_items.end()) ||
        std::adjacent_find(pending_items.begin(), pending_items.end()) !=
            pending_items.end() ||
        pending_items.back() >= max_items) {
      return Corrupt("pending run not a normalized transaction");
    }
    if (pending_weight > ingested) {
      return Corrupt("pending weight exceeds the stream length");
    }
  }

  uint32_t num_segments = 0;
  if (!ReadPod(in, &num_segments)) return Corrupt("truncated segment table");
  if (num_segments > kMaxSegments) {
    return Corrupt("implausible segment count " + std::to_string(num_segments));
  }
  const uint64_t oldest_live =
      (window_panes > 0 && current_pane >= window_panes)
          ? current_pane - window_panes + 1
          : 0;
  std::vector<Segment> segments;
  segments.reserve(num_segments);
  uint64_t previous_pane = 0;
  for (uint32_t k = 0; k < num_segments; ++k) {
    uint64_t pane = 0;
    if (!ReadPod(in, &pane)) return Corrupt("truncated segment table");
    if (pane > current_pane || pane < oldest_live || pane < previous_pane) {
      return Corrupt("segment pane " + std::to_string(pane) +
                     " outside the live window or out of order");
    }
    if (window_panes == 0 && pane != 0) {
      return Corrupt("landmark segment carries a pane index");
    }
    previous_pane = pane;
    auto tree = IstaPrefixTree::Deserialize(in);
    if (!tree.ok()) return tree.status();
    if (tree.value().NumItems() != max_items) {
      return Corrupt("segment item universe disagrees with the header");
    }
    if (tree.value().StepCount() == 0) {
      return Corrupt("empty segment repository");
    }
    segments.push_back(
        Segment{pane, std::make_shared<const IstaPrefixTree>(
                          std::move(tree).value())});
  }
  char end_marker[4];
  in.read(end_marker, sizeof(end_marker));
  if (!in || std::memcmp(end_marker, kCheckpointEnd, sizeof(end_marker)) != 0) {
    return Corrupt("missing end marker (truncated checkpoint)");
  }

  StreamMinerOptions options;
  options.max_items = static_cast<std::size_t>(max_items);
  options.pane_size = static_cast<std::size_t>(pane_size);
  options.window_panes = static_cast<std::size_t>(window_panes);
  options.merge_duplicate_transactions = merge_duplicates != 0;
  options.registry = registry;
  options.trace = trace;
  options.timeline = timeline;
  std::unique_ptr<StreamMiner> miner(
      new StreamMiner(options, /*restored=*/true));
  const std::streampos end = in.tellg();
  const std::uint64_t bytes =
      (begin >= 0 && end >= 0 && end > begin)
          ? static_cast<std::uint64_t>(end - begin)
          : 0;
  counters.checkpoint_bytes_read += bytes;
  {
    // The miner is not shared yet; the lock exists to satisfy the
    // guarded-field contract (and costs one uncontended acquisition).
    const MutexLock lock(miner->mutex_);
    miner->segments_ = std::move(segments);
    miner->pending_items_ = std::move(pending_items);
    miner->pending_weight_ = static_cast<Support>(pending_weight);
    miner->ingested_ = ingested;
    miner->fill_ = fill;
    miner->current_pane_ = current_pane;
    miner->counters_ = counters;
  }
  if (registry != nullptr) {
    // Mirror the restored history into the registry so the live export
    // matches Stats() from the first post-restore scrape on.
    miner->Bump(kIngested, counters.transactions_ingested);
    miner->Bump(kWeighted, counters.weighted_additions);
    miner->Bump(kRotated, counters.panes_rotated);
    miner->Bump(kExpired, counters.panes_expired);
    miner->Bump(kQueries, counters.queries);
    miner->Bump(kMerges, counters.snapshot_merges);
    miner->Bump(kCompacted, counters.segments_compacted);
    miner->Bump(kCkptWritten, counters.checkpoint_bytes_written);
    miner->Bump(kCkptRead, counters.checkpoint_bytes_read);
  }
  return miner;
}

Result<std::unique_ptr<StreamMiner>> StreamMiner::Restore(
    const std::string& path, obs::MetricRegistry* registry, obs::Trace* trace,
    obs::Timeline* timeline) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return RestoreFrom(in, registry, trace, timeline);
}

}  // namespace fim
