#include "stream/stream_miner.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "obs/memory.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace fim {

namespace {

constexpr const char* kCounterNames[] = {
    "stream.transactions_ingested",
    "stream.weighted_additions",
    "stream.panes_rotated",
    "stream.panes_expired",
    "stream.queries",
    "stream.snapshot_merges",
    "stream.segments_compacted",
    "stream.checkpoint_bytes_written",
    "stream.checkpoint_bytes_read",
};

}  // namespace

StreamMiner::StreamMiner(const StreamMinerOptions& options)
    : StreamMiner(options, /*restored=*/false) {}

StreamMiner::StreamMiner(const StreamMinerOptions& options, bool /*restored*/)
    : options_(options) {
  FIM_CHECK(options_.max_items > 0) << "StreamMiner needs an item universe";
  FIM_CHECK((options_.pane_size == 0) == (options_.window_panes == 0))
      << "pane_size and window_panes select the mode together: both 0 "
         "(landmark) or both > 0 (sliding window), got pane_size "
      << options_.pane_size << ", window_panes " << options_.window_panes;
  live_ = std::make_unique<IstaPrefixTree>(options_.max_items);
  if (options_.registry != nullptr) {
    for (std::size_t i = 0; i < std::size(kCounterNames); ++i) {
      counter_[i] = &options_.registry->GetCounter(kCounterNames[i]);
    }
  }
  if (options_.timeline != nullptr) lane_ = options_.timeline->driver();
}

void StreamMiner::Bump(CounterIndex which, std::uint64_t n) {
  if (counter_[which] != nullptr) counter_[which]->Add(n);
}

Status StreamMiner::AddTransaction(std::vector<ItemId> items) {
  obs::MemDomainScope mem_domain(obs::MemDomain::kStream);
  NormalizeItems(&items);
  if (items.empty()) {
    return Status::InvalidArgument("empty transaction");
  }
  if (items.back() >= options_.max_items) {
    return Status::OutOfRange("item id " + std::to_string(items.back()) +
                              " exceeds the miner's item capacity");
  }
  const MutexLock lock(mutex_);
  if (options_.merge_duplicate_transactions && pending_weight_ > 0 &&
      items == pending_items_) {
    // Extend the current duplicate run; it reaches the live tree as one
    // weighted Figure-2 addition when the run breaks.
    ++pending_weight_;
  } else {
    FlushPendingLocked();
    pending_items_ = std::move(items);
    pending_weight_ = 1;
  }
  ++ingested_;
  ++counters_.transactions_ingested;
  Bump(kIngested);
  if (options_.pane_size > 0) {
    ++fill_;
    if (fill_ == options_.pane_size) {
      // The pane is complete (the transaction just ingested is its last):
      // materialize it and advance the window.
      obs::Phase rotate_phase(options_.trace, lane_, "rotate");
      FlushPendingLocked();
      SealLiveLocked();
      RotateLocked();
      fill_ = 0;
    }
  }
  return Status::OK();
}

void StreamMiner::FlushPendingLocked() {
  if (pending_weight_ == 0) return;
  live_->AddTransaction(pending_items_, pending_weight_);
  pending_items_.clear();
  pending_weight_ = 0;
  ++counters_.weighted_additions;
  Bump(kWeighted);
}

void StreamMiner::SealLiveLocked() {
  if (live_->StepCount() == 0) return;
  segments_.push_back(Segment{
      current_pane_, std::shared_ptr<const IstaPrefixTree>(live_.release())});
  live_ = std::make_unique<IstaPrefixTree>(options_.max_items);
  if (lane_ != nullptr) {
    lane_->Instant("seal");
    // Heap step of the rotation: the bytes that just became immutable.
    // Renders as a counter track next to the sampler's mem.* lanes.
    lane_->Counter("mem.sealed_mib",
                   BytesToMib(segments_.back().tree->ApproxMemoryUsage()
                                  .TotalBytes()));
  }
}

void StreamMiner::RotateLocked() {
  ++current_pane_;
  ++counters_.panes_rotated;
  Bump(kRotated);
  if (current_pane_ >= options_.window_panes) {
    // Exactly one pane leaves the window per rotation after warm-up;
    // dropping its segments is the entire deletion story.
    const std::uint64_t oldest_live = current_pane_ - options_.window_panes + 1;
    auto it = segments_.begin();
    while (it != segments_.end() && it->pane < oldest_live) ++it;
    segments_.erase(segments_.begin(), it);
    ++counters_.panes_expired;
    Bump(kExpired);
  }
}

Status StreamMiner::Query(Support min_support,
                          const ClosedSetCallback& callback) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  obs::MemDomainScope mem_domain(obs::MemDomain::kStream);
  obs::Phase query_phase(options_.trace, lane_, "query");
  std::vector<Segment> covered;
  {
    obs::Phase freeze_phase(options_.trace, lane_, "query-freeze");
    const MutexLock lock(mutex_);
    ++counters_.queries;
    Bump(kQueries);
    // Pane rotation is the only writer-visible cost of a query: the
    // pending run and live tree move into an immutable segment (pointer
    // moves plus one weighted addition); ingest continues into a fresh
    // live tree while we merge below.
    FlushPendingLocked();
    SealLiveLocked();
    covered = segments_;
  }

  // Merge outside the lock. Per pane with several segments, fold them
  // into one tree (kept for installation below); then fold the per-pane
  // trees into the snapshot. Merge reproduces the repository of the
  // concatenated streams exactly, so the snapshot equals batch-mining
  // the covered transaction multiset.
  struct Install {
    std::uint64_t pane = 0;
    std::size_t begin = 0;  // range [begin, end) into `covered`
    std::size_t end = 0;
    std::shared_ptr<const IstaPrefixTree> merged;
  };
  std::vector<Segment> pane_trees;
  std::vector<Install> installs;
  std::uint64_t merges = 0;
  obs::Phase merge_phase(options_.trace, lane_, "query-merge");
  for (std::size_t i = 0; i < covered.size();) {
    std::size_t j = i + 1;
    while (j < covered.size() && covered[j].pane == covered[i].pane) ++j;
    if (j - i == 1) {
      pane_trees.push_back(covered[i]);
    } else {
      auto merged = std::make_shared<IstaPrefixTree>(options_.max_items);
      for (std::size_t k = i; k < j; ++k) {
        merged->Merge(*covered[k].tree);
        ++merges;
      }
      pane_trees.push_back(Segment{covered[i].pane, merged});
      installs.push_back(Install{covered[i].pane, i, j, merged});
    }
    i = j;
  }
  std::shared_ptr<const IstaPrefixTree> snapshot;
  if (pane_trees.size() == 1) {
    snapshot = pane_trees.front().tree;
  } else if (!pane_trees.empty()) {
    auto combined = std::make_shared<IstaPrefixTree>(options_.max_items);
    for (const Segment& pane_tree : pane_trees) {
      combined->Merge(*pane_tree.tree);
      ++merges;
    }
    snapshot = combined;
  }
  merge_phase.End();

  {
    obs::Phase compact_phase(options_.trace, lane_, "query-compact");
    // Install the per-pane merged trees back (compaction): the next
    // query then folds one tree per already-seen pane instead of one per
    // historical seal. Replacement is by segment identity — if ingest
    // expired or another query already replaced a run, skip it.
    const MutexLock lock(mutex_);
    counters_.snapshot_merges += merges;
    Bump(kMerges, merges);
    for (const Install& install : installs) {
      auto first = std::find_if(
          segments_.begin(), segments_.end(), [&](const Segment& s) {
            return s.tree == covered[install.begin].tree;
          });
      if (first == segments_.end()) continue;
      const std::size_t at = static_cast<std::size_t>(first - segments_.begin());
      const std::size_t count = install.end - install.begin;
      if (at + count > segments_.size()) continue;
      bool intact = true;
      for (std::size_t k = 1; k < count; ++k) {
        if (segments_[at + k].tree != covered[install.begin + k].tree) {
          intact = false;
          break;
        }
      }
      if (!intact) continue;
      segments_[at] = Segment{install.pane, install.merged};
      segments_.erase(segments_.begin() + static_cast<std::ptrdiff_t>(at + 1),
                      segments_.begin() + static_cast<std::ptrdiff_t>(at + count));
      counters_.segments_compacted += count - 1;
      Bump(kCompacted, count - 1);
    }
  }

  obs::Phase report_phase(options_.trace, lane_, "query-report");
  if (snapshot != nullptr) snapshot->Report(min_support, callback);
  return Status::OK();
}

Result<std::vector<ClosedItemset>> StreamMiner::QueryCollect(
    Support min_support) {
  ClosedSetCollector collector;
  Status status = Query(min_support, collector.AsCallback());
  if (!status.ok()) return status;
  collector.SortCanonical();
  return collector.TakeSets();
}

std::uint64_t StreamMiner::NumTransactions() const {
  const MutexLock lock(mutex_);
  return ingested_;
}

std::uint64_t StreamMiner::CurrentPaneIndex() const {
  const MutexLock lock(mutex_);
  return current_pane_;
}

std::size_t StreamMiner::NodeCount() const {
  const MutexLock lock(mutex_);
  std::size_t nodes = live_->NodeCount();
  for (const Segment& segment : segments_) nodes += segment.tree->NodeCount();
  return nodes;
}

StreamStats StreamMiner::Stats() const {
  const MutexLock lock(mutex_);
  StreamStats stats = counters_;
  stats.live_segments =
      segments_.size() + (live_->StepCount() > 0 ? 1 : 0);
  stats.repository_nodes = live_->NodeCount();
  for (const Segment& segment : segments_) {
    stats.repository_nodes += segment.tree->NodeCount();
  }
  return stats;
}

obs::MemoryComponent StreamMiner::ApproxMemoryUsage() const {
  const MutexLock lock(mutex_);
  obs::MemoryComponent stream("stream");
  obs::MemoryComponent live = live_->ApproxMemoryUsage();
  live.name = "live-tree";
  stream.children.push_back(std::move(live));
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    obs::MemoryComponent segment = segments_[i].tree->ApproxMemoryUsage();
    segment.name = "segment-" + std::to_string(i);
    stream.children.push_back(std::move(segment));
  }
  stream.children.emplace_back(
      "segment-spine", segments_.capacity() * sizeof(Segment));
  stream.children.emplace_back(
      "pending-run", pending_items_.capacity() * sizeof(ItemId));
  return stream;
}

StreamMiner::FrozenState StreamMiner::FreezeLocked() {
  // The pending duplicate run is captured as-is (not flushed), so a
  // restored miner can keep extending it exactly like the live one.
  SealLiveLocked();
  FrozenState frozen;
  frozen.segments = segments_;
  frozen.pending_items = pending_items_;
  frozen.pending_weight = pending_weight_;
  frozen.ingested = ingested_;
  frozen.fill = fill_;
  frozen.current_pane = current_pane_;
  frozen.counters = counters_;
  return frozen;
}

}  // namespace fim
