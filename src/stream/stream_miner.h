#ifndef FIM_STREAM_STREAM_MINER_H_
#define FIM_STREAM_STREAM_MINER_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "data/itemset.h"
#include "ista/prefix_tree.h"
#include "obs/metrics.h"

namespace fim {

namespace obs {
class Timeline;
class TimelineLane;
class Trace;
}  // namespace obs

/// Configuration of a StreamMiner. Two modes:
///
///  * **Landmark** (`pane_size == 0 && window_panes == 0`): every snapshot
///    covers the whole stream since the start (or the restored
///    checkpoint). This is the cumulative intersection scheme of the
///    paper run online, with duplicate-run merging into weighted
///    Figure-2 additions.
///
///  * **Pane-based sliding window** (`pane_size > 0 && window_panes > 0`):
///    the stream is chunked into tumbling panes of `pane_size`
///    transactions. A snapshot covers the currently filling pane plus
///    the `window_panes - 1` most recent complete panes — between
///    `(window_panes - 1) * pane_size + 1` and
///    `window_panes * pane_size` transactions as the pane fills.
///    Expiring a pane simply drops its repository; no deletion support
///    in the prefix tree is needed, and every snapshot is exact.
struct StreamMinerOptions {
  /// Capacity of the item universe; every ingested item id must be below
  /// it. Must be > 0.
  std::size_t max_items = 0;

  /// Transactions per tumbling pane; 0 selects landmark mode.
  std::size_t pane_size = 0;

  /// Number of live panes a snapshot covers; 0 selects landmark mode.
  /// Must be > 0 exactly when pane_size > 0.
  std::size_t window_panes = 0;

  /// Merge runs of identical consecutive transactions into one weighted
  /// AddTransaction. Never changes snapshots (a weighted addition equals
  /// that many unit additions); a substantial win on bursty streams.
  bool merge_duplicate_transactions = true;

  /// Optional live export: when set, the stream counters below are also
  /// maintained as `stream.<name>` counters in this registry. The
  /// registry must outlive the miner.
  obs::MetricRegistry* registry = nullptr;

  /// Optional aggregated phase trace (obs/trace.h): rotate / query
  /// (query-freeze, query-merge, query-compact, query-report) /
  /// checkpoint spans. Thread contract: obs::Trace is thread-confined,
  /// so only set this when a single thread performs every miner call
  /// (the fim-stream driver does). Output-neutral; must outlive the
  /// miner.
  obs::Trace* trace = nullptr;

  /// Optional event timeline (obs/timeline.h): the same phases as
  /// begin/end events plus "seal" instants on the timeline's driver
  /// lane. Same single-caller-thread contract as `trace` (each
  /// TimelineLane is single-writer). Output-neutral; must outlive the
  /// miner.
  obs::Timeline* timeline = nullptr;
};

/// Snapshot of a StreamMiner's execution counters (all cumulative since
/// construction or checkpoint restore, except the two gauges).
struct StreamStats {
  std::uint64_t transactions_ingested = 0;  // raw AddTransaction calls
  std::uint64_t weighted_additions = 0;     // Figure-2 adds after dup-merge
  std::uint64_t panes_rotated = 0;          // completed tumbling panes
  std::uint64_t panes_expired = 0;          // panes dropped out of the window
  std::uint64_t queries = 0;                // snapshot queries answered
  std::uint64_t snapshot_merges = 0;        // tree merges run for snapshots
  std::uint64_t segments_compacted = 0;     // segments folded by compaction
  std::uint64_t checkpoint_bytes_written = 0;
  std::uint64_t checkpoint_bytes_read = 0;
  std::uint64_t live_segments = 0;          // gauge: sealed segments + live
  std::uint64_t repository_nodes = 0;       // gauge: nodes across all trees
};

/// Continuous closed-item-set mining over a transaction stream — the
/// online form of the paper's cumulative intersection scheme, built
/// entirely from immutable IstaPrefixTree segments plus one writer-owned
/// live tree:
///
///  * `AddTransaction` appends to the live tree (weighted, after
///    duplicate-run merging). When a pane completes, the live tree is
///    sealed into an immutable segment and a fresh live tree starts;
///    panes that leave the window are dropped.
///  * `Query` seals the live tree under the ingest lock (cheap pointer
///    moves — the only time a reader blocks the writer is this pane
///    rotation), then merges the covered segments *outside* the lock
///    with the associative `IstaPrefixTree::Merge`, which reproduces the
///    repository of the concatenated stream exactly. Afterwards it
///    installs per-pane merged trees back (compaction), so a later query
///    folds one repository per covered pane instead of one per seal.
///
/// Thread-safety: any number of threads may call any method
/// concurrently. Sealed segments are immutable and shared by
/// `shared_ptr`, so queries and checkpoints read them without
/// synchronization while ingest proceeds into the new live tree.
///
/// Like IncrementalClosedSetMiner (now a wrapper over landmark mode), no
/// global item statistics exist up front, so the repositories keep all
/// closed sets and `min_support` only filters queries.
class StreamMiner {
 public:
  /// Checks the option invariants (max_items > 0; pane_size and
  /// window_panes both zero or both positive) with FIM_CHECK.
  explicit StreamMiner(const StreamMinerOptions& options);

  StreamMiner(const StreamMiner&) = delete;
  StreamMiner& operator=(const StreamMiner&) = delete;

  /// Ingests one transaction (any order, duplicates allowed; normalized
  /// internally). InvalidArgument if empty after normalization,
  /// OutOfRange if an item id reaches max_items.
  Status AddTransaction(std::vector<ItemId> items) FIM_EXCLUDES(mutex_);

  /// Reports the closed item sets with support >= min_support (>= 1)
  /// over the current landmark history or window, items ascending. The
  /// snapshot is exact: identical to batch-mining the covered
  /// transaction multiset. Safe to call while other threads ingest; the
  /// callback runs without any lock held.
  Status Query(Support min_support, const ClosedSetCallback& callback)
      FIM_EXCLUDES(mutex_);

  /// Convenience: collect the current snapshot in canonical order.
  Result<std::vector<ClosedItemset>> QueryCollect(Support min_support);

  /// Serializes the full miner state (segments, live tree, pending
  /// duplicate run, counters) as one `fim-stream-v1` checkpoint, so a
  /// later Restore continues the stream with output bit-identical to an
  /// uninterrupted run. Ingest may proceed concurrently: the state is
  /// snapshotted under the lock (sealing the live tree), then written
  /// outside it.
  Status Checkpoint(const std::string& path) FIM_EXCLUDES(mutex_);
  Status CheckpointTo(std::ostream& out) FIM_EXCLUDES(mutex_);

  /// Reconstructs a miner from a checkpoint. Corrupted or truncated
  /// input yields a clean InvalidArgument (every embedded tree blob is
  /// invariant-checked). `registry`, `trace` and `timeline` play the
  /// role of the corresponding StreamMinerOptions fields for the
  /// restored miner (same contracts).
  static Result<std::unique_ptr<StreamMiner>> Restore(
      const std::string& path, obs::MetricRegistry* registry = nullptr,
      obs::Trace* trace = nullptr, obs::Timeline* timeline = nullptr);
  static Result<std::unique_ptr<StreamMiner>> RestoreFrom(
      std::istream& in, obs::MetricRegistry* registry = nullptr,
      obs::Trace* trace = nullptr, obs::Timeline* timeline = nullptr);

  /// Raw transactions ingested so far (including before a checkpoint
  /// restore; duplicates counted individually).
  std::uint64_t NumTransactions() const FIM_EXCLUDES(mutex_);

  /// Index of the currently filling pane (== NumTransactions() /
  /// pane_size in window mode; always 0 in landmark mode).
  std::uint64_t CurrentPaneIndex() const FIM_EXCLUDES(mutex_);

  /// Total repository nodes across all live segments and the live tree
  /// (memory diagnostics; may shrink when panes expire or queries
  /// compact segments).
  std::size_t NodeCount() const FIM_EXCLUDES(mutex_);

  /// Current counter snapshot.
  StreamStats Stats() const FIM_EXCLUDES(mutex_);

  /// Exact heap footprint as a breakdown named "stream": the live tree,
  /// one child per sealed segment ("segment-<i>", pane-tagged names
  /// would collide after compaction), and the pending duplicate run.
  /// O(segments); safe to call while other threads ingest.
  obs::MemoryComponent ApproxMemoryUsage() const FIM_EXCLUDES(mutex_);

  const StreamMinerOptions& options() const { return options_; }

 private:
  /// One sealed, immutable repository covering a slice of a pane (a
  /// whole pane once compacted). `pane` orders segments; in landmark
  /// mode every segment belongs to the single eternal pane 0.
  struct Segment {
    std::uint64_t pane = 0;
    std::shared_ptr<const IstaPrefixTree> tree;
  };

  /// Everything a checkpoint captures, copied out under the lock.
  struct FrozenState {
    std::vector<Segment> segments;
    std::vector<ItemId> pending_items;
    Support pending_weight = 0;
    std::uint64_t ingested = 0;
    std::uint64_t fill = 0;
    std::uint64_t current_pane = 0;
    StreamStats counters;
  };

  explicit StreamMiner(const StreamMinerOptions& options, bool restored);

  /// Applies the pending duplicate run to the live tree (weighted
  /// Figure-2 addition).
  void FlushPendingLocked() FIM_REQUIRES(mutex_);

  /// Moves a non-empty live tree into an immutable segment of the
  /// current pane and starts a fresh live tree.
  void SealLiveLocked() FIM_REQUIRES(mutex_);

  /// Completes the current pane: advances the pane index and drops the
  /// segments that left the window.
  void RotateLocked() FIM_REQUIRES(mutex_);

  /// Copies the checkpoint/query state out.
  FrozenState FreezeLocked() FIM_REQUIRES(mutex_);

  /// Registry counter shortcut (nullptr when no registry is attached).
  obs::Counter* counter_[9] = {};
  enum CounterIndex {
    kIngested,
    kWeighted,
    kRotated,
    kExpired,
    kQueries,
    kMerges,
    kCompacted,
    kCkptWritten,
    kCkptRead,
  };
  void Bump(CounterIndex which, std::uint64_t n = 1);

  const StreamMinerOptions options_;

  /// Driver lane of options_.timeline (nullptr without one); only the
  /// single confined caller thread records on it.
  obs::TimelineLane* lane_ = nullptr;

  mutable Mutex mutex_{LockRank::kStreamMiner, "StreamMiner"};
  // Sealed segments, pane non-decreasing. The vector is guarded; the
  // trees behind the shared_ptrs are immutable and read lock-free.
  std::vector<Segment> segments_ FIM_GUARDED_BY(mutex_);
  // Writer-owned current tree.
  std::unique_ptr<IstaPrefixTree> live_ FIM_GUARDED_BY(mutex_);
  // Current duplicate run (weight 0 = no pending run).
  std::vector<ItemId> pending_items_ FIM_GUARDED_BY(mutex_);
  Support pending_weight_ FIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t ingested_ FIM_GUARDED_BY(mutex_) = 0;
  // Transactions in the current pane / index of the filling pane.
  std::uint64_t fill_ FIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t current_pane_ FIM_GUARDED_BY(mutex_) = 0;
  StreamStats counters_ FIM_GUARDED_BY(mutex_);
};

}  // namespace fim

#endif  // FIM_STREAM_STREAM_MINER_H_
