file(REMOVE_RECURSE
  "libfim.a"
)
