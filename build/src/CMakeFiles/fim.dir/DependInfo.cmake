
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/constrained.cc" "src/CMakeFiles/fim.dir/api/constrained.cc.o" "gcc" "src/CMakeFiles/fim.dir/api/constrained.cc.o.d"
  "/root/repo/src/api/miner.cc" "src/CMakeFiles/fim.dir/api/miner.cc.o" "gcc" "src/CMakeFiles/fim.dir/api/miner.cc.o.d"
  "/root/repo/src/api/select.cc" "src/CMakeFiles/fim.dir/api/select.cc.o" "gcc" "src/CMakeFiles/fim.dir/api/select.cc.o.d"
  "/root/repo/src/api/topk.cc" "src/CMakeFiles/fim.dir/api/topk.cc.o" "gcc" "src/CMakeFiles/fim.dir/api/topk.cc.o.d"
  "/root/repo/src/carpenter/carpenter_lists.cc" "src/CMakeFiles/fim.dir/carpenter/carpenter_lists.cc.o" "gcc" "src/CMakeFiles/fim.dir/carpenter/carpenter_lists.cc.o.d"
  "/root/repo/src/carpenter/carpenter_table.cc" "src/CMakeFiles/fim.dir/carpenter/carpenter_table.cc.o" "gcc" "src/CMakeFiles/fim.dir/carpenter/carpenter_table.cc.o.d"
  "/root/repo/src/carpenter/cobbler.cc" "src/CMakeFiles/fim.dir/carpenter/cobbler.cc.o" "gcc" "src/CMakeFiles/fim.dir/carpenter/cobbler.cc.o.d"
  "/root/repo/src/carpenter/repository.cc" "src/CMakeFiles/fim.dir/carpenter/repository.cc.o" "gcc" "src/CMakeFiles/fim.dir/carpenter/repository.cc.o.d"
  "/root/repo/src/common/bitset.cc" "src/CMakeFiles/fim.dir/common/bitset.cc.o" "gcc" "src/CMakeFiles/fim.dir/common/bitset.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/fim.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/fim.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/fim.dir/common/status.cc.o" "gcc" "src/CMakeFiles/fim.dir/common/status.cc.o.d"
  "/root/repo/src/cumulative/flat_cumulative.cc" "src/CMakeFiles/fim.dir/cumulative/flat_cumulative.cc.o" "gcc" "src/CMakeFiles/fim.dir/cumulative/flat_cumulative.cc.o.d"
  "/root/repo/src/data/binary_io.cc" "src/CMakeFiles/fim.dir/data/binary_io.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/binary_io.cc.o.d"
  "/root/repo/src/data/expression.cc" "src/CMakeFiles/fim.dir/data/expression.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/expression.cc.o.d"
  "/root/repo/src/data/fimi_io.cc" "src/CMakeFiles/fim.dir/data/fimi_io.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/fimi_io.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/fim.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/generators.cc.o.d"
  "/root/repo/src/data/itemset.cc" "src/CMakeFiles/fim.dir/data/itemset.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/itemset.cc.o.d"
  "/root/repo/src/data/matrix_io.cc" "src/CMakeFiles/fim.dir/data/matrix_io.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/matrix_io.cc.o.d"
  "/root/repo/src/data/profiles.cc" "src/CMakeFiles/fim.dir/data/profiles.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/profiles.cc.o.d"
  "/root/repo/src/data/recode.cc" "src/CMakeFiles/fim.dir/data/recode.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/recode.cc.o.d"
  "/root/repo/src/data/result_io.cc" "src/CMakeFiles/fim.dir/data/result_io.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/result_io.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/CMakeFiles/fim.dir/data/stats.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/stats.cc.o.d"
  "/root/repo/src/data/transaction_database.cc" "src/CMakeFiles/fim.dir/data/transaction_database.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/transaction_database.cc.o.d"
  "/root/repo/src/data/transpose.cc" "src/CMakeFiles/fim.dir/data/transpose.cc.o" "gcc" "src/CMakeFiles/fim.dir/data/transpose.cc.o.d"
  "/root/repo/src/enumeration/apriori.cc" "src/CMakeFiles/fim.dir/enumeration/apriori.cc.o" "gcc" "src/CMakeFiles/fim.dir/enumeration/apriori.cc.o.d"
  "/root/repo/src/enumeration/charm.cc" "src/CMakeFiles/fim.dir/enumeration/charm.cc.o" "gcc" "src/CMakeFiles/fim.dir/enumeration/charm.cc.o.d"
  "/root/repo/src/enumeration/declat.cc" "src/CMakeFiles/fim.dir/enumeration/declat.cc.o" "gcc" "src/CMakeFiles/fim.dir/enumeration/declat.cc.o.d"
  "/root/repo/src/enumeration/eclat.cc" "src/CMakeFiles/fim.dir/enumeration/eclat.cc.o" "gcc" "src/CMakeFiles/fim.dir/enumeration/eclat.cc.o.d"
  "/root/repo/src/enumeration/fpclose.cc" "src/CMakeFiles/fim.dir/enumeration/fpclose.cc.o" "gcc" "src/CMakeFiles/fim.dir/enumeration/fpclose.cc.o.d"
  "/root/repo/src/enumeration/fptree.cc" "src/CMakeFiles/fim.dir/enumeration/fptree.cc.o" "gcc" "src/CMakeFiles/fim.dir/enumeration/fptree.cc.o.d"
  "/root/repo/src/enumeration/lcm.cc" "src/CMakeFiles/fim.dir/enumeration/lcm.cc.o" "gcc" "src/CMakeFiles/fim.dir/enumeration/lcm.cc.o.d"
  "/root/repo/src/enumeration/transposed.cc" "src/CMakeFiles/fim.dir/enumeration/transposed.cc.o" "gcc" "src/CMakeFiles/fim.dir/enumeration/transposed.cc.o.d"
  "/root/repo/src/ista/incremental.cc" "src/CMakeFiles/fim.dir/ista/incremental.cc.o" "gcc" "src/CMakeFiles/fim.dir/ista/incremental.cc.o.d"
  "/root/repo/src/ista/ista.cc" "src/CMakeFiles/fim.dir/ista/ista.cc.o" "gcc" "src/CMakeFiles/fim.dir/ista/ista.cc.o.d"
  "/root/repo/src/ista/prefix_tree.cc" "src/CMakeFiles/fim.dir/ista/prefix_tree.cc.o" "gcc" "src/CMakeFiles/fim.dir/ista/prefix_tree.cc.o.d"
  "/root/repo/src/rules/derive.cc" "src/CMakeFiles/fim.dir/rules/derive.cc.o" "gcc" "src/CMakeFiles/fim.dir/rules/derive.cc.o.d"
  "/root/repo/src/rules/rules.cc" "src/CMakeFiles/fim.dir/rules/rules.cc.o" "gcc" "src/CMakeFiles/fim.dir/rules/rules.cc.o.d"
  "/root/repo/src/verify/closedness.cc" "src/CMakeFiles/fim.dir/verify/closedness.cc.o" "gcc" "src/CMakeFiles/fim.dir/verify/closedness.cc.o.d"
  "/root/repo/src/verify/compare.cc" "src/CMakeFiles/fim.dir/verify/compare.cc.o" "gcc" "src/CMakeFiles/fim.dir/verify/compare.cc.o.d"
  "/root/repo/src/verify/galois.cc" "src/CMakeFiles/fim.dir/verify/galois.cc.o" "gcc" "src/CMakeFiles/fim.dir/verify/galois.cc.o.d"
  "/root/repo/src/verify/oracle.cc" "src/CMakeFiles/fim.dir/verify/oracle.cc.o" "gcc" "src/CMakeFiles/fim.dir/verify/oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
