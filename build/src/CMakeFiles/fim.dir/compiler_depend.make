# Empty compiler generated dependencies file for fim.
# This may be replaced when dependencies are built.
