file(REMOVE_RECURSE
  "CMakeFiles/fim-rules.dir/fim_rules.cc.o"
  "CMakeFiles/fim-rules.dir/fim_rules.cc.o.d"
  "fim-rules"
  "fim-rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fim-rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
