# Empty dependencies file for fim-rules.
# This may be replaced when dependencies are built.
