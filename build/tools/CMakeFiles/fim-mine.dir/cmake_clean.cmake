file(REMOVE_RECURSE
  "CMakeFiles/fim-mine.dir/fim_mine.cc.o"
  "CMakeFiles/fim-mine.dir/fim_mine.cc.o.d"
  "fim-mine"
  "fim-mine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fim-mine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
