# Empty compiler generated dependencies file for fim-mine.
# This may be replaced when dependencies are built.
