file(REMOVE_RECURSE
  "CMakeFiles/fim-discretize.dir/fim_discretize.cc.o"
  "CMakeFiles/fim-discretize.dir/fim_discretize.cc.o.d"
  "fim-discretize"
  "fim-discretize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fim-discretize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
