# Empty compiler generated dependencies file for fim-discretize.
# This may be replaced when dependencies are built.
