file(REMOVE_RECURSE
  "CMakeFiles/fim-gen.dir/fim_gen.cc.o"
  "CMakeFiles/fim-gen.dir/fim_gen.cc.o.d"
  "fim-gen"
  "fim-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fim-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
