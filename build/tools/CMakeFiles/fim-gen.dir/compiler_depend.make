# Empty compiler generated dependencies file for fim-gen.
# This may be replaced when dependencies are built.
