file(REMOVE_RECURSE
  "CMakeFiles/fim-verify.dir/fim_verify.cc.o"
  "CMakeFiles/fim-verify.dir/fim_verify.cc.o.d"
  "fim-verify"
  "fim-verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fim-verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
