# Empty dependencies file for fim-verify.
# This may be replaced when dependencies are built.
