file(REMOVE_RECURSE
  "CMakeFiles/recode_test.dir/recode_test.cc.o"
  "CMakeFiles/recode_test.dir/recode_test.cc.o.d"
  "recode_test"
  "recode_test.pdb"
  "recode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
