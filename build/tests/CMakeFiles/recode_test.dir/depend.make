# Empty dependencies file for recode_test.
# This may be replaced when dependencies are built.
