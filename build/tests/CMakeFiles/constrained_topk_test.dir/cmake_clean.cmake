file(REMOVE_RECURSE
  "CMakeFiles/constrained_topk_test.dir/constrained_topk_test.cc.o"
  "CMakeFiles/constrained_topk_test.dir/constrained_topk_test.cc.o.d"
  "constrained_topk_test"
  "constrained_topk_test.pdb"
  "constrained_topk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constrained_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
