# Empty dependencies file for constrained_topk_test.
# This may be replaced when dependencies are built.
