# Empty compiler generated dependencies file for property_equivalence_test.
# This may be replaced when dependencies are built.
