file(REMOVE_RECURSE
  "CMakeFiles/galois_test.dir/galois_test.cc.o"
  "CMakeFiles/galois_test.dir/galois_test.cc.o.d"
  "galois_test"
  "galois_test.pdb"
  "galois_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galois_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
