# Empty compiler generated dependencies file for prefix_tree_deep_test.
# This may be replaced when dependencies are built.
