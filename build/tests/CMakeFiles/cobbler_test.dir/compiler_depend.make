# Empty compiler generated dependencies file for cobbler_test.
# This may be replaced when dependencies are built.
