file(REMOVE_RECURSE
  "CMakeFiles/cobbler_test.dir/cobbler_test.cc.o"
  "CMakeFiles/cobbler_test.dir/cobbler_test.cc.o.d"
  "cobbler_test"
  "cobbler_test.pdb"
  "cobbler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobbler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
