# Empty dependencies file for cobbler_test.
# This may be replaced when dependencies are built.
