# Empty dependencies file for parallel_lcm_test.
# This may be replaced when dependencies are built.
