file(REMOVE_RECURSE
  "CMakeFiles/parallel_lcm_test.dir/parallel_lcm_test.cc.o"
  "CMakeFiles/parallel_lcm_test.dir/parallel_lcm_test.cc.o.d"
  "parallel_lcm_test"
  "parallel_lcm_test.pdb"
  "parallel_lcm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_lcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
