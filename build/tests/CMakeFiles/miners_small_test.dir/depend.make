# Empty dependencies file for miners_small_test.
# This may be replaced when dependencies are built.
