file(REMOVE_RECURSE
  "CMakeFiles/miners_small_test.dir/miners_small_test.cc.o"
  "CMakeFiles/miners_small_test.dir/miners_small_test.cc.o.d"
  "miners_small_test"
  "miners_small_test.pdb"
  "miners_small_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miners_small_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
