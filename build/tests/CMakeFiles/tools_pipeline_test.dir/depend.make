# Empty dependencies file for tools_pipeline_test.
# This may be replaced when dependencies are built.
