file(REMOVE_RECURSE
  "CMakeFiles/frequent_miners_test.dir/frequent_miners_test.cc.o"
  "CMakeFiles/frequent_miners_test.dir/frequent_miners_test.cc.o.d"
  "frequent_miners_test"
  "frequent_miners_test.pdb"
  "frequent_miners_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequent_miners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
