file(REMOVE_RECURSE
  "CMakeFiles/streaming_integration_test.dir/streaming_integration_test.cc.o"
  "CMakeFiles/streaming_integration_test.dir/streaming_integration_test.cc.o.d"
  "streaming_integration_test"
  "streaming_integration_test.pdb"
  "streaming_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
