# Empty compiler generated dependencies file for streaming_integration_test.
# This may be replaced when dependencies are built.
