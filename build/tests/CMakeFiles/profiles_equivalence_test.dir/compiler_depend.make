# Empty compiler generated dependencies file for profiles_equivalence_test.
# This may be replaced when dependencies are built.
