file(REMOVE_RECURSE
  "CMakeFiles/profiles_equivalence_test.dir/profiles_equivalence_test.cc.o"
  "CMakeFiles/profiles_equivalence_test.dir/profiles_equivalence_test.cc.o.d"
  "profiles_equivalence_test"
  "profiles_equivalence_test.pdb"
  "profiles_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiles_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
