# Empty compiler generated dependencies file for differential_large_test.
# This may be replaced when dependencies are built.
