file(REMOVE_RECURSE
  "CMakeFiles/differential_large_test.dir/differential_large_test.cc.o"
  "CMakeFiles/differential_large_test.dir/differential_large_test.cc.o.d"
  "differential_large_test"
  "differential_large_test.pdb"
  "differential_large_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_large_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
