file(REMOVE_RECURSE
  "CMakeFiles/stats_reporting_test.dir/stats_reporting_test.cc.o"
  "CMakeFiles/stats_reporting_test.dir/stats_reporting_test.cc.o.d"
  "stats_reporting_test"
  "stats_reporting_test.pdb"
  "stats_reporting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_reporting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
