# Empty dependencies file for stats_reporting_test.
# This may be replaced when dependencies are built.
