# Empty dependencies file for derive_test.
# This may be replaced when dependencies are built.
