file(REMOVE_RECURSE
  "CMakeFiles/enumeration_deep_test.dir/enumeration_deep_test.cc.o"
  "CMakeFiles/enumeration_deep_test.dir/enumeration_deep_test.cc.o.d"
  "enumeration_deep_test"
  "enumeration_deep_test.pdb"
  "enumeration_deep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumeration_deep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
