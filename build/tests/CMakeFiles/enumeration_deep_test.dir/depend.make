# Empty dependencies file for enumeration_deep_test.
# This may be replaced when dependencies are built.
