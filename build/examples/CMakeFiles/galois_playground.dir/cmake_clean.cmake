file(REMOVE_RECURSE
  "CMakeFiles/galois_playground.dir/galois_playground.cpp.o"
  "CMakeFiles/galois_playground.dir/galois_playground.cpp.o.d"
  "galois_playground"
  "galois_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galois_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
