# Empty dependencies file for galois_playground.
# This may be replaced when dependencies are built.
