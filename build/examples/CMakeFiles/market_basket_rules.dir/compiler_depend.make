# Empty compiler generated dependencies file for market_basket_rules.
# This may be replaced when dependencies are built.
