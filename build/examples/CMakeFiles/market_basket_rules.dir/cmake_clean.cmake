file(REMOVE_RECURSE
  "CMakeFiles/market_basket_rules.dir/market_basket_rules.cpp.o"
  "CMakeFiles/market_basket_rules.dir/market_basket_rules.cpp.o.d"
  "market_basket_rules"
  "market_basket_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_basket_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
