# Empty compiler generated dependencies file for bench_micro_prefix_tree.
# This may be replaced when dependencies are built.
