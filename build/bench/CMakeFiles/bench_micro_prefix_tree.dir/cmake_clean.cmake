file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_prefix_tree.dir/micro_prefix_tree.cc.o"
  "CMakeFiles/bench_micro_prefix_tree.dir/micro_prefix_tree.cc.o.d"
  "bench_micro_prefix_tree"
  "bench_micro_prefix_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_prefix_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
