file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_yeast.dir/fig5_yeast.cc.o"
  "CMakeFiles/bench_fig5_yeast.dir/fig5_yeast.cc.o.d"
  "bench_fig5_yeast"
  "bench_fig5_yeast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_yeast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
