# Empty dependencies file for bench_fig5_yeast.
# This may be replaced when dependencies are built.
