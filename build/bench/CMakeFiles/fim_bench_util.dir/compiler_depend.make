# Empty compiler generated dependencies file for fim_bench_util.
# This may be replaced when dependencies are built.
