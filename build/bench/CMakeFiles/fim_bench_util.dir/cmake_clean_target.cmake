file(REMOVE_RECURSE
  "libfim_bench_util.a"
)
