file(REMOVE_RECURSE
  "CMakeFiles/fim_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/fim_bench_util.dir/bench_util.cc.o.d"
  "libfim_bench_util.a"
  "libfim_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fim_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
