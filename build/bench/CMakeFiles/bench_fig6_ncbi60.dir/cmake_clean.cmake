file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ncbi60.dir/fig6_ncbi60.cc.o"
  "CMakeFiles/bench_fig6_ncbi60.dir/fig6_ncbi60.cc.o.d"
  "bench_fig6_ncbi60"
  "bench_fig6_ncbi60.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ncbi60.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
