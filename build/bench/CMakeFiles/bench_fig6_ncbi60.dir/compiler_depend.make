# Empty compiler generated dependencies file for bench_fig6_ncbi60.
# This may be replaced when dependencies are built.
