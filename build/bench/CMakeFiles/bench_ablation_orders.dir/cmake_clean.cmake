file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_orders.dir/ablation_orders.cc.o"
  "CMakeFiles/bench_ablation_orders.dir/ablation_orders.cc.o.d"
  "bench_ablation_orders"
  "bench_ablation_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
