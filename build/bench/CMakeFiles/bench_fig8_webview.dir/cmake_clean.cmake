file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_webview.dir/fig8_webview.cc.o"
  "CMakeFiles/bench_fig8_webview.dir/fig8_webview.cc.o.d"
  "bench_fig8_webview"
  "bench_fig8_webview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_webview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
