file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flat_vs_tree.dir/ablation_flat_vs_tree.cc.o"
  "CMakeFiles/bench_ablation_flat_vs_tree.dir/ablation_flat_vs_tree.cc.o.d"
  "bench_ablation_flat_vs_tree"
  "bench_ablation_flat_vs_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flat_vs_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
