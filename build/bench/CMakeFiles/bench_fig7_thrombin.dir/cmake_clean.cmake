file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_thrombin.dir/fig7_thrombin.cc.o"
  "CMakeFiles/bench_fig7_thrombin.dir/fig7_thrombin.cc.o.d"
  "bench_fig7_thrombin"
  "bench_fig7_thrombin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_thrombin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
