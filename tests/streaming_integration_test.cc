// Integration tests of the streaming miner on structured data beyond the
// oracle's reach: incremental results must match batch IsTa at sampled
// checkpoints.

#include <gtest/gtest.h>

#include "api/miner.h"
#include "data/generators.h"
#include "ista/incremental.h"
#include "verify/compare.h"

namespace fim {
namespace {

TEST(StreamingIntegrationTest, MatchesBatchOnMarketBasketCheckpoints) {
  MarketBasketConfig config;
  config.num_items = 40;
  config.num_transactions = 240;
  config.avg_transaction_size = 6.0;
  config.seed = 31;
  const TransactionDatabase db = GenerateMarketBasket(config);

  IncrementalClosedSetMiner streaming(db.NumItems());
  TransactionDatabase prefix;
  prefix.SetNumItems(db.NumItems());
  const std::size_t checkpoint_every = 60;
  for (std::size_t k = 0; k < db.NumTransactions(); ++k) {
    ASSERT_TRUE(streaming.AddTransaction(db.transaction(k)).ok());
    prefix.AddTransaction(db.transaction(k));
    if ((k + 1) % checkpoint_every != 0) continue;
    for (Support smin : {2u, 5u, 10u}) {
      auto streamed = streaming.QueryCollect(smin);
      ASSERT_TRUE(streamed.ok());
      MinerOptions options;
      options.min_support = smin;
      options.algorithm = Algorithm::kIsta;
      auto batch = MineClosedCollect(prefix, options);
      ASSERT_TRUE(batch.ok());
      EXPECT_TRUE(SameResults(batch.value(), streamed.value()))
          << "checkpoint " << (k + 1) << " smin " << smin << "\n"
          << DiffResults(batch.value(), streamed.value());
    }
  }
}

TEST(StreamingIntegrationTest, NodeCountGrowsMonotonically) {
  const TransactionDatabase db = GenerateRandomDense(30, 12, 0.3, 77);
  IncrementalClosedSetMiner streaming(db.NumItems());
  std::size_t last = 0;
  for (const auto& t : db.transactions()) {
    ASSERT_TRUE(streaming.AddTransaction(t).ok());
    EXPECT_GE(streaming.NodeCount(), last);
    last = streaming.NodeCount();
  }
}

}  // namespace
}  // namespace fim
