// Tests of the execution statistics the miners expose (used by the
// ablation benches and by downstream users for capacity planning).

#include <gtest/gtest.h>

#include "carpenter/carpenter.h"
#include "data/generators.h"
#include "ista/ista.h"

namespace fim {
namespace {

TEST(IstaStatsTest, TracksNodesAndPrunes) {
  const TransactionDatabase db = GenerateRandomDense(20, 15, 0.4, 55);
  IstaOptions options;
  options.min_support = 2;
  options.prune_node_threshold = 8;  // force several prunes
  IstaStats stats;
  std::size_t count = 0;
  ASSERT_TRUE(MineClosedIsta(db, options,
                             [&count](std::span<const ItemId>, Support) {
                               ++count;
                             },
                             &stats)
                  .ok());
  EXPECT_GT(count, 0u);
  EXPECT_GT(stats.peak_nodes, 0u);
  EXPECT_GT(stats.prune_calls, 0u);
  EXPECT_GT(stats.final_nodes, 0u);
  EXPECT_LE(stats.final_nodes, stats.peak_nodes * 4);  // sanity
}

TEST(IstaStatsTest, ResetBetweenRuns) {
  const TransactionDatabase db = GenerateRandomDense(5, 5, 0.5, 56);
  IstaOptions options;
  options.min_support = 1;
  IstaStats stats;
  stats.prune_calls = 999;  // stale value must be cleared
  ASSERT_TRUE(
      MineClosedIsta(db, options, [](auto, auto) {}, &stats).ok());
  EXPECT_LT(stats.prune_calls, 999u);
}

TEST(CarpenterStatsTest, CountsNodesAndRepoActivity) {
  const TransactionDatabase db = GenerateRandomDense(12, 10, 0.5, 57);
  CarpenterOptions options;
  options.min_support = 2;
  for (bool table : {false, true}) {
    CarpenterStats stats;
    std::size_t count = 0;
    auto run = table ? MineClosedCarpenterTable : MineClosedCarpenterLists;
    ASSERT_TRUE(run(db, options,
                    [&count](std::span<const ItemId>, Support) { ++count; },
                    &stats)
                    .ok());
    EXPECT_GT(stats.nodes_visited, 0u) << (table ? "table" : "lists");
    EXPECT_GT(stats.repo_sets, 0u);
    // Every reported set corresponds to a visited node.
    EXPECT_LE(count, stats.nodes_visited);
  }
}

TEST(CarpenterStatsTest, RepoHitsOccurOnOverlappingData) {
  // On dense random data, different transaction subsets frequently
  // intersect to the same item set, so the duplicate repository must
  // prune at least some branches over a collection of runs.
  std::size_t total_hits = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const TransactionDatabase db = GenerateRandomDense(10, 6, 0.6, seed);
    CarpenterOptions options;
    options.min_support = 1;
    CarpenterStats stats;
    ASSERT_TRUE(MineClosedCarpenterLists(db, options, [](auto, auto) {},
                                         &stats)
                    .ok());
    total_hits += stats.repo_hits;
  }
  EXPECT_GT(total_hits, 0u);
}

}  // namespace
}  // namespace fim
