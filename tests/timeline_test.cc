// Tests of the event-timeline layer: ring-buffer lane semantics
// (ordering, wrap-around drop accounting, name truncation), the
// null-safe TimelineScope/Phase guards, the Chrome trace-event exporter
// (valid JSON, balanced begin/end pairs, orphan/synthetic end
// re-balancing, thread_name metadata), multi-threaded lane registration
// and recording (exercised under TSan in CI), the background
// MetricsSampler's JSONL output, and output neutrality of timeline
// recording across thread counts.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/miner.h"
#include "data/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace fim {
namespace {

// --- lane semantics ---------------------------------------------------

TEST(TimelineLaneTest, RecordsEventsInOrder) {
  obs::Timeline timeline;
  obs::TimelineLane* lane = timeline.driver();
  EXPECT_EQ(lane->name(), "main");

  lane->Begin("mine");
  lane->Instant("checkpoint");
  lane->Counter("nodes", 42.5);
  lane->End();

  EXPECT_EQ(lane->TotalEvents(), 4u);
  EXPECT_EQ(lane->DroppedEvents(), 0u);
  const std::vector<obs::TimelineEvent> events = lane->Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, obs::TimelineEvent::Kind::kBegin);
  EXPECT_STREQ(events[0].name, "mine");
  EXPECT_EQ(events[1].kind, obs::TimelineEvent::Kind::kInstant);
  EXPECT_STREQ(events[1].name, "checkpoint");
  EXPECT_EQ(events[2].kind, obs::TimelineEvent::Kind::kCounter);
  EXPECT_STREQ(events[2].name, "nodes");
  EXPECT_DOUBLE_EQ(events[2].value, 42.5);
  EXPECT_EQ(events[3].kind, obs::TimelineEvent::Kind::kEnd);
  // Timestamps are monotone within a lane (steady clock).
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(TimelineLaneTest, TruncatesLongNames) {
  obs::Timeline timeline;
  obs::TimelineLane* lane = timeline.driver();
  const std::string long_name(200, 'x');
  lane->Instant(long_name);
  const auto events = lane->Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name),
            std::string(obs::TimelineEvent::kNameCapacity, 'x'));
}

TEST(TimelineLaneTest, RingWrapKeepsNewestAndCountsDrops) {
  obs::Timeline timeline(/*capacity_per_lane=*/8);
  obs::TimelineLane* lane = timeline.driver();
  for (int i = 0; i < 20; ++i) {
    lane->Counter("i", static_cast<double>(i));
  }
  EXPECT_EQ(lane->TotalEvents(), 20u);
  EXPECT_EQ(lane->DroppedEvents(), 12u);
  EXPECT_EQ(timeline.DroppedEvents(), 12u);
  const auto events = lane->Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are the newest 8, still in recording order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(12 + i));
  }
}

TEST(TimelineTest, LanesGetSequentialIdsAndSharedEpoch) {
  obs::Timeline timeline;
  EXPECT_EQ(timeline.NumLanes(), 1u);
  obs::TimelineLane* worker = timeline.AddLane("worker-0");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->name(), "worker-0");
  EXPECT_EQ(timeline.NumLanes(), 2u);
  const auto lanes = timeline.Lanes();
  ASSERT_EQ(lanes.size(), 2u);
  EXPECT_EQ(lanes[0]->name(), "main");
  EXPECT_EQ(lanes[1]->name(), "worker-0");
}

// --- guards -----------------------------------------------------------

TEST(TimelineScopeTest, NullLaneIsNoOp) {
  obs::TimelineScope scope(nullptr, "phase");
  scope.End();
  scope.End();  // idempotent
  obs::Phase phase(nullptr, nullptr, "phase");
  phase.End();
  phase.End();
}

TEST(TimelineScopeTest, EndIsIdempotentOnRealLane) {
  obs::Timeline timeline;
  obs::TimelineLane* lane = timeline.driver();
  {
    obs::TimelineScope scope(lane, "phase");
    scope.End();
    // Destructor must not emit a second end.
  }
  EXPECT_EQ(lane->TotalEvents(), 2u);
  const auto events = lane->Snapshot();
  EXPECT_EQ(events[0].kind, obs::TimelineEvent::Kind::kBegin);
  EXPECT_EQ(events[1].kind, obs::TimelineEvent::Kind::kEnd);
}

TEST(TimelineScopeTest, PhaseFeedsBothTraceAndLane) {
  obs::Trace trace;
  obs::Timeline timeline;
  {
    obs::Phase phase(&trace, timeline.driver(), "mine");
  }
  ASSERT_FALSE(trace.root().children.empty());
  EXPECT_EQ(trace.root().children.front()->name, "mine");
  EXPECT_EQ(timeline.driver()->TotalEvents(), 2u);
}

// --- Chrome trace export ----------------------------------------------

// Per-tid begin/end balance check over a parsed trace document.
void ExpectBalancedTrace(const obs::JsonValue& doc,
                         std::size_t expect_lanes) {
  const obs::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<double, int> depth;           // tid -> open begins
  std::map<double, bool> named;          // tid -> has thread_name meta
  for (const obs::JsonValue& event : events->AsArray()) {
    const std::string ph = event.Find("ph")->AsString();
    const double tid = event.Find("tid")->AsNumber();
    if (ph == "B") {
      ++depth[tid];
    } else if (ph == "E") {
      ASSERT_GT(depth[tid], 0) << "unmatched E on tid " << tid;
      --depth[tid];
    } else if (ph == "M") {
      EXPECT_EQ(event.Find("name")->AsString(), "thread_name");
      named[tid] = true;
    } else {
      EXPECT_TRUE(ph == "i" || ph == "C") << "unexpected phase " << ph;
    }
    EXPECT_GE(event.Find("ts")->AsNumber(), 0.0);
  }
  for (const auto& [tid, open] : depth) {
    EXPECT_EQ(open, 0) << "unclosed begin on tid " << tid;
  }
  EXPECT_EQ(named.size(), expect_lanes);
}

TEST(ChromeTraceTest, ExportsValidBalancedJson) {
  obs::Timeline timeline;
  obs::TimelineLane* main = timeline.driver();
  obs::TimelineLane* worker = timeline.AddLane("worker-0");
  main->Begin("mine");
  worker->Begin("shard");
  worker->Counter("nodes", 17.0);
  worker->End();
  main->Instant("merged");
  main->End();

  obs::TraceMeta meta;
  meta.tool = "fim-test";
  meta.algorithm = "ista";
  const std::string json = RenderChromeTrace(timeline, meta);
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& doc = parsed.value();
  ExpectBalancedTrace(doc, 2);

  const obs::JsonValue* other = doc.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->Find("schema")->AsString(), "fim-trace-v1");
  EXPECT_EQ(other->Find("tool")->AsString(), "fim-test");
  EXPECT_EQ(other->Find("algorithm")->AsString(), "ista");
  EXPECT_DOUBLE_EQ(other->Find("num_lanes")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(other->Find("dropped_events")->AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(other->Find("skipped_orphan_ends")->AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(other->Find("synthesized_ends")->AsNumber(), 0.0);

  // The counter event carries its value in args.
  bool saw_counter = false;
  for (const obs::JsonValue& event : doc.Find("traceEvents")->AsArray()) {
    if (event.Find("ph")->AsString() != "C") continue;
    saw_counter = true;
    EXPECT_EQ(event.Find("name")->AsString(), "nodes");
    EXPECT_DOUBLE_EQ(event.Find("args")->Find("value")->AsNumber(), 17.0);
  }
  EXPECT_TRUE(saw_counter);
}

TEST(ChromeTraceTest, RebalancesOverflowedAndUnclosedLanes) {
  obs::Timeline timeline(/*capacity_per_lane=*/4);
  obs::TimelineLane* lane = timeline.driver();
  // The begin is overwritten by the instants, so its end arrives
  // orphaned and must be skipped.
  lane->Begin("lost");
  lane->Instant("a");
  lane->Instant("b");
  lane->Instant("c");
  lane->Instant("d");
  lane->End();
  // An unclosed begin (still in the ring) must get a synthetic end.
  obs::TimelineLane* open_lane = timeline.AddLane("open");
  open_lane->Begin("unfinished");

  obs::TraceMeta meta;
  meta.tool = "fim-test";
  const std::string json = RenderChromeTrace(timeline, meta);
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectBalancedTrace(parsed.value(), 2);
  const obs::JsonValue* other = parsed.value().Find("otherData");
  EXPECT_GE(other->Find("dropped_events")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(other->Find("skipped_orphan_ends")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(other->Find("synthesized_ends")->AsNumber(), 1.0);
}

// --- concurrency (TSan coverage) --------------------------------------

TEST(TimelineTest, ConcurrentLaneRegistrationAndRecording) {
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 5000;
  obs::Timeline timeline;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&timeline, t]() {
      obs::TimelineLane* lane =
          timeline.AddLane("worker-" + std::to_string(t));
      for (int i = 0; i < kEventsPerThread; ++i) {
        obs::TimelineScope scope(lane, "work");
        lane->Counter("i", static_cast<double>(i));
      }
    });
  }
  // The driver lane records concurrently, and cross-thread reads of the
  // aggregate accessors must be safe while writers run.
  for (int i = 0; i < 1000; ++i) {
    timeline.driver()->Instant("tick");
    (void)timeline.NumLanes();
    (void)timeline.DroppedEvents();
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(timeline.NumLanes(), 1u + kThreads);
  for (const obs::TimelineLane* lane : timeline.Lanes()) {
    if (lane->name() == "main") continue;
    EXPECT_EQ(lane->TotalEvents(),
              static_cast<std::uint64_t>(3 * kEventsPerThread));
  }
  obs::TraceMeta meta;
  meta.tool = "fim-test";
  auto parsed = obs::ParseJson(RenderChromeTrace(timeline, meta));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectBalancedTrace(parsed.value(), 1u + kThreads);
}

// --- metrics sampler --------------------------------------------------

TEST(SamplerTest, WritesAtLeastOneValidJsonlSample) {
  obs::MetricRegistry registry;
  registry.GetCounter("stream.transactions_ingested").Add(500);
  registry.GetDistribution("stream.pane_sets").Record(12);
  obs::Timeline timeline;

  std::ostringstream out;
  obs::MetricsSamplerOptions options;
  options.period = std::chrono::milliseconds(3600 * 1000);  // never fires
  options.registry = &registry;
  options.throughput_counter = "stream.transactions_ingested";
  options.lane = timeline.AddLane("sampler");
  obs::MetricsSampler sampler(options, &out);
  sampler.Stop();  // final sample even though the period never elapsed
  sampler.Stop();  // idempotent
  EXPECT_EQ(sampler.SamplesWritten(), 1u);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t parsed_lines = 0;
  while (std::getline(lines, line)) {
    auto parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << ": " << line;
    const obs::JsonValue& doc = parsed.value();
    EXPECT_EQ(doc.Find("schema")->AsString(), "fim-statsline-v1");
    EXPECT_DOUBLE_EQ(doc.Find("seq")->AsNumber(),
                     static_cast<double>(parsed_lines));
    EXPECT_GE(doc.Find("elapsed_seconds")->AsNumber(), 0.0);
    ASSERT_NE(doc.Find("tx_per_second"), nullptr);
    const obs::JsonValue* counters = doc.Find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_DOUBLE_EQ(
        counters->Find("stream.transactions_ingested")->AsNumber(), 500.0);
    const obs::JsonValue* dists = doc.Find("distributions");
    ASSERT_NE(dists, nullptr);
    EXPECT_DOUBLE_EQ(
        dists->Find("stream.pane_sets")->Find("count")->AsNumber(), 1.0);
    ++parsed_lines;
  }
  EXPECT_EQ(parsed_lines, 1u);
  // The sampler lane recorded its instants, so a fim-stream trace always
  // has a second thread id when sampling is on.
  EXPECT_GE(options.lane->TotalEvents(), 1u);
}

TEST(SamplerTest, PeriodicSamplesCarryThroughputDeltas) {
  obs::MetricRegistry registry;
  obs::Counter& ingested = registry.GetCounter("stream.transactions_ingested");
  std::ostringstream out;
  obs::MetricsSamplerOptions options;
  options.period = std::chrono::milliseconds(20);
  options.registry = &registry;
  options.throughput_counter = "stream.transactions_ingested";
  {
    obs::MetricsSampler sampler(options, &out);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(120);
    while (std::chrono::steady_clock::now() < deadline) {
      ingested.Add(10);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }  // destructor stops and flushes the final sample
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  double last_seq = -1.0;
  while (std::getline(lines, line)) {
    auto parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << ": " << line;
    const double seq = parsed.value().Find("seq")->AsNumber();
    EXPECT_GT(seq, last_seq);  // strictly increasing
    last_seq = seq;
    EXPECT_GE(parsed.value().Find("tx_per_second")->AsNumber(), 0.0);
    ++count;
  }
  EXPECT_GE(count, 2u);  // at least one periodic + the final sample
}

// --- output neutrality ------------------------------------------------

// Recording a timeline must never change the mined output, sequential or
// parallel. (The --stats/--trace counterpart lives in obs_test.cc; this
// covers the MinerOptions::timeline path through recoding, the shard
// workers and the merge reduction.)
TEST(TimelineNeutralityTest, TimelineOnEqualsTimelineOff) {
  const TransactionDatabase db = GenerateRandomDense(60, 24, 0.3, 123);
  for (unsigned threads : {1u, 4u}) {
    MinerOptions options;
    options.algorithm = Algorithm::kIsta;
    options.min_support = 3;
    options.num_threads = threads;

    auto plain = MineClosedCollect(db, options);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();

    obs::Timeline timeline;
    options.timeline = &timeline;
    auto traced = MineClosedCollect(db, options);
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();

    ASSERT_EQ(plain.value().size(), traced.value().size()) << "t=" << threads;
    for (std::size_t i = 0; i < plain.value().size(); ++i) {
      EXPECT_EQ(plain.value()[i].items, traced.value()[i].items)
          << "t=" << threads << " set " << i;
      EXPECT_EQ(plain.value()[i].support, traced.value()[i].support)
          << "t=" << threads << " set " << i;
    }

    // The parallel run fans out into worker and merge lanes; the
    // exported trace must stay well-formed either way.
    if (threads > 1) {
      EXPECT_GT(timeline.NumLanes(), 1u);
    }
    obs::TraceMeta meta;
    meta.tool = "fim-test";
    meta.algorithm = "ista";
    auto parsed = obs::ParseJson(RenderChromeTrace(timeline, meta));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ExpectBalancedTrace(parsed.value(), timeline.NumLanes());
  }
}

}  // namespace
}  // namespace fim
