// Property tests for the runtime-dispatched intersection kernels
// (src/kernels/): every available tier must agree element-for-element
// with std::set_intersection on sorted duplicate-free uint32_t inputs —
// the contract that keeps the miners' closed-set output bit-identical
// under every FIM_KERNEL setting. Also covers the galloping kernel, the
// adaptive front door, DifferenceInto, the TidSet dense/sparse
// conversion boundary, and the selection API.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/intersect.h"
#include "kernels/tidset.h"

namespace fim::kernels {
namespace {

using U32s = std::vector<std::uint32_t>;

U32s Reference(const U32s& a, const U32s& b) {
  U32s out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Calls a raw kernel's intersect with the contract-required slack
// (capacity >= min(na, nb) + kIntersectPad) and trims to the result.
U32s RunIntersect(const IntersectKernel& kernel, const U32s& a, const U32s& b) {
  U32s out(std::min(a.size(), b.size()) + kIntersectPad, 0xDEADBEEF);
  const std::size_t n =
      kernel.intersect(a.data(), a.size(), b.data(), b.size(), out.data());
  out.resize(n);
  return out;
}

U32s SortedUnique(std::mt19937& rng, std::size_t count, std::uint32_t max) {
  std::set<std::uint32_t> values;
  std::uniform_int_distribution<std::uint32_t> dist(0, max);
  while (values.size() < count) values.insert(dist(rng));
  return U32s(values.begin(), values.end());
}

// The canonical shape catalog every kernel must handle: empty operands,
// disjoint ranges, identical lists, strict subsets, strongly skewed
// lengths, dense (consecutive) runs, and block-boundary sizes around the
// 4- and 8-lane SIMD widths.
std::vector<std::pair<U32s, U32s>> ShapeCatalog() {
  std::vector<std::pair<U32s, U32s>> shapes;
  shapes.push_back({{}, {}});
  shapes.push_back({{}, {1, 2, 3}});
  shapes.push_back({{1, 2, 3}, {}});
  shapes.push_back({{1, 3, 5, 7}, {2, 4, 6, 8}});          // disjoint interleaved
  shapes.push_back({{1, 2, 3, 4}, {10, 11, 12, 13}});      // disjoint ranges
  shapes.push_back({{5, 6, 7, 8}, {5, 6, 7, 8}});          // equal
  shapes.push_back({{2, 4, 6}, {1, 2, 3, 4, 5, 6, 7}});    // subset
  shapes.push_back({{42}, {42}});
  shapes.push_back({{42}, {41}});
  // Block-boundary sizes: 1..17 elements against 1..17 elements with a
  // 50% overlap pattern exercises every SIMD tail path.
  for (std::size_t na = 1; na <= 17; ++na) {
    for (std::size_t nb : {std::size_t{1}, std::size_t{4}, std::size_t{8},
                           std::size_t{15}, std::size_t{17}}) {
      U32s a, b;
      for (std::size_t i = 0; i < na; ++i) a.push_back(2 * i);
      for (std::size_t i = 0; i < nb; ++i) b.push_back(3 * i);
      shapes.push_back({a, b});
    }
  }
  // The shape that motivated kIntersectPad: all matches come from the
  // still-current block of the shorter side, so the match count reaches
  // min(na, nb) while the SIMD loop still has a full-vector store ahead.
  {
    U32s b = {5, 6, 7, 8, 100, 101, 102, 103};
    U32s a;
    for (std::uint32_t v = 1; v <= 8; ++v) a.push_back(v);
    for (std::uint32_t v = 100; v <= 103; ++v) a.push_back(v);
    shapes.push_back({a, b});
    shapes.push_back({b, a});
  }
  // Dense consecutive runs with a shifted overlap.
  {
    U32s a, b;
    for (std::uint32_t v = 0; v < 200; ++v) a.push_back(v);
    for (std::uint32_t v = 100; v < 300; ++v) b.push_back(v);
    shapes.push_back({a, b});
  }
  // Strongly skewed lengths (also exercises the gallop cutover through
  // the adaptive front door).
  {
    std::mt19937 rng(7);
    U32s longer = SortedUnique(rng, 4096, 1u << 20);
    U32s shorter;
    for (std::size_t i = 0; i < longer.size(); i += 97) {
      shorter.push_back(longer[i]);
    }
    shorter.push_back((1u << 20) + 1);  // one element past the long list
    std::sort(shorter.begin(), shorter.end());
    shapes.push_back({shorter, longer});
    shapes.push_back({longer, shorter});
  }
  return shapes;
}

TEST(KernelsTest, EveryKernelMatchesSetIntersectionOnShapeCatalog) {
  const auto kernels = AvailableKernels();
  ASSERT_FALSE(kernels.empty());
  const auto shapes = ShapeCatalog();
  for (const IntersectKernel* kernel : kernels) {
    for (const auto& [a, b] : shapes) {
      EXPECT_EQ(RunIntersect(*kernel, a, b), Reference(a, b))
          << "kernel " << kernel->name << ", na=" << a.size()
          << ", nb=" << b.size();
    }
  }
}

TEST(KernelsTest, EveryKernelMatchesSetIntersectionOnRandomInputs) {
  std::mt19937 rng(20260808);
  const auto kernels = AvailableKernels();
  for (int round = 0; round < 200; ++round) {
    std::uniform_int_distribution<std::size_t> len(0, 400);
    // Mix universes so expected overlap ranges from dense to rare.
    const std::uint32_t max = (round % 3 == 0)   ? 255
                              : (round % 3 == 1) ? 4095
                                                 : (1u << 24);
    const std::size_t na = len(rng);
    const std::size_t nb = len(rng);
    const U32s a = SortedUnique(rng, std::min<std::size_t>(na, max / 2), max);
    const U32s b = SortedUnique(rng, std::min<std::size_t>(nb, max / 2), max);
    const U32s want = Reference(a, b);
    for (const IntersectKernel* kernel : kernels) {
      EXPECT_EQ(RunIntersect(*kernel, a, b), want)
          << "kernel " << kernel->name << ", round " << round;
    }
  }
}

TEST(KernelsTest, GallopMatchesSetIntersection) {
  std::mt19937 rng(99);
  for (int round = 0; round < 50; ++round) {
    const U32s b = SortedUnique(rng, 2000, 1u << 18);
    std::uniform_int_distribution<std::size_t> len(0, 60);
    U32s a = SortedUnique(rng, len(rng), 1u << 18);
    // Seed some guaranteed hits.
    for (std::size_t i = 0; i < b.size(); i += 211) a.push_back(b[i]);
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    U32s out(a.size());
    const std::size_t n =
        GallopIntersect(a.data(), a.size(), b.data(), b.size(), out.data());
    out.resize(n);
    EXPECT_EQ(out, Reference(a, b)) << "round " << round;
  }
}

TEST(KernelsTest, AdaptiveIntersectMatchesOnSkewAndBalance) {
  std::mt19937 rng(3);
  for (const std::size_t ratio : {std::size_t{1}, std::size_t{4},
                                  kGallopRatio - 1, kGallopRatio,
                                  4 * kGallopRatio}) {
    const U32s longer = SortedUnique(rng, 1024, 1u << 16);
    const U32s shorter = SortedUnique(rng, 1024 / ratio, 1u << 16);
    U32s out(std::min(longer.size(), shorter.size()) + kIntersectPad);
    const std::size_t n = Intersect(shorter.data(), shorter.size(),
                                    longer.data(), longer.size(), out.data());
    out.resize(n);
    EXPECT_EQ(out, Reference(shorter, longer)) << "ratio " << ratio;
  }
}

TEST(KernelsTest, IntersectIntoReusesBufferAndTrims) {
  U32s out{9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  IntersectInto(U32s{1, 2, 3, 4}, U32s{2, 4, 6}, &out);
  EXPECT_EQ(out, (U32s{2, 4}));
  IntersectInto(U32s{}, U32s{2, 4, 6}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(KernelsTest, DifferenceIntoMatchesSetDifference) {
  std::mt19937 rng(11);
  for (int round = 0; round < 50; ++round) {
    std::uniform_int_distribution<std::size_t> len(0, 300);
    const U32s a = SortedUnique(rng, len(rng), 2048);
    const U32s b = SortedUnique(rng, len(rng), 2048);
    U32s want;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(want));
    U32s got;
    DifferenceInto(a, b, &got);
    EXPECT_EQ(got, want) << "round " << round;
  }
}

TEST(KernelsTest, BitsetAndMatchesScalarAndCountsBits) {
  std::mt19937_64 rng(5);
  for (const IntersectKernel* kernel : AvailableKernels()) {
    for (const std::size_t words :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
          std::size_t{7}, std::size_t{64}, std::size_t{65}}) {
      std::vector<std::uint64_t> a(words), b(words), out(words, ~0ull);
      for (auto& w : a) w = rng();
      for (auto& w : b) w = rng();
      std::size_t want_count = 0;
      std::vector<std::uint64_t> want(words);
      for (std::size_t w = 0; w < words; ++w) {
        want[w] = a[w] & b[w];
        want_count += static_cast<std::size_t>(std::popcount(want[w]));
      }
      const std::size_t count =
          kernel->bitset_and(a.data(), b.data(), words, out.data());
      EXPECT_EQ(count, want_count) << kernel->name << " words=" << words;
      EXPECT_EQ(out, want) << kernel->name << " words=" << words;
      // Aliasing with an input is allowed.
      const std::size_t aliased =
          kernel->bitset_and(a.data(), b.data(), words, a.data());
      EXPECT_EQ(aliased, want_count);
      EXPECT_EQ(a, want);
    }
  }
}

TEST(KernelsTest, FilterNonzeroMatchesScalarAndAllowsInPlace) {
  std::mt19937 rng(17);
  std::vector<std::uint32_t> row(1024);
  std::uniform_int_distribution<std::uint32_t> coin(0, 3);
  for (auto& cell : row) cell = coin(rng) == 0 ? 0 : coin(rng);
  for (const IntersectKernel* kernel : AvailableKernels()) {
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
          std::size_t{9}, std::size_t{200}}) {
      const U32s items = SortedUnique(rng, n, 1023);
      U32s want;
      for (const std::uint32_t item : items) {
        if (row[item] != 0) want.push_back(item);
      }
      U32s out(items.size(), 0xDEADBEEF);
      out.resize(kernel->filter_nonzero(items.data(), items.size(), row.data(),
                                        out.data()));
      EXPECT_EQ(out, want) << kernel->name << " n=" << n;
      // In-place: out == items is part of the contract.
      U32s in_place = items;
      in_place.resize(kernel->filter_nonzero(in_place.data(), in_place.size(),
                                             row.data(), in_place.data()));
      EXPECT_EQ(in_place, want) << kernel->name << " n=" << n;
    }
  }
}

// --- TidSet dense/sparse boundary -------------------------------------

std::vector<Tid> TidsOf(const TidSet& set) {
  std::vector<Tid> scratch;
  const auto span = set.Tids(&scratch);
  return std::vector<Tid>(span.begin(), span.end());
}

TEST(TidSetTest, RepresentationIsTransparentAcrossTheCutover) {
  const Tid universe = 1024;
  std::mt19937 rng(23);
  // Sweep counts across the dense cutover (universe / kDensityCutover =
  // 32) including the exact boundary and both neighbours.
  const std::size_t cutover = universe / TidSet::kDensityCutover;
  for (const std::size_t count :
       {std::size_t{0}, std::size_t{1}, cutover - 1, cutover, cutover + 1,
        std::size_t{500}, static_cast<std::size_t>(universe)}) {
    std::vector<Tid> tids = SortedUnique(rng, count, universe - 1);
    TidSet set = TidSet::FromSorted(tids, universe);
    EXPECT_EQ(set.Count(), tids.size());
    EXPECT_EQ(TidsOf(set), tids) << "count " << count;
  }
}

TEST(TidSetTest, IntersectAgreesWithReferenceAcrossAllRepresentationPairs) {
  const Tid universe = 2048;
  std::mt19937 rng(29);
  // Sizes chosen so every pairing occurs: sparse∩sparse, sparse∩dense,
  // dense∩dense — plus results that land on either side of the cutover.
  const std::vector<std::size_t> sizes = {0,  3,   40,  63,  64,
                                          65, 200, 1024, 2000};
  for (const std::size_t sa : sizes) {
    for (const std::size_t sb : sizes) {
      const std::vector<Tid> ta = SortedUnique(rng, sa, universe - 1);
      const std::vector<Tid> tb = SortedUnique(rng, sb, universe - 1);
      const TidSet a = TidSet::FromSorted(ta, universe);
      const TidSet b = TidSet::FromSorted(tb, universe);
      TidSet result;
      TidSet::Intersect(a, b, &result);
      const std::vector<Tid> want = Reference(ta, tb);
      EXPECT_EQ(result.Count(), want.size())
          << "sa=" << sa << " sb=" << sb << " (dense " << a.dense() << "/"
          << b.dense() << ")";
      EXPECT_EQ(TidsOf(result), want)
          << "sa=" << sa << " sb=" << sb << " (dense " << a.dense() << "/"
          << b.dense() << ")";
    }
  }
}

TEST(TidSetTest, ConversionBoundaryFuzz) {
  // Fuzz seeds pinned around the density boundary: repeated intersections
  // must stay exact while results convert dense->sparse and operands mix
  // representations.
  for (const std::uint32_t seed : {1u, 2u, 3u, 5u, 8u, 13u}) {
    std::mt19937 rng(seed);
    const Tid universe = 512 + seed * 64;
    const std::size_t cutover = universe / TidSet::kDensityCutover;
    std::uniform_int_distribution<std::size_t> jitter(0, 2 * cutover);
    std::vector<Tid> current = SortedUnique(
        rng, universe / 2, universe - 1);  // start dense
    TidSet acc = TidSet::FromSorted(current, universe);
    for (int step = 0; step < 12; ++step) {
      const std::vector<Tid> other_tids =
          SortedUnique(rng, cutover + jitter(rng), universe - 1);
      const TidSet other = TidSet::FromSorted(other_tids, universe);
      TidSet next;
      TidSet::Intersect(acc, other, &next);
      current = Reference(current, other_tids);
      ASSERT_EQ(TidsOf(next), current) << "seed " << seed << " step " << step;
      acc = next;
      if (current.empty()) break;
    }
  }
}

// --- selection API ----------------------------------------------------

TEST(KernelsTest, AvailableKernelsStartsWithScalar) {
  const auto kernels = AvailableKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front()->id, KernelId::kScalar);
  EXPECT_STREQ(kernels.front()->name, "scalar");
  for (const IntersectKernel* kernel : kernels) {
    EXPECT_TRUE(CpuSupports(kernel->id)) << kernel->name;
  }
}

TEST(KernelsTest, ForceKernelSwitchesAndRejectsUnknownNames) {
  const IntersectKernel& original = Active();
  EXPECT_FALSE(ForceKernel("not-a-kernel"));
  EXPECT_STREQ(Active().name, original.name);  // unchanged on failure
  for (const IntersectKernel* kernel : AvailableKernels()) {
    ASSERT_TRUE(ForceKernel(kernel->name));
    EXPECT_EQ(Active().id, kernel->id);
  }
  ASSERT_TRUE(ForceKernel(original.name));  // restore for other tests
}

TEST(KernelsTest, CountersAdvanceWithWork) {
  const CounterSnapshot before = Counters();
  const U32s a{1, 2, 3, 4, 5};
  const U32s b{2, 4, 6};
  U32s out;
  IntersectInto(a, b, &out);
  const CounterSnapshot after = Counters();
  EXPECT_GE(after.calls, before.calls + 1);
  EXPECT_GE(after.elements_in, before.elements_in + a.size() + b.size());
  EXPECT_GE(after.elements_out, before.elements_out + 2);
}

}  // namespace
}  // namespace fim::kernels
