// End-to-end test of the fim-mine command-line tool (path injected by
// CMake via FIM_MINE_BINARY).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

int RunCli(const std::string& args) {
  const std::string cmd = std::string(FIM_MINE_BINARY) + " " + args;
  return std::system(cmd.c_str());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CliTest, MinesClosedSetsFromFimiFile) {
  const std::string input = TempPath("cli_input.fimi");
  const std::string output = TempPath("cli_output.txt");
  {
    std::ofstream f(input);
    f << "0 1\n0 1\n0 1 2\n2\n";
  }
  ASSERT_EQ(RunCli("-q -s 2 " + input + " " + output), 0);
  const std::string result = ReadFile(output);
  // Closed sets with support >= 2: {0,1} (3) and {2} (2).
  EXPECT_NE(result.find("0 1 (3)"), std::string::npos);
  EXPECT_NE(result.find("2 (2)"), std::string::npos);
}

TEST(CliTest, AllAlgorithmsAgreeOnSetCount) {
  const std::string input = TempPath("cli_input2.fimi");
  {
    std::ofstream f(input);
    f << "0 1 2\n0 3 4\n1 2 3\n0 1 2 3\n1 2\n0 1 3\n3 4\n2 3 4\n";
  }
  std::string first;
  for (const char* alg : {"ista", "carpenter-lists", "carpenter-table",
                          "flat-cumulative", "fpclose", "lcm"}) {
    const std::string output = TempPath(std::string("cli_out_") + alg);
    ASSERT_EQ(RunCli(std::string("-q -a ") + alg + " -s 3 " + input + " " +
                     output),
              0)
        << alg;
    std::string content = ReadFile(output);
    // Normalize: count lines (sets) — order may differ per algorithm.
    const auto count = std::count(content.begin(), content.end(), '\n');
    if (first.empty()) {
      first = std::to_string(count);
    } else {
      EXPECT_EQ(std::to_string(count), first) << alg;
    }
  }
}

TEST(CliTest, PercentSupport) {
  const std::string input = TempPath("cli_input3.fimi");
  const std::string output = TempPath("cli_out3.txt");
  {
    std::ofstream f(input);
    for (int i = 0; i < 10; ++i) f << "0 1\n";
    f << "2\n";
  }
  // 50% of 11 transactions -> min support 6: only {0,1}.
  ASSERT_EQ(RunCli("-q -S 50 " + input + " " + output), 0);
  const std::string result = ReadFile(output);
  EXPECT_NE(result.find("0 1 (10)"), std::string::npos);
  EXPECT_EQ(result.find("2 ("), std::string::npos);
}

TEST(CliTest, MissingInputFails) {
  EXPECT_NE(RunCli("-q /definitely/not/here.fimi"), 0);
}

TEST(CliTest, BadAlgorithmFails) {
  const std::string input = TempPath("cli_input4.fimi");
  {
    std::ofstream f(input);
    f << "0\n";
  }
  EXPECT_NE(RunCli("-q -a nope " + input), 0);
}

}  // namespace
