// Property tests: on randomized databases, every miner must produce the
// oracle's exact closed-set output, for every minimum support, under every
// ordering policy, with pruning/elimination on or off.

#include <gtest/gtest.h>

#include <cstdio>

#include "api/miner.h"
#include "carpenter/carpenter.h"
#include "data/generators.h"
#include "ista/ista.h"
#include "verify/closedness.h"
#include "verify/compare.h"
#include "verify/oracle.h"

namespace fim {
namespace {

struct RandomCase {
  std::size_t num_transactions;
  std::size_t num_items;
  double density;
  uint64_t seed;
};

std::vector<RandomCase> MakeCases() {
  std::vector<RandomCase> cases;
  uint64_t seed = 1000;
  for (std::size_t n : {1, 2, 3, 5, 8, 12}) {
    for (std::size_t m : {1, 4, 9, 16}) {
      for (double density : {0.15, 0.4, 0.7, 0.95}) {
        cases.push_back(RandomCase{n, m, density, ++seed});
      }
    }
  }
  return cases;
}

class RandomDbTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomDbTest, AllMinersMatchOracleForAllSupports) {
  const RandomCase c = GetParam();
  const TransactionDatabase db = GenerateRandomDense(
      c.num_transactions, c.num_items, c.density, c.seed);
  for (Support smin = 1; smin <= c.num_transactions + 1; ++smin) {
    auto expected = OracleClosedSets(db, smin);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_TRUE(VerifyClosedSets(db, expected.value(), smin).ok());
    for (Algorithm algorithm : AllAlgorithms()) {
      MinerOptions options;
      options.algorithm = algorithm;
      options.min_support = smin;
      auto mined = MineClosedCollect(db, options);
      ASSERT_TRUE(mined.ok()) << mined.status().ToString();
      ASSERT_TRUE(SameResults(expected.value(), mined.value()))
          << AlgorithmName(algorithm) << " smin=" << smin << " seed="
          << c.seed << "\n"
          << DiffResults(expected.value(), mined.value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomDbTest, ::testing::ValuesIn(MakeCases()),
                         [](const auto& param_info) {
                           const RandomCase& c = param_info.param;
                           char name[96];
                           std::snprintf(name, sizeof(name),
                                         "n%zu_m%zu_d%d_s%llu",
                                         c.num_transactions, c.num_items,
                                         static_cast<int>(c.density * 100),
                                         static_cast<unsigned long long>(
                                             c.seed));
                           return std::string(name);
                         });

// IsTa's repository pruning is forced to run after nearly every
// transaction; the output must not change.
TEST(IstaPruningTest, AggressivePruningNeverChangesOutput) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const TransactionDatabase db =
        GenerateRandomDense(10, 12, 0.45, seed * 77);
    for (Support smin : {1u, 2u, 3u, 5u, 8u}) {
      IstaOptions base;
      base.min_support = smin;
      base.prune_node_threshold = std::size_t{1} << 40;  // never prune
      ClosedSetCollector a;
      ASSERT_TRUE(MineClosedIsta(db, base, a.AsCallback()).ok());

      IstaOptions aggressive = base;
      aggressive.prune_node_threshold = 0;  // prune after every transaction
      IstaStats stats;
      ClosedSetCollector b;
      ASSERT_TRUE(
          MineClosedIsta(db, aggressive, b.AsCallback(), &stats).ok());

      EXPECT_TRUE(SameResults(a.sets(), b.sets()))
          << "seed=" << seed << " smin=" << smin << "\n"
          << DiffResults(a.sets(), b.sets());
      // When everything is filtered up front the miner never runs, so
      // only expect pruning activity when there was output to produce.
      if (smin > 1 && !b.sets().empty()) {
        EXPECT_GT(stats.prune_calls, 0u);
      }
    }
  }
}

// Item elimination in both Carpenter variants must be a pure optimization.
TEST(CarpenterEliminationTest, EliminationNeverChangesOutput) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const TransactionDatabase db =
        GenerateRandomDense(9, 10, 0.5, seed * 131);
    for (Support smin : {1u, 2u, 3u, 4u, 6u}) {
      for (bool table : {false, true}) {
        CarpenterOptions on;
        on.min_support = smin;
        on.item_elimination = true;
        CarpenterOptions off = on;
        off.item_elimination = false;
        ClosedSetCollector with;
        ClosedSetCollector without;
        auto run = table ? MineClosedCarpenterTable : MineClosedCarpenterLists;
        ASSERT_TRUE(run(db, on, with.AsCallback(), nullptr).ok());
        ASSERT_TRUE(run(db, off, without.AsCallback(), nullptr).ok());
        EXPECT_TRUE(SameResults(with.sets(), without.sets()))
            << (table ? "table" : "lists") << " seed=" << seed
            << " smin=" << smin << "\n"
            << DiffResults(with.sets(), without.sets());
      }
    }
  }
}

// All item/transaction order policies must give identical results.
TEST(OrderInvarianceTest, OrdersNeverChangeOutput) {
  const TransactionDatabase db = GenerateRandomDense(10, 12, 0.4, 4242);
  const Support smin = 2;
  auto expected = OracleClosedSets(db, smin);
  ASSERT_TRUE(expected.ok());
  for (Algorithm algorithm :
       {Algorithm::kIsta, Algorithm::kCarpenterLists,
        Algorithm::kCarpenterTable, Algorithm::kFlatCumulative}) {
    for (ItemOrder item_order :
         {ItemOrder::kNone, ItemOrder::kFrequencyAscending,
          ItemOrder::kFrequencyDescending}) {
      for (TransactionOrder tx_order :
           {TransactionOrder::kNone, TransactionOrder::kSizeAscending,
            TransactionOrder::kSizeDescending}) {
        MinerOptions options;
        options.algorithm = algorithm;
        options.min_support = smin;
        options.item_order = item_order;
        options.transaction_order = tx_order;
        auto mined = MineClosedCollect(db, options);
        ASSERT_TRUE(mined.ok());
        EXPECT_TRUE(SameResults(expected.value(), mined.value()))
            << AlgorithmName(algorithm) << " item_order="
            << static_cast<int>(item_order) << " tx_order="
            << static_cast<int>(tx_order) << "\n"
            << DiffResults(expected.value(), mined.value());
      }
    }
  }
}

// Structured (market-basket) data round: miners agree with each other on
// inputs too large for the subset oracle; IsTa is the reference.
TEST(StructuredDataTest, MinersAgreeOnMarketBasketData) {
  MarketBasketConfig config;
  config.num_items = 60;
  config.num_transactions = 300;
  config.avg_transaction_size = 8.0;
  config.num_patterns = 10;
  config.seed = 99;
  const TransactionDatabase db = GenerateMarketBasket(config);
  for (Support smin : {5u, 15u, 40u}) {
    MinerOptions reference;
    reference.min_support = smin;
    reference.algorithm = Algorithm::kIsta;
    auto expected = MineClosedCollect(db, reference);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(VerifyClosedSets(db, expected.value(), smin).ok());
    for (Algorithm algorithm : AllAlgorithms()) {
      MinerOptions options;
      options.algorithm = algorithm;
      options.min_support = smin;
      auto mined = MineClosedCollect(db, options);
      ASSERT_TRUE(mined.ok());
      EXPECT_TRUE(SameResults(expected.value(), mined.value()))
          << AlgorithmName(algorithm) << " smin=" << smin << "\n"
          << DiffResults(expected.value(), mined.value());
    }
  }
}

}  // namespace
}  // namespace fim
