// Differential testing beyond the oracle's reach: medium-sized random
// and structured databases where the exact subset-intersection oracle is
// infeasible. All fast miners must agree pairwise, and the reference
// output must pass the definitional soundness check. This tier exercises
// the IsTa pruning and repository paths on much deeper trees than the
// oracle-sized cases.

#include <gtest/gtest.h>

#include "api/miner.h"
#include "data/expression.h"
#include "data/generators.h"
#include "ista/ista.h"
#include "verify/closedness.h"
#include "verify/compare.h"

namespace fim {
namespace {

void CheckAllAgree(const TransactionDatabase& db, Support smin,
                   const std::string& label) {
  MinerOptions reference;
  reference.algorithm = Algorithm::kIsta;
  reference.min_support = smin;
  auto expected = MineClosedCollect(db, reference);
  ASSERT_TRUE(expected.ok()) << label;
  ASSERT_TRUE(VerifyClosedSets(db, expected.value(), smin).ok()) << label;

  for (Algorithm algorithm :
       {Algorithm::kCarpenterLists, Algorithm::kCarpenterTable,
        Algorithm::kLcm, Algorithm::kCharm, Algorithm::kTransposed,
        Algorithm::kFpClose}) {
    MinerOptions options;
    options.algorithm = algorithm;
    options.min_support = smin;
    auto mined = MineClosedCollect(db, options);
    ASSERT_TRUE(mined.ok()) << label << " " << AlgorithmName(algorithm);
    ASSERT_TRUE(SameResults(expected.value(), mined.value()))
        << label << " " << AlgorithmName(algorithm) << "\n"
        << DiffResults(expected.value(), mined.value());
  }

  // IsTa with pruning forced after every transaction must also agree.
  IstaOptions aggressive;
  aggressive.min_support = smin;
  aggressive.prune_node_threshold = 0;
  ClosedSetCollector pruned;
  ASSERT_TRUE(MineClosedIsta(db, aggressive, pruned.AsCallback()).ok());
  ASSERT_TRUE(SameResults(expected.value(), pruned.sets()))
      << label << " ista-aggressive-prune\n"
      << DiffResults(expected.value(), pruned.sets());
}

TEST(DifferentialLargeTest, MediumRandomDatabases) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (double density : {0.1, 0.3}) {
      const TransactionDatabase db =
          GenerateRandomDense(40, 30, density, seed * 1009);
      for (Support smin : {2u, 5u, 12u}) {
        CheckAllAgree(db, smin,
                      "random d=" + std::to_string(density) + " seed=" +
                          std::to_string(seed) + " smin=" +
                          std::to_string(smin));
      }
    }
  }
}

TEST(DifferentialLargeTest, ExpressionShapedDatabases) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ExpressionConfig config;
    config.num_genes = 80;
    config.num_conditions = 50;
    config.num_modules = 6;
    config.genes_per_module = 20;
    config.conditions_per_module = 12;
    config.noise_stddev = 0.12;
    config.seed = seed * 37;
    const ExpressionMatrix matrix = GenerateExpression(config);
    const TransactionDatabase db = Discretize(
        matrix, ExpressionOrientation::kConditionsAsTransactions);
    for (Support smin : {3u, 8u}) {
      CheckAllAgree(db, smin, "expression seed=" + std::to_string(seed));
    }
  }
}

TEST(DifferentialLargeTest, MarketBasketShapedDatabases) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    MarketBasketConfig config;
    config.num_items = 35;
    config.num_transactions = 150;
    config.avg_transaction_size = 7.0;
    config.num_patterns = 6;
    config.seed = seed * 53;
    const TransactionDatabase db = GenerateMarketBasket(config);
    for (Support smin : {3u, 10u}) {
      CheckAllAgree(db, smin, "basket seed=" + std::to_string(seed));
    }
  }
}

TEST(DifferentialLargeTest, NestedChainDatabases) {
  // Long chains of nested transactions: worst case for the closedness
  // report (every prefix is closed) and for duplicate pruning.
  std::vector<std::vector<ItemId>> tx;
  std::vector<ItemId> items;
  for (ItemId i = 0; i < 60; ++i) {
    items.push_back(i);
    tx.push_back(items);
    if (i % 3 == 0) tx.push_back(items);  // duplicates interleaved
  }
  const TransactionDatabase db = TransactionDatabase::FromTransactions(tx);
  for (Support smin : {1u, 2u, 10u, 40u}) {
    CheckAllAgree(db, smin, "nested smin=" + std::to_string(smin));
  }
}

}  // namespace
}  // namespace fim
