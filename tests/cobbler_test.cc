// Dedicated Cobbler tests: the row->column switch-over must produce the
// oracle's exact output wherever the switch happens — never (pure
// Carpenter), at the root (pure column mining), or anywhere in between.

#include <gtest/gtest.h>

#include "carpenter/cobbler.h"
#include "data/generators.h"
#include "verify/compare.h"
#include "verify/oracle.h"

namespace fim {
namespace {

std::vector<ClosedItemset> MineCobbler(const TransactionDatabase& db,
                                       Support smin,
                                       std::size_t switch_max_items,
                                       std::size_t switch_min_rows) {
  CobblerOptions options;
  options.min_support = smin;
  options.switch_max_items = switch_max_items;
  options.switch_min_rows = switch_min_rows;
  ClosedSetCollector collector;
  EXPECT_TRUE(MineClosedCobbler(db, options, collector.AsCallback()).ok());
  collector.SortCanonical();
  return collector.TakeSets();
}

TEST(CobblerTest, AllSwitchThresholdsMatchOracle) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const TransactionDatabase db =
        GenerateRandomDense(12, 14, 0.45, seed * 907);
    for (Support smin : {1u, 2u, 4u}) {
      auto expected = OracleClosedSets(db, smin);
      ASSERT_TRUE(expected.ok());
      // switch_max_items: 0 = never switch; 3/6 = switch mid-recursion
      // once intersections shrink; 1000 = switch at the root.
      for (std::size_t max_items : {0u, 3u, 6u, 1000u}) {
        for (std::size_t min_rows : {1u, 6u}) {
          const auto mined =
              MineCobbler(db, smin, max_items, min_rows);
          ASSERT_TRUE(SameResults(expected.value(), mined))
              << "seed " << seed << " smin " << smin << " max_items "
              << max_items << " min_rows " << min_rows << "\n"
              << DiffResults(expected.value(), mined);
        }
      }
    }
  }
}

TEST(CobblerTest, EliminationOnOffAgree) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const TransactionDatabase db =
        GenerateRandomDense(10, 10, 0.5, seed * 311);
    for (Support smin : {2u, 3u}) {
      CobblerOptions on;
      on.min_support = smin;
      on.switch_max_items = 4;
      CobblerOptions off = on;
      off.item_elimination = false;
      ClosedSetCollector a;
      ClosedSetCollector b;
      ASSERT_TRUE(MineClosedCobbler(db, on, a.AsCallback()).ok());
      ASSERT_TRUE(MineClosedCobbler(db, off, b.AsCallback()).ok());
      EXPECT_TRUE(SameResults(a.sets(), b.sets()))
          << DiffResults(a.sets(), b.sets());
    }
  }
}

TEST(CobblerTest, StatsReported) {
  const TransactionDatabase db = GenerateRandomDense(12, 10, 0.5, 999);
  CobblerOptions options;
  options.min_support = 2;
  options.switch_max_items = 4;
  CarpenterStats stats;
  ASSERT_TRUE(
      MineClosedCobbler(db, options, [](auto, auto) {}, &stats).ok());
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GT(stats.repo_sets, 0u);
}

TEST(CobblerTest, ZeroSupportRejected) {
  CobblerOptions options;
  options.min_support = 0;
  EXPECT_FALSE(MineClosedCobbler(TransactionDatabase::FromTransactions({{0}}),
                                 options, [](auto, auto) {})
                   .ok());
}

}  // namespace
}  // namespace fim
