// Tests of multi-threaded LCM: output (including order) must be
// identical to the sequential run on every input.

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/profiles.h"
#include "enumeration/lcm.h"
#include "verify/compare.h"

namespace fim {
namespace {

std::vector<ClosedItemset> MineWith(const TransactionDatabase& db, Support smin,
                               unsigned threads) {
  LcmOptions options;
  options.min_support = smin;
  options.num_threads = threads;
  ClosedSetCollector collector;
  EXPECT_TRUE(MineClosedLcm(db, options, collector.AsCallback()).ok());
  return collector.TakeSets();  // NOT canonicalized: order matters here
}

TEST(ParallelLcmTest, IdenticalOutputAndOrderOnRandomData) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const TransactionDatabase db =
        GenerateRandomDense(20, 14, 0.4, seed * 613);
    for (Support smin : {1u, 2u, 4u}) {
      const auto sequential = MineWith(db, smin, 1);
      for (unsigned threads : {2u, 4u, 8u}) {
        const auto parallel = MineWith(db, smin, threads);
        ASSERT_EQ(sequential, parallel)
            << "seed " << seed << " smin " << smin << " threads "
            << threads;
      }
    }
  }
}

TEST(ParallelLcmTest, IdenticalOnStructuredData) {
  const TransactionDatabase db = MakeYeastLike(0.03, 42);
  const auto sequential = MineWith(db, 10, 1);
  const auto parallel = MineWith(db, 10, 4);
  EXPECT_EQ(sequential, parallel);
  EXPECT_FALSE(sequential.empty());
}

TEST(ParallelLcmTest, MoreThreadsThanTasks) {
  const TransactionDatabase db =
      TransactionDatabase::FromTransactions({{0, 1}, {0, 1}, {2}});
  const auto sequential = MineWith(db, 1, 1);
  const auto parallel = MineWith(db, 1, 16);
  EXPECT_EQ(sequential, parallel);
}

TEST(ParallelLcmTest, EdgeCases) {
  EXPECT_TRUE(MineWith(TransactionDatabase(), 1, 4).empty());
  // Root-only output (all transactions identical).
  const TransactionDatabase db =
      TransactionDatabase::FromTransactions({{1, 2}, {1, 2}});
  const auto result = MineWith(db, 2, 4);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].items, (std::vector<ItemId>{1, 2}));
}

}  // namespace
}  // namespace fim
