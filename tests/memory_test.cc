// Tests of the memory-attribution layer (obs/memory.h): breakdown
// collector semantics (keep-max re-records, high-water of the sum),
// self-measurement exactness of the structure ApproxMemoryUsage()
// methods against manually computed capacities and — in FIM_MEM_PROFILE
// builds — against the allocation-domain tracker's ground truth, the
// report assembly and its JSON rendering, and output-neutrality: a
// mining run records the identical closed sets with and without a
// breakdown collector attached, at 1 and 4 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/miner.h"
#include "carpenter/repository.h"
#include "data/generators.h"
#include "data/transaction_database.h"
#include "ista/ista.h"
#include "ista/prefix_tree.h"
#include "kernels/tidset.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/sampler.h"
#include "stream/stream_miner.h"

namespace fim {
namespace {

using obs::MemoryBreakdown;
using obs::MemoryComponent;

// --- MemoryComponent ---------------------------------------------------

TEST(MemoryComponentTest, TotalBytesSumsSelfAndChildrenRecursively) {
  MemoryComponent root("root", 10);
  MemoryComponent child("child", 20);
  child.children.emplace_back("grandchild", 30);
  root.children.push_back(child);
  root.children.emplace_back("leaf", 5);
  EXPECT_EQ(root.TotalBytes(), 10u + 20u + 30u + 5u);
}

TEST(NestedVectorBytesTest, CountsSpineAndRowCapacities) {
  std::vector<std::vector<int>> rows(3);
  rows[0].reserve(10);
  rows[1].reserve(4);
  std::size_t expected = rows.capacity() * sizeof(std::vector<int>);
  for (const auto& row : rows) expected += row.capacity() * sizeof(int);
  EXPECT_EQ(obs::NestedVectorBytes(rows), expected);
}

// --- MemoryBreakdown ---------------------------------------------------

TEST(MemoryBreakdownTest, RecordKeepsLargerSnapshotPerName) {
  MemoryBreakdown breakdown;
  MemoryComponent small("tree", 100);
  MemoryComponent large("tree", 50);
  large.children.emplace_back("arena", 500);
  breakdown.Record(small);
  breakdown.Record(large);          // larger total (550) replaces 100
  breakdown.Record(small);          // smaller again: ignored
  const auto components = breakdown.Components();
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].TotalBytes(), 550u);
  ASSERT_EQ(components[0].children.size(), 1u);
  EXPECT_EQ(components[0].children[0].name, "arena");
  EXPECT_EQ(breakdown.AccountedBytes(), 550u);
}

TEST(MemoryBreakdownTest, HighWaterTracksSumAcrossRecordPoints) {
  MemoryBreakdown breakdown;
  breakdown.RecordBytes("a", 100);
  breakdown.RecordBytes("b", 200);
  EXPECT_EQ(breakdown.HighWaterBytes(), 300u);
  // "b" shrinks: the keep-max component stays at 200, the high water
  // stays at the historical 300 even if components were re-recorded
  // smaller.
  breakdown.RecordBytes("b", 50);
  EXPECT_EQ(breakdown.AccountedBytes(), 300u);
  EXPECT_GE(breakdown.HighWaterBytes(), 300u);
}

TEST(MemoryBreakdownTest, ComponentsKeepFirstRecordOrder) {
  MemoryBreakdown breakdown;
  breakdown.RecordBytes("z", 1);
  breakdown.RecordBytes("a", 2);
  breakdown.RecordBytes("z", 3);
  const auto components = breakdown.Components();
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].name, "z");
  EXPECT_EQ(components[1].name, "a");
}

// --- self-measurement exactness ---------------------------------------

TEST(ApproxMemoryUsageTest, DatabaseMatchesManualCapacitySum) {
  TransactionDatabase db;
  db.AddTransaction({1, 2, 3});
  db.AddTransaction({2, 3});
  db.AddTransaction({5});
  const MemoryComponent component = db.ApproxMemoryUsage();
  EXPECT_EQ(component.name, "database");
  std::size_t expected =
      db.transactions().capacity() * sizeof(std::vector<ItemId>);
  for (const auto& t : db.transactions()) {
    expected += t.capacity() * sizeof(ItemId);
  }
  EXPECT_EQ(component.TotalBytes(), expected);
}

TEST(ApproxMemoryUsageTest, TidSetCountsWhateverBuffersExist) {
  std::vector<Tid> sparse_tids = {1, 9, 17};
  const kernels::TidSet sparse =
      kernels::TidSet::FromSorted(sparse_tids, /*universe=*/4096);
  EXPECT_FALSE(sparse.dense());
  EXPECT_GE(sparse.ApproxMemoryUsage(), sparse_tids.size() * sizeof(Tid));
  // A dense set owns a bit-vector; the reported bytes track the
  // representation, not go stale.
  std::vector<Tid> dense_tids(512);
  for (Tid t = 0; t < 512; ++t) dense_tids[t] = t;
  const kernels::TidSet dense =
      kernels::TidSet::FromSorted(dense_tids, /*universe=*/512);
  EXPECT_TRUE(dense.dense());
  EXPECT_GE(dense.ApproxMemoryUsage(), 512 / 8);
}

TEST(ApproxMemoryUsageTest, PrefixTreeSplitsLiveAndGarbage) {
  IstaPrefixTree tree(8);
  tree.AddTransaction(std::vector<ItemId>{0, 1, 2});
  tree.AddTransaction(std::vector<ItemId>{1, 2, 3});
  const MemoryComponent component = tree.ApproxMemoryUsage();
  EXPECT_EQ(component.name, "prefix-tree");
  ASSERT_GE(component.children.size(), 2u);
  std::set<std::string> names;
  for (const auto& child : component.children) names.insert(child.name);
  EXPECT_TRUE(names.count("node-columns"));
  EXPECT_TRUE(names.count("link-arena"));
  EXPECT_GT(component.TotalBytes(), 0u);
}

TEST(ApproxMemoryUsageTest, RepositoryReportsArenaCapacity) {
  ClosedSetRepository repo(8);
  repo.InsertIfAbsent(std::vector<ItemId>{1, 3});
  repo.InsertIfAbsent(std::vector<ItemId>{2, 3, 5});
  const MemoryComponent component = repo.ApproxMemoryUsage();
  EXPECT_EQ(component.name, "repository");
  EXPECT_GT(component.TotalBytes(), 0u);
}

TEST(ApproxMemoryUsageTest, StreamMinerBreaksDownLiveTreeAndSegments) {
  StreamMinerOptions options;
  options.max_items = 16;
  options.pane_size = 2;
  options.window_panes = 2;
  StreamMiner miner(options);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(miner.AddTransaction(std::vector<ItemId>{1, 2, 3}).ok());
  }
  const MemoryComponent component = miner.ApproxMemoryUsage();
  EXPECT_EQ(component.name, "stream");
  bool has_live = false;
  bool has_segment = false;
  for (const auto& child : component.children) {
    if (child.name == "live-tree") has_live = true;
    if (child.name.rfind("segment-", 0) == 0) has_segment = true;
  }
  EXPECT_TRUE(has_live);
  EXPECT_TRUE(has_segment);
  EXPECT_GT(component.TotalBytes(), 0u);
}

// --- allocation-domain tracker ----------------------------------------

TEST(MemProfileTest, SnapshotDisabledWithoutBuildFlag) {
  const obs::MemProfileSnapshot snapshot = obs::SnapshotMemProfile();
  EXPECT_EQ(snapshot.enabled, obs::MemProfileCompiled());
  if (!obs::MemProfileCompiled()) {
    EXPECT_EQ(snapshot.live_bytes, 0u);
    EXPECT_EQ(snapshot.allocs, 0u);
  }
}

// Accounting exactness: the self-measured capacity bytes of a structure
// built inside a domain scope must match the allocator-counted live
// bytes of that domain within a small tolerance (the allocator side
// additionally sees short-lived scratch vectors; the capacity side is
// a subset of what was requested).
TEST(MemProfileTest, SelfMeasurementMatchesDomainLiveBytes) {
  if (!obs::MemProfileCompiled()) {
    GTEST_SKIP() << "FIM_MEM_PROFILE not compiled in";
  }
  const auto domain_live = [](obs::MemDomain domain) {
    return obs::SnapshotMemProfile()
        .domains[static_cast<std::size_t>(domain)]
        .live_bytes;
  };
  const std::uint64_t before = domain_live(obs::MemDomain::kIstaTree);
  auto* tree = [] {
    obs::MemDomainScope scope(obs::MemDomain::kIstaTree);
    auto* t = new IstaPrefixTree(64);
    for (ItemId base = 0; base < 32; ++base) {
      t->AddTransaction(std::vector<ItemId>{base, ItemId(base + 8),
                                            ItemId(base + 16)});
    }
    return t;
  }();
  const std::uint64_t after = domain_live(obs::MemDomain::kIstaTree);
  const std::uint64_t tracked = after - before;
  const std::size_t measured = tree->ApproxMemoryUsage().TotalBytes();
  // The tracker additionally counts the IstaPrefixTree object itself and
  // any live scratch; the capacity sum must cover the bulk of it.
  EXPECT_LE(measured, tracked);
  EXPECT_GE(measured + 4096, tracked * 8 / 10)
      << "measured " << measured << " vs tracked " << tracked;
  {
    obs::MemDomainScope scope(obs::MemDomain::kIstaTree);
    delete tree;
  }
  // Frees are attributed to the allocating domain: the domain returns
  // to its starting live count no matter where the delete ran.
  EXPECT_EQ(domain_live(obs::MemDomain::kIstaTree), before);
}

TEST(MemProfileTest, ScopeNestingRestoresPreviousTag) {
  if (!obs::MemProfileCompiled()) {
    GTEST_SKIP() << "FIM_MEM_PROFILE not compiled in";
  }
  const auto reader_live = [] {
    return obs::SnapshotMemProfile()
        .domains[static_cast<std::size_t>(obs::MemDomain::kReader)]
        .live_bytes;
  };
  const std::uint64_t before = reader_live();
  std::vector<char>* block = nullptr;
  {
    obs::MemDomainScope outer(obs::MemDomain::kReader);
    {
      obs::MemDomainScope inner(obs::MemDomain::kRecode);
      // Allocations here belong to kRecode, not kReader.
    }
    block = new std::vector<char>(1 << 14);
  }
  EXPECT_GE(reader_live(), before + (1 << 14));
  delete block;
  EXPECT_EQ(reader_live(), before);
}

// --- report assembly and rendering ------------------------------------

TEST(MemoryReportTest, BuildReportSumsComponentsAndReadsRss) {
  MemoryBreakdown breakdown;
  breakdown.RecordBytes("a", 1000);
  breakdown.RecordBytes("b", 500);
  const obs::MemoryReport report = obs::BuildMemoryReport(breakdown);
  EXPECT_EQ(report.accounted_bytes, 1500u);
  EXPECT_EQ(report.high_water_bytes, 1500u);
  if (report.peak_rss.known) {
    EXPECT_GT(report.peak_rss.bytes, 0u);
    EXPECT_GT(report.RssCoverage(), 0.0);
  } else {
    EXPECT_LT(report.RssCoverage(), 0.0);
  }
}

TEST(MemoryReportTest, JsonSectionParsesAndSumsConsistently) {
  MemoryBreakdown breakdown;
  MemoryComponent tree("tree", 64);
  tree.children.emplace_back("arena", 256);
  tree.children.emplace_back("scratch", 32);
  breakdown.Record(tree);
  breakdown.RecordBytes("tables", 128);
  const obs::MemoryReport memory = obs::BuildMemoryReport(breakdown);

  obs::StatsReport report;
  report.tool = "test";
  report.algorithm = "ista";
  report.memory = &memory;
  auto parsed = obs::ParseJson(obs::RenderStatsJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* section = parsed.value().Find("memory");
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(section->Find("accounted_bytes")->AsNumber(), 64 + 256 + 32 + 128);
  const obs::JsonValue* components = section->Find("components");
  ASSERT_NE(components, nullptr);
  ASSERT_EQ(components->AsArray().size(), 2u);
  const obs::JsonValue& first = components->AsArray()[0];
  EXPECT_EQ(first.Find("name")->AsString(), "tree");
  EXPECT_EQ(first.Find("self_bytes")->AsNumber(), 64);
  EXPECT_EQ(first.Find("total_bytes")->AsNumber(), 64 + 256 + 32);
  // total_bytes of every node equals self + children's totals.
  double child_total = 0;
  for (const obs::JsonValue& child : first.Find("children")->AsArray()) {
    child_total += child.Find("total_bytes")->AsNumber();
  }
  EXPECT_EQ(first.Find("total_bytes")->AsNumber(),
            first.Find("self_bytes")->AsNumber() + child_total);
  // The profile member is the object or null, never absent.
  const obs::JsonValue* profile = section->Find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->is_object(), obs::MemProfileCompiled());
}

TEST(MemoryReportTest, TextRenderingShowsBreakdownTree) {
  MemoryBreakdown breakdown;
  MemoryComponent tree("prefix-trees", 0);
  tree.children.emplace_back("shard-0", 1 << 20);
  breakdown.Record(tree);
  const obs::MemoryReport memory = obs::BuildMemoryReport(breakdown);
  obs::StatsReport report;
  report.memory = &memory;
  const std::string text = obs::RenderStatsText(report);
  EXPECT_NE(text.find("memory:"), std::string::npos);
  EXPECT_NE(text.find("prefix-trees"), std::string::npos);
  EXPECT_NE(text.find("shard-0"), std::string::npos);
}

// --- sampler mem lane --------------------------------------------------

TEST(SamplerMemTest, EmitsMemObjectWhenSourceAttached) {
  std::ostringstream out;
  {
    obs::MetricsSamplerOptions options;
    options.period = std::chrono::milliseconds(3600 * 1000);
    options.accounted_bytes = [] { return std::size_t{12345}; };
    obs::MetricsSampler sampler(options, &out);
    sampler.Stop();  // final sample
  }
  std::string line = out.str();
  line.resize(line.find('\n'));  // first JSONL record
  auto parsed = obs::ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  const obs::JsonValue* mem = parsed.value().Find("mem");
  ASSERT_NE(mem, nullptr);
  ASSERT_NE(mem->Find("accounted_bytes"), nullptr);
  EXPECT_EQ(mem->Find("accounted_bytes")->AsNumber(), 12345);
  // The tracker's live_bytes rides along exactly when compiled in.
  EXPECT_EQ(mem->Find("live_bytes") != nullptr, obs::MemProfileCompiled());
}

TEST(SamplerMemTest, OmitsMemObjectWithoutAnySource) {
  std::ostringstream out;
  {
    obs::MetricsSamplerOptions options;
    options.period = std::chrono::milliseconds(3600 * 1000);
    obs::MetricsSampler sampler(options, &out);
    sampler.Stop();
  }
  std::string line = out.str();
  line.resize(line.find('\n'));
  auto parsed = obs::ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  // Without an accounted source the object appears only when the
  // allocation tracker is compiled in (live_bytes is then measured).
  EXPECT_EQ(parsed.value().Find("mem") != nullptr, obs::MemProfileCompiled());
}

// --- output neutrality -------------------------------------------------

std::vector<std::pair<std::vector<ItemId>, Support>> MineWith(
    const TransactionDatabase& db, Algorithm algorithm, unsigned threads,
    MemoryBreakdown* memory) {
  MinerOptions options;
  options.algorithm = algorithm;
  options.min_support = 4;
  options.num_threads = threads;
  options.memory = memory;
  auto result = MineClosedCollect(db, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::vector<std::pair<std::vector<ItemId>, Support>> sets;
  if (result.ok()) {
    for (const auto& set : result.value()) {
      sets.emplace_back(set.items, set.support);
    }
  }
  std::sort(sets.begin(), sets.end());
  return sets;
}

TEST(MemoryNeutralityTest, BreakdownAttachmentDoesNotChangeResults) {
  MarketBasketConfig config;
  config.num_items = 60;
  config.num_transactions = 500;
  config.avg_transaction_size = 5.0;
  config.num_patterns = 12;
  config.seed = 11;
  const TransactionDatabase db = GenerateMarketBasket(config);
  for (const Algorithm algorithm :
       {Algorithm::kIsta, Algorithm::kCarpenterLists,
        Algorithm::kCarpenterTable, Algorithm::kLcm, Algorithm::kCharm,
        Algorithm::kFpClose, Algorithm::kTransposed,
        Algorithm::kFlatCumulative, Algorithm::kCobbler}) {
    const auto baseline = MineWith(db, algorithm, 1, nullptr);
    ASSERT_FALSE(baseline.empty());
    for (const unsigned threads : {1u, 4u}) {
      MemoryBreakdown memory;
      const auto with_collector = MineWith(db, algorithm, threads, &memory);
      EXPECT_EQ(with_collector, baseline)
          << "algorithm " << AlgorithmName(algorithm) << " at " << threads
          << " thread(s) with a collector attached";
      EXPECT_GT(memory.AccountedBytes(), 0u)
          << AlgorithmName(algorithm) << " recorded nothing";
    }
  }
}

TEST(MemoryNeutralityTest, IstaParallelRecordsPerShardTrees) {
  MarketBasketConfig config;
  config.num_items = 40;
  config.num_transactions = 400;
  config.avg_transaction_size = 4.0;
  config.seed = 3;
  const TransactionDatabase db = GenerateMarketBasket(config);
  IstaOptions options;
  options.min_support = 3;
  options.num_threads = 4;
  MemoryBreakdown memory;
  options.memory = &memory;
  std::size_t sets = 0;
  ASSERT_TRUE(MineClosedIsta(db, options,
                             [&sets](std::span<const ItemId>, Support) {
                               ++sets;
                             })
                  .ok());
  EXPECT_GT(sets, 0u);
  bool found_trees = false;
  for (const auto& component : memory.Components()) {
    if (component.name == "prefix-trees") {
      found_trees = true;
      EXPECT_FALSE(component.children.empty());
    }
  }
  EXPECT_TRUE(found_trees);
}

}  // namespace
}  // namespace fim
