// libFuzzer harness for the `fim-tree-v1` binary loader
// (IstaPrefixTree::Deserialize). Checkpoints cross process and machine
// boundaries, so the loader must treat every byte as hostile: any input
// either deserializes into a tree that passes full invariant validation
// or yields a clean InvalidArgument — never a crash, hang, leak, or
// oversized allocation. A blob that validates must also re-serialize to
// exactly the bytes the loader consumed (the format is a bit-exact
// node-layout dump).

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "ista/prefix_tree.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (size_t{1} << 20)) return 0;
  const std::string input(reinterpret_cast<const char*>(data), size);
  std::istringstream in(input);
  auto tree = fim::IstaPrefixTree::Deserialize(in);
  if (!tree.ok()) return 0;
  const std::streampos consumed = in.tellg();
  std::ostringstream out;
  if (!tree.value().SerializeTo(out).ok()) __builtin_trap();
  const std::string rewritten = out.str();
  // The loader consumed exactly one blob; re-serializing the validated
  // tree must reproduce those bytes bit for bit.
  if (consumed >= 0 &&
      rewritten != input.substr(0, static_cast<size_t>(consumed))) {
    __builtin_trap();
  }
  return 0;
}
