// Standalone replacement for the libFuzzer driver, used when the
// toolchain has no -fsanitize=fuzzer (e.g. GCC): runs every file named
// on the command line — directories are walked recursively — through
// LLVMFuzzerTestOneInput once. This turns the seed corpora into plain
// regression tests on every toolchain, so the harnesses cannot bitrot
// between fuzzing runs. Dash-prefixed arguments (libFuzzer flags such
// as -runs=0) are accepted and ignored so the ctest command line is
// identical under both drivers.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::size_t RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz driver: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t executed = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;
    const std::filesystem::path path(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) executed += RunFile(entry.path());
      }
    } else if (std::filesystem::exists(path, ec)) {
      executed += RunFile(path);
    } else {
      std::fprintf(stderr, "fuzz driver: no such input %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("fuzz driver: %zu inputs executed, no crashes\n", executed);
  return 0;
}
