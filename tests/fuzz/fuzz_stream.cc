// libFuzzer harness for the `fim-stream-v1` checkpoint loader
// (StreamMiner::RestoreFrom) — the container format around fim-tree-v1
// blobs, including counters, the pending duplicate run and the pane
// bookkeeping. Every input must restore cleanly or fail with a clean
// InvalidArgument; a checkpoint that restores must itself checkpoint
// again, and that second-generation checkpoint must restore too (the
// write path and the read path agree on the format).

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "stream/stream_miner.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (size_t{1} << 20)) return 0;
  std::istringstream in(std::string(reinterpret_cast<const char*>(data), size));
  auto miner = fim::StreamMiner::RestoreFrom(in);
  if (!miner.ok()) return 0;
  std::ostringstream out;
  if (!miner.value()->CheckpointTo(out).ok()) __builtin_trap();
  std::istringstream second(out.str());
  auto restored = fim::StreamMiner::RestoreFrom(second);
  if (!restored.ok()) __builtin_trap();
  return 0;
}
