// Seed-corpus generator for the fuzz harnesses. Binary seeds (the
// fim-tree-v1 and fim-stream-v1 blobs) are produced from the live
// serializers at build time instead of being checked in, so the corpora
// track format changes automatically; the text FIMI seeds live in
// tests/fuzz/corpus/fimi/ under version control. Usage:
//
//   fuzz_make_seeds <output-dir>
//
// creates <output-dir>/{fimi,tree,stream}/ and fills each with a
// handful of valid blobs plus a truncated and a bit-flipped variant
// (the loaders must reject those cleanly, and the mutants give the
// fuzzer a head start on the interesting error paths).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "data/fimi_io.h"
#include "data/transaction_database.h"
#include "ista/prefix_tree.h"
#include "stream/stream_miner.h"

namespace {

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const std::string& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  FIM_CHECK(out.good()) << "cannot create seed " << (dir / name).string();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  FIM_CHECK(out.good()) << "short write for seed " << (dir / name).string();
}

// Valid blob plus the two canonical mutants every loader must survive.
void WriteSeedFamily(const std::filesystem::path& dir, const std::string& stem,
                     const std::string& bytes) {
  WriteSeed(dir, stem + ".bin", bytes);
  if (bytes.size() > 8)
    WriteSeed(dir, stem + "_truncated.bin", bytes.substr(0, bytes.size() / 2));
  if (!bytes.empty()) {
    std::string flipped = bytes;
    flipped[flipped.size() / 2] = static_cast<char>(
        static_cast<unsigned char>(flipped[flipped.size() / 2]) ^ 0x5a);
    WriteSeed(dir, stem + "_bitflip.bin", flipped);
  }
}

// The example stream from the paper-derived tests: small, with
// duplicate runs and overlapping itemsets, so the serialized trees have
// shared prefixes, stored intersection nodes and weight > 1 edges.
const std::vector<std::vector<fim::ItemId>>& SampleTransactions() {
  static const std::vector<std::vector<fim::ItemId>> kTransactions = {
      {0, 1, 2}, {0, 1, 2}, {1, 2, 3}, {0, 2, 3, 4},
      {4},       {0, 1},    {2, 3},    {0, 1, 2, 3, 4},
  };
  return kTransactions;
}

std::string SerializedTree() {
  fim::IstaPrefixTree tree(8);
  for (const auto& txn : SampleTransactions()) tree.AddTransaction(txn);
  std::ostringstream out;
  FIM_CHECK(tree.SerializeTo(out).ok());
  return out.str();
}

std::string StreamCheckpoint(std::size_t pane_size, std::size_t window_panes) {
  fim::StreamMinerOptions options;
  options.max_items = 8;
  options.pane_size = pane_size;
  options.window_panes = window_panes;
  fim::StreamMiner miner(options);
  for (const auto& txn : SampleTransactions())
    FIM_CHECK(miner.AddTransaction(txn).ok());
  std::ostringstream out;
  FIM_CHECK(miner.CheckpointTo(out).ok());
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  const std::filesystem::path fimi_dir = root / "fimi";
  const std::filesystem::path tree_dir = root / "tree";
  const std::filesystem::path stream_dir = root / "stream";
  std::filesystem::create_directories(fimi_dir);
  std::filesystem::create_directories(tree_dir);
  std::filesystem::create_directories(stream_dir);

  // FIMI: render the sample database through the real writer (the
  // checked-in corpus under tests/fuzz/corpus/fimi/ covers the
  // hand-written edge cases; this one tracks the writer).
  fim::TransactionDatabase db;
  for (const auto& txn : SampleTransactions()) db.AddTransaction(txn);
  WriteSeed(fimi_dir, "sample.fimi", fim::ToFimiString(db));

  WriteSeedFamily(tree_dir, "tree_sample", SerializedTree());
  WriteSeedFamily(stream_dir, "stream_landmark", StreamCheckpoint(0, 0));
  WriteSeedFamily(stream_dir, "stream_window", StreamCheckpoint(3, 2));

  std::printf("seed corpora written under %s\n", root.c_str());
  return 0;
}
