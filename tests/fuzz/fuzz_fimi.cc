// libFuzzer harness for the FIMI text reader — the parser every tool
// points at user-supplied files. Any input must either parse cleanly or
// come back as a Status; beyond that, a database that parsed must
// survive the render/re-parse round trip (ToFimiString output is by
// construction valid FIMI).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "data/fimi_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Parsing is linear, but the round trip below holds the database and
  // two text copies at once; 1 MiB keeps the fuzzer out of OOM land.
  if (size > (size_t{1} << 20)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto db = fim::ParseFimi(text);
  if (!db.ok()) return 0;
  const std::string rendered = fim::ToFimiString(db.value());
  auto again = fim::ParseFimi(rendered);
  if (!again.ok()) __builtin_trap();
  if (again.value().transactions() != db.value().transactions())
    __builtin_trap();
  return 0;
}
