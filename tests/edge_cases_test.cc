// Edge-case coverage for every miner: degenerate inputs, extreme support
// thresholds, invalid options.

#include <gtest/gtest.h>

#include "api/miner.h"

namespace fim {
namespace {

class EdgeCaseTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  std::vector<ClosedItemset> Mine(const TransactionDatabase& db,
                                  Support smin) {
    MinerOptions options;
    options.algorithm = GetParam();
    options.min_support = smin;
    auto result = MineClosedCollect(db, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : std::vector<ClosedItemset>{};
  }
};

TEST_P(EdgeCaseTest, EmptyDatabase) {
  EXPECT_TRUE(Mine(TransactionDatabase(), 1).empty());
}

TEST_P(EdgeCaseTest, ZeroSupportRejected) {
  MinerOptions options;
  options.algorithm = GetParam();
  options.min_support = 0;
  auto result =
      MineClosedCollect(TransactionDatabase::FromTransactions({{0}}), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(EdgeCaseTest, SingleTransaction) {
  const auto sets =
      Mine(TransactionDatabase::FromTransactions({{2, 5, 9}}), 1);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].items, (std::vector<ItemId>{2, 5, 9}));
  EXPECT_EQ(sets[0].support, 1u);
}

TEST_P(EdgeCaseTest, SingleItemManyTransactions) {
  const auto sets = Mine(
      TransactionDatabase::FromTransactions({{0}, {0}, {0}, {0}}), 3);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].items, (std::vector<ItemId>{0}));
  EXPECT_EQ(sets[0].support, 4u);
}

TEST_P(EdgeCaseTest, SupportAboveTransactionCount) {
  EXPECT_TRUE(
      Mine(TransactionDatabase::FromTransactions({{0}, {0, 1}}), 3).empty());
}

TEST_P(EdgeCaseTest, IdenticalTransactions) {
  const auto sets = Mine(
      TransactionDatabase::FromTransactions({{1, 2}, {1, 2}, {1, 2}}), 1);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].support, 3u);
}

TEST_P(EdgeCaseTest, DisjointTransactions) {
  const auto sets = Mine(
      TransactionDatabase::FromTransactions({{0}, {1}, {2}, {3}}), 1);
  EXPECT_EQ(sets.size(), 4u);
  EXPECT_TRUE(
      Mine(TransactionDatabase::FromTransactions({{0}, {1}, {2}, {3}}), 2)
          .empty());
}

TEST_P(EdgeCaseTest, NestedTransactions) {
  // t1 superset of t2 superset of t3.
  const auto sets = Mine(
      TransactionDatabase::FromTransactions({{0, 1, 2, 3}, {1, 2, 3}, {2}}),
      1);
  ASSERT_EQ(sets.size(), 3u);
  // {2} has support 3, {1,2,3} support 2, {0,1,2,3} support 1.
  for (const auto& set : sets) {
    if (set.items.size() == 1) {
      EXPECT_EQ(set.support, 3u);
    }
    if (set.items.size() == 3) {
      EXPECT_EQ(set.support, 2u);
    }
    if (set.items.size() == 4) {
      EXPECT_EQ(set.support, 1u);
    }
  }
}

TEST_P(EdgeCaseTest, SparseItemIds) {
  // Large, non-contiguous item ids must work (item base is 1000001).
  const auto sets = Mine(TransactionDatabase::FromTransactions(
                             {{7, 500000, 1000000}, {7, 1000000}}),
                         2);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].items, (std::vector<ItemId>{7, 1000000}));
}

TEST_P(EdgeCaseTest, AllItemsEverywhere) {
  const auto sets = Mine(TransactionDatabase::FromTransactions(
                             {{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2}}),
                         2);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].items, (std::vector<ItemId>{0, 1, 2}));
  EXPECT_EQ(sets[0].support, 4u);
}

TEST_P(EdgeCaseTest, MinSupportEqualsTransactionCount) {
  const auto sets = Mine(TransactionDatabase::FromTransactions(
                             {{0, 1}, {1, 2}, {1, 3}}),
                         3);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].items, (std::vector<ItemId>{1}));
  EXPECT_EQ(sets[0].support, 3u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, EdgeCaseTest,
                         ::testing::ValuesIn(AllAlgorithms()),
                         [](const auto& param_info) {
                           std::string name = AlgorithmName(param_info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ApiTest, AlgorithmNamesRoundTrip) {
  for (Algorithm algorithm : AllAlgorithms()) {
    auto parsed = ParseAlgorithm(AlgorithmName(algorithm));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), algorithm);
  }
  EXPECT_FALSE(ParseAlgorithm("nope").ok());
}

TEST(ApiTest, CollectReturnsCanonicalOrder) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1}, {1, 2}, {0, 1}, {2}});
  MinerOptions options;
  options.min_support = 1;
  auto result = MineClosedCollect(db, options);
  ASSERT_TRUE(result.ok());
  const auto& sets = result.value();
  for (std::size_t i = 1; i < sets.size(); ++i) {
    EXPECT_TRUE(ClosedItemsetLess(sets[i - 1], sets[i]));
  }
}

}  // namespace
}  // namespace fim
