// Tests of the observability subsystem: metric registry semantics,
// concurrent counter increments (exercised under TSan in CI), span
// nesting and aggregation, JSON writer/parser round-trips, the
// MinerStats snapshot, and — the core contract — that requesting stats
// or a trace never changes any miner's output at any thread count.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "api/miner.h"
#include "common/sync.h"
#include "data/generators.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/miner_stats.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace fim {
namespace {

// --- metrics ----------------------------------------------------------

TEST(MetricsTest, CounterBasics) {
  obs::Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(MetricsTest, DistributionQuantilesFromHistogram) {
  obs::Distribution dist;
  EXPECT_DOUBLE_EQ(dist.Get().Quantile(0.5), 0.0);  // empty
  // 100 values 1..100: the power-of-two buckets give approximate
  // percentiles that must stay within the enclosing bucket's range.
  for (std::uint64_t v = 1; v <= 100; ++v) dist.Record(v);
  const auto snapshot = dist.Get();
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.0), 1.0);    // clamped to min
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 100.0);  // clamped to max
  const double p50 = snapshot.Quantile(0.50);
  EXPECT_GE(p50, 32.0);  // rank 50.5 falls in bucket [32, 64)
  EXPECT_LT(p50, 64.0);
  const double p95 = snapshot.Quantile(0.95);
  EXPECT_GE(p95, 64.0);  // rank 95 falls in bucket [64, 100]
  EXPECT_LE(p95, 100.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, snapshot.Quantile(0.99));

  // A single value is every percentile.
  obs::Distribution one;
  one.Record(7);
  EXPECT_DOUBLE_EQ(one.Get().Quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(one.Get().Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(one.Get().Quantile(1.0), 7.0);

  // Zero lands in its own bucket 0.
  obs::Distribution zeros;
  zeros.Record(0);
  zeros.Record(0);
  EXPECT_DOUBLE_EQ(zeros.Get().Quantile(0.99), 0.0);
}

TEST(MetricsTest, DistributionBucketIndexing) {
  EXPECT_EQ(obs::Distribution::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Distribution::BucketIndex(1), 1u);
  EXPECT_EQ(obs::Distribution::BucketIndex(2), 2u);
  EXPECT_EQ(obs::Distribution::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Distribution::BucketIndex(4), 3u);
  EXPECT_EQ(obs::Distribution::BucketIndex(std::uint64_t{1} << 63),
            obs::Distribution::kNumBuckets - 1);
  EXPECT_EQ(obs::Distribution::BucketIndex(~std::uint64_t{0}),
            obs::Distribution::kNumBuckets - 1);
}

TEST(MetricsTest, DistributionBasics) {
  obs::Distribution dist;
  EXPECT_EQ(dist.Get().count, 0u);
  EXPECT_EQ(dist.Get().min, 0u);
  EXPECT_DOUBLE_EQ(dist.Get().Mean(), 0.0);
  dist.Record(10);
  dist.Record(2);
  dist.Record(6);
  const auto snapshot = dist.Get();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.sum, 18u);
  EXPECT_EQ(snapshot.min, 2u);
  EXPECT_EQ(snapshot.max, 10u);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 6.0);
  dist.Reset();
  EXPECT_EQ(dist.Get().count, 0u);
  EXPECT_EQ(dist.Get().min, 0u);
}

TEST(MetricsTest, RegistryFindsSameMetricByName) {
  obs::MetricRegistry registry;
  obs::Counter& a = registry.GetCounter("x");
  obs::Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(registry.CounterValues().at("x"), 7u);
  registry.GetDistribution("d").Record(5);
  EXPECT_EQ(registry.DistributionValues().at("d").sum, 5u);
  registry.Reset();
  EXPECT_EQ(registry.CounterValues().at("x"), 0u);
  EXPECT_EQ(registry.DistributionValues().at("d").count, 0u);
}

// Exercised under TSan in CI: relaxed atomic increments from many
// threads must be race-free and lose no updates.
TEST(MetricsTest, ConcurrentIncrementsLoseNothing) {
  obs::MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry]() {
      obs::Counter& counter = registry.GetCounter("shared");
      obs::Distribution& dist = registry.GetDistribution("values");
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        dist.Record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared").Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto snapshot = registry.GetDistribution("values").Get();
  EXPECT_EQ(snapshot.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snapshot.min, 0u);
  EXPECT_EQ(snapshot.max, kPerThread - 1);
}

// --- trace ------------------------------------------------------------

TEST(TraceTest, SpansNestAndAggregate) {
  obs::Trace trace;
  {
    obs::Span outer(&trace, "outer");
    { obs::Span inner(&trace, "inner"); }
    { obs::Span inner(&trace, "inner"); }  // same name: accumulates
    { obs::Span other(&trace, "other"); }
  }
  EXPECT_EQ(trace.OpenDepth(), 0u);
  ASSERT_EQ(trace.root().children.size(), 1u);
  const obs::SpanNode& outer = *trace.root().children.front();
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 1u);
  ASSERT_EQ(outer.children.size(), 2u);  // inner + other, first-entry order
  const obs::SpanNode* inner = outer.FindChild("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_GE(inner->wall_seconds, 0.0);
  ASSERT_NE(outer.FindChild("other"), nullptr);
  EXPECT_EQ(outer.FindChild("missing"), nullptr);
  EXPECT_GE(outer.wall_seconds, inner->wall_seconds);
}

TEST(TraceTest, NullTraceSpansAreNoOps) {
  obs::Span span(nullptr, "anything");
  span.End();  // must not crash
}

TEST(TraceTest, ExplicitEndClosesEarlyAndOnce) {
  obs::Trace trace;
  {
    obs::Span span(&trace, "phase");
    span.End();
    EXPECT_EQ(trace.OpenDepth(), 0u);
  }  // destructor must not End() again
  ASSERT_EQ(trace.root().children.size(), 1u);
  EXPECT_EQ(trace.root().children.front()->count, 1u);
}

// --- json -------------------------------------------------------------

TEST(JsonTest, WriterParserRoundTrip) {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("name");
  writer.String("a \"quoted\"\nvalue");
  writer.Key("count");
  writer.Number(std::uint64_t{18446744073709551615ull});
  writer.Key("ratio");
  writer.Number(0.25);
  writer.Key("flag");
  writer.Bool(true);
  writer.Key("nothing");
  writer.Null();
  writer.Key("list");
  writer.BeginArray();
  writer.Number(std::uint64_t{1});
  writer.Number(std::uint64_t{2});
  writer.EndArray();
  writer.EndObject();
  const std::string json = std::move(writer).Take();

  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& value = parsed.value();
  ASSERT_TRUE(value.is_object());
  EXPECT_EQ(value.Find("name")->AsString(), "a \"quoted\"\nvalue");
  EXPECT_DOUBLE_EQ(value.Find("ratio")->AsNumber(), 0.25);
  EXPECT_TRUE(value.Find("flag")->AsBool());
  EXPECT_TRUE(value.Find("nothing")->is_null());
  ASSERT_TRUE(value.Find("list")->is_array());
  EXPECT_EQ(value.Find("list")->AsArray().size(), 2u);
  EXPECT_EQ(value.Find("absent"), nullptr);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::ParseJson("").ok());
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\": 1,}").ok());
  EXPECT_FALSE(obs::ParseJson("[1, 2] trailing").ok());
  EXPECT_FALSE(obs::ParseJson("\"unterminated").ok());
  EXPECT_FALSE(obs::ParseJson("nul").ok());
}

TEST(JsonTest, ParserHandlesEscapesAndNesting) {
  auto parsed = obs::ParseJson(
      R"({"s": "tab\t slash\/ unicodeA", "nested": {"a": [true, null]}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("s")->AsString(), "tab\t slash/ unicodeA");
  const obs::JsonValue* nested = parsed.value().Find("nested");
  ASSERT_NE(nested, nullptr);
  ASSERT_TRUE(nested->Find("a")->is_array());
  EXPECT_TRUE(nested->Find("a")->AsArray()[0].AsBool());
}

// --- MinerStats -------------------------------------------------------

TEST(MinerStatsTest, MergeFromSumsAndMaxes) {
  MinerStats a;
  a.isect_steps = 10;
  a.peak_nodes = 100;
  a.final_nodes = 50;
  a.sets_reported = 3;
  MinerStats b;
  b.isect_steps = 5;
  b.peak_nodes = 200;
  b.final_nodes = 20;
  b.sets_reported = 4;
  a.MergeFrom(b);
  EXPECT_EQ(a.isect_steps, 15u);
  EXPECT_EQ(a.peak_nodes, 200u);   // max, not sum
  EXPECT_EQ(a.final_nodes, 50u);   // max, not sum
  EXPECT_EQ(a.sets_reported, 7u);
}

TEST(MinerStatsTest, CountersCatalogIsCompleteAndStable) {
  MinerStats stats;
  stats.isect_steps = 1;
  stats.sets_reported = 2;
  stats.kernel_elements_out = 3;
  const auto counters = stats.Counters();
  // Full catalog, zeros included, stable order.
  ASSERT_EQ(counters.size(), 19u);
  EXPECT_STREQ(counters.front().first, "isect_steps");
  EXPECT_EQ(counters.front().second, 1u);
  EXPECT_STREQ(counters[15].first, "sets_reported");
  EXPECT_EQ(counters[15].second, 2u);
  EXPECT_STREQ(counters.back().first, "kernel_elements_out");
  EXPECT_EQ(counters.back().second, 3u);

  obs::MetricRegistry registry;
  stats.ExportTo(&registry);
  EXPECT_EQ(registry.CounterValues().at("miner.isect_steps"), 1u);
  EXPECT_EQ(registry.CounterValues().at("miner.sets_reported"), 2u);
}

// --- export -----------------------------------------------------------

TEST(ExportTest, JsonReportParsesAndCarriesSchema) {
  obs::Trace trace;
  {
    obs::Span mine(&trace, "mine");
    obs::Span recode(&trace, "recode");
  }
  obs::StatsReport report;
  report.tool = "fim-mine";
  report.algorithm = "ista";
  report.min_support = 2;
  report.num_threads = 4;
  report.num_sets = 42;
  report.wall_seconds = 1.5;
  report.cpu_seconds = 1.25;
  report.peak_rss_bytes = 1 << 20;
  report.miner.isect_steps = 1234;
  report.trace = &trace;

  auto parsed = obs::ParseJson(obs::RenderStatsJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& value = parsed.value();
  EXPECT_EQ(value.Find("schema")->AsString(), "fim-stats-v2");
  EXPECT_EQ(value.Find("tool")->AsString(), "fim-mine");
  EXPECT_EQ(value.Find("algorithm")->AsString(), "ista");
  EXPECT_DOUBLE_EQ(value.Find("min_support")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(value.Find("threads")->AsNumber(), 4.0);
  EXPECT_DOUBLE_EQ(value.Find("num_sets")->AsNumber(), 42.0);
  const obs::JsonValue* counters = value.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("isect_steps")->AsNumber(), 1234.0);
  // The whole catalog is present, zeros included.
  EXPECT_EQ(counters->AsObject().size(), MinerStats{}.Counters().size());
  const obs::JsonValue* spans = value.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->AsArray().size(), 1u);
  EXPECT_EQ(spans->AsArray()[0].Find("name")->AsString(), "mine");
  EXPECT_EQ(
      spans->AsArray()[0].Find("children")->AsArray()[0].Find("name")
          ->AsString(),
      "recode");
}

TEST(ExportTest, JsonReportEscapesStringLabels) {
  // Tool/algorithm labels are caller-supplied free-form strings; the
  // rendered report must stay parseable and round-trip them exactly.
  obs::StatsReport report;
  report.tool = "fim \"quoted\" \\ backslash";
  report.algorithm = "tab\there\nnewline\x01 control";
  auto parsed = obs::ParseJson(obs::RenderStatsJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("tool")->AsString(), report.tool);
  EXPECT_EQ(parsed.value().Find("algorithm")->AsString(), report.algorithm);

  // Same for span names coming out of a trace.
  obs::Trace trace;
  { obs::Span span(&trace, "span \"with\" \\ specials\n"); }
  report.tool = "fim-mine";
  report.algorithm = "ista";
  report.trace = &trace;
  parsed = obs::ParseJson(obs::RenderStatsJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(
      parsed.value().Find("spans")->AsArray()[0].Find("name")->AsString(),
      "span \"with\" \\ specials\n");
}

TEST(ExportTest, JsonReportCarriesDistributions) {
  obs::MetricRegistry registry;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    registry.GetDistribution("stream.pane_sets").Record(v);
  }
  registry.GetDistribution("stream.empty");  // zero count: still listed

  obs::StatsReport report;
  report.tool = "fim-stream";
  report.algorithm = "stream-window";
  report.registry = &registry;
  auto parsed = obs::ParseJson(obs::RenderStatsJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* dists = parsed.value().Find("distributions");
  ASSERT_NE(dists, nullptr);
  const obs::JsonValue* pane = dists->Find("stream.pane_sets");
  ASSERT_NE(pane, nullptr);
  EXPECT_DOUBLE_EQ(pane->Find("count")->AsNumber(), 100.0);
  EXPECT_DOUBLE_EQ(pane->Find("sum")->AsNumber(), 5050.0);
  EXPECT_DOUBLE_EQ(pane->Find("min")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(pane->Find("max")->AsNumber(), 100.0);
  EXPECT_DOUBLE_EQ(pane->Find("mean")->AsNumber(), 50.5);
  const double p50 = pane->Find("p50")->AsNumber();
  const double p95 = pane->Find("p95")->AsNumber();
  const double p99 = pane->Find("p99")->AsNumber();
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 100.0);
  ASSERT_NE(dists->Find("stream.empty"), nullptr);
  EXPECT_DOUBLE_EQ(dists->Find("stream.empty")->Find("count")->AsNumber(),
                   0.0);

  // Without a registry there is no distributions section at all.
  report.registry = nullptr;
  parsed = obs::ParseJson(obs::RenderStatsJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("distributions"), nullptr);
}

TEST(ExportTest, TextReportMentionsNonZeroCountersOnly) {
  obs::StatsReport report;
  report.tool = "fim-mine";
  report.algorithm = "lcm";
  report.miner.closure_checks = 9;
  const std::string text = obs::RenderStatsText(report);
  EXPECT_NE(text.find("closure_checks"), std::string::npos);
  EXPECT_EQ(text.find("conditional_trees"), std::string::npos);
}

// --- output neutrality ------------------------------------------------

// The core contract of the whole subsystem: mining with stats and trace
// enabled produces bit-identical output to mining without, for every
// algorithm, at 1 and 4 threads.
TEST(OutputNeutralityTest, StatsOnEqualsStatsOffForEveryMiner) {
  const TransactionDatabase db = GenerateRandomDense(60, 24, 0.3, 123);
  for (Algorithm algorithm : AllAlgorithms()) {
    for (unsigned threads : {1u, 4u}) {
      MinerOptions options;
      options.algorithm = algorithm;
      options.min_support = 3;
      options.num_threads = threads;

      auto plain = MineClosedCollect(db, options);
      ASSERT_TRUE(plain.ok()) << plain.status().ToString();

      MinerStats stats;
      obs::Trace trace;
      auto instrumented = MineClosedCollect(db, options, &stats, &trace);
      ASSERT_TRUE(instrumented.ok()) << instrumented.status().ToString();

      ASSERT_EQ(plain.value().size(), instrumented.value().size())
          << AlgorithmName(algorithm) << " t=" << threads;
      for (std::size_t i = 0; i < plain.value().size(); ++i) {
        EXPECT_EQ(plain.value()[i].items, instrumented.value()[i].items)
            << AlgorithmName(algorithm) << " t=" << threads << " set " << i;
        EXPECT_EQ(plain.value()[i].support, instrumented.value()[i].support)
            << AlgorithmName(algorithm) << " t=" << threads << " set " << i;
      }
      // Every miner reports how many sets it delivered.
      EXPECT_EQ(stats.sets_reported, plain.value().size())
          << AlgorithmName(algorithm) << " t=" << threads;
      EXPECT_EQ(trace.OpenDepth(), 0u);
      ASSERT_FALSE(trace.root().children.empty());
      EXPECT_EQ(trace.root().children.front()->name, "mine");
    }
  }
}

// IsTa fills the intersection-family counters on the parallel path too
// (peak_nodes/prune_calls used to be sequential-only).
TEST(OutputNeutralityTest, ParallelIstaFillsIntersectionCounters) {
  const TransactionDatabase db = GenerateRandomDense(200, 40, 0.25, 7);
  MinerOptions options;
  options.algorithm = Algorithm::kIsta;
  options.min_support = 4;
  options.num_threads = 4;
  MinerStats stats;
  auto result = MineClosedCollect(db, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.isect_steps, 0u);
  EXPECT_GT(stats.peak_nodes, 0u);
  EXPECT_GT(stats.final_nodes, 0u);
  EXPECT_GE(stats.peak_nodes, stats.final_nodes);
  EXPECT_EQ(stats.merge_calls, 3u);  // 4 workers -> 3 pairwise merges
  EXPECT_EQ(stats.sets_reported, result.value().size());
}

// --- annotated synchronization ---------------------------------------

// Same contract style as MetricRegistry's internals: the helper demands
// the registry-rank mutex via FIM_REQUIRES, so the FIM_THREAD_SAFETY CI
// job rejects any call site that forgot the lock.
void AppendHolding(Mutex& mutex, std::vector<int>& log, int value)
    FIM_REQUIRES(mutex) {
  log.push_back(value);
}

TEST(SyncTest, RequiresAnnotatedHelperUnderRegistryRankMutex) {
  Mutex mutex(LockRank::kMetricRegistry, "obs-helper");
  std::vector<int> log;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        const MutexLock lock(mutex);
        AppendHolding(mutex, log, t);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const MutexLock lock(mutex);
  EXPECT_EQ(log.size(), 4000u);
}

TEST(SyncTest, SamplerStressStartStop) {
  // TSan stress for the CondVar-based sampler shutdown: rapid
  // construct/Stop cycles race the 1ms sampling loop against Stop()'s
  // notify, covering both the wait-timeout and the notified exits.
  obs::MetricRegistry registry;
  registry.GetCounter("stress.counter").Add(7);
  for (int round = 0; round < 20; ++round) {
    std::ostringstream out;
    obs::MetricsSamplerOptions options;
    options.period = std::chrono::milliseconds(1);
    options.registry = &registry;
    obs::MetricsSampler sampler(options, &out);
    if (round % 2 == 0) std::this_thread::sleep_for(options.period);
    sampler.Stop();
    sampler.Stop();  // idempotent
    EXPECT_GE(sampler.SamplesWritten(), 1u);  // at least the final sample
  }
}

}  // namespace
}  // namespace fim
