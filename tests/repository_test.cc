// Unit tests of the Carpenter duplicate repository.

#include <gtest/gtest.h>

#include "carpenter/repository.h"

namespace fim {
namespace {

TEST(RepositoryTest, InsertThenContains) {
  ClosedSetRepository repo(10);
  const std::vector<ItemId> set = {1, 4, 7};
  EXPECT_FALSE(repo.Contains(set));
  EXPECT_TRUE(repo.InsertIfAbsent(set));
  EXPECT_TRUE(repo.Contains(set));
  EXPECT_FALSE(repo.InsertIfAbsent(set));  // second insert is a no-op
  EXPECT_EQ(repo.size(), 1u);
}

TEST(RepositoryTest, PrefixIsNotMember) {
  ClosedSetRepository repo(10);
  EXPECT_TRUE(repo.InsertIfAbsent(std::vector<ItemId>{1, 4, 7}));
  // {4, 7} shares the stored path's prefix (descending: 7, 4) but was
  // never inserted itself.
  EXPECT_FALSE(repo.Contains(std::vector<ItemId>{4, 7}));
  EXPECT_TRUE(repo.InsertIfAbsent(std::vector<ItemId>{4, 7}));
  EXPECT_TRUE(repo.Contains(std::vector<ItemId>{4, 7}));
  EXPECT_EQ(repo.size(), 2u);
}

TEST(RepositoryTest, SupersetIsNotMember) {
  ClosedSetRepository repo(10);
  EXPECT_TRUE(repo.InsertIfAbsent(std::vector<ItemId>{4, 7}));
  EXPECT_FALSE(repo.Contains(std::vector<ItemId>{1, 4, 7}));
}

TEST(RepositoryTest, SingleItemSets) {
  ClosedSetRepository repo(5);
  EXPECT_TRUE(repo.InsertIfAbsent(std::vector<ItemId>{3}));
  EXPECT_TRUE(repo.Contains(std::vector<ItemId>{3}));
  EXPECT_FALSE(repo.Contains(std::vector<ItemId>{2}));
  EXPECT_FALSE(repo.InsertIfAbsent(std::vector<ItemId>{3}));
}

TEST(RepositoryTest, SiblingOrderMaintained) {
  ClosedSetRepository repo(20);
  // Insert children of item 19 in shuffled order; all must be found.
  EXPECT_TRUE(repo.InsertIfAbsent(std::vector<ItemId>{5, 19}));
  EXPECT_TRUE(repo.InsertIfAbsent(std::vector<ItemId>{11, 19}));
  EXPECT_TRUE(repo.InsertIfAbsent(std::vector<ItemId>{2, 19}));
  EXPECT_TRUE(repo.InsertIfAbsent(std::vector<ItemId>{8, 19}));
  for (ItemId i : {5u, 11u, 2u, 8u}) {
    EXPECT_TRUE(repo.Contains(std::vector<ItemId>{i, 19}));
  }
  EXPECT_FALSE(repo.Contains(std::vector<ItemId>{3, 19}));
  EXPECT_EQ(repo.size(), 4u);
}

TEST(RepositoryTest, ManyDistinctSets) {
  ClosedSetRepository repo(64);
  std::size_t inserted = 0;
  for (ItemId a = 0; a < 63; ++a) {
    for (ItemId b = a + 1; b < 64; ++b) {
      EXPECT_TRUE(repo.InsertIfAbsent(std::vector<ItemId>{a, b}));
      ++inserted;
    }
  }
  EXPECT_EQ(repo.size(), inserted);
  // Every pair is found again, no false positives for triples.
  EXPECT_TRUE(repo.Contains(std::vector<ItemId>{10, 20}));
  EXPECT_FALSE(repo.Contains(std::vector<ItemId>{10, 20, 30}));
}

}  // namespace
}  // namespace fim
