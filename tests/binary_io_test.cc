// Unit tests of the FIMB binary database format.

#include <gtest/gtest.h>

#include <fstream>

#include "data/binary_io.h"
#include "data/fimi_io.h"
#include "data/generators.h"

namespace fim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(BinaryIoTest, RoundTrip) {
  const TransactionDatabase db = GenerateRandomDense(50, 40, 0.2, 99);
  const std::string path = TempPath("roundtrip.fimb");
  ASSERT_TRUE(WriteBinaryFile(db, path).ok());
  auto back = ReadBinaryFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().transactions(), db.transactions());
  EXPECT_EQ(back.value().NumItems(), db.NumItems());
}

TEST(BinaryIoTest, PreservesDeclaredItemBase) {
  TransactionDatabase db = TransactionDatabase::FromTransactions({{1}});
  db.SetNumItems(100);  // declared larger than any occurring item
  const std::string path = TempPath("itembase.fimb");
  ASSERT_TRUE(WriteBinaryFile(db, path).ok());
  auto back = ReadBinaryFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().NumItems(), 100u);
}

TEST(BinaryIoTest, RejectsNonBinaryFile) {
  const std::string path = TempPath("not_binary.txt");
  {
    std::ofstream out(path);
    out << "1 2 3\n";
  }
  auto result = ReadBinaryFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BinaryIoTest, RejectsTruncatedFile) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1, 2}, {3, 4}});
  const std::string path = TempPath("truncated.fimb");
  ASSERT_TRUE(WriteBinaryFile(db, path).ok());
  // Chop the last bytes off.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 5));
  }
  EXPECT_FALSE(ReadBinaryFile(path).ok());
}

TEST(BinaryIoTest, AutoDetectDispatch) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 2}, {1, 2}});
  const std::string binary = TempPath("auto.fimb");
  const std::string text = TempPath("auto.fimi");
  ASSERT_TRUE(WriteBinaryFile(db, binary).ok());
  ASSERT_TRUE(WriteFimiFile(db, text).ok());
  auto from_binary = ReadDatabaseFile(binary);
  auto from_text = ReadDatabaseFile(text);
  ASSERT_TRUE(from_binary.ok());
  ASSERT_TRUE(from_text.ok());
  EXPECT_EQ(from_binary.value().transactions(), db.transactions());
  EXPECT_EQ(from_text.value().transactions(), db.transactions());
}

TEST(BinaryIoTest, MissingFile) {
  EXPECT_EQ(ReadBinaryFile("/no/such.fimb").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(ReadDatabaseFile("/no/such.fimb").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace fim
