// Unit tests of item recoding and transaction reordering (§3.4
// preprocessing).

#include <gtest/gtest.h>

#include "data/recode.h"
#include "data/transpose.h"

namespace fim {
namespace {

TransactionDatabase SmallDb() {
  // Frequencies: item0: 3, item1: 1, item2: 2, item3: 0 (declared only).
  TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1}, {0, 2}, {0, 2}});
  db.SetNumItems(4);
  return db;
}

TEST(RecodeTest, FrequencyAscendingGivesRarestCodeZero) {
  const TransactionDatabase db = SmallDb();
  const Recoding r = ComputeRecoding(db, ItemOrder::kFrequencyAscending, 1);
  // Unused item 3 is dropped entirely.
  EXPECT_EQ(r.num_kept(), 3u);
  EXPECT_EQ(r.old_to_new[3], kInvalidItem);
  // freq(1)=1 < freq(2)=2 < freq(0)=3.
  EXPECT_EQ(r.old_to_new[1], 0u);
  EXPECT_EQ(r.old_to_new[2], 1u);
  EXPECT_EQ(r.old_to_new[0], 2u);
  EXPECT_EQ(r.new_to_old, (std::vector<ItemId>{1, 2, 0}));
}

TEST(RecodeTest, FrequencyDescendingReverses) {
  const TransactionDatabase db = SmallDb();
  const Recoding r = ComputeRecoding(db, ItemOrder::kFrequencyDescending, 1);
  EXPECT_EQ(r.old_to_new[0], 0u);
  EXPECT_EQ(r.old_to_new[2], 1u);
  EXPECT_EQ(r.old_to_new[1], 2u);
}

TEST(RecodeTest, NoneKeepsRelativeOrderOfKeptItems) {
  const TransactionDatabase db = SmallDb();
  const Recoding r = ComputeRecoding(db, ItemOrder::kNone, 1);
  EXPECT_EQ(r.new_to_old, (std::vector<ItemId>{0, 1, 2}));
}

TEST(RecodeTest, MinSupportDropsInfrequentItems) {
  const TransactionDatabase db = SmallDb();
  const Recoding r = ComputeRecoding(db, ItemOrder::kFrequencyAscending, 2);
  EXPECT_EQ(r.num_kept(), 2u);  // items 0 and 2 survive
  EXPECT_EQ(r.old_to_new[1], kInvalidItem);
}

TEST(RecodeTest, ApplyMapsAndDropsEmptyTransactions) {
  const TransactionDatabase db = SmallDb();
  const Recoding r = ComputeRecoding(db, ItemOrder::kFrequencyAscending, 2);
  const TransactionDatabase coded =
      ApplyRecoding(db, r, TransactionOrder::kNone);
  // {0,1} loses item 1 -> {0}; others map fully.
  EXPECT_EQ(coded.NumTransactions(), 3u);
  EXPECT_EQ(coded.NumItems(), 2u);
  for (const auto& t : coded.transactions()) {
    for (ItemId i : t) EXPECT_LT(i, 2u);
  }
}

TEST(RecodeTest, SizeAscendingOrdersBySizeThenDescendingLex) {
  TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1, 2}, {2}, {0, 1}, {1, 2}});
  const Recoding r = ComputeRecoding(db, ItemOrder::kNone, 1);
  const TransactionDatabase coded =
      ApplyRecoding(db, r, TransactionOrder::kSizeAscending);
  ASSERT_EQ(coded.NumTransactions(), 4u);
  EXPECT_EQ(coded.transaction(0).size(), 1u);
  EXPECT_EQ(coded.transaction(1).size(), 2u);
  EXPECT_EQ(coded.transaction(2).size(), 2u);
  EXPECT_EQ(coded.transaction(3).size(), 3u);
  // Same-size tiebreak: lexicographic on the descending item sequence:
  // {0,1} reads (1,0), {1,2} reads (2,1) -> {0,1} first.
  EXPECT_EQ(coded.transaction(1), (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(coded.transaction(2), (std::vector<ItemId>{1, 2}));
}

TEST(RecodeTest, SizeDescendingReverses) {
  TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{2}, {0, 1, 2}});
  const Recoding r = ComputeRecoding(db, ItemOrder::kNone, 1);
  const TransactionDatabase coded =
      ApplyRecoding(db, r, TransactionOrder::kSizeDescending);
  EXPECT_EQ(coded.transaction(0).size(), 3u);
  EXPECT_EQ(coded.transaction(1).size(), 1u);
}

TEST(RecodeTest, DecodeRoundTrip) {
  const TransactionDatabase db = SmallDb();
  const Recoding r = ComputeRecoding(db, ItemOrder::kFrequencyAscending, 1);
  const std::vector<ItemId> coded = {0, 2};  // items 1 and 0
  EXPECT_EQ(DecodeItems(coded, r), (std::vector<ItemId>{0, 1}));
}

TEST(RecodeTest, DecodingCallbackTranslatesAndSorts) {
  const TransactionDatabase db = SmallDb();
  const Recoding r = ComputeRecoding(db, ItemOrder::kFrequencyAscending, 1);
  ClosedSetCollector collector;
  ClosedSetCallback cb = MakeDecodingCallback(r, collector.AsCallback());
  const std::vector<ItemId> coded = {1, 2};  // -> old items {2, 0}
  cb(coded, 2);
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_EQ(collector.sets()[0].items, (std::vector<ItemId>{0, 2}));
  EXPECT_EQ(collector.sets()[0].support, 2u);
}

TEST(TransposeTest, SwapsItemsAndTransactions) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 2}, {1, 2}, {2}});
  const TransactionDatabase t = Transpose(db);
  // Item 0 -> {t0}, item 1 -> {t1}, item 2 -> {t0,t1,t2}.
  ASSERT_EQ(t.NumTransactions(), 3u);
  EXPECT_EQ(t.transaction(0), (std::vector<ItemId>{0}));
  EXPECT_EQ(t.transaction(1), (std::vector<ItemId>{1}));
  EXPECT_EQ(t.transaction(2), (std::vector<ItemId>{0, 1, 2}));
  EXPECT_EQ(t.NumItems(), 3u);
}

TEST(TransposeTest, DoubleTransposeIsIdentityWhenNoEmptyRows) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1}, {1, 2}, {0, 2}});
  const TransactionDatabase back = Transpose(Transpose(db));
  EXPECT_EQ(back.transactions(), db.transactions());
}

TEST(TransposeTest, SkipsUnusedItems) {
  TransactionDatabase db = TransactionDatabase::FromTransactions({{5}});
  // Items 0..4 unused: they produce no transposed transactions.
  const TransactionDatabase t = Transpose(db);
  EXPECT_EQ(t.NumTransactions(), 1u);
  EXPECT_EQ(t.transaction(0), (std::vector<ItemId>{0}));
}

}  // namespace
}  // namespace fim
