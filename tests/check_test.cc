// Tests for the FIM_CHECK/FIM_DCHECK framework and the structural
// validators of the prefix-tree repository, the Carpenter duplicate
// repository, and the Carpenter occurrence matrix. The corruption tests
// damage one invariant at a time through a test-peer hook and confirm the
// validator reports that specific breakage.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "carpenter/carpenter.h"
#include "carpenter/repository.h"
#include "common/check.h"
#include "data/transaction_database.h"
#include "ista/prefix_tree.h"

namespace fim {

// Friend of IstaPrefixTree: surgical access to node fields for breaking
// invariants on purpose. Since the tree stores its nodes as a structure
// of arrays, At returns a NodeRef view (reference members into the
// parallel arrays) rather than a reference to a node struct.
struct IstaPrefixTreeTestPeer {
  using NodeRef = IstaPrefixTree::NodeRef;

  static constexpr uint32_t kNil = IstaPrefixTree::kNil;
  static constexpr uint32_t kRoot = IstaPrefixTree::kRoot;

  static NodeRef At(IstaPrefixTree& tree, uint32_t index) {
    return tree.At(index);
  }
  static uint32_t FirstChild(IstaPrefixTree& tree, uint32_t node) {
    return tree.At(node).children;
  }
  static void SetNodeCount(IstaPrefixTree& tree, std::size_t count) {
    tree.node_count_ = count;
  }
  static void SetTransactionFlag(IstaPrefixTree& tree, ItemId item) {
    tree.in_transaction_[item] = 1;
  }
};

// Friend of ClosedSetRepository with the same purpose.
struct ClosedSetRepositoryTestPeer {
  using Node = ClosedSetRepository::Node;

  static constexpr uint32_t kNil = ClosedSetRepository::kNil;

  static Node& At(ClosedSetRepository& repo, uint32_t index) {
    return repo.nodes_[index];
  }
  static uint32_t Top(ClosedSetRepository& repo, ItemId item) {
    return repo.top_[item];
  }
  static void SetTop(ClosedSetRepository& repo, ItemId item, uint32_t node) {
    repo.top_[item] = node;
  }
};

namespace {

using PrefixPeer = IstaPrefixTreeTestPeer;
using RepoPeer = ClosedSetRepositoryTestPeer;

// ---------------------------------------------------------------------------
// FIM_CHECK / FIM_DCHECK semantics

TEST(CheckDeathTest, FailingCheckAbortsWithConditionAndMessage) {
  EXPECT_DEATH(FIM_CHECK(1 + 1 == 3) << "math is broken: " << 42,
               "FIM_CHECK failed: 1 \\+ 1 == 3 .*math is broken: 42");
}

TEST(CheckDeathTest, FailingCheckOkAbortsWithStatusText) {
  EXPECT_DEATH(FIM_CHECK_OK(Status::Internal("corrupted repository")),
               "FIM_CHECK failed: .*Internal: corrupted repository");
}

TEST(CheckTest, PassingChecksDoNotAbortAndEvaluateOnce) {
  int evaluations = 0;
  FIM_CHECK(++evaluations > 0) << "never printed";
  EXPECT_EQ(evaluations, 1);
  FIM_CHECK_OK(Status::OK());
}

TEST(CheckTest, StreamedOperandsAreNotEvaluatedOnSuccess) {
  int stream_calls = 0;
  auto expensive = [&stream_calls]() {
    ++stream_calls;
    return "expensive";
  };
  FIM_CHECK(true) << expensive();
  EXPECT_EQ(stream_calls, 0);
}

TEST(CheckDeathTest, DcheckFollowsBuildConfiguration) {
  if (FIM_DCHECK_IS_ON()) {
    EXPECT_DEATH(FIM_DCHECK(false) << "debug only", "FIM_CHECK failed");
  } else {
    FIM_DCHECK(false) << "compiled out";  // must not abort
  }
}

TEST(CheckTest, DisabledDcheckDoesNotEvaluateCondition) {
  int evaluations = 0;
  FIM_DCHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, FIM_DCHECK_IS_ON() ? 1 : 0);
}

// ---------------------------------------------------------------------------
// IstaPrefixTree::ValidateInvariants

IstaPrefixTree MakeTree(std::size_t num_items,
                        const std::vector<std::vector<ItemId>>& transactions) {
  IstaPrefixTree tree(num_items);
  for (const auto& t : transactions) tree.AddTransaction(t);
  EXPECT_TRUE(tree.ValidateInvariants().ok());
  return tree;
}

TEST(PrefixTreeValidatorTest, AcceptsHealthyTree) {
  IstaPrefixTree tree =
      MakeTree(4, {{0, 1, 2}, {1, 2, 3}, {0, 2}, {2, 3}});
  EXPECT_TRUE(tree.ValidateInvariants().ok());
}

TEST(PrefixTreeValidatorTest, DetectsSiblingOrderViolation) {
  // Root child list is [1, 0]; duplicating item 0 breaks strict descent.
  IstaPrefixTree tree = MakeTree(3, {{0}, {1}});
  const uint32_t head = PrefixPeer::FirstChild(tree, PrefixPeer::kRoot);
  PrefixPeer::At(tree, head).item = 0;
  const Status status = tree.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not strictly descending"),
            std::string::npos)
      << status.ToString();
}

TEST(PrefixTreeValidatorTest, DetectsChildCodeBoundViolation) {
  // Path root -> 1 -> 0; raising the leaf's item above its parent breaks
  // the child-code bound.
  IstaPrefixTree tree = MakeTree(3, {{0, 1}});
  const uint32_t parent = PrefixPeer::FirstChild(tree, PrefixPeer::kRoot);
  const uint32_t leaf = PrefixPeer::FirstChild(tree, parent);
  PrefixPeer::At(tree, leaf).item = 2;
  const Status status = tree.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("lower code than parent"),
            std::string::npos)
      << status.ToString();
}

TEST(PrefixTreeValidatorTest, DetectsStepStampBeyondGlobalStep) {
  IstaPrefixTree tree = MakeTree(3, {{0, 1}});
  const uint32_t node = PrefixPeer::FirstChild(tree, PrefixPeer::kRoot);
  PrefixPeer::At(tree, node).step = 99;
  const Status status = tree.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("step stamp"), std::string::npos)
      << status.ToString();
}

TEST(PrefixTreeValidatorTest, DetectsSupportMonotonicityViolation) {
  IstaPrefixTree tree = MakeTree(3, {{0, 1}, {0, 1}});
  const uint32_t parent = PrefixPeer::FirstChild(tree, PrefixPeer::kRoot);
  const uint32_t leaf = PrefixPeer::FirstChild(tree, parent);
  PrefixPeer::At(tree, leaf).supp = PrefixPeer::At(tree, parent).supp + 5;
  const Status status = tree.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("support not monotone"), std::string::npos)
      << status.ToString();
}

TEST(PrefixTreeValidatorTest, DetectsNodeCountMismatch) {
  IstaPrefixTree tree = MakeTree(3, {{0, 1, 2}});
  PrefixPeer::SetNodeCount(tree, tree.NodeCount() + 7);
  const Status status = tree.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("node_count_"), std::string::npos)
      << status.ToString();
}

TEST(PrefixTreeValidatorTest, DetectsUnreachableNodes) {
  IstaPrefixTree tree = MakeTree(3, {{0, 1}});
  PrefixPeer::At(tree, PrefixPeer::kRoot).children = PrefixPeer::kNil;
  PrefixPeer::SetNodeCount(tree, 0);
  const Status status = tree.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unreachable"), std::string::npos)
      << status.ToString();
}

TEST(PrefixTreeValidatorTest, DetectsCycle) {
  // Point the leaf's child list back at its parent: the parent becomes
  // reachable twice.
  IstaPrefixTree tree = MakeTree(3, {{0, 1}});
  const uint32_t parent = PrefixPeer::FirstChild(tree, PrefixPeer::kRoot);
  const uint32_t leaf = PrefixPeer::FirstChild(tree, parent);
  PrefixPeer::At(tree, leaf).children = parent;
  const Status status = tree.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("reachable twice"), std::string::npos)
      << status.ToString();
}

TEST(PrefixTreeValidatorTest, DetectsStaleTransactionFlag) {
  IstaPrefixTree tree = MakeTree(3, {{0, 1}});
  PrefixPeer::SetTransactionFlag(tree, 2);
  const Status status = tree.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not cleared"), std::string::npos)
      << status.ToString();
}

#ifdef FIM_ENABLE_DCHECKS
TEST(PrefixTreeValidatorDeathTest, CorruptionTripsWiredDcheckOnMutation) {
  // With dchecks on, the validator wired into AddTransaction (power-of-
  // two steps) must abort the process on a corrupted tree.
  IstaPrefixTree tree = MakeTree(3, {{0, 1}});
  const uint32_t node = PrefixPeer::FirstChild(tree, PrefixPeer::kRoot);
  PrefixPeer::At(tree, node).step = 99;
  // {2} does not touch the corrupted node, so the intersection pass cannot
  // heal its stamp; the validation at step 2 (a power of two) must abort.
  const std::vector<ItemId> t{2};
  EXPECT_DEATH(tree.AddTransaction(t), "step stamp");
}
#endif  // FIM_ENABLE_DCHECKS

// ---------------------------------------------------------------------------
// ClosedSetRepository::ValidateInvariants

ClosedSetRepository MakeRepo(
    std::size_t num_items,
    const std::vector<std::vector<ItemId>>& sets) {
  ClosedSetRepository repo(num_items);
  for (const auto& s : sets) repo.InsertIfAbsent(s);
  EXPECT_TRUE(repo.ValidateInvariants().ok());
  return repo;
}

TEST(RepositoryValidatorTest, AcceptsHealthyRepository) {
  ClosedSetRepository repo =
      MakeRepo(4, {{0, 1}, {0, 1, 2}, {1, 3}, {2}, {0, 3}});
  EXPECT_TRUE(repo.ValidateInvariants().ok());
}

TEST(RepositoryValidatorTest, DetectsTopSlotItemMismatch) {
  ClosedSetRepository repo = MakeRepo(3, {{1}});
  RepoPeer::At(repo, RepoPeer::Top(repo, 1)).item = 0;
  const Status status = repo.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("instead of item"), std::string::npos)
      << status.ToString();
}

TEST(RepositoryValidatorTest, DetectsTopLevelSibling) {
  ClosedSetRepository repo = MakeRepo(3, {{1}, {2}});
  RepoPeer::At(repo, RepoPeer::Top(repo, 2)).sibling =
      RepoPeer::Top(repo, 1);
  const Status status = repo.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("has a sibling"), std::string::npos)
      << status.ToString();
}

TEST(RepositoryValidatorTest, DetectsSiblingOrderViolation) {
  // Children of the item-2 top node are [1, 0]; duplicating item 0 breaks
  // strict descent.
  ClosedSetRepository repo = MakeRepo(3, {{1, 2}, {0, 2}});
  const uint32_t top = RepoPeer::Top(repo, 2);
  const uint32_t head = RepoPeer::At(repo, top).children;
  RepoPeer::At(repo, head).item = 0;
  const Status status = repo.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not strictly descending"),
            std::string::npos)
      << status.ToString();
}

TEST(RepositoryValidatorTest, DetectsChildCodeBoundViolation) {
  ClosedSetRepository repo = MakeRepo(3, {{0, 1}});
  const uint32_t top = RepoPeer::Top(repo, 1);
  const uint32_t child = RepoPeer::At(repo, top).children;
  RepoPeer::At(repo, child).item = 1;
  const Status status = repo.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("lower code than its parent"),
            std::string::npos)
      << status.ToString();
}

TEST(RepositoryValidatorTest, DetectsTerminalCountMismatch) {
  // {0, 1} stores one set; the top node of item 1 is a non-terminal
  // interior node, so flipping its flag desynchronizes size().
  ClosedSetRepository repo = MakeRepo(3, {{0, 1}});
  RepoPeer::At(repo, RepoPeer::Top(repo, 1)).terminal = 1;
  const Status status = repo.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("terminal-node count"), std::string::npos)
      << status.ToString();
}

TEST(RepositoryValidatorTest, DetectsUnreachableNodes) {
  ClosedSetRepository repo = MakeRepo(3, {{0, 1}});
  RepoPeer::SetTop(repo, 1, RepoPeer::kNil);
  const Status status = repo.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unreachable"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// ValidateCarpenterMatrix

TransactionDatabase MakeDb() {
  return TransactionDatabase::FromTransactions(
      {{0, 1, 2}, {0, 2}, {1, 2, 3}});
}

TEST(CarpenterMatrixValidatorTest, AcceptsFreshMatrix) {
  const TransactionDatabase db = MakeDb();
  const std::vector<Support> matrix = BuildCarpenterMatrix(db);
  EXPECT_TRUE(ValidateCarpenterMatrix(db, matrix).ok());
}

TEST(CarpenterMatrixValidatorTest, DetectsSizeMismatch) {
  const TransactionDatabase db = MakeDb();
  std::vector<Support> matrix = BuildCarpenterMatrix(db);
  matrix.pop_back();
  const Status status = ValidateCarpenterMatrix(db, matrix);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("size"), std::string::npos)
      << status.ToString();
}

TEST(CarpenterMatrixValidatorTest, DetectsNonZeroEntryForAbsentItem) {
  const TransactionDatabase db = MakeDb();
  std::vector<Support> matrix = BuildCarpenterMatrix(db);
  // Item 3 is not in transaction 0.
  matrix[0 * db.NumItems() + 3] = 5;
  const Status status = ValidateCarpenterMatrix(db, matrix);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not in the transaction"),
            std::string::npos)
      << status.ToString();
}

TEST(CarpenterMatrixValidatorTest, DetectsZeroEntryForPresentItem) {
  const TransactionDatabase db = MakeDb();
  std::vector<Support> matrix = BuildCarpenterMatrix(db);
  // Item 0 is in transaction 0.
  matrix[0 * db.NumItems() + 0] = 0;
  const Status status = ValidateCarpenterMatrix(db, matrix);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("zero entry for an item"),
            std::string::npos)
      << status.ToString();
}

TEST(CarpenterMatrixValidatorTest, DetectsBrokenColumnMonotonicity) {
  const TransactionDatabase db = MakeDb();
  std::vector<Support> matrix = BuildCarpenterMatrix(db);
  // Column 2 is [3, 2, 1] (item 2 occurs in every transaction); bumping
  // the middle entry breaks the strictly-decreasing suffix count.
  matrix[1 * db.NumItems() + 2] = 7;
  const Status status = ValidateCarpenterMatrix(db, matrix);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not a decreasing suffix count"),
            std::string::npos)
      << status.ToString();
}

}  // namespace
}  // namespace fim
