// End-to-end pipeline test of the command-line tools:
// fim-gen -> (fim-discretize) -> fim-mine -> parsed results verified
// against the library and the definitional closedness check.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "api/miner.h"
#include "data/fimi_io.h"
#include "data/result_io.h"
#include "obs/json.h"
#include "obs/miner_stats.h"
#include "verify/closedness.h"
#include "verify/compare.h"

namespace fim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

int RunCmd(const std::string& cmd) { return std::system(cmd.c_str()); }

/// Like RunCmd but decodes the wait status into the child's exit code.
int ExitCode(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Parses a Chrome trace file, checks per-tid begin/end balance, and
/// returns the number of distinct lanes (thread_name metadata events).
std::size_t CheckChromeTraceFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = obs::ParseJson(buffer.str());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return 0;
  const obs::JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.Find("otherData")->Find("schema")->AsString(),
            "fim-trace-v1");
  std::map<double, int> depth;
  std::map<double, bool> named;
  for (const obs::JsonValue& event : doc.Find("traceEvents")->AsArray()) {
    const std::string ph = event.Find("ph")->AsString();
    const double tid = event.Find("tid")->AsNumber();
    if (ph == "B") {
      ++depth[tid];
    } else if (ph == "E") {
      EXPECT_GT(depth[tid], 0) << "unmatched E on tid " << tid;
      --depth[tid];
    } else if (ph == "M") {
      named[tid] = true;
    }
  }
  for (const auto& [tid, open] : depth) {
    EXPECT_EQ(open, 0) << "unclosed begin on tid " << tid;
  }
  return named.size();
}

TEST(ToolsPipelineTest, GenerateMineVerify) {
  const std::string data = TempPath("pipeline_data.fimi");
  const std::string result = TempPath("pipeline_result.txt");

  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) +
                " -p basket -c 0.02 -r 9 " + data + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -a carpenter-table -s 5 " +
                data + " " + result),
            0);

  auto db = ReadFimiFile(data);
  ASSERT_TRUE(db.ok());
  auto mined = ReadClosedSetsFile(result);
  ASSERT_TRUE(mined.ok());

  // Sound by definition...
  ASSERT_TRUE(VerifyClosedSets(db.value(), mined.value(), 5).ok());
  // ...and identical to the library's in-process result.
  MinerOptions options;
  options.min_support = 5;
  auto expected = MineClosedCollect(db.value(), options);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(SameResults(expected.value(), mined.value()))
      << DiffResults(expected.value(), mined.value());
}

TEST(ToolsPipelineTest, ExpressionDiscretizeMine) {
  const std::string matrix = TempPath("pipeline_expr.tsv");
  const std::string data = TempPath("pipeline_expr.fimi");
  const std::string result = TempPath("pipeline_expr_result.txt");

  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p expression -c 0.05 -r 4 " +
                matrix + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_DISCRETIZE_BINARY) + " -t " + matrix + " " +
                data + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -a ista -S 30 " + data +
                " " + result),
            0);

  auto db = ReadFimiFile(data);
  ASSERT_TRUE(db.ok());
  auto mined = ReadClosedSetsFile(result);
  ASSERT_TRUE(mined.ok());
  ASSERT_FALSE(mined.value().empty());
  const Support smin = static_cast<Support>(
      (db.value().NumTransactions() * 30 + 99) / 100);
  EXPECT_TRUE(VerifyClosedSets(db.value(), mined.value(), smin).ok());
}

TEST(ToolsPipelineTest, MaximalOutputIsSubsetOfClosed) {
  const std::string data = TempPath("pipeline_max.fimi");
  const std::string closed_out = TempPath("pipeline_closed.txt");
  const std::string maximal_out = TempPath("pipeline_maximal.txt");

  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p basket -c 0.02 -r 11 " +
                data + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -s 4 " + data + " " +
                closed_out),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -m -s 4 " + data + " " +
                maximal_out),
            0);

  auto closed = ReadClosedSetsFile(closed_out);
  auto maximal = ReadClosedSetsFile(maximal_out);
  ASSERT_TRUE(closed.ok());
  ASSERT_TRUE(maximal.ok());
  ASSERT_FALSE(maximal.value().empty());
  EXPECT_LE(maximal.value().size(), closed.value().size());
  // Every maximal set appears among the closed sets with equal support.
  for (const auto& m : maximal.value()) {
    bool found = false;
    for (const auto& c : closed.value()) {
      if (c.items == m.items && c.support == m.support) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << ItemsToString(m.items);
  }
}


TEST(ToolsPipelineTest, VerifyAcceptsCorrectAndRejectsCorrupted) {
  const std::string data = TempPath("pipeline_verify.fimi");
  const std::string good = TempPath("pipeline_verify_good.txt");
  const std::string bad = TempPath("pipeline_verify_bad.txt");

  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p basket -c 0.02 -r 21 " +
                   data + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -s 6 " + data + " " +
                   good),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_VERIFY_BINARY) + " -s 6 " + data + " " +
                   good + " 2>/dev/null"),
            0);

  // Corrupt one support value: verification must fail.
  {
    std::ifstream in(good);
    std::ofstream out(bad);
    std::string line;
    bool corrupted = false;
    while (std::getline(in, line)) {
      if (!corrupted && !line.empty()) {
        line = line.substr(0, line.find('(')) + "(99999)";
        corrupted = true;
      }
      out << line << "\n";
    }
  }
  EXPECT_NE(RunCmd(std::string(FIM_VERIFY_BINARY) + " -s 6 " + data + " " +
                   bad + " 2>/dev/null"),
            0);
}

TEST(ToolsPipelineTest, RulesToolEmitsValidRules) {
  const std::string data = TempPath("pipeline_rules.fimi");
  const std::string out = TempPath("pipeline_rules.txt");
  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p basket -c 0.03 -r 15 " +
                   data + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_RULES_BINARY) +
                   " -s 5 -c 0.5 -k 20 " + data + " " + out + " 2>/dev/null"),
            0);
  std::ifstream in(out);
  std::string line;
  std::size_t rules = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_NE(line.find(" -> "), std::string::npos) << line;
    ++rules;
  }
  EXPECT_GT(rules, 0u);
  EXPECT_LE(rules, 20u);
}

TEST(ToolsPipelineTest, QuantileDiscretizeProducesMineableData) {
  const std::string matrix = TempPath("pipeline_q.tsv");
  const std::string data = TempPath("pipeline_q.fimi");
  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p expression -c 0.05 "
                   "-r 6 " + matrix + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_DISCRETIZE_BINARY) + " -Q 0.08 -t " +
                   matrix + " " + data + " 2>/dev/null"),
            0);
  auto db = ReadFimiFile(data);
  ASSERT_TRUE(db.ok());
  EXPECT_GT(db.value().NumTransactions(), 0u);
  // Roughly 16% of the matrix entries become items (two 8% tails).
  const double occupancy =
      static_cast<double>(db.value().TotalItemOccurrences()) /
      (static_cast<double>(db.value().NumTransactions()) *
       static_cast<double>(db.value().NumItems() / 2));
  EXPECT_NEAR(occupancy, 0.16, 0.03);
}

TEST(ToolsPipelineTest, StatsJsonValidatesAndLeavesOutputUntouched) {
  const std::string data = TempPath("pipeline_stats.fimi");
  const std::string plain_out = TempPath("pipeline_stats_plain.txt");
  const std::string stats_out = TempPath("pipeline_stats_result.txt");
  const std::string stats_json = TempPath("pipeline_stats.json");

  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p basket -c 0.02 -r 17 " +
                   data + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -s 5 -t 4 " + data +
                   " " + plain_out),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -s 5 -t 4 " +
                   "--stats=json --stats-out=" + stats_json + " " + data +
                   " " + stats_out),
            0);

  // Output neutrality end to end: the result file is identical with and
  // without --stats.
  auto plain = ReadClosedSetsFile(plain_out);
  auto with_stats = ReadClosedSetsFile(stats_out);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(with_stats.ok());
  ASSERT_FALSE(plain.value().empty());
  EXPECT_TRUE(SameResults(plain.value(), with_stats.value()));

  // The report parses and carries the fim-stats-v2 schema with the full
  // counter catalog and the span tree.
  std::ifstream in(stats_json);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = obs::ParseJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& report = parsed.value();
  EXPECT_EQ(report.Find("schema")->AsString(), "fim-stats-v2");
  EXPECT_EQ(report.Find("tool")->AsString(), "fim-mine");
  EXPECT_EQ(report.Find("algorithm")->AsString(), "ista");
  EXPECT_DOUBLE_EQ(report.Find("min_support")->AsNumber(), 5.0);
  EXPECT_DOUBLE_EQ(report.Find("threads")->AsNumber(), 4.0);
  EXPECT_EQ(static_cast<std::size_t>(report.Find("num_sets")->AsNumber()),
            plain.value().size());
  EXPECT_GT(report.Find("peak_rss_bytes")->AsNumber(), 0.0);
  const obs::JsonValue* counters = report.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->AsObject().size(), MinerStats{}.Counters().size());
  EXPECT_GT(counters->Find("isect_steps")->AsNumber(), 0.0);
  EXPECT_EQ(static_cast<std::size_t>(
                counters->Find("sets_reported")->AsNumber()),
            plain.value().size());
  const obs::JsonValue* spans = report.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  bool saw_mine = false;
  for (const auto& span : spans->AsArray()) {
    if (span.Find("name")->AsString() == "mine") saw_mine = true;
  }
  EXPECT_TRUE(saw_mine);
}

TEST(ToolsPipelineTest, BinaryFormatMinesIdentically) {
  const std::string text = TempPath("pipeline_bin.fimi");
  const std::string binary = TempPath("pipeline_bin.fimb");
  const std::string out_text = TempPath("pipeline_bin_text.txt");
  const std::string out_binary = TempPath("pipeline_bin_binary.txt");

  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p basket -c 0.02 -r 31 " +
                   text + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) +
                   " -p basket -c 0.02 -r 31 -b " + binary + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -s 5 " + text + " " +
                   out_text),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -s 5 " + binary + " " +
                   out_binary),
            0);
  auto a = ReadClosedSetsFile(out_text);
  auto b = ReadClosedSetsFile(out_binary);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(SameResults(a.value(), b.value()));
  EXPECT_FALSE(a.value().empty());
}
TEST(ToolsPipelineTest, TraceOutIsValidMultiLaneChromeTrace) {
  const std::string data = TempPath("pipeline_trace.fimi");
  const std::string plain_out = TempPath("pipeline_trace_plain.txt");
  const std::string traced_out = TempPath("pipeline_trace_result.txt");
  const std::string trace = TempPath("pipeline_trace.json");

  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p basket -c 0.02 -r 41 " +
                   data + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -s 5 -t 4 " + data +
                   " " + plain_out),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -s 5 -t 4 " +
                   "--trace-out=" + trace + " " + data + " " + traced_out),
            0);

  // Output neutrality end to end: tracing never changes the result.
  auto plain = ReadClosedSetsFile(plain_out);
  auto traced = ReadClosedSetsFile(traced_out);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(traced.ok());
  ASSERT_FALSE(plain.value().empty());
  EXPECT_TRUE(SameResults(plain.value(), traced.value()));

  // A 4-thread run fans into worker/merge lanes: more than one tid.
  EXPECT_GT(CheckChromeTraceFile(trace), 1u);
}

TEST(ToolsPipelineTest, StreamTraceStatsAndSamplerOutputs) {
  const std::string data = TempPath("pipeline_stream_obs.fimi");
  const std::string plain_out = TempPath("pipeline_stream_obs_plain.txt");
  const std::string obs_out = TempPath("pipeline_stream_obs_result.txt");
  const std::string trace = TempPath("pipeline_stream_obs_trace.json");
  const std::string samples = TempPath("pipeline_stream_obs_samples.jsonl");
  const std::string stats = TempPath("pipeline_stream_obs_stats.json");

  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p basket -c 0.02 -r 43 " +
                   data + " 2>/dev/null"),
            0);
  const std::string stream_args = " -q -s 5 --pane=25 --window=3 ";
  ASSERT_EQ(RunCmd(std::string(FIM_STREAM_BINARY) + stream_args + data + " " +
                   plain_out + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_STREAM_BINARY) + stream_args +
                   "--stats=json --stats-out=" + stats +
                   " --trace-out=" + trace + " --sample-every=5 " +
                   "--sample-out=" + samples + " " + data + " " + obs_out +
                   " 2>/dev/null"),
            0);

  // Output neutrality end to end.
  auto plain = ReadClosedSetsFile(plain_out);
  auto observed = ReadClosedSetsFile(obs_out);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(observed.ok());
  EXPECT_TRUE(SameResults(plain.value(), observed.value()));

  // Trace: the sampler lane joins the main lane, so two tids minimum.
  EXPECT_GE(CheckChromeTraceFile(trace), 2u);

  // Sampler JSONL: at least the final sample, every line parseable.
  std::ifstream sample_in(samples);
  std::string line;
  std::size_t sample_lines = 0;
  while (std::getline(sample_in, line)) {
    auto parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << ": " << line;
    EXPECT_EQ(parsed.value().Find("schema")->AsString(), "fim-statsline-v1");
    ASSERT_NE(parsed.value().Find("counters"), nullptr);
    ++sample_lines;
  }
  EXPECT_GE(sample_lines, 1u);

  // Stats report: fim-stats-v2 with the stream counters and the miner's
  // phase spans.
  std::ifstream stats_in(stats);
  std::stringstream buffer;
  buffer << stats_in.rdbuf();
  auto report = obs::ParseJson(buffer.str());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().Find("schema")->AsString(), "fim-stats-v2");
  EXPECT_EQ(report.value().Find("tool")->AsString(), "fim-stream");
  const obs::JsonValue* counters = report.value().Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->Find("stream.transactions_ingested")->AsNumber(), 0.0);
  const obs::JsonValue* spans = report.value().Find("spans");
  ASSERT_NE(spans, nullptr);
  bool saw_rotate = false;
  bool saw_query = false;
  for (const auto& span : spans->AsArray()) {
    if (span.Find("name")->AsString() == "rotate") saw_rotate = true;
    if (span.Find("name")->AsString() == "query") saw_query = true;
  }
  EXPECT_TRUE(saw_rotate);
  EXPECT_TRUE(saw_query);
}

TEST(ToolsPipelineTest, VerifyWritesStatsAndTraceFiles) {
  const std::string data = TempPath("pipeline_vobs.fimi");
  const std::string good = TempPath("pipeline_vobs_good.txt");
  const std::string stats = TempPath("pipeline_vobs_stats.json");
  const std::string trace = TempPath("pipeline_vobs_trace.json");

  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p basket -c 0.02 -r 45 " +
                   data + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -s 6 " + data + " " +
                   good),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_VERIFY_BINARY) + " -s 6 --stats=json " +
                   "--stats-out=" + stats + " --trace-out=" + trace + " " +
                   data + " " + good + " 2>/dev/null"),
            0);

  std::ifstream in(stats);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto report = obs::ParseJson(buffer.str());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().Find("schema")->AsString(), "fim-stats-v2");
  EXPECT_EQ(report.value().Find("tool")->AsString(), "fim-verify");
  EXPECT_GE(CheckChromeTraceFile(trace), 1u);
}

TEST(ToolsPipelineTest, StatsDiffGatesRegressions) {
  const std::string baseline = TempPath("pipeline_diff_base.json");
  const std::string same = TempPath("pipeline_diff_same.json");
  const std::string regressed = TempPath("pipeline_diff_regressed.json");
  const std::string fewer_sets = TempPath("pipeline_diff_sets.json");
  const std::string missing = TempPath("pipeline_diff_missing.json");

  auto write = [](const std::string& path, const std::string& body) {
    std::ofstream out(path);
    out << body;
  };
  write(baseline,
        R"({"schema":"fim-stats-v2","tool":"fim-mine","algorithm":"ista",)"
        R"("num_sets":42,"counters":{"isect_steps":100,"merge_calls":3}})");
  write(same,
        R"({"schema":"fim-stats-v2","tool":"fim-mine","algorithm":"ista",)"
        R"("num_sets":42,"counters":{"isect_steps":100,"merge_calls":3}})");
  write(regressed,
        R"({"schema":"fim-stats-v2","tool":"fim-mine","algorithm":"ista",)"
        R"("num_sets":42,"counters":{"isect_steps":200,"merge_calls":3}})");
  write(fewer_sets,
        R"({"schema":"fim-stats-v2","tool":"fim-mine","algorithm":"ista",)"
        R"("num_sets":41,"counters":{"isect_steps":100,"merge_calls":3}})");
  write(missing,
        R"({"schema":"fim-stats-v2","tool":"fim-mine","algorithm":"ista",)"
        R"("num_sets":42,"counters":{"merge_calls":3}})");

  const std::string diff = std::string(FIM_STATS_DIFF_BINARY) + " ";
  // Identical reports pass.
  EXPECT_EQ(ExitCode(diff + baseline + " " + same + " 2>/dev/null"), 0);
  // An injected counter regression fails...
  EXPECT_EQ(ExitCode(diff + baseline + " " + regressed + " 2>/dev/null"), 1);
  // ...unless the tolerance covers the +100% increase.
  EXPECT_EQ(ExitCode(diff + "--rel-tol=1.5 " + baseline + " " + regressed +
                     " 2>/dev/null"),
            0);
  // num_sets is an output cardinality: any change fails, in any
  // direction, regardless of tolerance.
  EXPECT_EQ(ExitCode(diff + "--rel-tol=9 --abs-tol=9 " + baseline + " " +
                     fewer_sets + " 2>/dev/null"),
            1);
  // A vanished counter is a structure mismatch even in structure-only
  // mode; unreadable input is a usage/parse error (exit 2).
  EXPECT_EQ(ExitCode(diff + "--structure-only " + baseline + " " + missing +
                     " 2>/dev/null"),
            1);
  EXPECT_EQ(ExitCode(diff + baseline + " " + baseline + ".nope 2>/dev/null"),
            2);

  // End to end: a real fim-mine report diffed against itself passes,
  // including the timing fields.
  const std::string data = TempPath("pipeline_diff.fimi");
  const std::string result = TempPath("pipeline_diff_result.txt");
  const std::string report = TempPath("pipeline_diff_report.json");
  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p basket -c 0.02 -r 47 " +
                   data + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -s 5 --stats=json " +
                   "--stats-out=" + report + " " + data + " " + result),
            0);
  EXPECT_EQ(ExitCode(diff + "--time " + report + " " + report +
                     " 2>/dev/null"),
            0);
}

TEST(ToolsPipelineTest, ProfilingIsOutputNeutralAndReportsPerfSection) {
  const std::string data = TempPath("pipeline_prof.fimi");
  ASSERT_EQ(RunCmd(std::string(FIM_GEN_BINARY) + " -p basket -c 0.02 -r 53 " +
                   data + " 2>/dev/null"),
            0);

  // The acceptance contract: --profile --perf-counters succeeds on any
  // host (PMU or not), changes nothing about the mined output at 1 and
  // 4 threads, writes a valid fim-prof-v1 collapsed-stack file, and the
  // stats report carries a well-formed `perf` section either way.
  for (const int threads : {1, 4}) {
    const std::string suffix = "_t" + std::to_string(threads);
    const std::string plain_out = TempPath("pipeline_prof_plain" + suffix);
    const std::string prof_out = TempPath("pipeline_prof_result" + suffix);
    const std::string collapsed = TempPath("pipeline_prof_stacks" + suffix);
    const std::string stats = TempPath("pipeline_prof_stats" + suffix);
    const std::string mine = std::string(FIM_MINE_BINARY) + " -q -s 5 -t " +
                             std::to_string(threads) + " ";
    ASSERT_EQ(RunCmd(mine + data + " " + plain_out), 0);
    ASSERT_EQ(RunCmd(mine + "--profile=" + collapsed +
                     " --perf-counters --stats=json --stats-out=" + stats +
                     " " + data + " " + prof_out + " 2>/dev/null"),
              0);

    // Output neutrality end to end: profiling never changes the result.
    auto plain = ReadClosedSetsFile(plain_out);
    auto profiled = ReadClosedSetsFile(prof_out);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(profiled.ok());
    ASSERT_FALSE(plain.value().empty());
    EXPECT_TRUE(SameResults(plain.value(), profiled.value()));

    // The collapsed-stack file exists and leads with the v1 header —
    // even when the profiler could not arm, the header explains why.
    std::ifstream stacks_in(collapsed);
    std::string header;
    ASSERT_TRUE(std::getline(stacks_in, header)) << collapsed;
    EXPECT_EQ(header.rfind("# fim-prof-v1 ", 0), 0u) << header;

    // The stats report carries the perf section: availability is
    // explicit, and an unavailable host names its reason instead of
    // failing the run or rendering fake zeros.
    std::ifstream stats_in(stats);
    std::stringstream buffer;
    buffer << stats_in.rdbuf();
    auto parsed = obs::ParseJson(buffer.str());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed.value().Find("schema")->AsString(), "fim-stats-v2");
    const obs::JsonValue* perf = parsed.value().Find("perf");
    ASSERT_NE(perf, nullptr);
    const obs::JsonValue* available = perf->Find("available");
    ASSERT_NE(available, nullptr);
    if (available->AsBool()) {
      const obs::JsonValue* counters = perf->Find("counters");
      ASSERT_NE(counters, nullptr);
      ASSERT_TRUE(counters->is_object());
      EXPECT_GT(counters->Find("cycles")->AsNumber(), 0.0);
    } else {
      ASSERT_NE(perf->Find("unavailable_reason"), nullptr);
      EXPECT_FALSE(perf->Find("unavailable_reason")->AsString().empty());
      EXPECT_TRUE(perf->Find("counters")->is_null());
    }
    // The rusage fallback tier and the RSS high-water mark are always
    // there (this is Linux/POSIX in CI), PMU or not.
    const obs::JsonValue* rusage = perf->Find("rusage");
    ASSERT_NE(rusage, nullptr);
    ASSERT_TRUE(rusage->is_object());
    EXPECT_GT(rusage->Find("peak_rss_bytes")->AsNumber(), 0.0);
    // Domain attribution: one sample per shard (plus merge stages at 4
    // threads), each carrying its software work counter.
    const obs::JsonValue* domains = perf->Find("domains");
    ASSERT_NE(domains, nullptr);
    ASSERT_TRUE(domains->is_array());
    std::size_t shards = 0;
    for (const obs::JsonValue& domain : domains->AsArray()) {
      const std::string name = domain.Find("name")->AsString();
      if (name.rfind("shard-", 0) == 0) ++shards;
      ASSERT_NE(domain.Find("work_steps"), nullptr) << name;
    }
    EXPECT_EQ(shards, static_cast<std::size_t>(threads));

    // fim-prof renders the work-inflation table from that report.
    EXPECT_EQ(ExitCode(std::string(FIM_PROF_BINARY) + " " + stats +
                       " >/dev/null 2>&1"),
              0);
  }

  // A report taken without --perf-counters has no perf section and
  // fim-prof refuses it with a pointed error (exit 1).
  const std::string bare_stats = TempPath("pipeline_prof_bare.json");
  ASSERT_EQ(RunCmd(std::string(FIM_MINE_BINARY) + " -q -s 5 --stats=json " +
                   "--stats-out=" + bare_stats + " " + data + " /dev/null"),
            0);
  EXPECT_EQ(ExitCode(std::string(FIM_PROF_BINARY) + " " + bare_stats +
                     " >/dev/null 2>&1"),
            1);
}

TEST(ToolsPipelineTest, StatsDiffPerfSectionEdgeCases) {
  auto write = [](const std::string& path, const std::string& body) {
    std::ofstream out(path);
    out << body;
  };
  const std::string diff = std::string(FIM_STATS_DIFF_BINARY) + " ";

  // perf.* metrics are host-dependent: a baseline without the section
  // (older schema, or a PMU-denied host) diffs cleanly against a
  // candidate that has it — in both directions and in structure-only
  // mode — unlike ordinary counters, whose absence is a MISSING failure.
  const std::string no_perf = TempPath("diff_perf_none.json");
  const std::string with_perf = TempPath("diff_perf_full.json");
  write(no_perf,
        R"({"schema":"fim-stats-v2","num_sets":7,)"
        R"("counters":{"isect_steps":100}})");
  write(with_perf,
        R"({"schema":"fim-stats-v2","num_sets":7,)"
        R"("counters":{"isect_steps":100},)"
        R"("perf":{"available":true,"counters":{"cycles":5000,)"
        R"("instructions":9000,"ipc":1.8,"llc_miss_rate":0.02}}})");
  EXPECT_EQ(ExitCode(diff + no_perf + " " + with_perf + " 2>/dev/null"), 0);
  EXPECT_EQ(ExitCode(diff + with_perf + " " + no_perf + " 2>/dev/null"), 0);
  EXPECT_EQ(ExitCode(diff + "--structure-only " + no_perf + " " +
                     with_perf + " 2>/dev/null"),
            0);

  // available:false suppresses the whole section — nulls and stale
  // counters under it must not be compared as numbers.
  const std::string denied = TempPath("diff_perf_denied.json");
  write(denied,
        R"({"schema":"fim-stats-v2","num_sets":7,)"
        R"("counters":{"isect_steps":100},)"
        R"("perf":{"available":false,"unavailable_reason":"no PMU",)"
        R"("counters":null}})");
  EXPECT_EQ(ExitCode(diff + with_perf + " " + denied + " 2>/dev/null"), 0);

  // perf.ipc is higher-is-better: a drop beyond tolerance is the
  // regression, a rise is an improvement.
  const std::string ipc_drop = TempPath("diff_perf_ipc_drop.json");
  const std::string ipc_rise = TempPath("diff_perf_ipc_rise.json");
  write(ipc_drop,
        R"({"schema":"fim-stats-v2","num_sets":7,)"
        R"("counters":{"isect_steps":100},)"
        R"("perf":{"available":true,"counters":{"ipc":0.9,)"
        R"("llc_miss_rate":0.02}}})");
  write(ipc_rise,
        R"({"schema":"fim-stats-v2","num_sets":7,)"
        R"("counters":{"isect_steps":100},)"
        R"("perf":{"available":true,"counters":{"ipc":2.4,)"
        R"("llc_miss_rate":0.02}}})");
  EXPECT_EQ(ExitCode(diff + with_perf + " " + ipc_drop + " 2>/dev/null"), 1);
  EXPECT_EQ(ExitCode(diff + with_perf + " " + ipc_rise + " 2>/dev/null"), 0);
  // A 50% drop passes once the tolerance covers it.
  EXPECT_EQ(ExitCode(diff + "--rel-tol=0.6 " + with_perf + " " + ipc_drop +
                     " 2>/dev/null"),
            0);

  // Zero-baseline rate: any increase has infinite relative growth, so
  // it fails under the default tolerances but an absolute tolerance
  // wide enough to cover the increase admits it.
  const std::string zero_rate = TempPath("diff_perf_zero.json");
  const std::string small_rate = TempPath("diff_perf_small.json");
  write(zero_rate,
        R"({"schema":"fim-stats-v2","num_sets":7,)"
        R"("counters":{"isect_steps":100},)"
        R"("perf":{"available":true,"counters":{"llc_miss_rate":0}}})");
  write(small_rate,
        R"({"schema":"fim-stats-v2","num_sets":7,)"
        R"("counters":{"isect_steps":100},)"
        R"("perf":{"available":true,"counters":{"llc_miss_rate":0.01}}})");
  EXPECT_EQ(ExitCode(diff + zero_rate + " " + small_rate + " 2>/dev/null"),
            1);
  EXPECT_EQ(ExitCode(diff + "--abs-tol=0.05 " + zero_rate + " " +
                     small_rate + " 2>/dev/null"),
            0);

  // perf.cycles is timing-class (scales with wall time and multiplex
  // correction): gated only with --time.
  const std::string more_cycles = TempPath("diff_perf_cycles.json");
  write(more_cycles,
        R"({"schema":"fim-stats-v2","num_sets":7,)"
        R"("counters":{"isect_steps":100},)"
        R"("perf":{"available":true,"counters":{"cycles":50000,)"
        R"("instructions":9000,"ipc":1.8,"llc_miss_rate":0.02}}})");
  EXPECT_EQ(ExitCode(diff + with_perf + " " + more_cycles + " 2>/dev/null"),
            0);
  EXPECT_EQ(ExitCode(diff + "--time " + with_perf + " " + more_cycles +
                     " 2>/dev/null"),
            1);

  // Non-finite guard: the JSON layer rejects Inf-valued numbers
  // outright (1e999 overflows strtod), so a poisoned report is a parse
  // error (exit 2), never a silent pass or a bogus comparison.
  const std::string inf_report = TempPath("diff_perf_inf.json");
  write(inf_report,
        R"({"schema":"fim-stats-v2","num_sets":7,)"
        R"("counters":{"isect_steps":1e999}})");
  EXPECT_EQ(ExitCode(diff + inf_report + " " + inf_report + " 2>/dev/null"),
            2);

  // Schema-version skew: a v1 baseline (pre-distributions, no perf)
  // still gates a v2 candidate — shared counters compare, new optional
  // sections ride along.
  const std::string v1_base = TempPath("diff_perf_v1.json");
  const std::string v2_same = TempPath("diff_perf_v2_same.json");
  const std::string v2_regressed = TempPath("diff_perf_v2_regressed.json");
  write(v1_base,
        R"({"schema":"fim-stats-v1","num_sets":7,)"
        R"("counters":{"isect_steps":100}})");
  write(v2_same,
        R"({"schema":"fim-stats-v2","num_sets":7,)"
        R"("counters":{"isect_steps":100},)"
        R"("perf":{"available":true,"counters":{"ipc":1.8}}})");
  write(v2_regressed,
        R"({"schema":"fim-stats-v2","num_sets":7,)"
        R"("counters":{"isect_steps":250},)"
        R"("perf":{"available":true,"counters":{"ipc":1.8}}})");
  EXPECT_EQ(ExitCode(diff + v1_base + " " + v2_same + " 2>/dev/null"), 0);
  EXPECT_EQ(ExitCode(diff + v1_base + " " + v2_regressed + " 2>/dev/null"),
            1);
}

}  // namespace
}  // namespace fim
