// Tests of the verification substrate itself: the subset-intersection
// oracle, the closure helper, and the result diff.

#include <gtest/gtest.h>

#include "verify/closedness.h"
#include "verify/compare.h"
#include "verify/oracle.h"

namespace fim {
namespace {

TEST(OracleTest, SingleTransaction) {
  const TransactionDatabase db =
      TransactionDatabase::FromTransactions({{1, 3}});
  auto result = OracleClosedSets(db, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].items, (std::vector<ItemId>{1, 3}));
  EXPECT_EQ(result.value()[0].support, 1u);
}

TEST(OracleTest, DisjointTransactions) {
  const TransactionDatabase db =
      TransactionDatabase::FromTransactions({{0}, {1}, {2}});
  auto result = OracleClosedSets(db, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 3u);  // empty intersections dropped
  auto none = OracleClosedSets(db, 2);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST(OracleTest, DuplicatesMergeWithSupport) {
  const TransactionDatabase db =
      TransactionDatabase::FromTransactions({{0, 1}, {0, 1}, {0, 1}});
  auto result = OracleClosedSets(db, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].support, 3u);
}

TEST(OracleTest, RejectsTooManyTransactions) {
  std::vector<std::vector<ItemId>> tx(kOracleMaxTransactions + 1, {0});
  const TransactionDatabase db = TransactionDatabase::FromTransactions(tx);
  auto result = OracleClosedSets(db, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(OracleTest, RejectsZeroSupport) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions({{0}});
  EXPECT_FALSE(OracleClosedSets(db, 0).ok());
}

TEST(ClosureTest, ComputesIntersectionOfCover) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1, 2}, {0, 1, 3}, {2, 3}});
  EXPECT_EQ(Closure(db, std::vector<ItemId>{0}),
            (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(Closure(db, std::vector<ItemId>{0, 1}),
            (std::vector<ItemId>{0, 1}));
  EXPECT_TRUE(Closure(db, std::vector<ItemId>{0, 3, 2}).empty());  // no cover
}

TEST(VerifyClosedSetsTest, CatchesViolations) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1}, {0, 1}, {0}});
  // Correct: {0,1} supp 2, {0} supp 3.
  EXPECT_TRUE(VerifyClosedSets(db, {{{0, 1}, 2}, {{0}, 3}}, 2).ok());
  // Wrong support.
  EXPECT_FALSE(VerifyClosedSets(db, {{{0, 1}, 3}}, 2).ok());
  // Non-closed set ({1} has closure {0,1}).
  EXPECT_FALSE(VerifyClosedSets(db, {{{1}, 2}}, 2).ok());
  // Below minimum support.
  EXPECT_FALSE(VerifyClosedSets(db, {{{0, 1}, 2}}, 3).ok());
  // Empty set is never allowed.
  EXPECT_FALSE(VerifyClosedSets(db, {{{}, 3}}, 2).ok());
}

TEST(CompareTest, SameResultsIgnoresOrder) {
  std::vector<ClosedItemset> a = {{{0, 1}, 2}, {{2}, 3}};
  std::vector<ClosedItemset> b = {{{2}, 3}, {{0, 1}, 2}};
  EXPECT_TRUE(SameResults(a, b));
  EXPECT_TRUE(DiffResults(a, b).empty());
}

TEST(CompareTest, DiffListsBothSides) {
  std::vector<ClosedItemset> a = {{{0}, 1}};
  std::vector<ClosedItemset> b = {{{1}, 1}};
  EXPECT_FALSE(SameResults(a, b));
  const std::string diff = DiffResults(a, b);
  EXPECT_NE(diff.find("only in A"), std::string::npos);
  EXPECT_NE(diff.find("only in B"), std::string::npos);
}

TEST(CompareTest, SupportDifferencesAreDifferences) {
  std::vector<ClosedItemset> a = {{{0}, 1}};
  std::vector<ClosedItemset> b = {{{0}, 2}};
  EXPECT_FALSE(SameResults(a, b));
}

}  // namespace
}  // namespace fim
