// Property tests of the §2.5 Galois connection: the closure laws and the
// bijection between closed item sets and closed tid sets that justify
// the intersection approach.

#include <gtest/gtest.h>

#include <set>

#include "api/miner.h"
#include "data/generators.h"
#include "verify/galois.h"

namespace fim {
namespace {

std::vector<TransactionDatabase> TestDatabases() {
  std::vector<TransactionDatabase> dbs;
  dbs.push_back(TransactionDatabase::FromTransactions(
      {{0, 1, 2}, {0, 3, 4}, {1, 2, 3}, {0, 1, 2, 3}, {1, 2}, {0, 1, 3},
       {3, 4}, {2, 3, 4}}));
  for (uint64_t seed : {1u, 2u, 3u}) {
    dbs.push_back(GenerateRandomDense(8, 7, 0.5, seed * 991));
  }
  return dbs;
}

// Enumerates all subsets of {0..n-1} as sorted vectors (n small).
template <typename T>
std::vector<std::vector<T>> AllSubsets(std::size_t n) {
  std::vector<std::vector<T>> out;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<T> subset;
    for (std::size_t b = 0; b < n; ++b) {
      if (mask & (std::size_t{1} << b)) subset.push_back(static_cast<T>(b));
    }
    out.push_back(std::move(subset));
  }
  return out;
}

TEST(GaloisTest, ClosureOperatorLaws) {
  for (const auto& db : TestDatabases()) {
    for (const auto& items : AllSubsets<ItemId>(db.NumItems())) {
      const auto closure = ItemClosure(db, items);
      // Extensive: I subseteq gf(I).
      EXPECT_TRUE(IsSubsetSorted(items, closure));
      // Idempotent: gf(gf(I)) == gf(I).
      EXPECT_EQ(ItemClosure(db, closure), closure);
    }
    for (const auto& tids : AllSubsets<Tid>(db.NumTransactions())) {
      const auto closure = TidClosure(db, tids);
      EXPECT_TRUE(IsSubsetSorted(tids, closure));
      EXPECT_EQ(TidClosure(db, closure), closure);
    }
  }
}

TEST(GaloisTest, Monotonicity) {
  for (const auto& db : TestDatabases()) {
    const auto subsets = AllSubsets<ItemId>(db.NumItems());
    for (const auto& a : subsets) {
      for (const auto& b : subsets) {
        if (!IsSubsetSorted(a, b)) continue;
        // f antitone: cover(b) subseteq cover(a).
        EXPECT_TRUE(IsSubsetSorted(CoverOf(db, b), CoverOf(db, a)));
        // gf monotone.
        EXPECT_TRUE(
            IsSubsetSorted(ItemClosure(db, a), ItemClosure(db, b)));
      }
    }
  }
}

TEST(GaloisTest, FgfEqualsF) {
  for (const auto& db : TestDatabases()) {
    for (const auto& items : AllSubsets<ItemId>(db.NumItems())) {
      // f(gf(I)) == f(I): the cover of the closure is the cover.
      EXPECT_EQ(CoverOf(db, ItemClosure(db, items)), CoverOf(db, items));
    }
  }
}

TEST(GaloisTest, BijectionBetweenFixpoints) {
  for (const auto& db : TestDatabases()) {
    // Collect the fixpoints on both sides.
    std::set<std::vector<ItemId>> closed_item_sets;
    for (const auto& items : AllSubsets<ItemId>(db.NumItems())) {
      if (ItemClosure(db, items) == items) closed_item_sets.insert(items);
    }
    std::set<std::vector<Tid>> closed_tid_sets;
    for (const auto& tids : AllSubsets<Tid>(db.NumTransactions())) {
      if (TidClosure(db, tids) == tids) closed_tid_sets.insert(tids);
    }
    EXPECT_EQ(closed_item_sets.size(), closed_tid_sets.size());
    // f maps closed item sets onto closed tid sets, g inverts it.
    std::set<std::vector<Tid>> image;
    for (const auto& items : closed_item_sets) {
      const auto cover = CoverOf(db, items);
      EXPECT_TRUE(closed_tid_sets.count(cover));
      EXPECT_EQ(IntersectionOf(db, cover), items);
      image.insert(cover);
    }
    EXPECT_EQ(image.size(), closed_item_sets.size());  // injective
  }
}

TEST(GaloisTest, MinedClosedSetsAreExactlyNonEmptyFixpointsWithSupport) {
  for (const auto& db : TestDatabases()) {
    MinerOptions options;
    options.min_support = 2;
    auto mined = MineClosedCollect(db, options);
    ASSERT_TRUE(mined.ok());
    std::set<std::vector<ItemId>> mined_sets;
    for (const auto& set : mined.value()) {
      mined_sets.insert(set.items);
      // Closed w.r.t. the closure operator and support = cover size.
      EXPECT_EQ(ItemClosure(db, set.items), set.items);
      EXPECT_EQ(CoverOf(db, set.items).size(), set.support);
    }
    // Completeness: every non-empty fixpoint with enough support is mined.
    for (const auto& items : AllSubsets<ItemId>(db.NumItems())) {
      if (items.empty() || ItemClosure(db, items) != items) continue;
      if (CoverOf(db, items).size() < 2) continue;
      EXPECT_TRUE(mined_sets.count(items)) << ItemsToString(items);
    }
  }
}

}  // namespace
}  // namespace fim
