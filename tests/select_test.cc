// Tests of the shape-based algorithm selector.

#include <gtest/gtest.h>

#include "api/select.h"
#include "data/generators.h"
#include "data/profiles.h"

namespace fim {
namespace {

TEST(SelectTest, ManyItemsFewTransactionsPicksIntersection) {
  // Gene-expression-like shape.
  EXPECT_EQ(ChooseAlgorithm(MakeYeastLike(0.05, 42)), Algorithm::kIsta);
  EXPECT_EQ(ChooseAlgorithm(MakeThrombinLike(0.02, 44)), Algorithm::kIsta);
}

TEST(SelectTest, ManyTransactionsFewItemsPicksEnumeration) {
  MarketBasketConfig config;
  config.num_items = 50;
  config.num_transactions = 5000;
  config.seed = 1;
  EXPECT_EQ(ChooseAlgorithm(GenerateMarketBasket(config)), Algorithm::kLcm);
}

TEST(SelectTest, ThresholdIsConfigurable) {
  DatabaseStats stats;
  stats.num_transactions = 100;
  stats.num_used_items = 150;
  EXPECT_EQ(ChooseAlgorithm(stats, 1.0), Algorithm::kIsta);
  EXPECT_EQ(ChooseAlgorithm(stats, 2.0), Algorithm::kLcm);
}

TEST(SelectTest, EmptyDatabaseDefaultsToIsta) {
  EXPECT_EQ(ChooseAlgorithm(TransactionDatabase()), Algorithm::kIsta);
}

}  // namespace
}  // namespace fim
