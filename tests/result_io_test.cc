// Unit tests of the closed-set result serialization.

#include <gtest/gtest.h>

#include "api/miner.h"
#include "data/generators.h"
#include "data/result_io.h"
#include "verify/compare.h"

namespace fim {
namespace {

TEST(ResultIoTest, RenderFormat) {
  const std::vector<ClosedItemset> sets = {{{3, 17, 42}, 57}, {{5}, 9}};
  EXPECT_EQ(ClosedSetsToString(sets), "3 17 42 (57)\n5 (9)\n");
}

TEST(ResultIoTest, ParseBasic) {
  auto parsed = ParseClosedSets("3 17 42 (57)\n# comment\n5 (9)\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].items, (std::vector<ItemId>{3, 17, 42}));
  EXPECT_EQ(parsed.value()[0].support, 57u);
  EXPECT_EQ(parsed.value()[1].items, (std::vector<ItemId>{5}));
}

TEST(ResultIoTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseClosedSets("1 2 3\n").ok());        // missing support
  EXPECT_FALSE(ParseClosedSets("1 (x)\n").ok());        // bad support
  EXPECT_FALSE(ParseClosedSets("1 (2) 3\n").ok());      // trailing items
  EXPECT_FALSE(ParseClosedSets("a (2)\n").ok());        // bad item
  EXPECT_FALSE(ParseClosedSets("1 (2\n").ok());         // unclosed paren
}

TEST(ResultIoTest, EmptyItemsAllowedOnParse) {
  // "(4)" parses as the empty set with support 4 (tools may emit it for
  // diagnostic purposes); the miners themselves never produce it.
  auto parsed = ParseClosedSets("(4)\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value()[0].items.empty());
}

TEST(ResultIoTest, FileRoundTripOfRealMiningOutput) {
  const TransactionDatabase db = GenerateRandomDense(12, 9, 0.4, 4242);
  MinerOptions options;
  options.min_support = 2;
  auto mined = MineClosedCollect(db, options);
  ASSERT_TRUE(mined.ok());
  const std::string path = ::testing::TempDir() + "/result_roundtrip.txt";
  ASSERT_TRUE(WriteClosedSetsFile(mined.value(), path).ok());
  auto back = ReadClosedSetsFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(SameResults(mined.value(), back.value()))
      << DiffResults(mined.value(), back.value());
}

TEST(ResultIoTest, MissingFile) {
  EXPECT_EQ(ReadClosedSetsFile("/no/file").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace fim
