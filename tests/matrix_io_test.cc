// Unit tests of the expression-matrix text IO.

#include <gtest/gtest.h>

#include "data/expression.h"
#include "data/matrix_io.h"

namespace fim {
namespace {

TEST(MatrixIoTest, ParseBasic) {
  auto result = ParseExpressionMatrix("0.5 -0.3 0\n# comment\n1.25 0.0 -1\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExpressionMatrix& m = result.value();
  EXPECT_EQ(m.num_genes(), 2u);
  EXPECT_EQ(m.num_conditions(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -0.3);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 1.25);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -1.0);
}

TEST(MatrixIoTest, ParseTabsAndScientific) {
  auto result = ParseExpressionMatrix("1e-3\t-2.5e2\n0.0\t3\n");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().at(0, 0), 1e-3);
  EXPECT_DOUBLE_EQ(result.value().at(0, 1), -250.0);
}

TEST(MatrixIoTest, RejectsRaggedRows) {
  auto result = ParseExpressionMatrix("1 2 3\n4 5\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixIoTest, RejectsGarbage) {
  auto result = ParseExpressionMatrix("1 2\nx y\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(MatrixIoTest, RejectsEmpty) {
  EXPECT_FALSE(ParseExpressionMatrix("").ok());
  EXPECT_FALSE(ParseExpressionMatrix("# only comments\n").ok());
}

TEST(MatrixIoTest, FileRoundTrip) {
  ExpressionMatrix m(2, 2);
  m.at(0, 0) = 0.25;
  m.at(0, 1) = -1.5;
  m.at(1, 0) = 0.0;
  m.at(1, 1) = 42.0;
  const std::string path = ::testing::TempDir() + "/matrix_roundtrip.tsv";
  ASSERT_TRUE(WriteExpressionMatrixFile(m, path).ok());
  auto back = ReadExpressionMatrixFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_genes(), 2u);
  EXPECT_EQ(back.value().num_conditions(), 2u);
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(back.value().at(g, c), m.at(g, c));
    }
  }
}

TEST(MatrixIoTest, MissingFile) {
  EXPECT_EQ(ReadExpressionMatrixFile("/no/such/file.tsv").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace fim
