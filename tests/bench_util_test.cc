// Tests of the benchmark sweep harness itself: DNF skipping, per-support
// count agreement, CSV output, and flag parsing.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "bench_util.h"
#include "data/generators.h"

namespace fim::bench {
namespace {

TEST(BenchUtilTest, RunsAllCellsAndCountsAgree) {
  const TransactionDatabase db = GenerateRandomDense(10, 8, 0.4, 5);
  SweepOptions options;
  options.algorithms = {Algorithm::kIsta, Algorithm::kLcm};
  options.supports = {4, 2, 1};
  options.point_time_limit_seconds = 60.0;
  const SweepResult result = RunSweep(db, options);
  ASSERT_EQ(result.points.size(), 6u);
  for (Support smin : options.supports) {
    const SweepPoint* a = result.Find(Algorithm::kIsta, smin);
    const SweepPoint* b = result.Find(Algorithm::kLcm, smin);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(a->ran);
    EXPECT_TRUE(b->ran);
    EXPECT_EQ(a->num_sets, b->num_sets) << "smin " << smin;
  }
}

TEST(BenchUtilTest, ZeroBudgetSkipsAfterFirstPoint) {
  const TransactionDatabase db = GenerateRandomDense(10, 8, 0.4, 6);
  SweepOptions options;
  options.algorithms = {Algorithm::kIsta};
  options.supports = {4, 2, 1};
  options.point_time_limit_seconds = 0.0;  // everything exceeds 0 seconds
  const SweepResult result = RunSweep(db, options);
  EXPECT_TRUE(result.Find(Algorithm::kIsta, 4)->ran);
  EXPECT_FALSE(result.Find(Algorithm::kIsta, 2)->ran);
  EXPECT_FALSE(result.Find(Algorithm::kIsta, 1)->ran);
}

TEST(BenchUtilTest, CsvOutput) {
  const TransactionDatabase db = GenerateRandomDense(6, 5, 0.5, 7);
  SweepOptions options;
  options.algorithms = {Algorithm::kIsta};
  options.supports = {2};
  const SweepResult result = RunSweep(db, options);
  const std::string path = ::testing::TempDir() + "/sweep.csv";
  WriteCsv(path, result);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "algorithm,min_support,seconds,num_sets,ran");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row.rfind("ista,2,", 0), 0u);
}

TEST(BenchUtilTest, ParseBenchArgs) {
  const char* argv[] = {"prog", "--scale=0.5", "--limit=12",
                        "--csv=/tmp/x.csv", "--junk"};
  BenchArgs args = ParseBenchArgs(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.scale, 0.5);
  EXPECT_DOUBLE_EQ(args.limit, 12.0);
  EXPECT_EQ(args.csv_path, "/tmp/x.csv");

  const char* argv2[] = {"prog", "--full"};
  BenchArgs full = ParseBenchArgs(2, const_cast<char**>(argv2));
  EXPECT_DOUBLE_EQ(full.scale, 1.0);

  BenchArgs defaults = ParseBenchArgs(1, const_cast<char**>(argv2));
  EXPECT_LT(defaults.scale, 0.0);
  EXPECT_LT(defaults.limit, 0.0);
  EXPECT_TRUE(defaults.csv_path.empty());
}

}  // namespace
}  // namespace fim::bench
