// Tests of the benchmark sweep harness itself: DNF skipping, per-support
// count agreement, CSV output, and flag parsing.

#include <gtest/gtest.h>

#include <fstream>
#include <algorithm>
#include <sstream>

#include "bench_util.h"
#include "data/generators.h"

namespace fim::bench {
namespace {

TEST(BenchUtilTest, RunsAllCellsAndCountsAgree) {
  const TransactionDatabase db = GenerateRandomDense(10, 8, 0.4, 5);
  SweepOptions options;
  options.algorithms = {Algorithm::kIsta, Algorithm::kLcm};
  options.supports = {4, 2, 1};
  options.point_time_limit_seconds = 60.0;
  const SweepResult result = RunSweep(db, options);
  ASSERT_EQ(result.points.size(), 6u);
  for (Support smin : options.supports) {
    const SweepPoint* a = result.Find(Algorithm::kIsta, smin);
    const SweepPoint* b = result.Find(Algorithm::kLcm, smin);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(a->ran);
    EXPECT_TRUE(b->ran);
    EXPECT_EQ(a->num_sets, b->num_sets) << "smin " << smin;
  }
}

TEST(BenchUtilTest, ZeroBudgetSkipsAfterFirstPoint) {
  const TransactionDatabase db = GenerateRandomDense(10, 8, 0.4, 6);
  SweepOptions options;
  options.algorithms = {Algorithm::kIsta};
  options.supports = {4, 2, 1};
  options.point_time_limit_seconds = 0.0;  // everything exceeds 0 seconds
  const SweepResult result = RunSweep(db, options);
  EXPECT_TRUE(result.Find(Algorithm::kIsta, 4)->ran);
  EXPECT_FALSE(result.Find(Algorithm::kIsta, 2)->ran);
  EXPECT_FALSE(result.Find(Algorithm::kIsta, 1)->ran);
}

TEST(BenchUtilTest, CsvOutput) {
  const TransactionDatabase db = GenerateRandomDense(6, 5, 0.5, 7);
  SweepOptions options;
  options.algorithms = {Algorithm::kIsta};
  options.supports = {2};
  const SweepResult result = RunSweep(db, options);
  const std::string path = ::testing::TempDir() + "/sweep.csv";
  WriteCsv(path, result);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "algorithm,min_support,seconds,num_sets,ran");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row.rfind("ista,2,", 0), 0u);
}

TEST(BenchUtilTest, JsonOutput) {
  std::vector<JsonPoint> points;
  points.push_back(JsonPoint{"ista-1t", 5, 1.25, 42, true});
  points.push_back(JsonPoint{"ista-4t", 5, 0.5, 42, false});
  const std::string path = ::testing::TempDir() + "/sweep.json";
  WriteJson(path, "parallel_ista", 0.5, points);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"bench\": \"parallel_ista\""), std::string::npos);
  EXPECT_NE(json.find("\"scale\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"hardware_threads\": "), std::string::npos);
  EXPECT_NE(json.find("{\"algorithm\": \"ista-1t\", \"min_support\": 5, "
                      "\"seconds\": 1.25, \"num_sets\": 42, \"ran\": true}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ran\": false"), std::string::npos);
  // Well-formed: one '[' and one ']', balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '['), 1);
  EXPECT_EQ(std::count(json.begin(), json.end(), ']'), 1);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(BenchUtilTest, JsonOutputCarriesObservabilityPayloadWhenPresent) {
  std::vector<JsonPoint> points;
  JsonPoint p;
  p.algorithm = "ista-2t";
  p.min_support = 3;
  p.seconds = 0.75;
  p.num_sets = 9;
  p.ran = true;
  p.cpu_seconds = 1.5;
  p.stats.isect_steps = 123;
  p.stats.sets_reported = 9;
  p.has_stats = true;
  points.push_back(p);
  const std::string path = ::testing::TempDir() + "/sweep_stats.json";
  WriteJson(path, "parallel_ista", 1.0, points);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"peak_rss_bytes\": "), std::string::npos);
  EXPECT_NE(json.find("\"cpu_seconds\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"counters\": {\"isect_steps\": 123, "
                      "\"sets_reported\": 9}"),
            std::string::npos);
  // Zero counters stay out of bench reports (they record what happened).
  EXPECT_EQ(json.find("\"prune_calls\""), std::string::npos);
}

TEST(BenchUtilTest, SweepPointsCarryMinerCounters) {
  const TransactionDatabase db = GenerateRandomDense(8, 6, 0.5, 11);
  SweepOptions options;
  options.algorithms = {Algorithm::kIsta};
  options.supports = {2};
  const SweepResult result = RunSweep(db, options);
  const SweepPoint* p = result.Find(Algorithm::kIsta, 2);
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->ran);
  EXPECT_EQ(p->stats.sets_reported, p->num_sets);
  EXPECT_GT(p->stats.isect_steps, 0u);
  EXPECT_GE(p->cpu_seconds, 0.0);
}

TEST(BenchUtilTest, JsonOutputFromSweep) {
  const TransactionDatabase db = GenerateRandomDense(6, 5, 0.5, 7);
  SweepOptions options;
  options.algorithms = {Algorithm::kIsta};
  options.supports = {2};
  const SweepResult result = RunSweep(db, options);
  const std::string path = ::testing::TempDir() + "/sweep2.json";
  WriteJson(path, "mini", 1.0, result);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"algorithm\": \"ista\""), std::string::npos);
}

TEST(BenchUtilTest, ParseBenchArgs) {
  const char* argv[] = {"prog", "--scale=0.5", "--limit=12",
                        "--csv=/tmp/x.csv", "--json=/tmp/x.json", "--junk"};
  BenchArgs args = ParseBenchArgs(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.scale, 0.5);
  EXPECT_DOUBLE_EQ(args.limit, 12.0);
  EXPECT_EQ(args.csv_path, "/tmp/x.csv");
  EXPECT_EQ(args.json_path, "/tmp/x.json");

  const char* argv2[] = {"prog", "--full"};
  BenchArgs full = ParseBenchArgs(2, const_cast<char**>(argv2));
  EXPECT_DOUBLE_EQ(full.scale, 1.0);

  BenchArgs defaults = ParseBenchArgs(1, const_cast<char**>(argv2));
  EXPECT_LT(defaults.scale, 0.0);
  EXPECT_LT(defaults.limit, 0.0);
  EXPECT_TRUE(defaults.csv_path.empty());
  EXPECT_TRUE(defaults.json_path.empty());
}

}  // namespace
}  // namespace fim::bench
