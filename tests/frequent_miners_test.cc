// Tests of the all-frequent-set miners (Eclat, Apriori) and their
// relationship to the closed-set miners.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "api/miner.h"
#include "data/generators.h"
#include "enumeration/apriori.h"
#include "enumeration/declat.h"
#include "enumeration/eclat.h"

namespace fim {
namespace {

using FrequentMap = std::map<std::vector<ItemId>, Support>;

FrequentMap BruteForceFrequent(const TransactionDatabase& db, Support smin) {
  // Enumerate all subsets of the item base (small tests only).
  std::vector<ItemId> used;
  const auto freq = db.ItemFrequencies();
  for (std::size_t i = 0; i < freq.size(); ++i) {
    if (freq[i] > 0) used.push_back(static_cast<ItemId>(i));
  }
  FrequentMap out;
  const std::size_t limit = std::size_t{1} << used.size();
  for (std::size_t mask = 1; mask < limit; ++mask) {
    std::vector<ItemId> items;
    for (std::size_t b = 0; b < used.size(); ++b) {
      if (mask & (std::size_t{1} << b)) items.push_back(used[b]);
    }
    const Support s = db.CountSupport(items);
    if (s >= smin) out.emplace(std::move(items), s);
  }
  return out;
}

FrequentMap RunEclat(const TransactionDatabase& db, Support smin) {
  FrequentMap out;
  EclatOptions options;
  options.min_support = smin;
  EXPECT_TRUE(MineFrequentEclat(
                  db, options,
                  [&out](std::span<const ItemId> items, Support support) {
                    auto [it, inserted] = out.emplace(
                        std::vector<ItemId>(items.begin(), items.end()),
                        support);
                    EXPECT_TRUE(inserted) << "duplicate frequent set";
                  })
                  .ok());
  return out;
}

FrequentMap RunDeclat(const TransactionDatabase& db, Support smin) {
  FrequentMap out;
  DeclatOptions options;
  options.min_support = smin;
  EXPECT_TRUE(MineFrequentDeclat(
                  db, options,
                  [&out](std::span<const ItemId> items, Support support) {
                    auto [it, inserted] = out.emplace(
                        std::vector<ItemId>(items.begin(), items.end()),
                        support);
                    EXPECT_TRUE(inserted) << "duplicate frequent set";
                  })
                  .ok());
  return out;
}

FrequentMap RunApriori(const TransactionDatabase& db, Support smin) {
  FrequentMap out;
  AprioriOptions options;
  options.min_support = smin;
  EXPECT_TRUE(MineFrequentApriori(
                  db, options,
                  [&out](std::span<const ItemId> items, Support support) {
                    auto [it, inserted] = out.emplace(
                        std::vector<ItemId>(items.begin(), items.end()),
                        support);
                    EXPECT_TRUE(inserted) << "duplicate frequent set";
                  })
                  .ok());
  return out;
}

TEST(FrequentMinersTest, MatchBruteForceOnRandomDatabases) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const TransactionDatabase db = GenerateRandomDense(10, 8, 0.4, seed * 13);
    for (Support smin : {1u, 2u, 4u}) {
      const FrequentMap expected = BruteForceFrequent(db, smin);
      EXPECT_EQ(RunEclat(db, smin), expected) << "eclat seed " << seed;
      EXPECT_EQ(RunApriori(db, smin), expected) << "apriori seed " << seed;
      EXPECT_EQ(RunDeclat(db, smin), expected) << "declat seed " << seed;
    }
  }
}

TEST(FrequentMinersTest, ZeroSupportRejected) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions({{0}});
  EclatOptions e;
  e.min_support = 0;
  EXPECT_FALSE(MineFrequentEclat(db, e, [](auto, auto) {}).ok());
  AprioriOptions a;
  a.min_support = 0;
  EXPECT_FALSE(MineFrequentApriori(db, a, [](auto, auto) {}).ok());
  DeclatOptions d;
  d.min_support = 0;
  EXPECT_FALSE(MineFrequentDeclat(db, d, [](auto, auto) {}).ok());
}

TEST(FrequentMinersTest, ClosedSetsAreExactlyClosureImagesOfFrequentSets) {
  // Every frequent set's support must equal the support of some closed
  // frequent superset, and every closed set must itself be frequent.
  const TransactionDatabase db = GenerateRandomDense(11, 9, 0.45, 777);
  const Support smin = 2;

  MinerOptions options;
  options.min_support = smin;
  auto closed = MineClosedCollect(db, options);
  ASSERT_TRUE(closed.ok());
  const auto& closed_sets = closed.value();

  const FrequentMap frequent = RunEclat(db, smin);

  // (a) every closed set is frequent with matching support;
  for (const auto& set : closed_sets) {
    auto it = frequent.find(set.items);
    ASSERT_NE(it, frequent.end());
    EXPECT_EQ(it->second, set.support);
  }
  // (b) every frequent set has a closed superset with the same support.
  for (const auto& [items, support] : frequent) {
    bool found = false;
    for (const auto& set : closed_sets) {
      if (set.support == support && IsSubsetSorted(items, set.items)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << ItemsToString(items);
  }
  // (c) closed sets are a (usually strict) subset of frequent sets.
  EXPECT_LE(closed_sets.size(), frequent.size());
}

}  // namespace
}  // namespace fim
