// Tests of maximal-set filtering and frequent-set reconstruction (§2.3).

#include <gtest/gtest.h>

#include <map>

#include "api/miner.h"
#include "data/generators.h"
#include "enumeration/eclat.h"
#include "rules/derive.h"

namespace fim {
namespace {

TEST(FilterMaximalTest, DropsSubsumedSets) {
  std::vector<ClosedItemset> closed = {
      {{0, 1, 2}, 2}, {{0, 1}, 3}, {{3}, 4}, {{1, 2}, 2},
  };
  const auto maximal = FilterMaximal(closed);
  // {0,1} and {1,2} are inside {0,1,2}; {3} stands alone.
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0].items, (std::vector<ItemId>{0, 1, 2}));
  EXPECT_EQ(maximal[1].items, (std::vector<ItemId>{3}));
}

TEST(FilterMaximalTest, EqualSetsAreNotSubsumedByThemselves) {
  std::vector<ClosedItemset> closed = {{{0, 1}, 2}};
  EXPECT_EQ(FilterMaximal(closed).size(), 1u);
}

TEST(FilterMaximalTest, MaximalPropertyOnRandomData) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const TransactionDatabase db = GenerateRandomDense(10, 8, 0.5, seed * 7);
    MinerOptions options;
    options.min_support = 2;
    auto closed = MineClosedCollect(db, options);
    ASSERT_TRUE(closed.ok());
    const auto maximal = FilterMaximal(closed.value());
    // (a) every maximal set is closed and frequent;
    for (const auto& m : maximal) {
      EXPECT_GE(m.support, 2u);
      // (b) no other maximal set contains it;
      for (const auto& other : maximal) {
        if (&other == &m) continue;
        EXPECT_FALSE(IsSubsetSorted(m.items, other.items) &&
                     m.items != other.items);
      }
    }
    // (c) every closed set is inside some maximal set.
    for (const auto& c : closed.value()) {
      bool contained = false;
      for (const auto& m : maximal) {
        if (IsSubsetSorted(c.items, m.items)) {
          contained = true;
          break;
        }
      }
      EXPECT_TRUE(contained);
    }
  }
}

TEST(ExpandToAllFrequentTest, MatchesEclatExactly) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const TransactionDatabase db =
        GenerateRandomDense(10, 8, 0.45, seed * 31);
    const Support smin = 2;
    MinerOptions options;
    options.min_support = smin;
    auto closed = MineClosedCollect(db, options);
    ASSERT_TRUE(closed.ok());
    const ClosedSetIndex index(closed.value());
    auto expanded = ExpandToAllFrequent(index);
    ASSERT_TRUE(expanded.ok());

    std::map<std::vector<ItemId>, Support> expected;
    EclatOptions eclat;
    eclat.min_support = smin;
    ASSERT_TRUE(MineFrequentEclat(
                    db, eclat,
                    [&expected](std::span<const ItemId> items,
                                Support support) {
                      expected.emplace(std::vector<ItemId>(items.begin(),
                                                           items.end()),
                                       support);
                    })
                    .ok());

    ASSERT_EQ(expanded.value().size(), expected.size()) << "seed " << seed;
    for (const auto& set : expanded.value()) {
      auto it = expected.find(set.items);
      ASSERT_NE(it, expected.end());
      EXPECT_EQ(it->second, set.support);
    }
  }
}

TEST(ExpandToAllFrequentTest, RespectsMaxSets) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1, 2, 3, 4, 5}, {0, 1, 2, 3, 4, 5}});
  MinerOptions options;
  options.min_support = 1;
  auto closed = MineClosedCollect(db, options);
  ASSERT_TRUE(closed.ok());
  const ClosedSetIndex index(closed.value());
  auto result = ExpandToAllFrequent(index, /*max_sets=*/10);
  ASSERT_FALSE(result.ok());  // 2^6 - 1 = 63 frequent sets > 10
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(ExpandToAllFrequentTest, EmptyIndex) {
  const ClosedSetIndex index({});
  auto result = ExpandToAllFrequent(index);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

}  // namespace
}  // namespace fim
