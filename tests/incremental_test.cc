// Tests of the online/streaming IsTa wrapper: querying after every
// prefix of the stream must match batch mining of that prefix.

#include <gtest/gtest.h>

#include "api/miner.h"
#include "data/generators.h"
#include "ista/incremental.h"
#include "verify/compare.h"
#include "verify/oracle.h"

namespace fim {
namespace {

TEST(IncrementalTest, MatchesBatchAfterEveryPrefix) {
  const TransactionDatabase db = GenerateRandomDense(12, 10, 0.4, 2024);
  IncrementalClosedSetMiner miner(db.NumItems());
  TransactionDatabase prefix_db;
  prefix_db.SetNumItems(db.NumItems());
  for (std::size_t k = 0; k < db.NumTransactions(); ++k) {
    ASSERT_TRUE(miner.AddTransaction(db.transaction(k)).ok());
    prefix_db.AddTransaction(db.transaction(k));
    EXPECT_EQ(miner.NumTransactions(), k + 1);
    for (Support smin : {1u, 2u, 3u}) {
      auto streamed = miner.QueryCollect(smin);
      ASSERT_TRUE(streamed.ok());
      auto expected = OracleClosedSets(prefix_db, smin);
      ASSERT_TRUE(expected.ok());
      EXPECT_TRUE(SameResults(expected.value(), streamed.value()))
          << "prefix " << (k + 1) << " smin " << smin << "\n"
          << DiffResults(expected.value(), streamed.value());
    }
  }
}

TEST(IncrementalTest, RejectsBadInput) {
  IncrementalClosedSetMiner miner(5);
  EXPECT_FALSE(miner.AddTransaction({}).ok());
  EXPECT_EQ(miner.AddTransaction({7}).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(miner.AddTransaction({1, 1, 4}).ok());  // duplicates fine
  EXPECT_EQ(miner.NumTransactions(), 1u);
  EXPECT_FALSE(miner.Query(0, [](auto, auto) {}).ok());
}

TEST(IncrementalTest, QueryBeforeAnyTransaction) {
  IncrementalClosedSetMiner miner(4);
  auto result = miner.QueryCollect(1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
  EXPECT_EQ(miner.NodeCount(), 0u);
}

TEST(IncrementalTest, SupportsRepeatedQueriesWithoutSideEffects) {
  IncrementalClosedSetMiner miner(6);
  ASSERT_TRUE(miner.AddTransaction({0, 1, 2}).ok());
  ASSERT_TRUE(miner.AddTransaction({1, 2, 3}).ok());
  auto a = miner.QueryCollect(1);
  auto b = miner.QueryCollect(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  // {1,2} supp 2 plus the two transactions.
  EXPECT_EQ(a.value().size(), 3u);
}

}  // namespace
}  // namespace fim
