// Stress tests: deep recursion paths (very long transactions), wide item
// bases, and many duplicate transactions — the regimes that crashed the
// original Carpenter release the paper compared against (§5).

#include <gtest/gtest.h>

#include "api/miner.h"
#include "verify/compare.h"

namespace fim {
namespace {

TEST(StressTest, VeryLongSingleTransaction) {
  // One transaction with 20000 items: tree/report recursion depth equals
  // the transaction length.
  std::vector<ItemId> wide(20000);
  for (std::size_t i = 0; i < wide.size(); ++i) {
    wide[i] = static_cast<ItemId>(i);
  }
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {wide, wide});
  for (Algorithm algorithm :
       {Algorithm::kIsta, Algorithm::kCarpenterLists,
        Algorithm::kCarpenterTable, Algorithm::kLcm}) {
    MinerOptions options;
    options.algorithm = algorithm;
    options.min_support = 2;
    auto result = MineClosedCollect(db, options);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    ASSERT_EQ(result.value().size(), 1u) << AlgorithmName(algorithm);
    EXPECT_EQ(result.value()[0].items.size(), wide.size());
    EXPECT_EQ(result.value()[0].support, 2u);
  }
}

TEST(StressTest, LongOverlappingTransactions) {
  // Nested long transactions produce a deep chain of closed sets.
  std::vector<std::vector<ItemId>> tx;
  const std::size_t kDepth = 2000;
  std::vector<ItemId> items;
  for (std::size_t k = 0; k < kDepth; ++k) {
    items.push_back(static_cast<ItemId>(k));
    if (k % 50 == 0) tx.push_back(items);
  }
  const TransactionDatabase db = TransactionDatabase::FromTransactions(tx);
  MinerOptions a;
  a.algorithm = Algorithm::kIsta;
  a.min_support = 1;
  auto ista = MineClosedCollect(db, a);
  ASSERT_TRUE(ista.ok());
  EXPECT_EQ(ista.value().size(), tx.size());  // every prefix is closed

  MinerOptions b = a;
  b.algorithm = Algorithm::kCarpenterTable;
  auto carp = MineClosedCollect(db, b);
  ASSERT_TRUE(carp.ok());
  EXPECT_TRUE(SameResults(ista.value(), carp.value()));
}

TEST(StressTest, ManyDuplicateTransactions) {
  std::vector<std::vector<ItemId>> tx(5000, {1, 2, 3});
  for (int i = 0; i < 100; ++i) tx.push_back({1, 2});
  const TransactionDatabase db = TransactionDatabase::FromTransactions(tx);
  for (Algorithm algorithm : AllAlgorithms()) {
    MinerOptions options;
    options.algorithm = algorithm;
    options.min_support = 50;
    auto result = MineClosedCollect(db, options);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    ASSERT_EQ(result.value().size(), 2u) << AlgorithmName(algorithm);
    EXPECT_EQ(result.value()[0].support, 5100u);  // {1,2}
    EXPECT_EQ(result.value()[1].support, 5000u);  // {1,2,3}
  }
}

TEST(StressTest, HugeSparseItemUniverse) {
  // Item ids spread over a 3-million universe; only a handful used.
  const TransactionDatabase db = TransactionDatabase::FromTransactions({
      {10, 2000000, 2999999},
      {10, 2999999},
      {2000000, 2999999},
  });
  for (Algorithm algorithm : AllAlgorithms()) {
    MinerOptions options;
    options.algorithm = algorithm;
    options.min_support = 2;
    auto result = MineClosedCollect(db, options);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(result.value().size(), 3u) << AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace fim
