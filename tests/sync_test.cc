// Tests for the annotated synchronization primitives (common/sync.h):
// mutual exclusion and CondVar semantics on every toolchain, plus the
// debug-build lock-rank checker — rank inversion and recursive
// acquisition must abort deterministically instead of deadlocking.

#include "common/sync.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/check.h"

namespace fim {
namespace {

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mutex(LockRank::kLeaf, "test");
  // Deliberately non-atomic: only the lock keeps this race-free, which
  // is exactly what TSan verifies when this suite runs under it.
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mutex, &counter]() {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const MutexLock lock(mutex);
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MutexTest, SequentialLocksOfAnyRankOrderAreFine) {
  // Ranks order *nested* acquisition only; taking locks one after the
  // other (never held together) is legal in any order.
  Mutex high(LockRank::kMetricRegistry, "high");
  Mutex low(LockRank::kStreamMiner, "low");
  {
    const MutexLock lock(high);
  }
  {
    const MutexLock lock(low);
  }
  {
    const MutexLock lock(high);
  }
}

TEST(MutexTest, NestedAcquisitionInIncreasingRankOrder) {
  Mutex outer(LockRank::kStreamMiner, "outer");
  Mutex inner(LockRank::kMetricRegistry, "inner");
  const MutexLock outer_lock(outer);
  const MutexLock inner_lock(inner);
}

TEST(CondVarTest, WaitUntilTimesOutWithoutNotify) {
  Mutex mutex(LockRank::kLeaf, "cv");
  CondVar cv;
  mutex.Lock();
  const bool timed_out = cv.WaitUntil(
      mutex, std::chrono::steady_clock::now() + std::chrono::milliseconds(5));
  mutex.Unlock();
  EXPECT_TRUE(timed_out);
}

TEST(CondVarTest, NotifyWakesWaiter) {
  Mutex mutex(LockRank::kLeaf, "cv");
  CondVar cv;
  bool ready = false;
  std::thread waiter([&]() {
    mutex.Lock();
    while (!ready) cv.Wait(mutex);
    mutex.Unlock();
  });
  {
    const MutexLock lock(mutex);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  const MutexLock lock(mutex);
  EXPECT_TRUE(ready);
}

TEST(CondVarTest, WaitUntilReportsNotification) {
  Mutex mutex(LockRank::kLeaf, "cv");
  CondVar cv;
  bool stop = false;
  std::thread sampler([&]() {
    mutex.Lock();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    // The sampler idiom from obs/sampler.cc: loop against spurious
    // wakeups, leave on notify-with-predicate or deadline.
    while (!stop) {
      if (cv.WaitUntil(mutex, deadline)) break;
    }
    const bool stopped = stop;
    mutex.Unlock();
    EXPECT_TRUE(stopped) << "waiter hit the 30s deadline instead of the stop";
  });
  {
    const MutexLock lock(mutex);
    stop = true;
  }
  cv.NotifyAll();
  sampler.join();
}

// The lock-rank checker is compiled in only with FIM_ENABLE_DCHECKS
// (Debug builds and the dchecks CI job); elsewhere these death tests
// would find nothing to die on.
#if GTEST_HAS_DEATH_TEST

// A second acquisition of a held mutex is exactly what Clang's static
// analysis rejects at compile time; the annotation escape hatch lets us
// prove the *runtime* checker catches it too (for code paths the static
// pass cannot see, e.g. through type-erased callbacks).
void AcquireRecursively(Mutex& mutex) FIM_NO_THREAD_SAFETY_ANALYSIS {
  const MutexLock outer(mutex);
  mutex.Lock();  // would self-deadlock without the rank checker
}

TEST(LockRankDeathTest, RankInversionAborts) {
  if (!FIM_DCHECK_IS_ON()) GTEST_SKIP() << "lock ranks need FIM_ENABLE_DCHECKS";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex registry(LockRank::kMetricRegistry, "registry");
  Mutex miner(LockRank::kStreamMiner, "miner");
  EXPECT_DEATH(
      {
        const MutexLock outer(registry);
        const MutexLock inner(miner);  // 100 under 400: inversion
      },
      "lock-rank inversion");
}

TEST(LockRankDeathTest, EqualRankNestingAborts) {
  if (!FIM_DCHECK_IS_ON()) GTEST_SKIP() << "lock ranks need FIM_ENABLE_DCHECKS";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a(LockRank::kTimeline, "a");
  Mutex b(LockRank::kTimeline, "b");
  EXPECT_DEATH(
      {
        const MutexLock outer(a);
        const MutexLock inner(b);  // same rank: no order defined
      },
      "lock-rank inversion");
}

TEST(LockRankDeathTest, RecursiveAcquisitionAborts) {
  if (!FIM_DCHECK_IS_ON()) GTEST_SKIP() << "lock ranks need FIM_ENABLE_DCHECKS";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mutex(LockRank::kLeaf, "recursive");
  EXPECT_DEATH(AcquireRecursively(mutex), "recursive acquisition");
}

#endif  // GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace fim
