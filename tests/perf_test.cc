// Tests of the hardware-counter layer (obs/perf.h) and the sampling
// self-profiler (obs/profiler.h): multiplex scaling arithmetic, derived
// rates with explicit not-measured (NaN) semantics, graceful
// degradation on hosts that deny perf_event_open, domain attribution,
// collapsed-stack folding, and the end-to-end SIGPROF capture path.
// Hardware-dependent tests assert both branches: whatever this host
// reports, the API contract (explicit availability + reason, all-zero
// reads when unavailable) must hold.

#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "obs/perf.h"
#include "obs/profiler.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace fim::obs {
namespace {

// --- multiplex scaling -------------------------------------------------

TEST(ScalePerfCountTest, FullyScheduledCountIsUnscaled) {
  EXPECT_EQ(internal::ScalePerfCount(1000, 500, 500), 1000u);
  // running > enabled can transiently happen on some kernels; treat as
  // fully scheduled rather than scaling down.
  EXPECT_EQ(internal::ScalePerfCount(1000, 500, 600), 1000u);
}

TEST(ScalePerfCountTest, PartiallyScheduledCountExtrapolates) {
  // On the PMU half the time: the estimate doubles the raw count.
  EXPECT_EQ(internal::ScalePerfCount(1000, 1000, 500), 2000u);
  // Quarter of the time: 4x.
  EXPECT_EQ(internal::ScalePerfCount(250, 1000, 250), 1000u);
}

TEST(ScalePerfCountTest, NeverScheduledHasNoBasisToExtrapolate) {
  EXPECT_EQ(internal::ScalePerfCount(0, 1000, 0), 0u);
  EXPECT_EQ(internal::ScalePerfCount(123, 1000, 0), 0u);
}

// --- unavailable reasons ----------------------------------------------

TEST(DescribePerfOpenFailureTest, PermissionDeniedNamesParanoidSysctl) {
  const std::string reason = internal::DescribePerfOpenFailure(EACCES);
  EXPECT_NE(reason.find("perf_event_open failed"), std::string::npos);
  EXPECT_NE(reason.find("perf_event_paranoid"), std::string::npos);
}

TEST(DescribePerfOpenFailureTest, NoPmuNamesVirtualization) {
  const std::string reason = internal::DescribePerfOpenFailure(ENOENT);
  EXPECT_NE(reason.find("PMU"), std::string::npos);
}

TEST(DescribePerfOpenFailureTest, UnknownErrnoStillNamesTheSyscall) {
  const std::string reason = internal::DescribePerfOpenFailure(EINVAL);
  EXPECT_NE(reason.find("perf_event_open failed"), std::string::npos);
  EXPECT_FALSE(reason.empty());
}

// --- PerfCounts derived rates ------------------------------------------

PerfCounts CountsWithMask(unsigned mask) {
  PerfCounts counts;
  counts.opened_mask = mask;
  return counts;
}

TEST(PerfCountsTest, RatesAreNanWhenEventsDidNotCount) {
  const PerfCounts counts;  // opened_mask == 0
  EXPECT_TRUE(std::isnan(counts.Ipc()));
  EXPECT_TRUE(std::isnan(counts.LlcMissRate()));
  EXPECT_TRUE(std::isnan(counts.BranchMissRate()));
  EXPECT_TRUE(std::isnan(counts.MultiplexScale()));
}

TEST(PerfCountsTest, RatesAreNanWithOnlyOneSideOfTheRatio) {
  PerfCounts counts =
      CountsWithMask(PerfEventBit(PerfEvent::kInstructions));
  counts.instructions = 100;
  EXPECT_TRUE(std::isnan(counts.Ipc()));  // cycles did not count
}

TEST(PerfCountsTest, RatesComputeWhenBothSidesCounted) {
  PerfCounts counts = CountsWithMask(
      PerfEventBit(PerfEvent::kCycles) |
      PerfEventBit(PerfEvent::kInstructions) |
      PerfEventBit(PerfEvent::kCacheReferences) |
      PerfEventBit(PerfEvent::kCacheMisses));
  counts.cycles = 200;
  counts.instructions = 500;
  counts.cache_references = 1000;
  counts.cache_misses = 250;
  EXPECT_DOUBLE_EQ(counts.Ipc(), 2.5);
  EXPECT_DOUBLE_EQ(counts.LlcMissRate(), 0.25);
}

TEST(PerfCountsTest, ZeroDenominatorIsNanNotInfinity) {
  PerfCounts counts = CountsWithMask(
      PerfEventBit(PerfEvent::kCycles) |
      PerfEventBit(PerfEvent::kInstructions));
  counts.instructions = 100;
  counts.cycles = 0;
  EXPECT_TRUE(std::isnan(counts.Ipc()));
}

TEST(PerfCountsTest, MultiplexScaleReflectsSchedulingTimes) {
  PerfCounts counts;
  counts.time_enabled_ns = 1000;
  counts.time_running_ns = 250;
  EXPECT_DOUBLE_EQ(counts.MultiplexScale(), 0.25);
  counts.time_running_ns = 1000;
  EXPECT_DOUBLE_EQ(counts.MultiplexScale(), 1.0);
}

TEST(PerfCountsTest, AccumulateSumsFieldsAndUnionsMask) {
  PerfCounts a = CountsWithMask(PerfEventBit(PerfEvent::kCycles));
  a.cycles = 10;
  a.time_enabled_ns = 100;
  PerfCounts b = CountsWithMask(PerfEventBit(PerfEvent::kInstructions));
  b.instructions = 20;
  b.time_enabled_ns = 50;
  a.Accumulate(b);
  EXPECT_EQ(a.cycles, 10u);
  EXPECT_EQ(a.instructions, 20u);
  EXPECT_EQ(a.time_enabled_ns, 150u);
  EXPECT_EQ(a.opened_mask, PerfEventBit(PerfEvent::kCycles) |
                               PerfEventBit(PerfEvent::kInstructions));
}

TEST(PerfCountsTest, DeltaSinceSubtractsAndClampsAtZero) {
  PerfCounts later = CountsWithMask(PerfEventBit(PerfEvent::kCycles));
  later.cycles = 100;
  later.instructions = 5;
  PerfCounts earlier;
  earlier.cycles = 40;
  earlier.instructions = 7;  // later < earlier: clamp, don't wrap
  const PerfCounts delta = later.DeltaSince(earlier);
  EXPECT_EQ(delta.cycles, 60u);
  EXPECT_EQ(delta.instructions, 0u);
  EXPECT_EQ(delta.opened_mask, later.opened_mask);
}

// --- PerfCounterSet on this host ---------------------------------------

TEST(PerfCounterSetTest, AvailabilityIsExplicitEitherWay) {
  PerfCounterSet set;
  if (set.available()) {
    // Counting works: the leader bit must be set and Start() succeeds.
    EXPECT_NE(set.availability().opened_mask &
                  PerfEventBit(PerfEvent::kCycles),
              0u);
    EXPECT_TRUE(set.availability().reason.empty());
    EXPECT_TRUE(set.Start());
    // Burn some cycles so the group has something to count.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i);
    }
    set.Stop();
    const PerfCounts counts = set.Read();
    EXPECT_GT(counts.cycles, 0u);
    EXPECT_EQ(counts.opened_mask, set.availability().opened_mask);
  } else {
    // Denied: the reason is mandatory and every call is a harmless no-op.
    EXPECT_FALSE(set.availability().reason.empty());
    EXPECT_EQ(set.availability().opened_mask, 0u);
    EXPECT_FALSE(set.Start());
    set.Stop();
    const PerfCounts counts = set.Read();
    EXPECT_EQ(counts.opened_mask, 0u);
    EXPECT_EQ(counts.cycles, 0u);
    EXPECT_TRUE(std::isnan(counts.Ipc()));
  }
}

TEST(PerfCounterSetTest, ProbeMatchesARealSet) {
  const PerfAvailability probe = ProbePerfCounters();
  PerfCounterSet set;
  EXPECT_EQ(probe.available, set.available());
  EXPECT_EQ(probe.reason.empty(), set.availability().reason.empty());
}

// --- fallback tier -----------------------------------------------------

TEST(ResourceUsageTest, RusageIsKnownOnPosixAndMonotone) {
  const ResourceUsage usage = ReadResourceUsage();
#if defined(__unix__) || defined(__APPLE__)
  ASSERT_TRUE(usage.known);
  EXPECT_GE(usage.user_seconds, 0.0);
  EXPECT_GE(usage.system_seconds, 0.0);
#else
  EXPECT_FALSE(usage.known);
#endif
}

TEST(PeakRssTest, KnownResultCarriesBytesAndLegacyAccessorAgrees) {
  const PeakRssResult rss = PeakRssBytes();
#if defined(__linux__)
  ASSERT_TRUE(rss.known);
  // A running test binary is comfortably above 1 MiB resident.
  EXPECT_GT(rss.bytes, std::size_t{1} << 20);
#endif
  if (!rss.known) {
    EXPECT_EQ(rss.bytes, 0u);
  }
  EXPECT_EQ(PeakRss(), rss.bytes);
}

// --- domain attribution ------------------------------------------------

TEST(PerfDomainTest, NullCollectorMakesScopesFreeNoOps) {
  PerfDomainScope scope(nullptr, "ignored");
  scope.AddWorkSteps(42);
  // Destruction must not crash or record anywhere.
}

TEST(PerfDomainTest, ScopeRecordsNameCpuAndWorkSteps) {
  PerfDomainCollector collector(/*enable_hw=*/false);
  EXPECT_FALSE(collector.hw_enabled());
  {
    PerfDomainScope scope(&collector, "shard-7");
    scope.AddWorkSteps(100);
    scope.AddWorkSteps(23);
  }
  const std::vector<PerfDomainSample> samples = collector.Samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "shard-7");
  EXPECT_EQ(samples[0].work_steps, 123u);
  EXPECT_FALSE(samples[0].hw_valid);  // hw disabled: never valid
  EXPECT_GE(samples[0].cpu_seconds, 0.0);
}

TEST(PerfDomainTest, HwEnabledScopeDegradesPerHostAvailability) {
  PerfDomainCollector collector(/*enable_hw=*/true);
  {
    PerfDomainScope scope(&collector, "merge-1-0");
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i);
    }
  }
  const std::vector<PerfDomainSample> samples = collector.Samples();
  ASSERT_EQ(samples.size(), 1u);
  // hw_valid tracks the host: valid counts where the PMU opened,
  // a clean false (not garbage) where it was denied.
  if (samples[0].hw_valid) {
    EXPECT_GT(samples[0].counts.cycles, 0u);
  } else {
    EXPECT_EQ(samples[0].counts.opened_mask, 0u);
  }
}

TEST(PerfDomainTest, ConcurrentRecordsAllArrive) {
  PerfDomainCollector collector(/*enable_hw=*/false);
  constexpr int kThreads = 4;
  constexpr int kScopesPerThread = 25;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&collector, t]() {
      for (int i = 0; i < kScopesPerThread; ++i) {
        PerfDomainScope scope(&collector,
                              "shard-" + std::to_string(t));
        scope.AddWorkSteps(1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(collector.Samples().size(),
            static_cast<std::size_t>(kThreads * kScopesPerThread));
}

// --- Trace + attached counters -----------------------------------------

TEST(TracePerfTest, SpansCarryDeltasExactlyWhenCountingWorks) {
  PerfCounterSet counters;
  counters.Start();
  Trace trace;
  trace.AttachPerfCounters(&counters);  // no-op if unavailable
  {
    Span outer(&trace, "outer");
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 50000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    Span inner(&trace, "inner");
    for (int i = 0; i < 50000; ++i) sink = sink + static_cast<std::uint64_t>(i);
  }
  const SpanNode* outer = trace.root().FindChild("outer");
  ASSERT_NE(outer, nullptr);
  if (counters.available()) {
    EXPECT_TRUE(outer->perf_valid);
    EXPECT_GT(outer->perf.cycles, 0u);
    const SpanNode* inner = outer->FindChild("inner");
    ASSERT_NE(inner, nullptr);
    ASSERT_TRUE(inner->perf_valid);
    // Inclusive semantics, like the timings: parent >= child.
    EXPECT_GE(outer->perf.cycles, inner->perf.cycles);
  } else {
    EXPECT_FALSE(outer->perf_valid);
  }
}

// --- collapsed-stack folding -------------------------------------------

TEST(FoldStacksTest, HeaderCarriesSchemaAndCounts) {
  const std::string out = internal::FoldStacks({}, 7, 3, 4000);
  EXPECT_EQ(out,
            "# fim-prof-v1 samples=7 dropped=3 interval_usec=4000\n");
}

TEST(FoldStacksTest, FoldsLeafFirstStacksRootFirstAndCounts) {
  // backtrace() order: leaf first. main;work;leaf twice, main;other once.
  const std::vector<std::vector<std::string>> stacks = {
      {"leaf", "work", "main"},
      {"other", "main"},
      {"leaf", "work", "main"},
  };
  const std::string out = internal::FoldStacks(stacks, 3, 0, 1000);
  EXPECT_NE(out.find("main;work;leaf 2\n"), std::string::npos);
  EXPECT_NE(out.find("main;other 1\n"), std::string::npos);
}

TEST(FoldStacksTest, DeterministicAndSortedAcrossInputOrder) {
  const std::vector<std::vector<std::string>> forward = {
      {"b", "main"}, {"a", "main"}};
  const std::vector<std::vector<std::string>> reversed = {
      {"a", "main"}, {"b", "main"}};
  EXPECT_EQ(internal::FoldStacks(forward, 2, 0, 1000),
            internal::FoldStacks(reversed, 2, 0, 1000));
  // Sorted: main;a before main;b.
  const std::string out = internal::FoldStacks(forward, 2, 0, 1000);
  EXPECT_LT(out.find("main;a 1"), out.find("main;b 1"));
}

TEST(FoldStacksTest, EmptyStacksAreSkippedNotRendered) {
  const std::string out =
      internal::FoldStacks({{}, {"leaf", "main"}}, 2, 0, 1000);
  std::istringstream lines(out);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 2u);  // header + the one non-empty stack
}

TEST(SymbolizeAddressTest, NeverReturnsEmpty) {
  // A libc/function address should resolve to *something*; even a junk
  // address must come back as a hex literal, not an empty string.
  EXPECT_FALSE(
      internal::SymbolizeAddress(reinterpret_cast<void*>(&std::labs))
          .empty());
  EXPECT_FALSE(internal::SymbolizeAddress(nullptr).empty());
}

// --- the profiler end to end -------------------------------------------

TEST(SamplingProfilerTest, InvalidOptionsFailWithReason) {
  ProfilerOptions options;
  options.interval_usec = 0;
  std::string error;
  EXPECT_EQ(SamplingProfiler::Start(options, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(SamplingProfilerTest, CapturesCpuBoundStacksAndRendersCollapsed) {
  ProfilerOptions options;
  options.interval_usec = 1000;  // 1 kHz: fast samples for a short test
  std::string error;
  auto profiler = SamplingProfiler::Start(options, &error);
  ASSERT_NE(profiler, nullptr) << error;

  // Only one profiler per process while armed.
  std::string second_error;
  EXPECT_EQ(SamplingProfiler::Start(options, &second_error), nullptr);
  EXPECT_FALSE(second_error.empty());

  // Burn CPU until samples arrive (ITIMER_PROF counts process CPU
  // time, so this loop is exactly what gets sampled).
  volatile std::uint64_t sink = 0;
  CpuTimer cpu;
  while (profiler->SampleCount() < 5 && cpu.Seconds() < 10.0) {
    for (int i = 0; i < 100000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i);
    }
  }
  EXPECT_GE(profiler->SampleCount(), 5u);

  const std::string collapsed = profiler->RenderCollapsed();  // stops
  EXPECT_EQ(collapsed.rfind("# fim-prof-v1 samples=", 0), 0u);
  // At least one stack line: "frames... count\n" after the header.
  EXPECT_NE(collapsed.find('\n'), collapsed.size() - 1);

  // Stopped: a new profiler may start again.
  std::string third_error;
  auto again = SamplingProfiler::Start(options, &third_error);
  EXPECT_NE(again, nullptr) << third_error;
}

TEST(SamplingProfilerTest, WriteCollapsedFileReportsIoErrors) {
  ProfilerOptions options;
  std::string error;
  auto profiler = SamplingProfiler::Start(options, &error);
  ASSERT_NE(profiler, nullptr) << error;
  profiler->Stop();
  EXPECT_FALSE(
      profiler->WriteCollapsedFile("/nonexistent-dir/prof.txt").ok());

  const std::string path = ::testing::TempDir() + "/perf_test_prof.txt";
  ASSERT_TRUE(profiler->WriteCollapsedFile(path).ok());
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("# fim-prof-v1 ", 0), 0u);
}

TEST(SamplingProfilerTest, ProfilerFeedsTimelineLaneInstants) {
  Timeline timeline;
  ProfilerOptions options;
  options.interval_usec = 1000;
  options.lane = timeline.AddLane("profiler");
  std::string error;
  auto profiler = SamplingProfiler::Start(options, &error);
  ASSERT_NE(profiler, nullptr) << error;
  volatile std::uint64_t sink = 0;
  CpuTimer cpu;
  while (profiler->SampleCount() < 3 && cpu.Seconds() < 10.0) {
    for (int i = 0; i < 100000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i);
    }
  }
  profiler->Stop();
  EXPECT_GE(profiler->SampleCount(), 3u);
  // Every kept sample dropped an instant event onto the lane.
  std::size_t instants = 0;
  for (const TimelineEvent& event : options.lane->Snapshot()) {
    if (event.kind == TimelineEvent::Kind::kInstant) ++instants;
  }
  EXPECT_EQ(instants, profiler->SampleCount());
}

// --- sampler exit-flush safety net -------------------------------------

TEST(SamplerExitFlushTest, LiveRegistrationTracksSamplerLifetime) {
  const std::size_t before = internal::LiveSamplerCount();
  std::ostringstream out;
  {
    MetricsSamplerOptions options;
    options.period = std::chrono::milliseconds(3600 * 1000);
    MetricsSampler sampler(options, &out);
    EXPECT_EQ(internal::LiveSamplerCount(), before + 1);
    // The flush body must be safe to run while the sampler is live —
    // this is exactly what the fatal-signal hook does.
    internal::FlushLiveSamplerStreams();
    sampler.Stop();
    EXPECT_EQ(internal::LiveSamplerCount(), before);
  }
  // Stop() wrote the final sample despite the huge period.
  EXPECT_NE(out.str().find("fim-statsline-v1"), std::string::npos);
}

}  // namespace
}  // namespace fim::obs
