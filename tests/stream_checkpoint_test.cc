// Tests of prefix-tree serialization (fim-tree-v1) and StreamMiner
// checkpoint/restore (fim-stream-v1): a restored miner must continue
// the stream with output bit-identical to the uninterrupted one, and
// corrupted or truncated input must be rejected with a clean Status.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "ista/prefix_tree.h"
#include "obs/metrics.h"
#include "stream/stream_miner.h"

namespace fim {
namespace {

std::vector<ClosedItemset> ReportAll(const IstaPrefixTree& tree,
                                     Support min_support) {
  ClosedSetCollector collector;
  tree.Report(min_support, collector.AsCallback());
  collector.SortCanonical();
  return collector.TakeSets();
}

TEST(TreeIoTest, RoundTripContinuesIdentically) {
  const TransactionDatabase db = GenerateRandomDense(40, 14, 0.35, 11);
  IstaPrefixTree original(db.NumItems());
  for (std::size_t k = 0; k < 25; ++k) {
    original.AddTransaction(db.transaction(k), 1 + k % 3);
  }
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(original.SerializeTo(blob).ok());
  auto restored = IstaPrefixTree::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  IstaPrefixTree copy = std::move(restored).value();
  EXPECT_TRUE(copy.ValidateInvariants().ok());
  EXPECT_EQ(copy.NodeCount(), original.NodeCount());
  EXPECT_EQ(copy.StepCount(), original.StepCount());
  EXPECT_EQ(copy.TotalWeight(), original.TotalWeight());
  EXPECT_EQ(copy.IsectSteps(), original.IsectSteps());
  EXPECT_EQ(ReportAll(copy, 1), ReportAll(original, 1));
  // The dump captures the exact node layout, so further mutations
  // behave bit-identically on both trees.
  for (std::size_t k = 25; k < db.NumTransactions(); ++k) {
    original.AddTransaction(db.transaction(k));
    copy.AddTransaction(db.transaction(k));
    EXPECT_EQ(copy.NodeCount(), original.NodeCount());
    EXPECT_EQ(ReportAll(copy, 2), ReportAll(original, 2));
  }
}

TEST(TreeIoTest, RejectsCorruptBlobs) {
  IstaPrefixTree tree(6);
  tree.AddTransaction(std::vector<ItemId>{0, 2, 4});
  tree.AddTransaction(std::vector<ItemId>{0, 2, 5});
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(tree.SerializeTo(out).ok());
  const std::string good = out.str();

  {  // bad magic
    std::string bad = good;
    bad[0] = 'X';
    std::istringstream in(bad, std::ios::binary);
    EXPECT_FALSE(IstaPrefixTree::Deserialize(in).ok());
  }
  {  // unsupported version
    std::string bad = good;
    bad[4] = 9;
    std::istringstream in(bad, std::ios::binary);
    EXPECT_FALSE(IstaPrefixTree::Deserialize(in).ok());
  }
  // Truncation at every prefix length must fail cleanly, never crash.
  for (std::size_t len = 0; len < good.size(); len += 3) {
    std::istringstream in(good.substr(0, len), std::ios::binary);
    EXPECT_FALSE(IstaPrefixTree::Deserialize(in).ok()) << "length " << len;
  }
  {  // corrupt a node link deep in the blob: the invariant check catches
     // what the header checks cannot
    std::string bad = good;
    for (std::size_t at = bad.size() - 8; at < bad.size(); ++at) {
      bad[at] = static_cast<char>(0x7f);
    }
    std::istringstream in(bad, std::ios::binary);
    auto result = IstaPrefixTree::Deserialize(in);
    EXPECT_FALSE(result.ok());
  }
}

void IngestSlice(StreamMiner* miner, const TransactionDatabase& db,
                 std::size_t begin, std::size_t end) {
  for (std::size_t k = begin; k < end; ++k) {
    ASSERT_TRUE(miner->AddTransaction(db.transaction(k)).ok());
  }
}

void ExpectResumeBitIdentical(const StreamMinerOptions& options,
                              unsigned num_threads) {
  const TransactionDatabase db = GenerateRandomDense(120, 16, 0.3, 42);
  StreamMiner uninterrupted(options);
  StreamMiner first_half(options);
  const std::size_t cut = 70;  // deliberately mid-pane for windowed runs
  if (num_threads == 1) {
    IngestSlice(&uninterrupted, db, 0, cut);
    IngestSlice(&first_half, db, 0, cut);
  } else {
    // Each miner ingests its prefix with `num_threads` concurrent
    // writers over disjoint slices. The two miners see different
    // interleavings — checkpointing must still hand over an exact
    // snapshot of whatever multiset was ingested.
    for (StreamMiner* miner : {&uninterrupted, &first_half}) {
      std::vector<std::thread> writers;
      const std::size_t chunk = cut / num_threads;
      for (unsigned t = 0; t < num_threads; ++t) {
        const std::size_t begin = t * chunk;
        const std::size_t end = t + 1 == num_threads ? cut : begin + chunk;
        writers.emplace_back(IngestSlice, miner, std::cref(db), begin, end);
      }
      for (auto& w : writers) w.join();
    }
  }

  std::stringstream checkpoint(std::ios::in | std::ios::out |
                               std::ios::binary);
  ASSERT_TRUE(first_half.CheckpointTo(checkpoint).ok());
  auto restored = StreamMiner::RestoreFrom(checkpoint);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamMiner& resumed = *restored.value();
  EXPECT_EQ(resumed.NumTransactions(), first_half.NumTransactions());
  EXPECT_EQ(resumed.CurrentPaneIndex(), first_half.CurrentPaneIndex());

  // With a single writer the ingest order was deterministic, so the
  // restored snapshot must equal the uninterrupted miner's too; with
  // several writers, compare against the miner that was checkpointed.
  auto before_resumed = resumed.QueryCollect(2);
  auto before_source = first_half.QueryCollect(2);
  ASSERT_TRUE(before_resumed.ok());
  ASSERT_TRUE(before_source.ok());
  EXPECT_EQ(before_resumed.value(), before_source.value());

  // Continue both streams sequentially: every subsequent snapshot of
  // the resumed miner must be exactly the uninterrupted miner's.
  if (num_threads == 1) {
    for (std::size_t k = cut; k < db.NumTransactions(); ++k) {
      ASSERT_TRUE(uninterrupted.AddTransaction(db.transaction(k)).ok());
      ASSERT_TRUE(resumed.AddTransaction(db.transaction(k)).ok());
      auto a = uninterrupted.QueryCollect(2);
      auto b = resumed.QueryCollect(2);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value(), b.value()) << "after tx " << (k + 1);
    }
    EXPECT_EQ(uninterrupted.NodeCount(), resumed.NodeCount());
  } else {
    IngestSlice(&first_half, db, cut, db.NumTransactions());
    IngestSlice(&resumed, db, cut, db.NumTransactions());
    auto a = first_half.QueryCollect(2);
    auto b = resumed.QueryCollect(2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
}

TEST(StreamCheckpointTest, LandmarkResumeBitIdentical) {
  StreamMinerOptions options;
  options.max_items = 16;
  ExpectResumeBitIdentical(options, /*num_threads=*/1);
}

TEST(StreamCheckpointTest, WindowedResumeBitIdentical) {
  StreamMinerOptions options;
  options.max_items = 16;
  options.pane_size = 8;
  options.window_panes = 4;
  ExpectResumeBitIdentical(options, /*num_threads=*/1);
}

TEST(StreamCheckpointTest, LandmarkResumeBitIdenticalFourThreads) {
  StreamMinerOptions options;
  options.max_items = 16;
  ExpectResumeBitIdentical(options, /*num_threads=*/4);
}

TEST(StreamCheckpointTest, WindowedResumeBitIdenticalFourThreads) {
  StreamMinerOptions options;
  options.max_items = 16;
  options.pane_size = 8;
  options.window_panes = 4;
  ExpectResumeBitIdentical(options, /*num_threads=*/4);
}

TEST(StreamCheckpointTest, PendingDuplicateRunSurvivesCheckpoint) {
  StreamMinerOptions options;
  options.max_items = 8;
  StreamMiner miner(options);
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(miner.AddTransaction({1, 2, 3}).ok());
  }
  std::stringstream checkpoint(std::ios::in | std::ios::out |
                               std::ios::binary);
  ASSERT_TRUE(miner.CheckpointTo(checkpoint).ok());
  auto restored = StreamMiner::RestoreFrom(checkpoint);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // The run keeps extending after the restore: still one weighted add.
  ASSERT_TRUE(restored.value()->AddTransaction({1, 2, 3}).ok());
  auto sets = restored.value()->QueryCollect(1);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets.value().size(), 1u);
  EXPECT_EQ(sets.value()[0].support, 4u);
  EXPECT_EQ(restored.value()->Stats().weighted_additions, 1u);
}

TEST(StreamCheckpointTest, CheckpointDuringConcurrentIngest) {
  const TransactionDatabase db = GenerateRandomDense(400, 12, 0.3, 8);
  StreamMinerOptions options;
  options.max_items = 12;
  options.pane_size = 16;
  options.window_panes = 4;
  StreamMiner miner(options);
  std::thread writer(IngestSlice, &miner, std::cref(db), std::size_t{0},
                     db.NumTransactions());
  for (int round = 0; round < 5; ++round) {
    std::stringstream checkpoint(std::ios::in | std::ios::out |
                                 std::ios::binary);
    ASSERT_TRUE(miner.CheckpointTo(checkpoint).ok());
    auto restored = StreamMiner::RestoreFrom(checkpoint);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_LE(restored.value()->NumTransactions(), db.NumTransactions());
    EXPECT_TRUE(restored.value()->QueryCollect(2).ok());
  }
  writer.join();
}

TEST(StreamCheckpointTest, RestoredCountersMirrorIntoRegistry) {
  StreamMinerOptions options;
  options.max_items = 8;
  StreamMiner miner(options);
  ASSERT_TRUE(miner.AddTransaction({0, 1}).ok());
  ASSERT_TRUE(miner.AddTransaction({1, 2}).ok());
  ASSERT_TRUE(miner.QueryCollect(1).ok());
  std::stringstream checkpoint(std::ios::in | std::ios::out |
                               std::ios::binary);
  ASSERT_TRUE(miner.CheckpointTo(checkpoint).ok());
  obs::MetricRegistry registry;
  auto restored = StreamMiner::RestoreFrom(checkpoint, &registry);
  ASSERT_TRUE(restored.ok());
  const auto exported = registry.CounterValues();
  EXPECT_EQ(exported.at("stream.transactions_ingested"), 2u);
  EXPECT_EQ(exported.at("stream.queries"), 1u);
  EXPECT_GT(exported.at("stream.checkpoint_bytes_read"), 0u);
}

TEST(StreamCheckpointTest, RejectsCorruptCheckpoints) {
  StreamMinerOptions options;
  options.max_items = 10;
  options.pane_size = 3;
  options.window_panes = 2;
  StreamMiner miner(options);
  const TransactionDatabase db = GenerateRandomDense(10, 10, 0.4, 1);
  for (std::size_t k = 0; k < db.NumTransactions(); ++k) {
    ASSERT_TRUE(miner.AddTransaction(db.transaction(k)).ok());
  }
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(miner.CheckpointTo(out).ok());
  const std::string good = out.str();
  {  // sanity: the untouched blob restores
    std::istringstream in(good, std::ios::binary);
    ASSERT_TRUE(StreamMiner::RestoreFrom(in).ok());
  }
  {  // bad magic
    std::string bad = good;
    bad[0] = 'Z';
    std::istringstream in(bad, std::ios::binary);
    EXPECT_FALSE(StreamMiner::RestoreFrom(in).ok());
  }
  {  // unsupported version
    std::string bad = good;
    bad[4] = 2;
    std::istringstream in(bad, std::ios::binary);
    EXPECT_FALSE(StreamMiner::RestoreFrom(in).ok());
  }
  // Truncation at every stride: clean failure, no crash, no throw.
  for (std::size_t len = 0; len < good.size(); len += 7) {
    std::istringstream in(good.substr(0, len), std::ios::binary);
    auto result = StreamMiner::RestoreFrom(in);
    EXPECT_FALSE(result.ok()) << "length " << len;
  }
  {  // inconsistent pane bookkeeping: tamper the ingested count (header
     // offset 33 = magic 4 + version 4 + max_items/pane_size/window 24 +
     // merge flag 1)
    std::string bad = good;
    bad[33] = static_cast<char>(bad[33] + 1);
    std::istringstream in(bad, std::ios::binary);
    EXPECT_FALSE(StreamMiner::RestoreFrom(in).ok());
  }
  {  // missing end marker
    std::string bad = good.substr(0, good.size() - 4);
    std::istringstream in(bad, std::ios::binary);
    EXPECT_FALSE(StreamMiner::RestoreFrom(in).ok());
  }
}

}  // namespace
}  // namespace fim
