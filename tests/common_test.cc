// Unit tests of the common substrate: Status/Result, DynamicBitset, Rng.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitset.h"
#include "common/rng.h"
#include "common/status.h"

namespace fim {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad support");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad support");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad support");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(BitsetTest, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
  b.Clear();
  EXPECT_TRUE(b.None());
}

TEST(BitsetTest, IntersectUnionSubset) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.Set(3);
  a.Set(70);
  a.Set(99);
  b.Set(3);
  b.Set(99);
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));

  DynamicBitset u = a;
  u.UnionWith(b);
  EXPECT_EQ(u.Count(), 3u);

  a.IntersectWith(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_TRUE(a == b);
}

TEST(BitsetTest, AppendSetBitsAscending) {
  DynamicBitset b(200);
  b.Set(199);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  std::vector<uint32_t> out;
  b.AppendSetBits(&out);
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 63, 64, 199}));
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(124);
  EXPECT_NE(Rng(123).Next(), c.Next());
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit in 1000 draws
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalHasRoughlyStandardMoments) {
  Rng rng(9);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(10);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace fim
