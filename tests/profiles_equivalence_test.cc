// Integration: all closed-set miners agree on (small instances of) the
// four evaluation-profile data sets — the exact data shapes the paper's
// figures use — with soundness verified against the definition.

#include <gtest/gtest.h>

#include "api/miner.h"
#include "data/profiles.h"
#include "verify/closedness.h"
#include "verify/compare.h"

namespace fim {
namespace {

struct ProfileCase {
  const char* name;
  TransactionDatabase (*make)(double, uint64_t);
  double scale;
  Support min_support;
};

class ProfileEquivalenceTest : public ::testing::TestWithParam<ProfileCase> {
};

TEST_P(ProfileEquivalenceTest, AllMinersAgreeAndAreSound) {
  const ProfileCase& c = GetParam();
  const TransactionDatabase db = c.make(c.scale, 7);

  MinerOptions reference;
  reference.algorithm = Algorithm::kIsta;
  reference.min_support = c.min_support;
  auto expected = MineClosedCollect(db, reference);
  ASSERT_TRUE(expected.ok());
  ASSERT_FALSE(expected.value().empty()) << "degenerate test case";
  ASSERT_TRUE(
      VerifyClosedSets(db, expected.value(), c.min_support).ok());

  for (Algorithm algorithm : AllAlgorithms()) {
    if (algorithm == Algorithm::kIsta) continue;
    MinerOptions options;
    options.algorithm = algorithm;
    options.min_support = c.min_support;
    auto mined = MineClosedCollect(db, options);
    ASSERT_TRUE(mined.ok()) << AlgorithmName(algorithm);
    EXPECT_TRUE(SameResults(expected.value(), mined.value()))
        << c.name << " / " << AlgorithmName(algorithm) << "\n"
        << DiffResults(expected.value(), mined.value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, ProfileEquivalenceTest,
    ::testing::Values(
        ProfileCase{"yeast", &MakeYeastLike, 0.02, 8},
        ProfileCase{"ncbi60", &MakeNcbi60Like, 0.05, 62},
        ProfileCase{"thrombin", &MakeThrombinLike, 0.01, 30},
        ProfileCase{"webview", &MakeWebviewLike, 0.01, 2}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

}  // namespace
}  // namespace fim
