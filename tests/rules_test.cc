// Tests of support reconstruction from closed sets and rule generation.

#include <gtest/gtest.h>

#include "api/miner.h"
#include "data/generators.h"
#include "enumeration/eclat.h"
#include "rules/rules.h"

namespace fim {
namespace {

TEST(ClosedSetIndexTest, SupportOfReconstructsExactly) {
  // Mine a random database; the support of EVERY frequent item set (from
  // Eclat) must equal the maximum support over closed supersets (§2.3).
  const TransactionDatabase db = GenerateRandomDense(12, 8, 0.5, 321);
  const Support smin = 2;

  MinerOptions options;
  options.min_support = smin;
  auto closed = MineClosedCollect(db, options);
  ASSERT_TRUE(closed.ok());
  const ClosedSetIndex index(closed.value());

  EclatOptions eclat;
  eclat.min_support = smin;
  std::size_t checked = 0;
  Status status = MineFrequentEclat(
      db, eclat, [&](std::span<const ItemId> items, Support support) {
        EXPECT_EQ(index.SupportOf(items), support)
            << ItemsToString(std::vector<ItemId>(items.begin(), items.end()));
        ++checked;
      });
  ASSERT_TRUE(status.ok());
  EXPECT_GT(checked, 0u);
}

TEST(ClosedSetIndexTest, InfrequentSetsReportZero) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1}, {0, 1}, {2}});
  MinerOptions options;
  options.min_support = 2;
  auto closed = MineClosedCollect(db, options);
  ASSERT_TRUE(closed.ok());
  const ClosedSetIndex index(closed.value());
  EXPECT_EQ(index.SupportOf(std::vector<ItemId>{2}), 0u);       // infrequent
  EXPECT_EQ(index.SupportOf(std::vector<ItemId>{0, 2}), 0u);    // infrequent
  EXPECT_EQ(index.SupportOf(std::vector<ItemId>{0, 1}), 2u);
  EXPECT_EQ(index.SupportOf(std::vector<ItemId>{1}), 2u);
  EXPECT_EQ(index.SupportOf(std::vector<ItemId>{9}), 0u);  // out of range
}

TEST(ClosedSetIndexTest, EmptyQueryGivesMaxSupport) {
  const ClosedSetIndex index({{{0}, 5}, {{1}, 7}});
  EXPECT_EQ(index.SupportOf(std::vector<ItemId>{}), 7u);
}

TEST(RulesTest, ConfidenceAndLiftComputed) {
  // 10 transactions: {0,1} x 6, {0} x 2, {1} x 1, {2} x 1.
  std::vector<std::vector<ItemId>> tx;
  for (int i = 0; i < 6; ++i) tx.push_back({0, 1});
  tx.push_back({0});
  tx.push_back({0});
  tx.push_back({1});
  tx.push_back({2});
  const TransactionDatabase db = TransactionDatabase::FromTransactions(tx);

  MinerOptions options;
  options.min_support = 2;
  auto closed = MineClosedCollect(db, options);
  ASSERT_TRUE(closed.ok());
  const ClosedSetIndex index(closed.value());

  RuleOptions rule_options;
  rule_options.min_confidence = 0.5;
  const auto rules = GenerateRules(index, db.NumTransactions(), rule_options);

  // Expect the rule {0} => {1}: support 6, antecedent support 8,
  // confidence 0.75, lift 0.75 / (7/10).
  bool found = false;
  for (const auto& rule : rules) {
    if (rule.antecedent == std::vector<ItemId>{0} &&
        rule.consequent == std::vector<ItemId>{1}) {
      found = true;
      EXPECT_EQ(rule.support, 6u);
      EXPECT_EQ(rule.antecedent_support, 8u);
      EXPECT_NEAR(rule.confidence, 0.75, 1e-9);
      EXPECT_NEAR(rule.lift, 0.75 / 0.7, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RulesTest, MinConfidenceFilters) {
  std::vector<std::vector<ItemId>> tx;
  for (int i = 0; i < 5; ++i) tx.push_back({0, 1});
  for (int i = 0; i < 5; ++i) tx.push_back({0});
  const TransactionDatabase db = TransactionDatabase::FromTransactions(tx);
  MinerOptions options;
  options.min_support = 2;
  auto closed = MineClosedCollect(db, options);
  ASSERT_TRUE(closed.ok());
  const ClosedSetIndex index(closed.value());

  RuleOptions strict;
  strict.min_confidence = 0.9;
  for (const auto& rule : GenerateRules(index, db.NumTransactions(), strict)) {
    EXPECT_GE(rule.confidence, 0.9);
  }
}

TEST(RulesTest, MaxItemsetSizeRespected) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}});
  MinerOptions options;
  options.min_support = 2;
  auto closed = MineClosedCollect(db, options);
  ASSERT_TRUE(closed.ok());
  const ClosedSetIndex index(closed.value());
  RuleOptions small;
  small.max_itemset_size = 4;  // the size-5 closed set spawns no rules
  small.min_confidence = 0.0;
  EXPECT_TRUE(GenerateRules(index, db.NumTransactions(), small).empty());
}

}  // namespace
}  // namespace fim
