// Tests of the streaming subsystem (src/stream/): every snapshot —
// landmark or windowed, interleaved or concurrent with ingest — must be
// exactly the closed frequent sets of the covered transaction multiset.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "api/miner.h"
#include "common/sync.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "stream/stream_miner.h"
#include "verify/compare.h"
#include "verify/oracle.h"

namespace fim {
namespace {

StreamMinerOptions Landmark(std::size_t max_items) {
  StreamMinerOptions options;
  options.max_items = max_items;
  return options;
}

StreamMinerOptions Windowed(std::size_t max_items, std::size_t pane_size,
                            std::size_t window_panes) {
  StreamMinerOptions options;
  options.max_items = max_items;
  options.pane_size = pane_size;
  options.window_panes = window_panes;
  return options;
}

TEST(StreamMinerTest, LandmarkMatchesBatchAfterEveryPrefix) {
  const TransactionDatabase db = GenerateRandomDense(12, 10, 0.4, 2026);
  StreamMiner miner(Landmark(db.NumItems()));
  TransactionDatabase prefix_db;
  prefix_db.SetNumItems(db.NumItems());
  std::uint64_t ingested = 0;
  for (std::size_t k = 0; k < db.NumTransactions(); ++k) {
    // Duplicate bursts exercise the pending-run merging: transaction k
    // is ingested 1 + (k % 3) times in a row.
    const std::size_t copies = 1 + k % 3;
    for (std::size_t c = 0; c < copies; ++c) {
      ASSERT_TRUE(miner.AddTransaction(db.transaction(k)).ok());
      prefix_db.AddTransaction(db.transaction(k));
      ++ingested;
    }
    EXPECT_EQ(miner.NumTransactions(), ingested);
    for (Support smin : {1u, 2u, 4u}) {
      auto streamed = miner.QueryCollect(smin);
      ASSERT_TRUE(streamed.ok());
      // Batch-mine the prefix (the prefixes outgrow the subset oracle).
      MinerOptions options;
      options.min_support = smin;
      auto expected = MineClosedCollect(prefix_db, options);
      ASSERT_TRUE(expected.ok());
      EXPECT_TRUE(SameResults(expected.value(), streamed.value()))
          << "prefix " << ingested << " smin " << smin << "\n"
          << DiffResults(expected.value(), streamed.value());
    }
  }
}

TEST(StreamMinerTest, WindowedMatchesBatchOfWindowAtEveryStep) {
  constexpr std::size_t kPane = 5;
  constexpr std::size_t kWindow = 3;
  const TransactionDatabase db = GenerateRandomDense(42, 10, 0.4, 99);
  StreamMiner miner(Windowed(db.NumItems(), kPane, kWindow));
  for (std::size_t k = 0; k < db.NumTransactions(); ++k) {
    ASSERT_TRUE(miner.AddTransaction(db.transaction(k)).ok());
    const std::size_t ingested = k + 1;
    const std::size_t current_pane = ingested / kPane;
    EXPECT_EQ(miner.CurrentPaneIndex(), current_pane);
    // The snapshot covers the filling pane plus the kWindow - 1 most
    // recent complete panes.
    const std::size_t first_pane =
        current_pane + 1 >= kWindow ? current_pane + 1 - kWindow : 0;
    TransactionDatabase window_db;
    window_db.SetNumItems(db.NumItems());
    for (std::size_t t = first_pane * kPane; t < ingested; ++t) {
      window_db.AddTransaction(db.transaction(t));
    }
    for (Support smin : {1u, 2u}) {
      auto streamed = miner.QueryCollect(smin);
      ASSERT_TRUE(streamed.ok());
      auto expected = OracleClosedSets(window_db, smin);
      ASSERT_TRUE(expected.ok());
      EXPECT_TRUE(SameResults(expected.value(), streamed.value()))
          << "tx " << ingested << " smin " << smin << "\n"
          << DiffResults(expected.value(), streamed.value());
    }
  }
}

TEST(StreamMinerTest, WindowedSnapshotDropsExpiredTransactions) {
  // Two panes, window of one pane: after each rotation the snapshot
  // covers only the filling pane.
  StreamMiner miner(Windowed(4, 2, 1));
  ASSERT_TRUE(miner.AddTransaction({0, 1}).ok());
  ASSERT_TRUE(miner.AddTransaction({0, 1}).ok());  // pane 0 completes
  ASSERT_TRUE(miner.AddTransaction({2, 3}).ok());
  auto sets = miner.QueryCollect(1);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets.value().size(), 1u);
  EXPECT_EQ(sets.value()[0].items, (std::vector<ItemId>{2, 3}));
  EXPECT_EQ(sets.value()[0].support, 1u);
}

TEST(StreamMinerTest, RepeatedQueriesAreStableAndCompact) {
  const TransactionDatabase db = GenerateRandomDense(30, 12, 0.35, 5);
  StreamMiner miner(Windowed(db.NumItems(), 4, 8));
  // Query after every transaction: each query seals the live tree, so
  // panes accumulate several segments and queries must compact them
  // without perturbing later snapshots.
  for (std::size_t k = 0; k < db.NumTransactions(); ++k) {
    ASSERT_TRUE(miner.AddTransaction(db.transaction(k)).ok());
    auto a = miner.QueryCollect(2);
    auto b = miner.QueryCollect(2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
  TransactionDatabase window_db;
  window_db.SetNumItems(db.NumItems());
  for (std::size_t t = 0; t < db.NumTransactions(); ++t) {
    window_db.AddTransaction(db.transaction(t));  // 30 tx < 8 panes * 4
  }
  auto streamed = miner.QueryCollect(1);
  ASSERT_TRUE(streamed.ok());
  MinerOptions options;
  options.min_support = 1;
  auto expected = MineClosedCollect(window_db, options);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(SameResults(expected.value(), streamed.value()))
      << DiffResults(expected.value(), streamed.value());
  const StreamStats stats = miner.Stats();
  EXPECT_GT(stats.segments_compacted, 0u);
  EXPECT_EQ(stats.queries, 2u * db.NumTransactions() + 1);
}

TEST(StreamMinerTest, ConcurrentQueriesDuringIngest) {
  const TransactionDatabase db = GenerateRandomDense(300, 20, 0.3, 17);
  StreamMiner miner(Landmark(db.NumItems()));
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queries_ok{0};
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load()) {
        auto sets = miner.QueryCollect(3);
        ASSERT_TRUE(sets.ok());
        queries_ok.fetch_add(1);
      }
    });
  }
  for (std::size_t k = 0; k < db.NumTransactions(); ++k) {
    ASSERT_TRUE(miner.AddTransaction(db.transaction(k)).ok());
  }
  done.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(queries_ok.load(), 0u);
  // The final snapshot is exact despite the query storm.
  auto streamed = miner.QueryCollect(3);
  ASSERT_TRUE(streamed.ok());
  MinerOptions options;
  options.min_support = 3;
  auto expected = MineClosedCollect(db, options);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(SameResults(expected.value(), streamed.value()))
      << DiffResults(expected.value(), streamed.value());
}

TEST(StreamMinerTest, CountersAndRegistryExport) {
  obs::MetricRegistry registry;
  StreamMinerOptions options = Windowed(8, 3, 2);
  options.registry = &registry;
  StreamMiner miner(options);
  for (int r = 0; r < 4; ++r) {
    ASSERT_TRUE(miner.AddTransaction({0, 1, 2}).ok());  // duplicate run
  }
  ASSERT_TRUE(miner.AddTransaction({1, 2, 3}).ok());
  ASSERT_TRUE(miner.AddTransaction({2, 3, 4}).ok());  // completes pane 1
  ASSERT_TRUE(miner.QueryCollect(1).ok());
  const StreamStats stats = miner.Stats();
  EXPECT_EQ(stats.transactions_ingested, 6u);
  // The four copies collapse into one weighted addition (split at the
  // pane boundary after tx 3): 4 raw transactions -> 2 weighted adds at
  // most, plus the two distinct ones.
  EXPECT_LT(stats.weighted_additions, stats.transactions_ingested);
  EXPECT_EQ(stats.panes_rotated, 2u);
  EXPECT_EQ(stats.panes_expired, 1u);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_GT(stats.live_segments, 0u);
  EXPECT_GT(stats.repository_nodes, 0u);
  const auto exported = registry.CounterValues();
  EXPECT_EQ(exported.at("stream.transactions_ingested"),
            stats.transactions_ingested);
  EXPECT_EQ(exported.at("stream.weighted_additions"),
            stats.weighted_additions);
  EXPECT_EQ(exported.at("stream.panes_rotated"), stats.panes_rotated);
  EXPECT_EQ(exported.at("stream.panes_expired"), stats.panes_expired);
  EXPECT_EQ(exported.at("stream.queries"), stats.queries);
  EXPECT_EQ(exported.at("stream.snapshot_merges"), stats.snapshot_merges);
}

TEST(StreamMinerTest, DuplicateMergingNeverChangesSnapshots) {
  const TransactionDatabase db = GenerateRandomDense(10, 8, 0.5, 3);
  StreamMinerOptions merged = Landmark(db.NumItems());
  StreamMinerOptions unmerged = Landmark(db.NumItems());
  unmerged.merge_duplicate_transactions = false;
  StreamMiner a(merged);
  StreamMiner b(unmerged);
  for (std::size_t k = 0; k < db.NumTransactions(); ++k) {
    for (std::size_t c = 0; c < 1 + k % 4; ++c) {
      ASSERT_TRUE(a.AddTransaction(db.transaction(k)).ok());
      ASSERT_TRUE(b.AddTransaction(db.transaction(k)).ok());
    }
    auto sa = a.QueryCollect(2);
    auto sb = b.QueryCollect(2);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    EXPECT_EQ(sa.value(), sb.value());
  }
  EXPECT_LT(a.Stats().weighted_additions, b.Stats().weighted_additions);
}

TEST(StreamMinerTest, CheckpointsDuringConcurrentIngest) {
  // TSan stress for the snapshot-under-ingest protocol: checkpoints and
  // queries seal the live tree under the miner mutex while a writer
  // keeps ingesting. Every mid-stream checkpoint must be internally
  // consistent (it restores), and the final state must equal batch.
  const TransactionDatabase db = GenerateRandomDense(300, 20, 0.3, 23);
  StreamMiner miner(Windowed(db.NumItems(), 16, 4));
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> checkpoints_ok{0};
  std::thread snapshotter([&] {
    while (!done.load()) {
      std::stringstream checkpoint;
      ASSERT_TRUE(miner.CheckpointTo(checkpoint).ok());
      auto restored = StreamMiner::RestoreFrom(checkpoint);
      ASSERT_TRUE(restored.ok());
      auto sets = restored.value()->QueryCollect(2);
      ASSERT_TRUE(sets.ok());
      checkpoints_ok.fetch_add(1);
    }
  });
  std::thread reader([&] {
    while (!done.load()) {
      auto sets = miner.QueryCollect(2);
      ASSERT_TRUE(sets.ok());
    }
  });
  for (std::size_t k = 0; k < db.NumTransactions(); ++k) {
    ASSERT_TRUE(miner.AddTransaction(db.transaction(k)).ok());
  }
  done.store(true);
  snapshotter.join();
  reader.join();
  EXPECT_GT(checkpoints_ok.load(), 0u);
  // Round-trip the final state once more and compare snapshots exactly.
  std::stringstream final_checkpoint;
  ASSERT_TRUE(miner.CheckpointTo(final_checkpoint).ok());
  auto restored = StreamMiner::RestoreFrom(final_checkpoint);
  ASSERT_TRUE(restored.ok());
  auto direct = miner.QueryCollect(1);
  auto roundtripped = restored.value()->QueryCollect(1);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(roundtripped.ok());
  EXPECT_TRUE(SameResults(direct.value(), roundtripped.value()))
      << DiffResults(direct.value(), roundtripped.value());
}

// A lock-contract helper in the style the miner uses internally
// (FlushPendingLocked etc.): FIM_REQUIRES makes "caller holds the
// mutex" machine-checked at every call site under FIM_THREAD_SAFETY,
// and the lock-rank checker enforces it dynamically in debug builds.
std::uint64_t IncrementHolding(Mutex& mutex, std::uint64_t& value)
    FIM_REQUIRES(mutex) {
  return ++value;
}

TEST(StreamMinerTest, RequiresAnnotatedHelperSeesConsistentState) {
  Mutex mutex(LockRank::kLeaf, "requires-helper");
  std::uint64_t value = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        const MutexLock lock(mutex);
        IncrementHolding(mutex, value);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const MutexLock lock(mutex);
  EXPECT_EQ(IncrementHolding(mutex, value), 20001u);
}

TEST(StreamMinerTest, RejectsBadInput) {
  StreamMiner miner(Landmark(5));
  EXPECT_FALSE(miner.AddTransaction({}).ok());
  EXPECT_EQ(miner.AddTransaction({7}).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(miner.AddTransaction({4, 1, 1}).ok());  // normalized
  EXPECT_EQ(miner.NumTransactions(), 1u);
  EXPECT_FALSE(miner.Query(0, [](auto, auto) {}).ok());
  auto empty = StreamMiner(Landmark(3)).QueryCollect(1);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

}  // namespace
}  // namespace fim
