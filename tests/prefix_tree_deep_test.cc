// Deep behavioural tests of the IsTa prefix tree: the step-stamp support
// arithmetic (several stored sets intersecting a transaction to the same
// result must count it once, Fig. 2), prefix-support consistency, and
// prune/merge semantics.

#include <gtest/gtest.h>

#include <map>

#include "ista/prefix_tree.h"

namespace fim {
namespace {

std::map<std::vector<ItemId>, Support> Collect(const IstaPrefixTree& tree,
                                               Support min_support) {
  std::map<std::vector<ItemId>, Support> out;
  tree.Report(min_support,
              [&out](std::span<const ItemId> items, Support support) {
                out.emplace(
                    std::vector<ItemId>(items.begin(), items.end()), support);
              });
  return out;
}

TEST(IstaDeepTest, SameIntersectionFromMultipleSourcesCountsOnce) {
  // {a,b,x} and {a,b,y} both intersect {a,b,z} to {a,b}: without the
  // step stamp the support of {a,b} would be double-counted.
  IstaPrefixTree tree(6);
  tree.AddTransaction(std::vector<ItemId>{0, 1, 3});  // a b x
  tree.AddTransaction(std::vector<ItemId>{0, 1, 4});  // a b y
  tree.AddTransaction(std::vector<ItemId>{0, 1, 5});  // a b z
  const auto sets = Collect(tree, 1);
  ASSERT_TRUE(sets.count({0, 1}));
  EXPECT_EQ(sets.at({0, 1}), 3u);  // in all three transactions, not 4+
  EXPECT_EQ(sets.size(), 4u);      // the three transactions + {a,b}
}

TEST(IstaDeepTest, ManySourcesOneResultStressesStamp) {
  // k stored sets all intersect the final transaction to {0}; the final
  // support of {0} must be exactly k+1.
  const std::size_t k = 20;
  IstaPrefixTree tree(k + 1);
  for (std::size_t i = 0; i < k; ++i) {
    tree.AddTransaction(
        std::vector<ItemId>{0, static_cast<ItemId>(i + 1)});
  }
  tree.AddTransaction(std::vector<ItemId>{0});
  const auto sets = Collect(tree, 1);
  EXPECT_EQ(sets.at({0}), k + 1);
}

TEST(IstaDeepTest, LaterSupersetRaisesEarlierIntersectionSupport) {
  // The intersection {a} is created at step 2; a later transaction
  // containing {a} must keep its count exact.
  IstaPrefixTree tree(4);
  tree.AddTransaction(std::vector<ItemId>{0, 1});  // a b
  tree.AddTransaction(std::vector<ItemId>{0, 2});  // a c   -> {a} supp 2
  tree.AddTransaction(std::vector<ItemId>{0, 3});  // a d
  tree.AddTransaction(std::vector<ItemId>{0});     // a
  const auto sets = Collect(tree, 1);
  EXPECT_EQ(sets.at({0}), 4u);
}

TEST(IstaDeepTest, ClosednessAcrossBranches) {
  // {b} occurs only together with {a} ({a,b} twice): {b} is not closed
  // and must not be reported even though a node for it may exist.
  IstaPrefixTree tree(3);
  tree.AddTransaction(std::vector<ItemId>{0, 1});
  tree.AddTransaction(std::vector<ItemId>{0, 1});
  tree.AddTransaction(std::vector<ItemId>{0, 2});
  const auto sets = Collect(tree, 1);
  EXPECT_FALSE(sets.count({1}));     // closure is {0,1}
  EXPECT_FALSE(sets.count({2}));     // closure is {0,2}
  EXPECT_EQ(sets.at({0}), 3u);       // {a} IS closed
  EXPECT_EQ(sets.at({0, 1}), 2u);
  EXPECT_EQ(sets.at({0, 2}), 1u);
  EXPECT_EQ(sets.size(), 3u);
}

TEST(IstaDeepTest, PruneMergesReducedSetsWithMaxSupport) {
  IstaPrefixTree tree(4);
  // Stored sets: {a,b} supp 3, {a,c} supp 1 (via transactions).
  tree.AddTransaction(std::vector<ItemId>{0, 1});
  tree.AddTransaction(std::vector<ItemId>{0, 1});
  tree.AddTransaction(std::vector<ItemId>{0, 1});
  tree.AddTransaction(std::vector<ItemId>{0, 2});
  // remaining: b and c cannot occur again; with min support 4, both are
  // dropped from every set whose node support cannot reach 4. The
  // reduced sets collapse onto {a} with the max support (= 4, since {a}
  // itself is a node with support 4 already).
  std::vector<Support> remaining = {10, 0, 0, 0};
  tree.Prune(4, remaining);
  const auto sets = Collect(tree, 4);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets.at({0}), 4u);
}

TEST(IstaDeepTest, PruneOnEmptyTreeIsNoOp) {
  IstaPrefixTree tree(3);
  std::vector<Support> remaining(3, 5);
  tree.Prune(2, remaining);
  EXPECT_EQ(tree.NodeCount(), 0u);
  EXPECT_TRUE(Collect(tree, 1).empty());
}

TEST(IstaDeepTest, InterleavedPrunesKeepSupportsExact) {
  // Pruning between every pair of transactions must never corrupt the
  // supports of the surviving frequent sets.
  IstaPrefixTree tree(5);
  const std::vector<std::vector<ItemId>> tx = {
      {0, 1, 2}, {0, 1, 3}, {0, 1, 2, 4}, {0, 1}, {0, 1, 2},
  };
  std::vector<Support> remaining(5, 0);
  for (const auto& t : tx) {
    for (ItemId i : t) ++remaining[i];
  }
  for (const auto& t : tx) {
    tree.AddTransaction(t);
    for (ItemId i : t) --remaining[i];
    tree.Prune(3, remaining);
  }
  const auto sets = Collect(tree, 3);
  ASSERT_TRUE(sets.count({0, 1}));
  EXPECT_EQ(sets.at({0, 1}), 5u);
  ASSERT_TRUE(sets.count({0, 1, 2}));
  EXPECT_EQ(sets.at({0, 1, 2}), 3u);
}

TEST(IstaDeepTest, AdversariallyDeepChainsDoNotOverflowTheStack) {
  // One very long transaction creates a repository path with one node per
  // item. Insert, intersect, report, prune, and merge all walk that chain
  // end to end; with the recursive formulation each of them would need
  // ~depth stack frames and crash long before this size.
  const std::size_t depth = 60000;
  std::vector<ItemId> items(depth);
  for (std::size_t i = 0; i < depth; ++i) items[i] = static_cast<ItemId>(i);
  const std::vector<ItemId> shorter(items.begin(), items.end() - 1);

  IstaPrefixTree tree(depth);
  tree.AddTransaction(items);    // deep path insert
  tree.AddTransaction(items);    // Isect walks the full chain
  tree.AddTransaction(shorter);  // deep intersection result
  ASSERT_TRUE(tree.ValidateInvariants().ok());

  auto sets = Collect(tree, 1);  // Report walks the chain
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets.at(items), 2u);
  EXPECT_EQ(sets.at(shorter), 3u);

  std::vector<Support> remaining(depth, 0);
  tree.Prune(2, remaining);  // PruneInto walks the chain
  ASSERT_TRUE(tree.ValidateInvariants().ok());
  EXPECT_EQ(Collect(tree, 2), sets);

  IstaPrefixTree other(depth);
  other.AddTransaction(items);
  tree.Merge(other);  // ReplayStoredSet + IsectMax walk the chain
  ASSERT_TRUE(tree.ValidateInvariants().ok());
  sets = Collect(tree, 1);
  EXPECT_EQ(sets.at(items), 3u);
  EXPECT_EQ(sets.at(shorter), 4u);
}

TEST(IstaDeepTest, StepCountSurvivesPrune) {
  IstaPrefixTree tree(3);
  tree.AddTransaction(std::vector<ItemId>{0, 1});
  tree.AddTransaction(std::vector<ItemId>{1, 2});
  std::vector<Support> remaining(3, 1);
  tree.Prune(1, remaining);
  EXPECT_EQ(tree.StepCount(), 2u);
  // Adding more transactions after a prune must keep counting correctly.
  tree.AddTransaction(std::vector<ItemId>{0, 1});
  EXPECT_EQ(tree.StepCount(), 3u);
  const auto sets = Collect(tree, 2);
  EXPECT_EQ(sets.at({0, 1}), 2u);
}

}  // namespace
}  // namespace fim
