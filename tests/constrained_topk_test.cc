// Tests of constrained closed-set mining and top-k mining.

#include <gtest/gtest.h>

#include <algorithm>

#include "api/constrained.h"
#include "api/topk.h"
#include "data/generators.h"
#include "verify/compare.h"
#include "verify/oracle.h"

namespace fim {
namespace {

// Reference for constraints: oracle over the reduced database (forbidden
// items deleted), filtered to sets containing all required items.
std::vector<ClosedItemset> ConstrainedOracle(
    const TransactionDatabase& db, Support smin,
    const ItemConstraints& constraints) {
  TransactionDatabase reduced;
  reduced.SetNumItems(db.NumItems());
  std::vector<ItemId> forbidden = constraints.must_not_contain;
  NormalizeItems(&forbidden);
  for (const auto& t : db.transactions()) {
    std::vector<ItemId> kept;
    for (ItemId i : t) {
      if (!std::binary_search(forbidden.begin(), forbidden.end(), i)) {
        kept.push_back(i);
      }
    }
    reduced.AddTransaction(kept);
  }
  auto all = OracleClosedSets(reduced, smin);
  EXPECT_TRUE(all.ok());
  std::vector<ItemId> required = constraints.must_contain;
  NormalizeItems(&required);
  std::vector<ClosedItemset> out;
  for (auto& set : all.value()) {
    if (IsSubsetSorted(required, set.items)) out.push_back(std::move(set));
  }
  return out;
}

TEST(ConstrainedTest, MatchesOracleOnRandomDatabases) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const TransactionDatabase db =
        GenerateRandomDense(10, 8, 0.5, seed * 271);
    for (Support smin : {1u, 2u, 3u}) {
      const ItemConstraints cases[] = {
          {{}, {}},
          {{0}, {}},
          {{0, 3}, {}},
          {{}, {1}},
          {{}, {1, 5}},
          {{2}, {4, 6}},
      };
      for (const auto& constraints : cases) {
        MinerOptions options;
        options.min_support = smin;
        auto mined = MineClosedConstrainedCollect(db, options, constraints);
        ASSERT_TRUE(mined.ok());
        const auto expected = ConstrainedOracle(db, smin, constraints);
        EXPECT_TRUE(SameResults(expected, mined.value()))
            << "seed " << seed << " smin " << smin << " required "
            << ItemsToString(constraints.must_contain) << " forbidden "
            << ItemsToString(constraints.must_not_contain) << "\n"
            << DiffResults(expected, mined.value());
      }
    }
  }
}

TEST(ConstrainedTest, OverlappingConstraintsRejected) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions({{0}});
  MinerOptions options;
  ItemConstraints constraints;
  constraints.must_contain = {1};
  constraints.must_not_contain = {1};
  auto result = MineClosedConstrainedCollect(db, options, constraints);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConstrainedTest, RequiredItemsAlwaysPresent) {
  const TransactionDatabase db = GenerateRandomDense(12, 8, 0.5, 33);
  MinerOptions options;
  options.min_support = 2;
  ItemConstraints constraints;
  constraints.must_contain = {1, 4};
  auto mined = MineClosedConstrainedCollect(db, options, constraints);
  ASSERT_TRUE(mined.ok());
  for (const auto& set : mined.value()) {
    EXPECT_TRUE(IsSubsetSorted(constraints.must_contain, set.items));
  }
}

TEST(ConstrainedTest, ForbiddenItemsNeverPresent) {
  const TransactionDatabase db = GenerateRandomDense(12, 8, 0.5, 34);
  MinerOptions options;
  options.min_support = 1;
  ItemConstraints constraints;
  constraints.must_not_contain = {0, 7};
  auto mined = MineClosedConstrainedCollect(db, options, constraints);
  ASSERT_TRUE(mined.ok());
  for (const auto& set : mined.value()) {
    EXPECT_TRUE(IntersectSorted(set.items, constraints.must_not_contain)
                    .empty());
  }
}

TEST(TopKTest, ReturnsHighestSupportSets) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const TransactionDatabase db =
        GenerateRandomDense(12, 8, 0.5, seed * 41);
    auto all = OracleClosedSets(db, 1);
    ASSERT_TRUE(all.ok());
    std::vector<Support> supports;
    for (const auto& set : all.value()) supports.push_back(set.support);
    std::sort(supports.rbegin(), supports.rend());

    for (std::size_t k : {1u, 3u, 7u}) {
      auto top = MineTopKClosed(db, k);
      ASSERT_TRUE(top.ok());
      const auto& sets = top.value();
      if (supports.size() <= k) {
        EXPECT_EQ(sets.size(), supports.size());
        continue;
      }
      ASSERT_GE(sets.size(), k);
      // The returned supports are exactly the k highest (with ties).
      const Support cutoff = supports[k - 1];
      for (std::size_t i = 0; i < sets.size(); ++i) {
        EXPECT_EQ(sets[i].support, supports[i]) << "seed " << seed;
      }
      EXPECT_EQ(sets.back().support, cutoff);
      // Nothing tied with the cutoff was dropped.
      const std::size_t tied_expected = static_cast<std::size_t>(
          std::count(supports.begin(), supports.end(), cutoff));
      const std::size_t tied_returned = static_cast<std::size_t>(
          std::count_if(sets.begin(), sets.end(),
                        [cutoff](const ClosedItemset& s) {
                          return s.support == cutoff;
                        }));
      EXPECT_EQ(tied_returned, tied_expected);
    }
  }
}

TEST(TopKTest, EdgeCases) {
  EXPECT_TRUE(MineTopKClosed(TransactionDatabase(), 5).value().empty());
  const TransactionDatabase db =
      TransactionDatabase::FromTransactions({{0, 1}});
  EXPECT_TRUE(MineTopKClosed(db, 0).value().empty());
  auto one = MineTopKClosed(db, 10);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().size(), 1u);  // only one closed set exists
}

}  // namespace
}  // namespace fim
