// Cross-algorithm equivalence and Table 1 on the paper's running example.

#include <gtest/gtest.h>

#include "api/miner.h"
#include "carpenter/carpenter.h"
#include "data/transaction_database.h"
#include "verify/closedness.h"
#include "verify/compare.h"
#include "verify/oracle.h"

namespace fim {
namespace {

// The 8-transaction example of Table 1 (items a..e -> 0..4).
TransactionDatabase PaperExample() {
  return TransactionDatabase::FromTransactions({
      {0, 1, 2},     // a b c
      {0, 3, 4},     // a d e
      {1, 2, 3},     // b c d
      {0, 1, 2, 3},  // a b c d
      {1, 2},        // b c
      {0, 1, 3},     // a b d
      {3, 4},        // d e
      {2, 3, 4},     // c d e
  });
}

TEST(PaperExampleTest, Table1MatrixMatchesPaper) {
  const TransactionDatabase db = PaperExample();
  const std::vector<Support> matrix = BuildCarpenterMatrix(db);
  // Rows exactly as printed in Table 1 of the paper.
  const Support expected[8][5] = {
      {4, 5, 5, 0, 0}, {3, 0, 0, 6, 3}, {0, 4, 4, 5, 0}, {2, 3, 3, 4, 0},
      {0, 2, 2, 0, 0}, {1, 1, 0, 3, 0}, {0, 0, 0, 2, 2}, {0, 0, 1, 1, 1},
  };
  ASSERT_EQ(matrix.size(), 40u);
  for (std::size_t k = 0; k < 8; ++k) {
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(matrix[k * 5 + i], expected[k][i])
          << "row " << k << " item " << i;
    }
  }
}

TEST(PaperExampleTest, OracleFindsKnownClosedSets) {
  const TransactionDatabase db = PaperExample();
  auto result = OracleClosedSets(db, 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Spot checks: {b, c} occurs in t1, t3, t4, t5 -> support 4 and is
  // closed; {d} occurs in 6 transactions and is closed.
  bool found_bc = false;
  bool found_d = false;
  for (const auto& set : result.value()) {
    if (set.items == std::vector<ItemId>{1, 2}) {
      found_bc = true;
      EXPECT_EQ(set.support, 4u);
    }
    if (set.items == std::vector<ItemId>{3}) {
      found_d = true;
      EXPECT_EQ(set.support, 6u);
    }
  }
  EXPECT_TRUE(found_bc);
  EXPECT_TRUE(found_d);
}

class AllAlgorithmsExampleTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, Support>> {};

TEST_P(AllAlgorithmsExampleTest, MatchesOracleOnPaperExample) {
  const auto [algorithm, min_support] = GetParam();
  const TransactionDatabase db = PaperExample();

  auto expected = OracleClosedSets(db, min_support);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  MinerOptions options;
  options.algorithm = algorithm;
  options.min_support = min_support;
  auto mined = MineClosedCollect(db, options);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();

  EXPECT_TRUE(SameResults(expected.value(), mined.value()))
      << AlgorithmName(algorithm) << " smin=" << min_support << "\n"
      << DiffResults(expected.value(), mined.value());
  EXPECT_TRUE(
      VerifyClosedSets(db, mined.value(), min_support).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllAlgorithmsExampleTest,
    ::testing::Combine(::testing::ValuesIn(AllAlgorithms()),
                       ::testing::Values<Support>(1, 2, 3, 4, 5, 6, 7, 8, 9)),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, Support>>& param_info) {
      std::string name = AlgorithmName(std::get<0>(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_smin" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace fim
