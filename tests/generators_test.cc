// Tests of the synthetic data generators, the expression discretizer, and
// the dataset profiles (shape checks against DESIGN.md).

#include <gtest/gtest.h>

#include "data/expression.h"
#include "data/generators.h"
#include "data/profiles.h"
#include "data/stats.h"

namespace fim {
namespace {

TEST(GeneratorsTest, MarketBasketIsDeterministicPerSeed) {
  MarketBasketConfig config;
  config.num_items = 50;
  config.num_transactions = 200;
  config.seed = 5;
  const TransactionDatabase a = GenerateMarketBasket(config);
  const TransactionDatabase b = GenerateMarketBasket(config);
  EXPECT_EQ(a.transactions(), b.transactions());
  config.seed = 6;
  const TransactionDatabase c = GenerateMarketBasket(config);
  EXPECT_NE(a.transactions(), c.transactions());
}

TEST(GeneratorsTest, MarketBasketHasRequestedShape) {
  MarketBasketConfig config;
  config.num_items = 100;
  config.num_transactions = 1000;
  config.avg_transaction_size = 8.0;
  config.seed = 11;
  const TransactionDatabase db = GenerateMarketBasket(config);
  const DatabaseStats stats = ComputeStats(db);
  EXPECT_EQ(stats.num_items, 100u);
  EXPECT_GE(stats.num_transactions, 990u);  // empty transactions dropped
  EXPECT_GT(stats.avg_transaction_size, 4.0);
  EXPECT_LT(stats.avg_transaction_size, 16.0);
}

TEST(GeneratorsTest, RandomDenseMatchesDensity) {
  const TransactionDatabase db = GenerateRandomDense(200, 50, 0.3, 21);
  const DatabaseStats stats = ComputeStats(db);
  EXPECT_NEAR(stats.density, 0.3, 0.05);
}

TEST(GeneratorsTest, SparseBinaryDeterministicAndShaped) {
  SparseBinaryConfig config;
  config.num_records = 32;
  config.num_features = 2000;
  config.seed = 3;
  const TransactionDatabase a = GenerateSparseBinary(config);
  const TransactionDatabase b = GenerateSparseBinary(config);
  EXPECT_EQ(a.transactions(), b.transactions());
  EXPECT_EQ(a.NumItems(), 2000u);
  EXPECT_EQ(a.NumTransactions(), 32u);
}

TEST(ExpressionTest, DiscretizerUsesThresholds) {
  ExpressionMatrix m(2, 3);
  m.at(0, 0) = 0.5;    // over  -> item 0 (cond 0 up) in gene row 0
  m.at(0, 1) = -0.5;   // under -> item 3 (cond 1 down)
  m.at(0, 2) = 0.1;    // neither
  m.at(1, 0) = 0.21;   // over
  m.at(1, 1) = -0.19;  // neither (just inside)
  m.at(1, 2) = -0.21;  // under

  const TransactionDatabase genes =
      Discretize(m, ExpressionOrientation::kGenesAsTransactions);
  ASSERT_EQ(genes.NumTransactions(), 2u);
  EXPECT_EQ(genes.transaction(0), (std::vector<ItemId>{0, 3}));
  EXPECT_EQ(genes.transaction(1), (std::vector<ItemId>{0, 5}));
  EXPECT_EQ(genes.NumItems(), 6u);

  const TransactionDatabase conditions =
      Discretize(m, ExpressionOrientation::kConditionsAsTransactions);
  // Condition 0: gene0 over (item 0), gene1 over (item 2).
  ASSERT_EQ(conditions.NumTransactions(), 3u);
  EXPECT_EQ(conditions.transaction(0), (std::vector<ItemId>{0, 2}));
  // Condition 1: gene0 under (item 1).
  EXPECT_EQ(conditions.transaction(1), (std::vector<ItemId>{1}));
  // Condition 2: gene1 under (item 3).
  EXPECT_EQ(conditions.transaction(2), (std::vector<ItemId>{3}));
}

TEST(ExpressionTest, CustomThresholdsRespected) {
  ExpressionMatrix m(1, 1);
  m.at(0, 0) = 0.3;
  const TransactionDatabase loose = Discretize(
      m, ExpressionOrientation::kGenesAsTransactions, 0.2, -0.2);
  EXPECT_EQ(loose.NumTransactions(), 1u);
  const TransactionDatabase strict = Discretize(
      m, ExpressionOrientation::kGenesAsTransactions, 0.5, -0.5);
  EXPECT_EQ(strict.NumTransactions(), 0u);  // empty transactions dropped
}

TEST(ExpressionTest, ModulesCreateCoExpression) {
  ExpressionConfig config;
  config.num_genes = 200;
  config.num_conditions = 40;
  config.num_modules = 4;
  config.genes_per_module = 40;
  config.conditions_per_module = 10;
  config.module_signal = 0.8;
  config.noise_stddev = 0.05;
  config.seed = 17;
  const ExpressionMatrix m = GenerateExpression(config);
  const TransactionDatabase db =
      Discretize(m, ExpressionOrientation::kConditionsAsTransactions);
  // With low noise almost all items come from modules, so the database
  // must contain items supported by ~10 conditions.
  const auto freq = db.ItemFrequencies();
  Support max_freq = 0;
  for (Support f : freq) max_freq = std::max(max_freq, f);
  EXPECT_GE(max_freq, 8u);
}

TEST(ProfilesTest, YeastShape) {
  const TransactionDatabase db = MakeYeastLike(0.05, 42);
  const DatabaseStats stats = ComputeStats(db);
  EXPECT_EQ(stats.num_transactions, 300u);  // conditions
  EXPECT_GT(stats.num_items, 300u);         // many more items than tx
}

TEST(ProfilesTest, Ncbi60Shape) {
  const TransactionDatabase db = MakeNcbi60Like(0.1, 43);
  const DatabaseStats stats = ComputeStats(db);
  EXPECT_EQ(stats.num_transactions, 64u);
  EXPECT_GT(stats.density, 0.3);  // very dense data
}

TEST(ProfilesTest, ThrombinShape) {
  const TransactionDatabase db = MakeThrombinLike(0.02, 44);
  const DatabaseStats stats = ComputeStats(db);
  EXPECT_EQ(stats.num_transactions, 64u);
  EXPECT_LT(stats.density, 0.35);  // sparse binary features
}

TEST(ProfilesTest, WebviewShape) {
  const TransactionDatabase db = MakeWebviewLike(0.02, 45);
  const DatabaseStats stats = ComputeStats(db);
  // Transposed: at most 497 transactions (one per original item).
  EXPECT_LE(stats.num_transactions, 497u);
  EXPECT_GT(stats.num_transactions, 300u);
  EXPECT_GT(stats.num_items, stats.num_transactions);
}

TEST(ProfilesTest, ProfilesDeterministicPerSeed) {
  EXPECT_EQ(MakeYeastLike(0.02, 1).transactions(),
            MakeYeastLike(0.02, 1).transactions());
  EXPECT_NE(MakeYeastLike(0.02, 1).transactions(),
            MakeYeastLike(0.02, 2).transactions());
}


TEST(QuantileDiscretizeTest, TailFractionBounds) {
  ExpressionMatrix m(2, 2);
  EXPECT_FALSE(DiscretizeQuantile(
                   m, ExpressionOrientation::kGenesAsTransactions, 0.0)
                   .ok());
  EXPECT_FALSE(DiscretizeQuantile(
                   m, ExpressionOrientation::kGenesAsTransactions, 0.5)
                   .ok());
  // 4 values with 10% tail -> tail = 0 entries: rejected.
  EXPECT_FALSE(DiscretizeQuantile(
                   m, ExpressionOrientation::kGenesAsTransactions, 0.1)
                   .ok());
}

TEST(QuantileDiscretizeTest, TailsBecomeItems) {
  // 10 distinct values; 20% tails cut off the 2 lowest / 2 highest.
  ExpressionMatrix m(2, 5);
  double v = 0.0;
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t c = 0; c < 5; ++c) {
      m.at(g, c) = v;
      v += 1.0;  // values 0..9
    }
  }
  auto result = DiscretizeQuantile(
      m, ExpressionOrientation::kGenesAsTransactions, 0.2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TransactionDatabase& db = result.value();
  // Gene 0 holds 0..4: values 0,1 under-expressed (below values[2]=2).
  // Gene 1 holds 5..9: values 8,9 over-expressed (above values[7]=7).
  ASSERT_EQ(db.NumTransactions(), 2u);
  EXPECT_EQ(db.transaction(0), (std::vector<ItemId>{1, 3}));   // c0,c1 down
  EXPECT_EQ(db.transaction(1), (std::vector<ItemId>{6, 8}));   // c3,c4 up
}

TEST(QuantileDiscretizeTest, FractionRoughlyRespectedOnRandomData) {
  ExpressionConfig config;
  config.num_genes = 100;
  config.num_conditions = 40;
  config.num_modules = 0;
  config.noise_stddev = 1.0;
  config.seed = 5;
  const ExpressionMatrix m = GenerateExpression(config);
  auto result = DiscretizeQuantile(
      m, ExpressionOrientation::kGenesAsTransactions, 0.1);
  ASSERT_TRUE(result.ok());
  const double occupancy =
      static_cast<double>(result.value().TotalItemOccurrences()) /
      static_cast<double>(100 * 40);
  EXPECT_NEAR(occupancy, 0.2, 0.02);  // two 10% tails
}
}  // namespace
}  // namespace fim
