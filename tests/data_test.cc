// Unit tests of the data layer: item set utilities, TransactionDatabase,
// FIMI IO, and database statistics.

#include <gtest/gtest.h>

#include "data/fimi_io.h"
#include "data/itemset.h"
#include "data/stats.h"
#include "data/transaction_database.h"

namespace fim {
namespace {

TEST(ItemsetTest, NormalizeSortsAndDeduplicates) {
  std::vector<ItemId> v = {5, 1, 3, 1, 5, 5};
  NormalizeItems(&v);
  EXPECT_EQ(v, (std::vector<ItemId>{1, 3, 5}));
}

TEST(ItemsetTest, IntersectSorted) {
  std::vector<ItemId> a = {1, 3, 5, 7};
  std::vector<ItemId> b = {2, 3, 5, 8};
  EXPECT_EQ(IntersectSorted(a, b), (std::vector<ItemId>{3, 5}));
  EXPECT_TRUE(IntersectSorted(a, std::vector<ItemId>{}).empty());
}

TEST(ItemsetTest, IsSubsetSorted) {
  std::vector<ItemId> a = {3, 5};
  std::vector<ItemId> b = {1, 3, 5, 7};
  EXPECT_TRUE(IsSubsetSorted(a, b));
  EXPECT_FALSE(IsSubsetSorted(b, a));
  EXPECT_TRUE(IsSubsetSorted(std::vector<ItemId>{}, a));
  EXPECT_TRUE(IsSubsetSorted(a, a));
  EXPECT_FALSE(IsSubsetSorted(std::vector<ItemId>{4}, b));
}

TEST(ItemsetTest, ItemsToString) {
  EXPECT_EQ(ItemsToString(std::vector<ItemId>{}), "{}");
  EXPECT_EQ(ItemsToString(std::vector<ItemId>{1, 4, 7}), "{1, 4, 7}");
}

TEST(ItemsetTest, CollectorGathersAndSorts) {
  ClosedSetCollector collector;
  auto cb = collector.AsCallback();
  const std::vector<ItemId> s1 = {2, 3};
  const std::vector<ItemId> s2 = {1};
  cb(s1, 4);
  cb(s2, 7);
  collector.SortCanonical();
  ASSERT_EQ(collector.size(), 2u);
  EXPECT_EQ(collector.sets()[0].items, s2);
  EXPECT_EQ(collector.sets()[1].items, s1);
}

TEST(TransactionDatabaseTest, NormalizesAndDropsEmpty) {
  TransactionDatabase db;
  db.AddTransaction({3, 1, 3});
  db.AddTransaction({});  // dropped
  db.AddTransaction({0});
  EXPECT_EQ(db.NumTransactions(), 2u);
  EXPECT_EQ(db.transaction(0), (std::vector<ItemId>{1, 3}));
  EXPECT_EQ(db.NumItems(), 4u);
  EXPECT_EQ(db.TotalItemOccurrences(), 3u);
}

TEST(TransactionDatabaseTest, SetNumItemsNeverShrinks) {
  TransactionDatabase db;
  db.AddTransaction({9});
  db.SetNumItems(3);
  EXPECT_EQ(db.NumItems(), 10u);
  db.SetNumItems(20);
  EXPECT_EQ(db.NumItems(), 20u);
}

TEST(TransactionDatabaseTest, ItemNames) {
  TransactionDatabase db;
  db.AddTransaction({0, 1});
  EXPECT_FALSE(db.SetItemNames({"only-one"}).ok());
  ASSERT_TRUE(db.SetItemNames({"alpha", "beta"}).ok());
  EXPECT_EQ(db.ItemName(0), "alpha");
  EXPECT_EQ(db.ItemName(5), "5");  // out of range falls back to the id
}

TEST(TransactionDatabaseTest, FrequenciesAndVertical) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1}, {1, 2}, {1}});
  EXPECT_EQ(db.ItemFrequencies(), (std::vector<Support>{1, 3, 1}));
  const auto vertical = db.BuildVertical();
  ASSERT_EQ(vertical.size(), 3u);
  EXPECT_EQ(vertical[1], (std::vector<Tid>{0, 1, 2}));
  EXPECT_EQ(vertical[2], (std::vector<Tid>{1}));
}

TEST(TransactionDatabaseTest, CountSupport) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1, 2}, {0, 2}, {1, 2}});
  EXPECT_EQ(db.CountSupport(std::vector<ItemId>{2}), 3u);
  EXPECT_EQ(db.CountSupport(std::vector<ItemId>{0, 2}), 2u);
  EXPECT_EQ(db.CountSupport(std::vector<ItemId>{0, 1, 2}), 1u);
  EXPECT_EQ(db.CountSupport(std::vector<ItemId>{}), 3u);
}

TEST(FimiIoTest, ParseBasic) {
  auto result = ParseFimi("1 2 3\n\n# comment\n7 5\n");
  ASSERT_TRUE(result.ok());
  const auto& db = result.value();
  EXPECT_EQ(db.NumTransactions(), 2u);
  EXPECT_EQ(db.transaction(1), (std::vector<ItemId>{5, 7}));
  EXPECT_EQ(db.NumItems(), 8u);
}

TEST(FimiIoTest, ParseRejectsGarbage) {
  auto result = ParseFimi("1 2\n3 x 4\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(FimiIoTest, ParseHandlesMissingTrailingNewline) {
  auto result = ParseFimi("4 2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumTransactions(), 1u);
  EXPECT_EQ(result.value().transaction(0), (std::vector<ItemId>{2, 4}));
}

TEST(FimiIoTest, RoundTripThroughFile) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 5, 9}, {2}, {1, 2, 3, 4}});
  const std::string path = ::testing::TempDir() + "/fimi_roundtrip.txt";
  ASSERT_TRUE(WriteFimiFile(db, path).ok());
  auto back = ReadFimiFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().transactions(), db.transactions());
}

TEST(FimiIoTest, ReadMissingFileFails) {
  auto result = ReadFimiFile("/nonexistent/really/not/here.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(StatsTest, ComputesShape) {
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1, 2}, {1}, {1, 2}});
  const DatabaseStats stats = ComputeStats(db);
  EXPECT_EQ(stats.num_transactions, 3u);
  EXPECT_EQ(stats.num_items, 3u);
  EXPECT_EQ(stats.num_used_items, 3u);
  EXPECT_EQ(stats.total_occurrences, 6u);
  EXPECT_EQ(stats.min_transaction_size, 1u);
  EXPECT_EQ(stats.max_transaction_size, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_transaction_size, 2.0);
  EXPECT_NEAR(stats.density, 6.0 / 9.0, 1e-9);
  EXPECT_FALSE(StatsToString(stats).empty());
}

TEST(StatsTest, EmptyDatabase) {
  const DatabaseStats stats = ComputeStats(TransactionDatabase());
  EXPECT_EQ(stats.num_transactions, 0u);
  EXPECT_EQ(stats.total_occurrences, 0u);
  EXPECT_EQ(stats.density, 0.0);
}

}  // namespace
}  // namespace fim
