// Unit tests of the IsTa prefix tree, including the worked example of the
// paper's Figure 3.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "ista/prefix_tree.h"

namespace fim {
namespace {

std::map<std::vector<ItemId>, Support> Collect(const IstaPrefixTree& tree,
                                               Support min_support) {
  std::map<std::vector<ItemId>, Support> out;
  tree.Report(min_support,
              [&out](std::span<const ItemId> items, Support support) {
                out.emplace(
                    std::vector<ItemId>(items.begin(), items.end()), support);
              });
  return out;
}

// Figure 3: transactions {e,c,a}, {e,d,b}, {d,c,b,a} with item codes
// a=0, b=1, c=2, d=3, e=4.
TEST(IstaPrefixTreeTest, Figure3Example) {
  IstaPrefixTree tree(5);
  tree.AddTransaction(std::vector<ItemId>{0, 2, 4});  // {e,c,a}
  tree.AddTransaction(std::vector<ItemId>{1, 3, 4});  // {e,d,b}

  // After step 2 the only intersection is {e} with support 2.
  auto after2 = Collect(tree, 1);
  EXPECT_EQ(after2.size(), 3u);
  EXPECT_EQ(after2.at({4}), 2u);
  EXPECT_EQ(after2.at({0, 2, 4}), 1u);
  EXPECT_EQ(after2.at({1, 3, 4}), 1u);

  tree.AddTransaction(std::vector<ItemId>{0, 1, 2, 3});  // {d,c,b,a}

  // Figure 3 step 3: new intersections {d,b} and {c,a}, both support 2.
  auto after3 = Collect(tree, 1);
  EXPECT_EQ(after3.size(), 6u);
  EXPECT_EQ(after3.at({4}), 2u);
  EXPECT_EQ(after3.at({1, 3}), 2u);
  EXPECT_EQ(after3.at({0, 2}), 2u);
  EXPECT_EQ(after3.at({0, 2, 4}), 1u);
  EXPECT_EQ(after3.at({1, 3, 4}), 1u);
  EXPECT_EQ(after3.at({0, 1, 2, 3}), 1u);

  // With min support 2 only the intersections remain.
  auto frequent = Collect(tree, 2);
  EXPECT_EQ(frequent.size(), 3u);
  EXPECT_TRUE(frequent.count({4}));
  EXPECT_TRUE(frequent.count({1, 3}));
  EXPECT_TRUE(frequent.count({0, 2}));
}

TEST(IstaPrefixTreeTest, DuplicateTransactionsAccumulateSupport) {
  IstaPrefixTree tree(3);
  for (int i = 0; i < 4; ++i) {
    tree.AddTransaction(std::vector<ItemId>{0, 2});
  }
  auto sets = Collect(tree, 1);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets.at({0, 2}), 4u);
  EXPECT_EQ(tree.StepCount(), 4u);
}

TEST(IstaPrefixTreeTest, NonClosedPrefixesAreSuppressed) {
  IstaPrefixTree tree(4);
  // {c,b,a} twice and {c,b} once: {c,b,a} supp 2, {c,b} supp 3 are closed;
  // nothing else.
  tree.AddTransaction(std::vector<ItemId>{0, 1, 2});
  tree.AddTransaction(std::vector<ItemId>{0, 1, 2});
  tree.AddTransaction(std::vector<ItemId>{1, 2});
  auto sets = Collect(tree, 1);
  EXPECT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets.at({0, 1, 2}), 2u);
  EXPECT_EQ(sets.at({1, 2}), 3u);
}

TEST(IstaPrefixTreeTest, NodeCountGrowsAndStepsTrack) {
  IstaPrefixTree tree(6);
  EXPECT_EQ(tree.NodeCount(), 0u);
  tree.AddTransaction(std::vector<ItemId>{0, 1, 2});
  EXPECT_EQ(tree.NodeCount(), 3u);  // one path
  tree.AddTransaction(std::vector<ItemId>{3, 4, 5});
  EXPECT_EQ(tree.NodeCount(), 6u);  // disjoint path, no intersections
  EXPECT_EQ(tree.StepCount(), 2u);
}

TEST(IstaPrefixTreeTest, PruneDropsHopelessItems) {
  IstaPrefixTree tree(4);
  tree.AddTransaction(std::vector<ItemId>{0, 1, 2, 3});
  tree.AddTransaction(std::vector<ItemId>{1, 2});
  // Suppose no transactions remain: remaining = 0 for all items.
  // With min support 2, all sets whose support is 1 lose all items whose
  // node support is 1.
  std::vector<Support> remaining(4, 0);
  tree.Prune(2, remaining);
  auto sets = Collect(tree, 2);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets.at({1, 2}), 2u);
}

TEST(IstaPrefixTreeTest, PruneKeepsItemsWithEnoughRemaining) {
  IstaPrefixTree tree(3);
  tree.AddTransaction(std::vector<ItemId>{0, 1});
  // Item 0 and 1 both occur once so far; with 5 remaining occurrences
  // each, min support 3 is still achievable: nothing may be dropped.
  std::vector<Support> remaining(3, 5);
  const std::size_t before = tree.NodeCount();
  tree.Prune(3, remaining);
  EXPECT_EQ(tree.NodeCount(), before);
  auto sets = Collect(tree, 1);
  EXPECT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets.at({0, 1}), 1u);
}

TEST(IstaPrefixTreeTest, ManyItemsWidePaths) {
  // A long transaction and a one-item overlap stress the descending
  // sibling order and the imin cutoff.
  IstaPrefixTree tree(100);
  std::vector<ItemId> wide;
  for (ItemId i = 0; i < 100; i += 2) wide.push_back(i);
  tree.AddTransaction(wide);
  tree.AddTransaction(std::vector<ItemId>{50});
  auto sets = Collect(tree, 1);
  EXPECT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets.at({50}), 2u);
  EXPECT_EQ(sets.at(wide), 1u);
}

}  // namespace
}  // namespace fim
