// Hand-crafted behavioural tests of the enumeration-side miners: CHARM's
// tidset-merge properties, the transposed miner's size look-ahead, and
// FP-close's perfect-extension candidates.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "enumeration/charm.h"
#include "enumeration/fpclose.h"
#include "enumeration/transposed.h"
#include "verify/compare.h"
#include "verify/oracle.h"

namespace fim {
namespace {

std::vector<ClosedItemset> Collect(
    const std::function<Status(const TransactionDatabase&,
                               const ClosedSetCallback&)>& run,
    const TransactionDatabase& db) {
  ClosedSetCollector collector;
  EXPECT_TRUE(run(db, collector.AsCallback()).ok());
  collector.SortCanonical();
  return collector.TakeSets();
}

TEST(CharmDeepTest, IdenticalTidsetsMergeIntoOneClosedSet) {
  // Items 0 and 1 always co-occur: CHARM's property 1 must merge them,
  // reporting {0,1} (and never {0} or {1} alone).
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1, 2}, {0, 1, 3}, {0, 1}});
  CharmOptions options;
  options.min_support = 1;
  const auto sets = Collect(
      [&](const TransactionDatabase& d, const ClosedSetCallback& cb) {
        return MineClosedCharm(d, options, cb);
      },
      db);
  for (const auto& set : sets) {
    const bool has0 = std::binary_search(set.items.begin(), set.items.end(),
                                         ItemId{0});
    const bool has1 = std::binary_search(set.items.begin(), set.items.end(),
                                         ItemId{1});
    EXPECT_EQ(has0, has1) << ItemsToString(set.items);
  }
  auto expected = OracleClosedSets(db, 1);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(SameResults(expected.value(), sets));
}

TEST(CharmDeepTest, SubsetTidsetAbsorbsSupersetItems) {
  // t(0) = {t1,t2} is a subset of t(1) = {t1,t2,t3}: property 2 says
  // every closed set containing 0 must also contain 1.
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1}, {0, 1}, {1, 2}});
  CharmOptions options;
  options.min_support = 1;
  const auto sets = Collect(
      [&](const TransactionDatabase& d, const ClosedSetCallback& cb) {
        return MineClosedCharm(d, options, cb);
      },
      db);
  for (const auto& set : sets) {
    if (std::binary_search(set.items.begin(), set.items.end(), ItemId{0})) {
      EXPECT_TRUE(std::binary_search(set.items.begin(), set.items.end(),
                                     ItemId{1}))
          << ItemsToString(set.items);
    }
  }
}

TEST(TransposedDeepTest, SupportBecomesSizeConstraint) {
  // Only sets of >= 3 transactions' worth of support survive; the
  // transposed enumeration prunes everything smaller by size look-ahead.
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1}, {0, 1}, {0, 1}, {0, 2}, {2}});
  TransposedOptions options;
  options.min_support = 3;
  const auto sets = Collect(
      [&](const TransactionDatabase& d, const ClosedSetCallback& cb) {
        return MineClosedTransposed(d, options, cb);
      },
      db);
  auto expected = OracleClosedSets(db, 3);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(SameResults(expected.value(), sets))
      << DiffResults(expected.value(), sets);
  // Concretely: {0,1} supp 3 and {0} supp 4.
  ASSERT_EQ(sets.size(), 2u);
}

TEST(TransposedDeepTest, HandlesItemOccurringNowhere) {
  TransactionDatabase db = TransactionDatabase::FromTransactions({{0, 2}});
  db.SetNumItems(10);  // items 3..9 never occur
  TransposedOptions options;
  options.min_support = 1;
  const auto sets = Collect(
      [&](const TransactionDatabase& d, const ClosedSetCallback& cb) {
        return MineClosedTransposed(d, options, cb);
      },
      db);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].items, (std::vector<ItemId>{0, 2}));
}

TEST(FpCloseDeepTest, PerfectExtensionsFoldIntoCandidates) {
  // Item 2 occurs in every transaction: it is a global perfect extension
  // and must be inside EVERY reported closed set.
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 2}, {1, 2}, {0, 1, 2}});
  FpCloseOptions options;
  options.min_support = 1;
  const auto sets = Collect(
      [&](const TransactionDatabase& d, const ClosedSetCallback& cb) {
        return MineClosedFpClose(d, options, cb);
      },
      db);
  for (const auto& set : sets) {
    EXPECT_TRUE(
        std::binary_search(set.items.begin(), set.items.end(), ItemId{2}))
        << ItemsToString(set.items);
  }
  auto expected = OracleClosedSets(db, 1);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(SameResults(expected.value(), sets));
}

TEST(FpCloseDeepTest, SubsumptionFilterRemovesNonClosedCandidates) {
  // A case with many shared prefixes where the raw candidate list
  // contains non-closed sets that the same-support filter must remove.
  const TransactionDatabase db = TransactionDatabase::FromTransactions(
      {{0, 1, 2, 3}, {0, 1, 2}, {0, 1}, {0}});
  FpCloseOptions options;
  options.min_support = 1;
  const auto sets = Collect(
      [&](const TransactionDatabase& d, const ClosedSetCallback& cb) {
        return MineClosedFpClose(d, options, cb);
      },
      db);
  // Exactly the four nested prefixes, each closed with distinct support.
  ASSERT_EQ(sets.size(), 4u);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(sets[i].items.size(), i + 1);
    EXPECT_EQ(sets[i].support, 4u - i);
  }
}

}  // namespace
}  // namespace fim
