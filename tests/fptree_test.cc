// Unit tests of the FP-tree substrate.

#include <gtest/gtest.h>

#include <algorithm>

#include "enumeration/fptree.h"

namespace fim {
namespace {

TEST(FpTreeTest, EmptyTree) {
  FpTree tree(5);
  EXPECT_TRUE(tree.Empty());
  EXPECT_EQ(tree.TotalTransactions(), 0u);
  EXPECT_EQ(tree.ItemSupport(0), 0u);
}

TEST(FpTreeTest, InsertSharesPrefixes) {
  FpTree tree(5);
  tree.Insert(std::vector<ItemId>{0, 1, 2}, 1);
  tree.Insert(std::vector<ItemId>{0, 1, 3}, 1);
  tree.Insert(std::vector<ItemId>{0, 1, 2}, 1);
  // Root + shared path 0,1 + branch {2}, {3}: 4 item nodes + root.
  EXPECT_EQ(tree.NodeCount(), 5u);
  EXPECT_EQ(tree.ItemSupport(0), 3u);
  EXPECT_EQ(tree.ItemSupport(1), 3u);
  EXPECT_EQ(tree.ItemSupport(2), 2u);
  EXPECT_EQ(tree.ItemSupport(3), 1u);
  EXPECT_EQ(tree.TotalTransactions(), 3u);
}

TEST(FpTreeTest, InsertWithMultiplicity) {
  FpTree tree(3);
  tree.Insert(std::vector<ItemId>{1, 2}, 5);
  EXPECT_EQ(tree.ItemSupport(1), 5u);
  EXPECT_EQ(tree.TotalTransactions(), 5u);
  tree.Insert(std::vector<ItemId>{}, 2);  // empty path still counts
  EXPECT_EQ(tree.TotalTransactions(), 7u);
}

TEST(FpTreeTest, ZeroCountInsertIgnored) {
  FpTree tree(3);
  tree.Insert(std::vector<ItemId>{0}, 0);
  EXPECT_TRUE(tree.Empty());
}

TEST(FpTreeTest, ConditionalPathsCollectWeightedPrefixes) {
  FpTree tree(5);
  tree.Insert(std::vector<ItemId>{0, 1, 4}, 1);
  tree.Insert(std::vector<ItemId>{0, 2, 4}, 2);
  tree.Insert(std::vector<ItemId>{4}, 1);

  auto paths = tree.ConditionalPaths(4);
  ASSERT_EQ(paths.size(), 3u);
  // Sort by path content for a deterministic check.
  std::sort(paths.begin(), paths.end(),
            [](const auto& a, const auto& b) { return a.items < b.items; });
  EXPECT_TRUE(paths[0].items.empty());
  EXPECT_EQ(paths[0].count, 1u);
  EXPECT_EQ(paths[1].items, (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(paths[1].count, 1u);
  EXPECT_EQ(paths[2].items, (std::vector<ItemId>{0, 2}));
  EXPECT_EQ(paths[2].count, 2u);
}

TEST(FpTreeTest, ConditionalPathsForAbsentItem) {
  FpTree tree(5);
  tree.Insert(std::vector<ItemId>{0, 1}, 1);
  EXPECT_TRUE(tree.ConditionalPaths(3).empty());
}

}  // namespace
}  // namespace fim
