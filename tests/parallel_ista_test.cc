// Tests of multi-threaded IsTa: the sharded miner must produce output
// (including order) identical to the sequential run on every input and
// thread count, with and without duplicate merging, item elimination,
// and mid-merge pruning.

#include <gtest/gtest.h>

#include <map>

#include "data/generators.h"
#include "data/profiles.h"
#include "ista/ista.h"
#include "ista/prefix_tree.h"
#include "verify/compare.h"

namespace fim {
namespace {

std::vector<ClosedItemset> MineWith(const TransactionDatabase& db,
                                    const IstaOptions& options,
                                    IstaStats* stats = nullptr) {
  ClosedSetCollector collector;
  EXPECT_TRUE(MineClosedIsta(db, options, collector.AsCallback(), stats).ok());
  return collector.TakeSets();  // NOT canonicalized: order matters here
}

std::vector<ClosedItemset> MineWith(const TransactionDatabase& db, Support smin,
                                    unsigned threads) {
  IstaOptions options;
  options.min_support = smin;
  options.num_threads = threads;
  return MineWith(db, options);
}

TEST(ParallelIstaTest, IdenticalOutputAndOrderOnRandomData) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const TransactionDatabase db =
        GenerateRandomDense(24, 12, 0.4, seed * 757);
    for (Support smin : {1u, 2u, 4u}) {
      const auto sequential = MineWith(db, smin, 1);
      for (unsigned threads : {2u, 3u, 4u, 8u}) {
        const auto parallel = MineWith(db, smin, threads);
        ASSERT_EQ(sequential, parallel)
            << "seed " << seed << " smin " << smin << " threads " << threads;
      }
    }
  }
}

TEST(ParallelIstaTest, IdenticalOnMarketBasketData) {
  MarketBasketConfig config;
  config.num_items = 60;
  config.num_transactions = 2000;
  config.avg_transaction_size = 6.0;
  config.num_patterns = 12;
  config.seed = 11;
  const TransactionDatabase db = GenerateMarketBasket(config);
  for (Support smin : {5u, 40u}) {
    const auto sequential = MineWith(db, smin, 1);
    IstaOptions options;
    options.min_support = smin;
    for (unsigned threads : {2u, 4u}) {
      options.num_threads = threads;
      IstaStats stats;
      const auto parallel = MineWith(db, options, &stats);
      ASSERT_EQ(sequential, parallel) << "smin " << smin << " threads "
                                      << threads;
      EXPECT_EQ(stats.merge_calls, threads - 1);
    }
  }
}

TEST(ParallelIstaTest, IdenticalOnStructuredProfiles) {
  {
    const TransactionDatabase db = MakeYeastLike(0.05, 42);
    const auto sequential = MineWith(db, 12, 1);
    EXPECT_FALSE(sequential.empty());
    EXPECT_EQ(sequential, MineWith(db, 12, 4));
  }
  {
    const TransactionDatabase db = MakeWebviewLike(0.1, 45);
    const auto sequential = MineWith(db, 8, 1);
    EXPECT_FALSE(sequential.empty());
    EXPECT_EQ(sequential, MineWith(db, 8, 4));
  }
}

TEST(ParallelIstaTest, IdenticalWithoutItemElimination) {
  const TransactionDatabase db = GenerateRandomDense(30, 10, 0.5, 99);
  IstaOptions options;
  options.min_support = 3;
  options.item_elimination = false;
  const auto sequential = MineWith(db, options);
  options.num_threads = 4;
  EXPECT_EQ(sequential, MineWith(db, options));
}

TEST(ParallelIstaTest, IdenticalWithoutDuplicateMerging) {
  // Duplicate-heavy input: without dedup every copy is added separately
  // and shard boundaries can split runs of identical transactions.
  std::vector<std::vector<ItemId>> rows;
  for (int copy = 0; copy < 7; ++copy) rows.push_back({0, 1, 2});
  for (int copy = 0; copy < 5; ++copy) rows.push_back({1, 2, 3});
  rows.push_back({0, 3});
  const TransactionDatabase db = TransactionDatabase::FromTransactions(rows);
  for (bool merge_duplicates : {true, false}) {
    IstaOptions options;
    options.min_support = 2;
    options.merge_duplicate_transactions = merge_duplicates;
    const auto sequential = MineWith(db, options);
    for (unsigned threads : {2u, 4u, 8u}) {
      options.num_threads = threads;
      ASSERT_EQ(sequential, MineWith(db, options))
          << "dedup " << merge_duplicates << " threads " << threads;
    }
  }
}

TEST(ParallelIstaTest, MidMergePruningKeepsOutputExact) {
  // A tiny prune threshold forces threshold prunes inside every shard
  // and inside every Merge; the output must not change.
  MarketBasketConfig config;
  config.num_items = 40;
  config.num_transactions = 1500;
  config.avg_transaction_size = 5.0;
  config.num_patterns = 8;
  config.seed = 23;
  const TransactionDatabase db = GenerateMarketBasket(config);
  IstaOptions options;
  options.min_support = 30;
  const auto sequential = MineWith(db, options);
  options.prune_node_threshold = 16;
  for (unsigned threads : {1u, 4u}) {
    options.num_threads = threads;
    IstaStats stats;
    ASSERT_EQ(sequential, MineWith(db, options, &stats)) << "threads "
                                                         << threads;
    EXPECT_GT(stats.prune_calls, 0u);
  }
}

TEST(ParallelIstaTest, MoreThreadsThanTransactions) {
  const TransactionDatabase db =
      TransactionDatabase::FromTransactions({{0, 1}, {0, 1}, {2}});
  EXPECT_EQ(MineWith(db, 1, 1), MineWith(db, 1, 16));
}

TEST(ParallelIstaTest, EdgeCases) {
  EXPECT_TRUE(MineWith(TransactionDatabase(), 1, 4).empty());
  const TransactionDatabase single =
      TransactionDatabase::FromTransactions({{3, 5, 7}});
  const auto result = MineWith(single, 1, 8);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].items, (std::vector<ItemId>{3, 5, 7}));
  EXPECT_EQ(result[0].support, 1u);
}

// --- IstaPrefixTree::Merge and weighted additions -----------------------

std::map<std::vector<ItemId>, Support> Collect(const IstaPrefixTree& tree,
                                               Support min_support) {
  std::map<std::vector<ItemId>, Support> out;
  tree.Report(min_support,
              [&out](std::span<const ItemId> items, Support support) {
                out.emplace(std::vector<ItemId>(items.begin(), items.end()),
                            support);
              });
  return out;
}

TEST(IstaMergeTest, WeightedAdditionEqualsRepeatedAddition) {
  IstaPrefixTree repeated(5);
  IstaPrefixTree weighted(5);
  const std::vector<std::vector<ItemId>> rows = {{0, 1, 2}, {1, 2, 4}, {2, 3}};
  const std::vector<Support> weights = {3, 1, 5};
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (Support w = 0; w < weights[r]; ++w) repeated.AddTransaction(rows[r]);
    weighted.AddTransaction(rows[r], weights[r]);
  }
  EXPECT_TRUE(repeated.ValidateInvariants().ok());
  EXPECT_TRUE(weighted.ValidateInvariants().ok());
  EXPECT_EQ(weighted.TotalWeight(), 9u);
  EXPECT_EQ(Collect(repeated, 1), Collect(weighted, 1));
}

TEST(IstaMergeTest, MergeOfDisjointRepositories) {
  IstaPrefixTree a(6);
  a.AddTransaction(std::vector<ItemId>{0, 1});
  a.AddTransaction(std::vector<ItemId>{0, 1, 2});
  IstaPrefixTree b(6);
  b.AddTransaction(std::vector<ItemId>{3, 4});
  b.AddTransaction(std::vector<ItemId>{4, 5});
  IstaPrefixTree reference(6);
  for (const auto& row : {std::vector<ItemId>{0, 1}, {0, 1, 2}, {3, 4}, {4, 5}})
    reference.AddTransaction(row);
  a.Merge(b);
  EXPECT_TRUE(a.ValidateInvariants().ok());
  EXPECT_EQ(a.TotalWeight(), reference.TotalWeight());
  EXPECT_EQ(Collect(a, 1), Collect(reference, 1));
}

TEST(IstaMergeTest, MergeOfOverlappingRepositoriesRecoversCrossSupports) {
  // {0,1} is contained in transactions of both sides: its merged support
  // must count both, even though neither repository alone stores it.
  IstaPrefixTree a(5);
  a.AddTransaction(std::vector<ItemId>{0, 1, 2});
  a.AddTransaction(std::vector<ItemId>{0, 1, 3});
  IstaPrefixTree b(5);
  b.AddTransaction(std::vector<ItemId>{0, 1, 4});
  b.AddTransaction(std::vector<ItemId>{1, 2});
  IstaPrefixTree reference(5);
  for (const auto& row :
       {std::vector<ItemId>{0, 1, 2}, {0, 1, 3}, {0, 1, 4}, {1, 2}})
    reference.AddTransaction(row);
  a.Merge(b);
  EXPECT_TRUE(a.ValidateInvariants().ok());
  const auto merged = Collect(a, 1);
  EXPECT_EQ(merged, Collect(reference, 1));
  EXPECT_EQ(merged.at({0, 1}), 3u);
  EXPECT_EQ(merged.at({1}), 4u);
}

TEST(IstaMergeTest, MergeIsExactOnRandomRepositorySplits) {
  // Split a random stream at every position, mine the halves separately,
  // merge, and compare against the sequential repository.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const TransactionDatabase db = GenerateRandomDense(12, 8, 0.5, seed * 131);
    IstaPrefixTree reference(8);
    for (const auto& row : db.transactions())
      if (!row.empty()) reference.AddTransaction(row);
    const auto expected = Collect(reference, 1);
    for (std::size_t split = 0; split <= db.NumTransactions(); split += 3) {
      IstaPrefixTree left(8);
      IstaPrefixTree right(8);
      for (std::size_t r = 0; r < db.NumTransactions(); ++r) {
        const auto& row = db.transactions()[r];
        if (row.empty()) continue;
        (r < split ? left : right).AddTransaction(row);
      }
      left.Merge(right);
      ASSERT_TRUE(left.ValidateInvariants().ok());
      ASSERT_EQ(Collect(left, 1), expected) << "seed " << seed << " split "
                                            << split;
    }
  }
}

TEST(IstaMergeTest, MergeExactOnPrunedRepositories) {
  // Prune both halves against their true remaining occurrences before
  // merging: every frequent closed set of the union must survive with
  // its exact support (the max-plus merge is exact on pruned trees).
  const Support smin = 3;
  const TransactionDatabase db = GenerateRandomDense(30, 9, 0.45, 4242);
  std::vector<Support> total(9, 0);
  for (const auto& row : db.transactions())
    for (ItemId i : row) ++total[i];

  IstaPrefixTree reference(9);
  for (const auto& row : db.transactions())
    if (!row.empty()) reference.AddTransaction(row);
  std::map<std::vector<ItemId>, Support> expected;
  for (const auto& [items, supp] : Collect(reference, smin))
    expected.emplace(items, supp);

  const std::size_t split = db.NumTransactions() / 2;
  IstaPrefixTree left(9);
  IstaPrefixTree right(9);
  std::vector<Support> left_remaining = total;
  std::vector<Support> right_remaining = total;
  for (std::size_t r = 0; r < db.NumTransactions(); ++r) {
    const auto& row = db.transactions()[r];
    if (row.empty()) continue;
    auto& half = r < split ? left : right;
    auto& remaining = r < split ? left_remaining : right_remaining;
    half.AddTransaction(row);
    for (ItemId i : row) --remaining[i];
  }
  left.Prune(smin, left_remaining);
  right.Prune(smin, right_remaining);
  left.Merge(right);
  EXPECT_TRUE(left.ValidateInvariants().ok());
  EXPECT_EQ(Collect(left, smin), expected);

  // The pruning overload must agree as well, even with a threshold that
  // forces a prune after nearly every replayed set.
  IstaPrefixTree left2(9);
  for (std::size_t r = 0; r < split; ++r) {
    const auto& row = db.transactions()[r];
    if (!row.empty()) left2.AddTransaction(row);
  }
  left2.Prune(smin, left_remaining);
  left2.Merge(right, smin, left_remaining, 4);
  EXPECT_TRUE(left2.ValidateInvariants().ok());
  EXPECT_EQ(Collect(left2, smin), expected);
}

}  // namespace
}  // namespace fim
