// Streaming bench: ingest throughput and snapshot-query latency of the
// StreamMiner (src/stream/) over generated market-basket data.
//
// Two series per configuration:
//   <name>-ingest  seconds = wall time to ingest the whole stream
//                  (queries excluded), i.e. stream length / tx-per-sec
//   <name>-query   seconds = mean latency of one exact snapshot query,
//                  measured over queries evenly spaced during ingest
//
// Configurations: landmark mode plus sliding windows of a fixed ~2048
// transactions chopped into 4/8/16/32 panes — the pane count is the
// freshness/latency knob (more panes = finer expiry granularity, but a
// snapshot folds more per-pane trees). Every query's set count is
// recorded so the exactness cross-check against fim-mine stays cheap to
// run by hand.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "data/generators.h"
#include "data/stats.h"
#include "obs/memory.h"
#include "stream/stream_miner.h"

namespace {

struct Config {
  std::string name;
  std::size_t pane_size = 0;    // 0 = landmark
  std::size_t window_panes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fim;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 0.25;

  // Pattern-dominated baskets (the paper's favourable streaming regime):
  // rows are mostly subsets of shared patterns, so duplicate-run merging
  // bites and the landmark repository stays polynomial. A junk-heavy
  // stream makes the all-supports repository itself blow up — that is a
  // property of exact any-support snapshots, not of the stream driver,
  // and is covered by the ablation benches.
  MarketBasketConfig basket;
  basket.num_items = 200;
  basket.num_transactions =
      static_cast<std::size_t>(80000 * scale) < 4096
          ? 4096
          : static_cast<std::size_t>(80000 * scale);
  basket.avg_transaction_size = 2.0;
  basket.num_patterns = 25;
  basket.pattern_probability = 0.9;
  basket.pattern_keep_probability = 0.85;
  basket.avg_pattern_size = 5;
  basket.seed = 21;
  const TransactionDatabase db = GenerateMarketBasket(basket);
  std::printf("stream bench: %s\n", StatsToString(ComputeStats(db)).c_str());

  constexpr Support kMinSupport = 8;
  constexpr std::size_t kQueries = 32;  // evenly spaced during ingest
  constexpr std::size_t kWindowTx = 2048;

  std::vector<Config> configs;
  configs.push_back({"stream-landmark", 0, 0});
  for (std::size_t panes : {4u, 8u, 16u, 32u}) {
    configs.push_back(
        {"stream-w" + std::to_string(panes), kWindowTx / panes, panes});
  }

  std::vector<bench::JsonPoint> points;
  for (const Config& config : configs) {
    StreamMinerOptions options;
    options.max_items = db.NumItems();
    options.pane_size = config.pane_size;
    options.window_panes = config.window_panes;
    StreamMiner miner(options);

    const std::size_t query_stride = db.NumTransactions() / kQueries;
    double ingest_seconds = 0.0;
    double query_seconds = 0.0;
    std::size_t queries_run = 0;
    std::size_t num_sets = 0;
    CpuTimer cpu;
    for (std::size_t k = 0; k < db.NumTransactions(); ++k) {
      WallTimer ingest;
      if (!miner.AddTransaction(db.transaction(k)).ok()) {
        std::fprintf(stderr, "ingest failed at tx %zu\n", k);
        return 1;
      }
      ingest_seconds += ingest.Seconds();
      if ((k + 1) % query_stride == 0) {
        WallTimer query;
        std::size_t count = 0;
        Status status = miner.Query(
            kMinSupport,
            [&count](std::span<const ItemId>, Support) { ++count; });
        query_seconds += query.Seconds();
        if (!status.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       status.ToString().c_str());
          return 1;
        }
        num_sets = count;
        ++queries_run;
      }
    }
    const double cpu_seconds = cpu.Seconds();
    const double mean_query = query_seconds / static_cast<double>(queries_run);
    const StreamStats stats = miner.Stats();
    std::printf(
        "  %-16s %9.0f tx/s ingest, %8.3f ms/query (%zu queries, %zu sets, "
        "%llu weighted adds, %llu merges, %zu nodes)\n",
        config.name.c_str(),
        static_cast<double>(db.NumTransactions()) / ingest_seconds,
        1000.0 * mean_query, queries_run, num_sets,
        static_cast<unsigned long long>(stats.weighted_additions),
        static_cast<unsigned long long>(stats.snapshot_merges),
        miner.NodeCount());

    // The miner-facing subset of the stream counters rides along in the
    // MinerStats payload of each point.
    MinerStats mapped;
    mapped.weighted_transactions =
        static_cast<std::size_t>(stats.weighted_additions);
    mapped.merge_calls = static_cast<std::size_t>(stats.snapshot_merges);
    mapped.final_nodes = static_cast<std::size_t>(stats.repository_nodes);
    mapped.sets_reported = num_sets;

    // End-of-ingest footprint: the live tree plus every sealed segment
    // (the structures a compressed-segment tier would shrink), next to
    // the process peak RSS.
    const std::size_t accounted = miner.ApproxMemoryUsage().TotalBytes();

    bench::JsonPoint ingest_point;
    ingest_point.algorithm = config.name + "-ingest";
    ingest_point.min_support = kMinSupport;
    ingest_point.seconds = ingest_seconds;
    ingest_point.num_sets = num_sets;
    ingest_point.ran = true;
    ingest_point.cpu_seconds = cpu_seconds;
    ingest_point.stats = mapped;
    ingest_point.has_stats = true;
    ingest_point.has_mem = true;
    ingest_point.mem_accounted_bytes = accounted;
    ingest_point.mem_peak_rss_bytes = PeakRss();
    points.push_back(ingest_point);

    bench::JsonPoint query_point;
    query_point.algorithm = config.name + "-query";
    query_point.min_support = kMinSupport;
    query_point.seconds = mean_query;
    query_point.num_sets = num_sets;
    query_point.ran = true;
    points.push_back(query_point);
  }

  if (!args.json_path.empty()) {
    bench::WriteJson(args.json_path, "stream", scale, points);
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}
