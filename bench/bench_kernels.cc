// Intersection-kernel bench: throughput of every available kernel tier
// (scalar / sse / avx2) plus the galloping kernel over three sweeps —
//
//   balanced   na = nb, lengths 64..262144, ~25% selectivity
//   skew       nb = 65536 fixed, na = nb / ratio for ratios 1..256
//              (crosses the adaptive kGallopRatio cutover)
//   dense      bitset word-AND over universes 4K..1M words vs the
//              sorted-list merge at the TidSet density cutover
//
// Writes the committed BENCH_kernels.json report (schema
// fim-bench-kernels-v1): top level records hardware_threads, the CPU
// feature flags the numbers were measured under, and whether hardware
// counters were readable; each point carries the operation, series
// (kernel tier), shape, the measured million-elements-per-second
// throughput, and a "perf" object with the kernel's IPC and LLC miss
// rate over the timed loop — numbers where perf_event_open works, null
// on denied hosts (VMs without a virtualized PMU, perf_event_paranoid),
// so the schema is identical everywhere. Regenerate with
//
//   ./build/bench/bench_kernels --json=BENCH_kernels.json

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kernels/intersect.h"
#include "obs/perf.h"

namespace {

using namespace fim;
using U32s = std::vector<std::uint32_t>;

U32s SortedUnique(std::size_t size, std::size_t universe, std::uint64_t seed) {
  Rng rng(seed);
  U32s v;
  v.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    v.push_back(static_cast<std::uint32_t>(rng.Uniform(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

struct Point {
  std::string op;       // "intersect" | "gallop" | "bitset_and"
  std::string series;   // kernel tier or "gallop"
  std::size_t na = 0;
  std::size_t nb = 0;
  double density = 0.0;  // dense sweep only
  double seconds_per_call = 0.0;
  double melems_per_sec = 0.0;
  std::size_t out_elems = 0;
  // NaN = not measured (PMU denied); rendered as JSON null, never 0.
  double ipc = std::numeric_limits<double>::quiet_NaN();
  double llc_miss_rate = std::numeric_limits<double>::quiet_NaN();
};

/// One counter group for the whole bench (single-threaded, so one
/// per-thread group covers every timed loop); unavailable on hosts
/// without PMU access, in which case the perf fields stay NaN/null.
obs::PerfCounterSet& BenchCounters() {
  static obs::PerfCounterSet& counters = []() -> obs::PerfCounterSet& {
    auto* set = new obs::PerfCounterSet();
    set->Start();
    return *set;
  }();
  return counters;
}

/// Repeats `call` (which returns the per-call element count) until the
/// measurement is long enough to trust, and returns seconds per call.
/// The final (longest) timed loop's hardware-counter delta lands in
/// `point`'s ipc / llc_miss_rate — measured over exactly the iterations
/// that produced the reported throughput number.
template <typename Fn>
double TimeCall(Point* point, Fn&& call) {
  call();  // warm up (page in buffers, prime the branch predictors)
  obs::PerfCounterSet& counters = BenchCounters();
  std::size_t iters = 1;
  for (;;) {
    const obs::PerfCounts before = counters.Read();
    WallTimer timer;
    for (std::size_t i = 0; i < iters; ++i) call();
    const double seconds = timer.Seconds();
    if (seconds > 0.02 || iters > (std::size_t{1} << 24)) {
      if (counters.available()) {
        const obs::PerfCounts delta = counters.Read().DeltaSince(before);
        point->ipc = delta.Ipc();
        point->llc_miss_rate = delta.LlcMissRate();
      }
      return seconds / static_cast<double>(iters);
    }
    iters *= 4;
  }
}

/// A rate cell: "%.4f" where measured, "null" where the PMU was denied.
void AppendRate(std::ofstream& out, double value) {
  if (std::isfinite(value)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    out << buf;
  } else {
    out << "null";
  }
}

// One bench point, in the shape fim-stats-diff understands: the
// (algorithm, min_support) pair keys the row across reports, "seconds"
// is the timing metric (gated only with --time), and the "counters"
// object carries out_elems — deterministic for fixed seeds, so full
// value diffs pass across regenerations on any machine.
void WritePoint(std::ofstream& out, const Point& p, bool last) {
  out << "    {\"algorithm\": \"" << p.op << "-" << p.series << "-na" << p.na
      << "-nb" << p.nb << "\", \"min_support\": 0, \"op\": \"" << p.op
      << "\", \"series\": \"" << p.series << "\", \"na\": " << p.na
      << ", \"nb\": " << p.nb;
  if (p.density > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", p.density);
    out << ", \"density\": " << buf;
  }
  char sec[32], thr[32];
  std::snprintf(sec, sizeof sec, "%.9f", p.seconds_per_call);
  std::snprintf(thr, sizeof thr, "%.1f", p.melems_per_sec);
  out << ", \"seconds\": " << sec << ", \"melems_per_sec\": " << thr
      << ", \"ran\": true, \"counters\": {\"out_elems\": " << p.out_elems
      << "}, \"perf\": {\"ipc\": ";
  AppendRate(out, p.ipc);
  out << ", \"llc_miss_rate\": ";
  AppendRate(out, p.llc_miss_rate);
  out << "}}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);

  const auto kernels = kernels::AvailableKernels();
  std::printf("kernel bench: %zu tiers available (", kernels.size());
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    std::printf("%s%s", i ? " " : "", kernels[i]->name);
  }
  std::printf("), gallop ratio cutover %zu\n", kernels::kGallopRatio);

  std::vector<Point> points;

  // --- balanced sweep: na = nb, ~25% selectivity ----------------------
  for (const std::size_t n :
       {std::size_t{64}, std::size_t{1024}, std::size_t{16384},
        std::size_t{262144}}) {
    const U32s a = SortedUnique(n, 4 * n, 2 * n + 1);
    const U32s b = SortedUnique(n, 4 * n, 2 * n + 2);
    U32s out(std::min(a.size(), b.size()) + kernels::kIntersectPad);
    for (const kernels::IntersectKernel* kernel : kernels) {
      std::size_t produced = 0;
      Point p{"intersect", kernel->name, a.size(), b.size()};
      const double seconds = TimeCall(&p, [&] {
        produced = kernel->intersect(a.data(), a.size(), b.data(), b.size(),
                                     out.data());
      });
      p.seconds_per_call = seconds;
      p.melems_per_sec =
          static_cast<double>(a.size() + b.size()) / seconds / 1e6;
      p.out_elems = produced;
      points.push_back(p);
      std::printf("  intersect %-6s n=%-7zu %8.1f Melem/s (%zu out)\n",
                  kernel->name, n, p.melems_per_sec, produced);
    }
  }

  // --- skew sweep: fixed long side, shrinking short side --------------
  {
    const std::size_t nb = 65536;
    const U32s b = SortedUnique(nb, 4 * nb, 77);
    for (const std::size_t ratio :
         {std::size_t{1}, std::size_t{4}, std::size_t{16}, std::size_t{64},
          std::size_t{256}}) {
      const U32s a = SortedUnique(nb / ratio, 4 * nb, 78 + ratio);
      U32s out(std::min(a.size(), b.size()) + kernels::kIntersectPad);
      for (const kernels::IntersectKernel* kernel : kernels) {
        std::size_t produced = 0;
        Point p{"intersect", kernel->name, a.size(), b.size()};
        const double seconds = TimeCall(&p, [&] {
          produced = kernel->intersect(a.data(), a.size(), b.data(), b.size(),
                                       out.data());
        });
        p.seconds_per_call = seconds;
        p.melems_per_sec =
            static_cast<double>(a.size() + b.size()) / seconds / 1e6;
        p.out_elems = produced;
        points.push_back(p);
      }
      {
        std::size_t produced = 0;
        Point p{"gallop", "gallop", a.size(), b.size()};
        const double seconds = TimeCall(&p, [&] {
          produced = kernels::GallopIntersect(a.data(), a.size(), b.data(),
                                              b.size(), out.data());
        });
        p.seconds_per_call = seconds;
        // Same denominator as the merges so the series are comparable.
        p.melems_per_sec =
            static_cast<double>(a.size() + b.size()) / seconds / 1e6;
        p.out_elems = produced;
        points.push_back(p);
        std::printf("  skew 1:%-4zu gallop %8.1f Melem/s equivalent\n", ratio,
                    p.melems_per_sec);
      }
    }
  }

  // --- dense sweep: word-AND vs the sorted merge at high density ------
  for (const std::size_t universe :
       {std::size_t{4096}, std::size_t{65536}, std::size_t{1048576}}) {
    const std::size_t words = universe / 64;
    // Half-full bitsets: the regime TidSet switches representations for.
    std::vector<std::uint64_t> wa(words), wb(words), wout(words);
    Rng rng(universe);
    for (auto& w : wa) w = rng.Next() | rng.Next();
    for (auto& w : wb) w = rng.Next() | rng.Next();
    for (const kernels::IntersectKernel* kernel : kernels) {
      std::size_t produced = 0;
      Point p{"bitset_and", kernel->name, universe, universe};
      const double seconds = TimeCall(&p, [&] {
        produced = kernel->bitset_and(wa.data(), wb.data(), words, wout.data());
      });
      p.density = 0.5;
      p.seconds_per_call = seconds;
      p.melems_per_sec = static_cast<double>(2 * universe) / seconds / 1e6;
      p.out_elems = produced;
      points.push_back(p);
      std::printf("  bitset_and %-6s universe=%-8zu %8.1f Melem/s\n",
                  kernel->name, universe, p.melems_per_sec);
    }
    // The sparse merge over the same sets, for the crossover picture.
    const U32s a = SortedUnique(universe / 2, universe, 5);
    const U32s b = SortedUnique(universe / 2, universe, 6);
    U32s out(std::min(a.size(), b.size()) + kernels::kIntersectPad);
    const kernels::IntersectKernel* best = kernels.back();
    std::size_t produced = 0;
    Point p{"intersect", std::string(best->name) + "-dense", a.size(),
            b.size()};
    const double seconds = TimeCall(&p, [&] {
      produced =
          best->intersect(a.data(), a.size(), b.data(), b.size(), out.data());
    });
    p.density = 0.5;
    p.seconds_per_call = seconds;
    p.melems_per_sec = static_cast<double>(a.size() + b.size()) / seconds / 1e6;
    p.out_elems = produced;
    points.push_back(p);
  }

  const std::string json_path =
      args.json_path.empty() ? "BENCH_kernels.json" : args.json_path;
  std::ofstream out(json_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 json_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"schema\": \"fim-bench-kernels-v1\",\n";
  out << "  \"bench\": \"kernels\",\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"cpu\": {\"ssse3\": "
      << (kernels::CpuSupports(kernels::KernelId::kSse) ? "true" : "false")
      << ", \"avx2\": "
      << (kernels::CpuSupports(kernels::KernelId::kAvx2) ? "true" : "false")
      << "},\n";
  out << "  \"perf_counters\": "
      << (BenchCounters().available() ? "true" : "false") << ",\n";
  out << "  \"kernels\": [";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    out << (i ? ", " : "") << "\"" << kernels[i]->name << "\"";
  }
  out << "],\n";
  out << "  \"gallop_ratio\": " << kernels::kGallopRatio << ",\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    WritePoint(out, points[i], i + 1 == points.size());
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu points)\n", json_path.c_str(), points.size());
  return 0;
}
