// Reproduces Table 1: the matrix representation of the paper's example
// transaction database for the table-based Carpenter variant.

#include <cstdio>

#include "carpenter/carpenter.h"
#include "data/transaction_database.h"

int main() {
  using namespace fim;
  const TransactionDatabase db = TransactionDatabase::FromTransactions({
      {0, 1, 2},     // t1: a b c
      {0, 3, 4},     // t2: a d e
      {1, 2, 3},     // t3: b c d
      {0, 1, 2, 3},  // t4: a b c d
      {1, 2},        // t5: b c
      {0, 1, 3},     // t6: a b d
      {3, 4},        // t7: d e
      {2, 3, 4},     // t8: c d e
  });
  const std::vector<Support> matrix = BuildCarpenterMatrix(db);

  const Support expected[8][5] = {
      {4, 5, 5, 0, 0}, {3, 0, 0, 6, 3}, {0, 4, 4, 5, 0}, {2, 3, 3, 4, 0},
      {0, 2, 2, 0, 0}, {1, 1, 0, 3, 0}, {0, 0, 0, 2, 2}, {0, 0, 1, 1, 1},
  };

  std::printf("Table 1 reproduction — matrix representation for the "
              "improved Carpenter variant\n\n");
  std::printf("        a  b  c  d  e\n");
  bool ok = true;
  for (std::size_t k = 0; k < 8; ++k) {
    std::printf("  t%zu  ", k + 1);
    for (std::size_t i = 0; i < 5; ++i) {
      const Support v = matrix[k * 5 + i];
      std::printf(" %2u", v);
      if (v != expected[k][i]) ok = false;
    }
    std::printf("\n");
  }
  std::printf("\n%s: matrix %s the paper's Table 1\n", ok ? "PASS" : "FAIL",
              ok ? "matches" : "does NOT match");
  return ok ? 0 : 1;
}
