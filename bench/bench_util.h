#ifndef FIM_BENCH_BENCH_UTIL_H_
#define FIM_BENCH_BENCH_UTIL_H_

#include <limits>
#include <string>
#include <vector>

#include "api/miner.h"
#include "data/transaction_database.h"
#include "obs/perf.h"

namespace fim::bench {

/// One figure reproduction = a support sweep over a set of algorithms.
struct SweepOptions {
  std::vector<Algorithm> algorithms;
  std::vector<Support> supports;  // processed as given; descending = paper order
  /// Once an algorithm exceeds this budget on a point, the remaining
  /// (lower) supports are skipped for it and rendered as DNF — the same
  /// effect as the truncated curves in the paper's figures.
  double point_time_limit_seconds = 60.0;
};

struct SweepPoint {
  Algorithm algorithm = Algorithm::kIsta;
  Support min_support = 0;
  double seconds = 0.0;
  std::size_t num_sets = 0;
  bool ran = false;  // false: skipped after the algorithm hit the limit
  double cpu_seconds = 0.0;  // driving thread's CPU time of the run
  MinerStats stats;          // per-miner counters of the run (ran only)
  /// Hardware counters over the mining call; hw_valid is false where the
  /// host denies the PMU (the bench still runs, the report carries null).
  bool hw_valid = false;
  obs::PerfCounts perf;
};

struct SweepResult {
  std::vector<SweepPoint> points;

  const SweepPoint* Find(Algorithm algorithm, Support min_support) const;
};

/// Runs every (algorithm, support) cell, timing the full mining call.
/// Verifies that all algorithms that ran report the same number of closed
/// sets per support and prints a loud warning otherwise.
SweepResult RunSweep(const TransactionDatabase& db,
                     const SweepOptions& options);

/// Paper-figure-style table: one row per support, one column per
/// algorithm, cells in seconds (log10 in parentheses), "DNF" when
/// skipped. Also prints the closed-set count per support row.
void PrintSweepTable(const std::string& title, const SweepOptions& options,
                     const SweepResult& result);

/// CSV with columns algorithm,min_support,seconds,num_sets,ran.
void WriteCsv(const std::string& path, const SweepResult& result);

/// One timing point of a JSON bench report. `algorithm` is a free-form
/// series label (e.g. "ista" or "ista-4t"), so benches that sweep
/// something other than the Algorithm enum — thread counts, ablation
/// variants — can use the same report format.
struct JsonPoint {
  std::string algorithm;
  Support min_support = 0;
  double seconds = 0.0;
  std::size_t num_sets = 0;
  bool ran = false;
  /// Optional observability payload: emitted only when set, so reports
  /// without it keep the historical point format byte for byte.
  double cpu_seconds = 0.0;  // emitted when > 0
  MinerStats stats;          // emitted when has_stats
  bool has_stats = false;
  /// Hardware-counter payload: with has_perf the point carries a "perf"
  /// object whose ipc / llc_miss_rate members are numbers where
  /// measured and null where the host denied the PMU — present-but-null
  /// keeps the schema identical across hosts, and fim-stats-diff skips
  /// the nulls instead of comparing fake zeros.
  bool has_perf = false;
  double perf_ipc = std::numeric_limits<double>::quiet_NaN();
  double perf_llc_miss_rate = std::numeric_limits<double>::quiet_NaN();
  /// Memory payload: with has_mem the point carries a "mem" object
  /// attributing the run's footprint — the self-measured breakdown sum
  /// (MemoryBreakdown::AccountedBytes) next to the process peak RSS, so
  /// committed bench reports say *which* bytes a compression tier moved,
  /// and fim-stats-diff gates both under its bytes-class tolerances.
  bool has_mem = false;
  std::size_t mem_accounted_bytes = 0;
  std::size_t mem_peak_rss_bytes = 0;
};

/// Writes `{"bench": ..., "scale": ..., "hardware_threads": ...,
/// "peak_rss_bytes": ..., "points": [{"algorithm", "min_support",
/// "seconds", "num_sets", "ran"}, ...]}`. Points carry "cpu_seconds"
/// when measured, a "counters" object (the non-zero MinerStats
/// entries) when mined with stats, and a "mem" object when measured
/// with a memory breakdown. `hardware_threads` records the
/// machine's concurrency so speedup numbers are interpretable (a 1-core
/// container cannot show wall-clock speedup no matter how well a
/// parallel run scales).
void WriteJson(const std::string& path, const std::string& bench, double scale,
               const std::vector<JsonPoint>& points);

/// Same report for a figure sweep: points are labeled AlgorithmName(...).
void WriteJson(const std::string& path, const std::string& bench, double scale,
               const SweepResult& result);

/// Command-line arguments shared by the figure benches:
///   --scale=<f>   generator scale factor (default per bench)
///   --limit=<s>   per-point time limit in seconds
///   --csv=<path>  also write the sweep as CSV
///   --json=<path> also write the sweep as a JSON report
///   --full        shorthand for --scale=1.0
struct BenchArgs {
  double scale = -1.0;  // < 0: keep the bench's default
  double limit = -1.0;
  std::string csv_path;
  std::string json_path;
};

BenchArgs ParseBenchArgs(int argc, char** argv);

}  // namespace fim::bench

#endif  // FIM_BENCH_BENCH_UTIL_H_
