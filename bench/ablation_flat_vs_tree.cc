// Ablation for the paper's §5 claim that the flat-repository cumulative
// scheme of Mielikäinen (FIMI'03) is vastly slower (often >100x) than
// IsTa's prefix-tree repository. The 2x2 design isolates the two
// ingredients: the repository data structure (flat map vs prefix tree)
// and item elimination (§3.2). Mielikäinen's original corresponds to
// flat without elimination; full IsTa is tree with elimination.

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "cumulative/flat_cumulative.h"
#include "data/profiles.h"
#include "data/stats.h"
#include "ista/ista.h"

namespace {

using namespace fim;

double TimeTree(const TransactionDatabase& db, Support smin, bool elim) {
  IstaOptions options;
  options.min_support = smin;
  options.item_elimination = elim;
  std::size_t count = 0;
  WallTimer timer;
  MineClosedIsta(db, options,
                 [&count](std::span<const ItemId>, Support) { ++count; });
  return timer.Seconds();
}

double TimeFlat(const TransactionDatabase& db, Support smin, bool elim) {
  FlatCumulativeOptions options;
  options.min_support = smin;
  options.item_elimination = elim;
  std::size_t count = 0;
  WallTimer timer;
  MineClosedFlatCumulative(
      db, options, [&count](std::span<const ItemId>, Support) { ++count; });
  return timer.Seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 0.1;

  std::printf("Ablation: repository structure (prefix tree vs flat) x item "
              "elimination,\ncumulative intersection scheme, yeast-like "
              "scale=%.2f\n", scale);
  const TransactionDatabase db = MakeYeastLike(scale, 42);
  std::printf("data: %s\n\n", StatsToString(ComputeStats(db)).c_str());

  for (Support smin : {12u, 8u}) {
    const double tree_elim = TimeTree(db, smin, true);
    const double tree_plain = TimeTree(db, smin, false);
    const double flat_elim = TimeFlat(db, smin, true);
    const double flat_plain = TimeFlat(db, smin, false);
    std::printf("smin=%u\n", smin);
    std::printf("  %-34s %10.3fs\n", "prefix tree + elimination (IsTa)",
                tree_elim);
    std::printf("  %-34s %10.3fs\n", "prefix tree, no elimination",
                tree_plain);
    std::printf("  %-34s %10.3fs\n", "flat repo + elimination", flat_elim);
    std::printf("  %-34s %10.3fs\n", "flat repo, no elimination ([14])",
                flat_plain);
    if (tree_elim > 0 && tree_plain > 0) {
      std::printf("  => structure alone: %.1fx; full IsTa vs [14]: %.1fx\n\n",
                  flat_plain / tree_plain, flat_plain / tree_elim);
    }
    std::fflush(stdout);
  }
  return 0;
}
