// Micro benchmarks of the shared kernels (google-benchmark): sorted-set
// intersection, subset test, Carpenter matrix construction, FP-tree
// insertion.

#include <benchmark/benchmark.h>

#include "carpenter/carpenter.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/itemset.h"
#include "enumeration/fptree.h"

namespace {

using namespace fim;

std::vector<ItemId> RandomSorted(std::size_t size, std::size_t universe,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<ItemId> v;
  v.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    v.push_back(static_cast<ItemId>(rng.Uniform(universe)));
  }
  NormalizeItems(&v);
  return v;
}

void BM_IntersectSorted(benchmark::State& state) {
  const auto a = RandomSorted(static_cast<std::size_t>(state.range(0)),
                              100000, 3);
  const auto b = RandomSorted(static_cast<std::size_t>(state.range(0)),
                              100000, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectSorted(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_IntersectSorted)->Arg(100)->Arg(1000)->Arg(10000);

void BM_IsSubsetSorted(benchmark::State& state) {
  const auto b = RandomSorted(static_cast<std::size_t>(state.range(0)),
                              100000, 5);
  auto a = b;
  a.resize(a.size() / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSubsetSorted(a, b));
  }
}
BENCHMARK(BM_IsSubsetSorted)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BuildCarpenterMatrix(benchmark::State& state) {
  const auto db = GenerateRandomDense(
      64, static_cast<std::size_t>(state.range(0)), 0.1, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildCarpenterMatrix(db));
  }
}
BENCHMARK(BM_BuildCarpenterMatrix)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FpTreeInsert(benchmark::State& state) {
  const auto db = GenerateRandomDense(
      static_cast<std::size_t>(state.range(0)), 200, 0.1, 13);
  for (auto _ : state) {
    FpTree tree(db.NumItems());
    for (const auto& t : db.transactions()) tree.Insert(t, 1);
    benchmark::DoNotOptimize(tree.NodeCount());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.NumTransactions()));
}
BENCHMARK(BM_FpTreeInsert)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
