// Ablation for the item-elimination pruning of §3.1.1 (Carpenter) and
// §3.2 (IsTa): mining time with and without the optimization. The paper
// reports "a considerable speed-up" from it.

#include <cstdio>

#include "bench_util.h"
#include "carpenter/carpenter.h"
#include "common/timer.h"
#include "data/profiles.h"
#include "data/stats.h"
#include "ista/ista.h"

namespace {

using namespace fim;

double TimeIsta(const TransactionDatabase& db, Support smin, bool elim) {
  IstaOptions options;
  options.min_support = smin;
  options.item_elimination = elim;
  std::size_t count = 0;
  WallTimer timer;
  MineClosedIsta(db, options,
                 [&count](std::span<const ItemId>, Support) { ++count; });
  return timer.Seconds();
}

double TimeCarpenter(const TransactionDatabase& db, Support smin, bool elim,
                     bool table) {
  CarpenterOptions options;
  options.min_support = smin;
  options.item_elimination = elim;
  std::size_t count = 0;
  auto sink = [&count](std::span<const ItemId>, Support) { ++count; };
  WallTimer timer;
  if (table) {
    MineClosedCarpenterTable(db, options, sink);
  } else {
    MineClosedCarpenterLists(db, options, sink);
  }
  return timer.Seconds();
}

void Row(const char* name, double with, double without) {
  std::printf("  %-18s with: %8.3fs   without: %8.3fs   speedup: %5.1fx\n",
              name, with, without, with > 0 ? without / with : 0.0);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  // Without item elimination the repository holds EVERY closed set of
  // the unfiltered database, so the "off" configuration explodes in both
  // time and memory well before the "on" configuration feels anything —
  // which is the point of the ablation, but it forces small scales here.
  const double scale = args.scale > 0 ? args.scale : 0.06;

  std::printf("Ablation: item-elimination pruning on/off\n");
  {
    const TransactionDatabase db = MakeYeastLike(scale, 42);
    const Support smin = 12;
    std::printf("\nyeast-like scale=%.2f, smin=%u (%s)\n", scale, smin,
                StatsToString(ComputeStats(db)).c_str());
    std::fflush(stdout);
    Row("ista", TimeIsta(db, smin, true), TimeIsta(db, smin, false));
    Row("carpenter-table", TimeCarpenter(db, smin, true, true),
        TimeCarpenter(db, smin, false, true));
    Row("carpenter-lists", TimeCarpenter(db, smin, true, false),
        TimeCarpenter(db, smin, false, false));
  }
  {
    const TransactionDatabase db = MakeThrombinLike(scale, 44);
    const Support smin = 28;
    std::printf("\nthrombin-like scale=%.2f, smin=%u (%s)\n", scale, smin,
                StatsToString(ComputeStats(db)).c_str());
    std::fflush(stdout);
    Row("ista", TimeIsta(db, smin, true), TimeIsta(db, smin, false));
    Row("carpenter-table", TimeCarpenter(db, smin, true, true),
        TimeCarpenter(db, smin, false, true));
    Row("carpenter-lists", TimeCarpenter(db, smin, true, false),
        TimeCarpenter(db, smin, false, false));
  }
  return 0;
}
