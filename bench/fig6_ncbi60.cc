// Reproduces Figure 6: log(time) vs minimum support on the NCBI60 cancer
// cell line stand-in (64 very dense transactions). The paper shows only
// the intersection miners here because FP-close and LCM crashed or hung
// on this data; we include them with the time limit so they show up as
// DNF once they exceed it.

#include <cstdio>

#include "bench_util.h"
#include "data/profiles.h"
#include "data/stats.h"

int main(int argc, char** argv) {
  using namespace fim;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 0.5;
  const double limit = args.limit > 0 ? args.limit : 30.0;

  std::printf("Figure 6 reproduction: ncbi60-like data, scale=%.2f\n", scale);
  const TransactionDatabase db = MakeNcbi60Like(scale, 43);
  std::printf("data: %s\n", StatsToString(ComputeStats(db)).c_str());

  bench::SweepOptions options;
  options.algorithms = {Algorithm::kIsta, Algorithm::kCarpenterTable,
                        Algorithm::kCarpenterLists, Algorithm::kFpClose,
                        Algorithm::kLcm};
  // Our synthetic stand-in reaches the paper's difficulty window at
  // supports closer to the transaction count (see EXPERIMENTS.md).
  for (Support s = 63; s >= 56; --s) options.supports.push_back(s);
  options.point_time_limit_seconds = limit;

  const bench::SweepResult result = bench::RunSweep(db, options);
  bench::PrintSweepTable("Figure 6 — ncbi60 (synthetic stand-in)", options,
                         result);
  if (!args.csv_path.empty()) bench::WriteCsv(args.csv_path, result);
  if (!args.json_path.empty()) {
    bench::WriteJson(args.json_path, "fig6_ncbi60", scale, result);
  }
  return 0;
}
