// Reproduces Figure 5: log(time) vs minimum support on the baker's-yeast
// compendium stand-in (300 condition-transactions, many over/under-
// expression items). Series: FP-close, LCM, IsTa, Carpenter (table),
// Carpenter (lists).

#include <cstdio>

#include "bench_util.h"
#include "data/profiles.h"
#include "data/stats.h"

int main(int argc, char** argv) {
  using namespace fim;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 0.5;
  const double limit = args.limit > 0 ? args.limit : 60.0;

  std::printf("Figure 5 reproduction: yeast-like data, scale=%.2f\n", scale);
  const TransactionDatabase db = MakeYeastLike(scale, 42);
  std::printf("data: %s\n", StatsToString(ComputeStats(db)).c_str());

  bench::SweepOptions options;
  options.algorithms = {Algorithm::kFpClose, Algorithm::kLcm,
                        Algorithm::kIsta, Algorithm::kCarpenterTable,
                        Algorithm::kCarpenterLists};
  for (Support s = 34; s >= 8; s -= 2) options.supports.push_back(s);
  options.point_time_limit_seconds = limit;

  const bench::SweepResult result = bench::RunSweep(db, options);
  bench::PrintSweepTable("Figure 5 — yeast (synthetic stand-in)", options,
                         result);
  if (!args.csv_path.empty()) bench::WriteCsv(args.csv_path, result);
  if (!args.json_path.empty()) {
    bench::WriteJson(args.json_path, "fig5_yeast", scale, result);
  }
  return 0;
}
