// Reproduces Figure 8: log(time) vs minimum support on the transposed
// BMS-WebView-1 stand-in (a power-law click-stream basket database,
// transposed so items become the transactions). Series: FP-close, LCM,
// IsTa, Carpenter (table), Carpenter (lists).

#include <cstdio>

#include "bench_util.h"
#include "data/profiles.h"
#include "data/stats.h"

int main(int argc, char** argv) {
  using namespace fim;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 1.0;
  // 4s: both enumeration miners hit a cliff (minutes, gigabytes) between
  // smin 4 and 2 on this shape while their smin=4 points take only a few
  // seconds — those points must already trigger the DNF cutoff,
  // mirroring the curves that leave the plot area in the paper.
  const double limit = args.limit > 0 ? args.limit : 4.0;

  std::printf("Figure 8 reproduction: transposed webview-like data, "
              "scale=%.2f\n", scale);
  const TransactionDatabase db = MakeWebviewLike(scale, 45);
  std::printf("data: %s\n", StatsToString(ComputeStats(db)).c_str());

  bench::SweepOptions options;
  options.algorithms = {Algorithm::kFpClose, Algorithm::kLcm,
                        Algorithm::kIsta, Algorithm::kCarpenterTable,
                        Algorithm::kCarpenterLists};
  for (Support s = 20; s >= 2; s -= 2) options.supports.push_back(s);
  options.point_time_limit_seconds = limit;

  const bench::SweepResult result = bench::RunSweep(db, options);
  bench::PrintSweepTable("Figure 8 — webview transposed (synthetic stand-in)",
                         options, result);
  if (!args.csv_path.empty()) bench::WriteCsv(args.csv_path, result);
  if (!args.json_path.empty()) {
    bench::WriteJson(args.json_path, "fig8_webview", scale, result);
  }
  return 0;
}
