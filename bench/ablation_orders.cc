// Ablation for §3.4: the impact of item code assignment and transaction
// processing order on IsTa. The paper found ascending-frequency item
// codes combined with size-ascending transaction order fastest.

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "data/profiles.h"
#include "data/stats.h"
#include "ista/ista.h"

int main(int argc, char** argv) {
  using namespace fim;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 0.25;

  std::printf("Ablation: item/transaction orders for IsTa, yeast-like "
              "scale=%.2f\n", scale);
  const TransactionDatabase db = MakeYeastLike(scale, 42);
  std::printf("data: %s\n", StatsToString(ComputeStats(db)).c_str());

  struct Named {
    const char* name;
    ItemOrder item_order;
  };
  struct NamedTx {
    const char* name;
    TransactionOrder tx_order;
  };
  const Named item_orders[] = {
      {"item:none", ItemOrder::kNone},
      {"item:freq-asc", ItemOrder::kFrequencyAscending},
      {"item:freq-desc", ItemOrder::kFrequencyDescending},
  };
  const NamedTx tx_orders[] = {
      {"tx:none", TransactionOrder::kNone},
      {"tx:size-asc", TransactionOrder::kSizeAscending},
      {"tx:size-desc", TransactionOrder::kSizeDescending},
  };

  const Support smin = 10;
  std::printf("\nIsTa total time (smin=%u), peak tree nodes:\n%16s", smin, "");
  for (const auto& tx : tx_orders) std::printf(" %24s", tx.name);
  std::printf("\n");
  for (const auto& item : item_orders) {
    std::printf("%16s", item.name);
    for (const auto& tx : tx_orders) {
      IstaOptions options;
      options.min_support = smin;
      options.item_order = item.item_order;
      options.transaction_order = tx.tx_order;
      IstaStats stats;
      std::size_t count = 0;
      WallTimer timer;
      Status status = MineClosedIsta(
          db, options, [&count](std::span<const ItemId>, Support) { ++count; },
          &stats);
      char cell[64];
      if (status.ok()) {
        std::snprintf(cell, sizeof(cell), "%8.3fs / %8zu nodes",
                      timer.Seconds(), stats.peak_nodes);
      } else {
        std::snprintf(cell, sizeof(cell), "ERROR");
      }
      std::printf(" %24s", cell);
    }
    std::printf("\n");
  }
  return 0;
}
