// Scaling bench of the sharded multi-threaded IsTa driver: wall time of
// the identical mining call at 1/2/4/8 worker threads over generated
// market-basket data, from a small junk-heavy config up to a large
// pattern-dominated one (millions of rows collapsing onto a few thousand
// weighted transactions — the regime where the parallel preprocessing and
// shard mining pay off). Every run is cross-checked to report the same
// closed-set count as the sequential run; the parallel driver is
// bit-identical by construction, this guards the bench itself.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "data/generators.h"
#include "data/stats.h"
#include "ista/ista.h"
#include "obs/memory.h"

namespace {

struct Config {
  const char* name;
  fim::MarketBasketConfig basket;
  fim::Support min_support;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fim;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 1.0;
  const double limit = args.limit > 0 ? args.limit : 120.0;

  std::vector<Config> configs;
  {
    // Junk-heavy baskets: weak deduplication, repository dominated by
    // low-support sets. Hostile to repository merging — kept in the bench
    // so regressions of the unfavourable case stay visible.
    Config c;
    c.name = "basket-junky";
    c.basket.num_items = 100;
    c.basket.num_transactions = 3000;
    c.basket.avg_transaction_size = 6.0;
    c.basket.num_patterns = 20;
    c.basket.avg_pattern_size = 4;
    c.basket.seed = 7;
    c.min_support = 30;
    configs.push_back(c);
  }
  {
    // Mid-size pattern-dominated stream (rows are pure pattern subsets).
    Config c;
    c.name = "basket-patterns";
    c.basket.num_items = 200;
    c.basket.num_transactions = 200000;
    c.basket.avg_transaction_size = 1.0;
    c.basket.num_patterns = 20;
    c.basket.pattern_probability = 1.0;
    c.basket.pattern_keep_probability = 0.9;
    c.basket.avg_pattern_size = 6;
    c.basket.seed = 7;
    c.min_support = 100;
    configs.push_back(c);
  }
  {
    // Large pattern-dominated stream: 2M rows deduplicate to a few
    // thousand weighted transactions, so recoding/sorting and the shard
    // mining — the phases the parallel driver spreads across workers —
    // dominate the wall time.
    Config c;
    c.name = "basket-large";
    c.basket.num_items = 200;
    c.basket.num_transactions = 2000000;
    c.basket.avg_transaction_size = 1.0;
    c.basket.num_patterns = 20;
    c.basket.pattern_probability = 1.0;
    c.basket.pattern_keep_probability = 0.9;
    c.basket.avg_pattern_size = 6;
    c.basket.seed = 7;
    c.min_support = 500;
    configs.push_back(c);
  }

  std::vector<bench::JsonPoint> points;
  for (Config& config : configs) {
    config.basket.num_transactions = static_cast<std::size_t>(
        static_cast<double>(config.basket.num_transactions) * scale);
    const TransactionDatabase db = GenerateMarketBasket(config.basket);
    std::printf("\n== %s (scale=%.2f, smin=%u) ==\n", config.name, scale,
                config.min_support);
    std::printf("data: %s\n", StatsToString(ComputeStats(db)).c_str());

    double sequential_seconds = 0.0;
    std::size_t sequential_sets = 0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      IstaOptions options;
      options.min_support = config.min_support;
      options.num_threads = threads;
      obs::MemoryBreakdown memory;
      options.memory = &memory;
      IstaStats stats;
      std::size_t sets = 0;
      WallTimer timer;
      CpuTimer cpu_timer;
      const Status status = MineClosedIsta(
          db, options, [&sets](std::span<const ItemId>, Support) { ++sets; },
          &stats);
      const double seconds = timer.Seconds();
      // The miner records only what it builds; the generated database is
      // the bench's own footprint, so add it to the attributed total.
      memory.Record(db.ApproxMemoryUsage());
      bench::JsonPoint point;
      point.algorithm = "ista-" + std::to_string(threads) + "t";
      point.min_support = config.min_support;
      point.seconds = seconds;
      point.num_sets = sets;
      point.ran = status.ok();
      point.cpu_seconds = cpu_timer.Seconds();
      point.stats = stats;
      point.has_stats = status.ok();
      point.has_mem = status.ok();
      point.mem_accounted_bytes = memory.AccountedBytes();
      point.mem_peak_rss_bytes = PeakRss();
      points.push_back(point);
      if (!status.ok()) {
        std::printf("  t=%u: ERROR %s\n", threads, status.ToString().c_str());
        continue;
      }
      if (threads == 1) {
        sequential_seconds = seconds;
        sequential_sets = sets;
      } else if (sets != sequential_sets) {
        std::printf("WARNING: thread count %u changed the closed-set count "
                    "(%zu vs %zu)!\n",
                    threads, sets, sequential_sets);
      }
      std::printf(
          "  t=%u: %8.3fs  speedup=%.2fx  sets=%zu  wtx=%zu  peak=%zu "
          " merges=%zu  prunes=%zu\n",
          threads, seconds, seconds > 0 ? sequential_seconds / seconds : 0.0,
          sets, stats.weighted_transactions, stats.peak_nodes,
          stats.merge_calls, stats.prune_calls);
      if (seconds > limit) {
        std::printf("  (over --limit=%.0fs, stopping this config)\n", limit);
        break;
      }
    }
  }

  if (!args.csv_path.empty()) {
    std::ofstream out(args.csv_path, std::ios::trunc);
    out << "algorithm,min_support,seconds,num_sets,ran\n";
    for (const auto& p : points) {
      out << p.algorithm << ',' << p.min_support << ',' << p.seconds << ','
          << p.num_sets << ',' << (p.ran ? 1 : 0) << '\n';
    }
  }
  if (!args.json_path.empty()) {
    bench::WriteJson(args.json_path, "parallel_ista", scale, points);
  }
  return 0;
}
