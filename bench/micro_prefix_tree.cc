// Micro benchmarks of the IsTa prefix tree and the Carpenter repository
// (google-benchmark): transaction insertion + intersection throughput,
// repository insert/lookup, and the report pass.

#include <benchmark/benchmark.h>

#include "carpenter/repository.h"
#include "data/generators.h"
#include "ista/prefix_tree.h"

namespace {

using namespace fim;

TransactionDatabase MakeDb(std::size_t num_transactions,
                           std::size_t num_items, double density,
                           uint64_t seed) {
  return GenerateRandomDense(num_transactions, num_items, density, seed);
}

void BM_IstaAddTransaction(benchmark::State& state) {
  const auto db = MakeDb(static_cast<std::size_t>(state.range(0)), 200, 0.1,
                         7);
  for (auto _ : state) {
    IstaPrefixTree tree(db.NumItems());
    for (const auto& t : db.transactions()) tree.AddTransaction(t);
    benchmark::DoNotOptimize(tree.NodeCount());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.NumTransactions()));
}
BENCHMARK(BM_IstaAddTransaction)->Arg(64)->Arg(256)->Arg(1024);

void BM_IstaReport(benchmark::State& state) {
  const auto db = MakeDb(256, 200, 0.1, 7);
  IstaPrefixTree tree(db.NumItems());
  for (const auto& t : db.transactions()) tree.AddTransaction(t);
  for (auto _ : state) {
    std::size_t count = 0;
    tree.Report(static_cast<Support>(state.range(0)),
                [&count](std::span<const ItemId>, Support) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_IstaReport)->Arg(2)->Arg(8)->Arg(32);

void BM_IstaPrune(benchmark::State& state) {
  const auto db = MakeDb(256, 200, 0.1, 7);
  const auto remaining = std::vector<Support>(db.NumItems(), 0);
  for (auto _ : state) {
    state.PauseTiming();
    IstaPrefixTree tree(db.NumItems());
    for (const auto& t : db.transactions()) tree.AddTransaction(t);
    state.ResumeTiming();
    tree.Prune(static_cast<Support>(state.range(0)), remaining);
    benchmark::DoNotOptimize(tree.NodeCount());
  }
}
BENCHMARK(BM_IstaPrune)->Arg(2)->Arg(16);

void BM_RepositoryInsert(benchmark::State& state) {
  const auto db = MakeDb(static_cast<std::size_t>(state.range(0)), 300, 0.05,
                         11);
  for (auto _ : state) {
    ClosedSetRepository repo(db.NumItems());
    for (const auto& t : db.transactions()) {
      benchmark::DoNotOptimize(repo.InsertIfAbsent(t));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.NumTransactions()));
}
BENCHMARK(BM_RepositoryInsert)->Arg(256)->Arg(2048);

void BM_RepositoryContains(benchmark::State& state) {
  const auto db = MakeDb(1024, 300, 0.05, 11);
  ClosedSetRepository repo(db.NumItems());
  for (const auto& t : db.transactions()) repo.InsertIfAbsent(t);
  for (auto _ : state) {
    for (const auto& t : db.transactions()) {
      benchmark::DoNotOptimize(repo.Contains(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RepositoryContains);

}  // namespace

BENCHMARK_MAIN();
