#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <thread>

#include "common/timer.h"

namespace fim::bench {

const SweepPoint* SweepResult::Find(Algorithm algorithm,
                                    Support min_support) const {
  for (const auto& p : points) {
    if (p.algorithm == algorithm && p.min_support == min_support) return &p;
  }
  return nullptr;
}

SweepResult RunSweep(const TransactionDatabase& db,
                     const SweepOptions& options) {
  SweepResult result;
  for (Algorithm algorithm : options.algorithms) {
    bool over_budget = false;
    for (Support smin : options.supports) {
      SweepPoint point;
      point.algorithm = algorithm;
      point.min_support = smin;
      if (!over_budget) {
        MinerOptions miner;
        miner.algorithm = algorithm;
        miner.min_support = smin;
        std::size_t count = 0;
        // One counter group per point: the deltas cover exactly the
        // mining call, not the generator or the previous point.
        obs::PerfCounterSet counters;
        counters.Start();
        const obs::PerfCounts before = counters.Read();
        WallTimer timer;
        CpuTimer cpu_timer;
        Status status = MineClosed(
            db, miner,
            [&count](std::span<const ItemId>, Support) { ++count; },
            &point.stats);
        point.seconds = timer.Seconds();
        point.cpu_seconds = cpu_timer.Seconds();
        if (counters.available()) {
          point.perf = counters.Read().DeltaSince(before);
          point.hw_valid = true;
        }
        if (status.ok()) {
          point.ran = true;
          point.num_sets = count;
          std::fprintf(stderr, "  [%s smin=%u: %.3fs, %zu sets]\n",
                       AlgorithmName(algorithm), smin, point.seconds, count);
        } else {
          std::fprintf(stderr, "  [%s smin=%u: ERROR %s]\n",
                       AlgorithmName(algorithm), smin,
                       status.ToString().c_str());
        }
        if (point.seconds > options.point_time_limit_seconds) {
          over_budget = true;
        }
      }
      result.points.push_back(point);
    }
  }

  // Cross-check: every algorithm that ran a support must agree on the
  // number of closed sets.
  std::map<Support, std::set<std::size_t>> counts;
  for (const auto& p : result.points) {
    if (p.ran) counts[p.min_support].insert(p.num_sets);
  }
  for (const auto& [smin, distinct] : counts) {
    if (distinct.size() > 1) {
      std::fprintf(stderr,
                   "WARNING: algorithms disagree on closed-set count at "
                   "smin=%u!\n",
                   smin);
    }
  }
  return result;
}

void PrintSweepTable(const std::string& title, const SweepOptions& options,
                     const SweepResult& result) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%8s %12s", "smin", "closed-sets");
  for (Algorithm a : options.algorithms) {
    std::printf(" %18s", AlgorithmName(a));
  }
  std::printf("\n");
  for (Support smin : options.supports) {
    std::size_t sets = 0;
    for (Algorithm a : options.algorithms) {
      const SweepPoint* p = result.Find(a, smin);
      if (p != nullptr && p->ran) {
        sets = p->num_sets;
        break;
      }
    }
    std::printf("%8u %12zu", smin, sets);
    for (Algorithm a : options.algorithms) {
      const SweepPoint* p = result.Find(a, smin);
      if (p == nullptr || !p->ran) {
        std::printf(" %18s", "DNF");
      } else {
        const double log10s =
            p->seconds > 0 ? std::log10(p->seconds) : -4.0;
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%9.3fs (%+.1f)", p->seconds,
                      log10s);
        std::printf(" %18s", cell);
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void WriteCsv(const std::string& path, const SweepResult& result) {
  std::ofstream out(path, std::ios::trunc);
  out << "algorithm,min_support,seconds,num_sets,ran\n";
  for (const auto& p : result.points) {
    out << AlgorithmName(p.algorithm) << ',' << p.min_support << ','
        << p.seconds << ',' << p.num_sets << ',' << (p.ran ? 1 : 0) << '\n';
  }
}

/// `value` or `null` — a rate the host could not measure must stay
/// distinguishable from a measured 0 in the committed reports.
static void AppendNumberOrNull(std::ofstream& out, double value) {
  if (std::isfinite(value)) {
    out << value;
  } else {
    out << "null";
  }
}

void WriteJson(const std::string& path, const std::string& bench, double scale,
               const std::vector<JsonPoint>& points) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"" << bench << "\",\n  \"scale\": " << scale
      << ",\n  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n  \"peak_rss_bytes\": " << PeakRss() << ",\n  \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const JsonPoint& p = points[i];
    out << (i == 0 ? "" : ",") << "\n    {\"algorithm\": \"" << p.algorithm
        << "\", \"min_support\": " << p.min_support
        << ", \"seconds\": " << p.seconds << ", \"num_sets\": " << p.num_sets
        << ", \"ran\": " << (p.ran ? "true" : "false");
    // The observability payload is appended only when present, so legacy
    // points keep the historical format byte for byte.
    if (p.cpu_seconds > 0.0) out << ", \"cpu_seconds\": " << p.cpu_seconds;
    if (p.has_perf) {
      out << ", \"perf\": {\"ipc\": ";
      AppendNumberOrNull(out, p.perf_ipc);
      out << ", \"llc_miss_rate\": ";
      AppendNumberOrNull(out, p.perf_llc_miss_rate);
      out << "}";
    }
    if (p.has_mem) {
      out << ", \"mem\": {\"accounted_bytes\": " << p.mem_accounted_bytes
          << ", \"peak_rss_bytes\": " << p.mem_peak_rss_bytes << "}";
    }
    if (p.has_stats) {
      out << ", \"counters\": {";
      bool first = true;
      for (const auto& [name, value] : p.stats.Counters()) {
        if (value == 0) continue;  // bench reports carry what happened
        out << (first ? "" : ", ") << '"' << name << "\": " << value;
        first = false;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

void WriteJson(const std::string& path, const std::string& bench, double scale,
               const SweepResult& result) {
  std::vector<JsonPoint> points;
  points.reserve(result.points.size());
  for (const auto& p : result.points) {
    JsonPoint point;
    point.algorithm = AlgorithmName(p.algorithm);
    point.min_support = p.min_support;
    point.seconds = p.seconds;
    point.num_sets = p.num_sets;
    point.ran = p.ran;
    point.cpu_seconds = p.cpu_seconds;
    point.stats = p.stats;
    point.has_stats = p.ran;
    point.has_perf = p.ran;
    if (p.hw_valid) {
      point.perf_ipc = p.perf.Ipc();
      point.perf_llc_miss_rate = p.perf.LlcMissRate();
    }
    points.push_back(std::move(point));
  }
  WriteJson(path, bench, scale, points);
}

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      args.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--limit=", 8) == 0) {
      args.limit = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      args.csv_path = arg + 6;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      args.json_path = arg + 7;
    } else if (std::strcmp(arg, "--full") == 0) {
      args.scale = 1.0;
    } else {
      std::fprintf(stderr, "ignoring unknown argument '%s'\n", arg);
    }
  }
  return args;
}

}  // namespace fim::bench
