// Reproduces Figure 7: log(time) vs minimum support on the Thrombin
// (KDD Cup 2001) subset stand-in: 64 sparse binary records over very many
// features. Series: FP-close, LCM, IsTa, Carpenter (table), Carpenter
// (lists).

#include <cstdio>

#include "bench_util.h"
#include "data/profiles.h"
#include "data/stats.h"

int main(int argc, char** argv) {
  using namespace fim;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 0.3;
  const double limit = args.limit > 0 ? args.limit : 30.0;

  std::printf("Figure 7 reproduction: thrombin-like data, scale=%.2f\n",
              scale);
  const TransactionDatabase db = MakeThrombinLike(scale, 44);
  std::printf("data: %s\n", StatsToString(ComputeStats(db)).c_str());

  bench::SweepOptions options;
  options.algorithms = {Algorithm::kFpClose, Algorithm::kLcm,
                        Algorithm::kIsta, Algorithm::kCarpenterTable,
                        Algorithm::kCarpenterLists};
  for (Support s = 40; s >= 25; --s) options.supports.push_back(s);
  options.point_time_limit_seconds = limit;

  const bench::SweepResult result = bench::RunSweep(db, options);
  bench::PrintSweepTable("Figure 7 — thrombin subset (synthetic stand-in)",
                         options, result);
  if (!args.csv_path.empty()) bench::WriteCsv(args.csv_path, result);
  if (!args.json_path.empty()) {
    bench::WriteJson(args.json_path, "fig7_thrombin", scale, result);
  }
  return 0;
}
