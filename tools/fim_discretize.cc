// fim-discretize: convert an expression matrix (TSV, genes x conditions)
// into a FIMI transaction database by thresholding log ratios, exactly as
// the paper's §4 preprocessing: values > over-threshold become
// "over-expressed" items (2*id), values < under-threshold become
// "under-expressed" items (2*id + 1).
//
//   fim-discretize [-o over] [-u under] [-Q tail] [-t] input.tsv output.fimi
//
//   -o F   over-expression threshold   (default  0.2)
//   -u F   under-expression threshold  (default -0.2)
//   -Q F   quantile mode: ignore -o/-u and put the upper and lower F
//          fraction of all values into the tails (F in (0, 0.5))
//   -t     conditions as transactions (items = genes); default is genes
//          as transactions (items = conditions)

#include <cstdio>
#include <cstring>
#include <string>

#include "data/expression.h"
#include "data/fimi_io.h"
#include "data/matrix_io.h"
#include "data/stats.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: fim-discretize [-o over] [-u under] [-t] input.tsv "
               "output.fimi\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fim;

  double over = 0.2;
  double under = -0.2;
  double quantile = -1.0;
  auto orientation = ExpressionOrientation::kGenesAsTransactions;
  std::string input;
  std::string output;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "-o") == 0) {
      over = std::atof(next_value());
    } else if (std::strcmp(arg, "-u") == 0) {
      under = std::atof(next_value());
    } else if (std::strcmp(arg, "-Q") == 0) {
      quantile = std::atof(next_value());
    } else if (std::strcmp(arg, "-t") == 0) {
      orientation = ExpressionOrientation::kConditionsAsTransactions;
    } else if (std::strcmp(arg, "-h") == 0 ||
               std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else if (input.empty()) {
      input = arg;
    } else if (output.empty()) {
      output = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (input.empty() || output.empty()) {
    Usage();
    return 2;
  }

  auto matrix = ReadExpressionMatrixFile(input);
  if (!matrix.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                 matrix.status().ToString().c_str());
    return 1;
  }
  TransactionDatabase db;
  if (quantile > 0.0) {
    auto discretized = DiscretizeQuantile(matrix.value(), orientation,
                                          quantile);
    if (!discretized.ok()) {
      std::fprintf(stderr, "%s\n",
                   discretized.status().ToString().c_str());
      return 1;
    }
    db = std::move(discretized).value();
  } else {
    db = Discretize(matrix.value(), orientation, over, under);
  }
  Status status = WriteFimiFile(db, output);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "fim-discretize: %zu x %zu matrix -> %s "
               "(thresholds %+.2f/%+.2f)\n",
               matrix.value().num_genes(), matrix.value().num_conditions(),
               StatsToString(ComputeStats(db)).c_str(), over, under);
  return 0;
}
